(* Tests for the run-description file format. *)

open Ssg_util
open Ssg_graph
open Ssg_adversary

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let same_run a b =
  Adversary.n a = Adversary.n b
  && Adversary.prefix_length a = Adversary.prefix_length b
  && List.for_all
       (fun r -> Digraph.equal (Adversary.graph a r) (Adversary.graph b r))
       (List.init (Adversary.prefix_length a + 2) (fun i -> i + 1))

let test_roundtrip_examples () =
  List.iter
    (fun adv ->
      let adv' = Run_format.of_string (Run_format.to_string adv) in
      check ("roundtrip " ^ Adversary.name adv) true (same_run adv adv'))
    [
      Build.synchronous ~n:4;
      Build.lower_bound ~n:6 ~k:3;
      Build.figure1 ();
      Build.partitioned (Rng.of_int 1) ~n:8 ~blocks:2 ~prefix_len:3 ();
    ]

let prop_roundtrip =
  QCheck2.Test.make ~count:120 ~name:"format roundtrips random runs"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.of_int seed in
      (* The format requires n >= 2 (a description needs a second
         process to talk about); n = 1 systems stay in-memory only. *)
      let n = 2 + Rng.int rng 9 in
      let adv =
        Build.arbitrary rng ~n ~density:(Rng.float rng)
          ~prefix_len:(Rng.int rng 4) ~noise:0.5 ()
      in
      same_run adv (Run_format.of_string (Run_format.to_string adv)))

let test_parse_by_hand () =
  let adv =
    Run_format.of_string
      "ssg-run v1\n# the minimal E9 witness\nn 3\nround 1: 1>0 0>2 1>2 2>1\nstable: 1>0 0>2 1>2\n"
  in
  check_int "n" 3 (Adversary.n adv);
  check_int "prefix" 1 (Adversary.prefix_length adv);
  check "self loops implied" true
    (Digraph.has_all_self_loops (Adversary.graph adv 1));
  check "transient edge in round 1" true
    (Digraph.mem_edge (Adversary.graph adv 1) 2 1);
  check "gone in stable" false (Digraph.mem_edge (Adversary.graph adv 2) 2 1);
  check_int "min_k 1" 1 (Adversary.min_k adv)

let expect_failure label text =
  check label true
    (try
       ignore (Run_format.of_string text);
       false
     with Failure _ -> true)

let test_parse_errors () =
  expect_failure "missing header" "n 3\nstable: \n";
  expect_failure "missing n" "ssg-run v1\nstable: 0>1\n";
  expect_failure "missing stable" "ssg-run v1\nn 3\n";
  expect_failure "bad edge" "ssg-run v1\nn 3\nstable: 0>9\n";
  expect_failure "malformed edge" "ssg-run v1\nn 3\nstable: 0-1\n";
  expect_failure "non-consecutive rounds" "ssg-run v1\nn 3\nround 2: \nstable: \n";
  expect_failure "duplicate stable" "ssg-run v1\nn 2\nstable: \nstable: \n";
  expect_failure "unknown directive" "ssg-run v1\nn 2\nfrobnicate 7\nstable: \n"

(* Regression: a second [n] declaration used to silently overwrite the
   first, parsing earlier rounds and later graphs against different
   process counts.  The error message is part of the format's contract. *)
let expect_message label text message =
  check label true
    (try
       ignore (Run_format.of_string text);
       false
     with Failure msg -> msg = message)

let test_duplicate_n_rejected () =
  expect_message "duplicate n"
    "ssg-run v1\nn 3\nround 1: 0>1\nn 5\nstable: 0>1\n"
    "line 4: duplicate n declaration";
  (* Even re-declaring the same value is a malformed file. *)
  expect_message "duplicate n, same value"
    "ssg-run v1\nn 3\nn 3\nstable: 0>1\n" "line 3: duplicate n declaration"

(* Regression: [n 0] and [n 1] used to parse (the guard only refused
   non-positive values, and 1 passed it), producing degenerate runs the
   edge grammar cannot even describe.  The diagnostic is line-anchored
   so the lint front door can place it. *)
let test_degenerate_n_rejected () =
  expect_message "n 1"
    "ssg-run v1\nn 1\nstable:\n"
    "line 2: n must be at least 2 (got 1): a run needs two processes to \
     describe communication";
  expect_message "n 0"
    "ssg-run v1\nn 0\nstable:\n"
    "line 2: n must be at least 2 (got 0): a run needs two processes to \
     describe communication";
  expect_message "negative n"
    "ssg-run v1\n\nn -4\nstable:\n"
    "line 3: n must be at least 2 (got -4): a run needs two processes to \
     describe communication";
  expect_message "non-integer n" "ssg-run v1\nn x\nstable:\n"
    "line 2: n must be an integer >= 2"

(* Regression: prefix rounds after the stable graph used to parse (the
   round list and the stable ref were independent), producing a run
   whose textual order lied about its round order. *)
let test_round_after_stable_rejected () =
  expect_message "round after stable"
    "ssg-run v1\nn 3\nstable: 0>1\nround 1: 0>2\n"
    "line 4: round after stable graph";
  expect_message "round after bare stable"
    "ssg-run v1\nn 2\nstable:\nround 1: 0>1\n"
    "line 4: round after stable graph"

let test_spans () =
  let _adv, spans =
    Run_format.parse
      "ssg-run v1\n# comment\nn 3\n\nround 1: 0>1 0>1 2>2\nround 2: 0>1\nstable: 0>1\n"
  in
  check_int "n line" 3 spans.Run_format.n_line;
  check_int "round count" 2 (Array.length spans.Run_format.round_lines);
  check_int "round 1 line" 5 spans.Run_format.round_lines.(0);
  check_int "round 2 line" 6 spans.Run_format.round_lines.(1);
  check_int "stable line" 7 spans.Run_format.stable_line;
  Alcotest.(check (list (pair int string)))
    "redundant tokens in source order"
    [ (5, "0>1"); (5, "2>2") ]
    spans.Run_format.redundant_edges

let test_edgeless_stable () =
  let adv = Run_format.of_string "ssg-run v1\nn 2\nstable:\n" in
  check "only self loops" true
    (Digraph.equal (Adversary.graph adv 1) (Gen.self_loops_only 2))

let test_recurrent_rejected () =
  let rng = Rng.of_int 3 in
  let adv =
    Build.with_recurrent_noise rng (Build.synchronous ~n:3) ~noise:0.2
  in
  check "recurrent rejected" true
    (try ignore (Run_format.to_string adv); false
     with Invalid_argument _ -> true)

let test_save_load_file () =
  let adv = Build.lower_bound ~n:5 ~k:2 in
  let path = Filename.temp_file "ssg_run" ".ssg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Run_format.save adv path;
      check "file roundtrip" true (same_run adv (Run_format.load path)))

let tests =
  [
    Alcotest.test_case "roundtrip examples" `Quick test_roundtrip_examples;
    Alcotest.test_case "parse by hand" `Quick test_parse_by_hand;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "duplicate n rejected" `Quick test_duplicate_n_rejected;
    Alcotest.test_case "degenerate n rejected" `Quick
      test_degenerate_n_rejected;
    Alcotest.test_case "round after stable rejected" `Quick
      test_round_after_stable_rejected;
    Alcotest.test_case "span tracking" `Quick test_spans;
    Alcotest.test_case "edgeless stable" `Quick test_edgeless_stable;
    Alcotest.test_case "recurrent rejected" `Quick test_recurrent_rejected;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ]
