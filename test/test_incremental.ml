(* Incremental-skeleton suite: delta absorption (Digraph.inter_into_count,
   Skeleton.absorb_delta), the revision-stamped caches of
   Skeleton.Incremental, the warm-started MIS and its Min_k_tracker
   wrapper, the Lgraph support memo — and the central property: after any
   r rounds, the incremental state is indistinguishable from a
   from-scratch recomputation, including runs entered on their stable
   suffix and runs carrying recurrent even-round noise forever. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_predicates
open Ssg_adversary

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- deltas: units ---------------- *)

let test_inter_into_count () =
  let into = Digraph.complete ~self_loops:true 4 in
  let g =
    Digraph.of_edges 4 [ (0, 1); (1, 2); (0, 0); (1, 1); (2, 2); (3, 3) ]
  in
  let removed = Digraph.inter_into_count ~into g in
  check_int "counts removed edges" (16 - 6) removed;
  check "intersection applied" true (Digraph.equal into g);
  (* Zero delta iff the accumulator is already a subgraph. *)
  check_int "idempotent" 0 (Digraph.inter_into_count ~into g);
  check_int "supergraph removes nothing" 0
    (Digraph.inter_into_count ~into (Digraph.complete ~self_loops:true 4))

let test_absorb_delta_matches_absorb () =
  let rng = Rng.of_int 7 in
  let a = Skeleton.start ~n:6 and b = Skeleton.start ~n:6 in
  for r = 1 to 12 do
    let g = Gen.gnp rng 6 0.5 in
    let before = Digraph.edge_count (Skeleton.current a) in
    check_int "absorb returns the round" r (Skeleton.absorb a g);
    let removed = Skeleton.absorb_delta b g in
    check "same accumulator" true
      (Digraph.equal (Skeleton.current a) (Skeleton.current b));
    check_int "delta = edge-count drop"
      (before - Digraph.edge_count (Skeleton.current a))
      removed;
    check_int "rounds tracked" r (Skeleton.rounds_absorbed b)
  done

let test_incremental_stable_rounds_and_revision () =
  let inc = Incremental.start ~n:4 in
  let g = Digraph.of_edges 4 [ (0, 1); (0, 0); (1, 1); (2, 2); (3, 3) ] in
  ignore (Incremental.absorb inc g);
  let rev1 = Incremental.revision inc in
  check_int "first absorb shrinks" 0 (Incremental.stable_rounds inc);
  ignore (Incremental.absorb inc g);
  ignore (Incremental.absorb inc g);
  check_int "two stable rounds" 2 (Incremental.stable_rounds inc);
  check_int "revision frozen while stable" rev1 (Incremental.revision inc);
  (* Physical sharing across a zero-delta round is the caching contract:
     the snapshot is the very same object, not merely an equal copy. *)
  let s1 = Incremental.snapshot inc in
  ignore (Incremental.absorb inc g);
  check "snapshot shared while stable" true (s1 == Incremental.snapshot inc);
  let g' = Digraph.of_edges 4 [ (0, 0); (1, 1); (2, 2); (3, 3) ] in
  check "losing an edge bumps" true (Incremental.absorb inc g' > 0);
  check "revision bumped" true (Incremental.revision inc > rev1);
  check "snapshot replaced" true (not (s1 == Incremental.snapshot inc));
  check_int "stability reset" 0 (Incremental.stable_rounds inc)

(* ---------------- incremental == from-scratch ---------------- *)

(* One adversary per seed, covering the regimes the tentpole cares
   about: a noisy prefix, an eventually-stable suffix, and (half the
   time) perpetual even-round transient noise on top — the skeleton is
   unchanged by the noise, so the incremental path must coast through
   it on zero-delta rounds. *)
let gen_adv seed =
  let rng = Rng.of_int seed in
  let n = 4 + Rng.int rng 5 in
  let k = 1 + Rng.int rng (n - 2) in
  let base =
    match Rng.int rng 3 with
    | 0 -> Build.block_sources rng ~n ~k ~prefix_len:(Rng.int rng 3) ()
    | 1 ->
        Build.partitioned rng ~n
          ~blocks:(1 + Rng.int rng (min 3 (n - 1)))
          ~prefix_len:(Rng.int rng 3) ()
    | _ ->
        Build.arbitrary rng ~n ~density:(Rng.float rng)
          ~prefix_len:(Rng.int rng 3) ~noise:0.5 ()
  in
  if Rng.int rng 2 = 0 then Build.with_recurrent_noise rng base ~noise:0.3
  else base

let prop_incremental_matches_scratch =
  QCheck2.Test.make ~count:60
    ~name:"incremental skeleton/PT/min_k == from-scratch"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let adv = gen_adv seed in
      let n = Adversary.n adv in
      let rounds = (2 * n) + 4 in
      let tr = Adversary.trace adv ~rounds in
      let inc = Incremental.start ~n in
      let tracker = Min_k_tracker.create () in
      let ok = ref true in
      let assert_ c = ok := !ok && c in
      for r = 1 to rounds do
        ignore (Incremental.absorb inc (Trace.graph tr r));
        (* From scratch, independently of the incremental state. *)
        let scratch = Skeleton.at tr r in
        let scratch_analysis = Analysis.analyze scratch in
        let scratch_pts = Timely.sources_of scratch in
        assert_ (Digraph.equal (Incremental.view inc) scratch);
        assert_ (Digraph.equal (Incremental.snapshot inc) scratch);
        let analysis = Incremental.analysis inc in
        assert_
          ((Analysis.partition analysis).Scc.count
          = (Analysis.partition scratch_analysis).Scc.count);
        assert_
          (Analysis.root_count analysis
          = Analysis.root_count scratch_analysis);
        let pts = Incremental.pts inc in
        for p = 0 to n - 1 do
          assert_ (Bitset.equal pts.(p) scratch_pts.(p));
          assert_
            (Bitset.equal
               (Analysis.component_of analysis p)
               (Analysis.component_of scratch_analysis p))
        done;
        assert_
          (Min_k_tracker.min_k ~revision:(Incremental.revision inc) tracker
             pts
          = Predicate.min_k scratch_pts)
      done;
      (* The ⊇-chain eventually stabilizes, so the tail of the run must
         have been served from a frozen revision. *)
      assert_ (Incremental.stable_rounds inc > 0);
      !ok)

(* Entering on the stable suffix: absorbing only the stable graph from
   round 1 means revision bumps exactly once (complete graph -> stable
   skeleton) and every later round is a zero-delta coast. *)
let test_stable_suffix_entry () =
  let adv =
    Build.block_sources (Rng.of_int 5) ~n:8 ~k:2 ~prefix_len:0 ()
  in
  let stable = Adversary.stable_skeleton adv in
  let inc = Incremental.start ~n:8 in
  for r = 1 to 10 do
    ignore (Incremental.absorb inc (Adversary.graph adv (r + 5)));
    check "suffix entry tracks the stable skeleton" true
      (Digraph.equal (Incremental.view inc) stable)
  done;
  check_int "one shrink, nine coasts" 9 (Incremental.stable_rounds inc)

(* ---------------- warm-started MIS ---------------- *)

let random_sym rng n p =
  let sym = Array.init n (fun _ -> Bitset.create n) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng < p then begin
        Bitset.add sym.(i) j;
        Bitset.add sym.(j) i
      end
    done
  done;
  sym

let prop_warm_mis_optimal_under_any_seed =
  QCheck2.Test.make ~count:200
    ~name:"warm MIS matches cold MIS for any warm seed"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 1 + Rng.int rng 10 in
      let sym = random_sym rng n (Rng.float rng) in
      let cold = Mis.independence_number sym in
      (* No seed, a garbage seed (possibly dependent), a wrong-capacity
         seed: the size found must always be the true optimum. *)
      let garbage = Bitset.create n in
      for v = 0 to n - 1 do
        if Rng.int rng 2 = 0 then Bitset.add garbage v
      done;
      let _, no_seed = Mis.max_independent_set_warm sym in
      let w, with_garbage = Mis.max_independent_set_warm ~warm:garbage sym in
      let _, wrong_cap =
        Mis.max_independent_set_warm ~warm:(Bitset.create (n + 3)) sym
      in
      no_seed = cold && with_garbage = cold && wrong_cap = cold
      && Mis.is_independent sym w
      && Bitset.cardinal w = cold)

let prop_warm_mis_along_shrinking_chain =
  QCheck2.Test.make ~count:100
    ~name:"previous witness warm-starts the shrunk graph"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 3 + Rng.int rng 8 in
      let sym = random_sym rng n 0.6 in
      (* Remove edges round by round — the sharing graph's trajectory
         along the skeleton ⊇-chain — reusing each witness as the next
         round's warm start. *)
      let warm = ref None in
      let ok = ref true in
      for _round = 1 to 5 do
        (* drop a few random edges *)
        for _ = 1 to 2 do
          let i = Rng.int rng n and j = Rng.int rng n in
          Bitset.remove sym.(i) j;
          Bitset.remove sym.(j) i
        done;
        let w, size = Mis.max_independent_set_warm ?warm:!warm sym in
        ok :=
          !ok
          && size = Mis.independence_number sym
          && Mis.is_independent sym w;
        warm := Some w
      done;
      !ok)

let test_min_k_tracker_revision_cache () =
  let pts = [| Bitset.of_list 2 [ 0 ]; Bitset.of_list 2 [ 1 ] |] in
  let t = Min_k_tracker.create () in
  let k1 = Min_k_tracker.min_k ~revision:0 t pts in
  check_int "two isolated sources" 2 k1;
  (* Same revision: served from cache even if the array were mutated —
     the stamp is the contract. *)
  Bitset.add pts.(0) 1;
  Bitset.add pts.(1) 0;
  check_int "stamped hit ignores mutation" 2
    (Min_k_tracker.min_k ~revision:0 t pts);
  check_int "new stamp recomputes" 1 (Min_k_tracker.min_k ~revision:1 t pts);
  check_int "stampless always recomputes" 1 (Min_k_tracker.min_k t pts)

(* ---------------- Lgraph support memo ---------------- *)

let test_same_support () =
  let a = Lgraph.create 3 ~self:0 and b = Lgraph.create 3 ~self:0 in
  Lgraph.set_edge a 1 0 ~label:3;
  Lgraph.set_edge b 1 0 ~label:7;
  check "labels ignored" true (Lgraph.same_support a b);
  Lgraph.set_edge b 2 0 ~label:1;
  check "extra edge breaks support" false (Lgraph.same_support a b);
  Lgraph.remove_edge b 2 0;
  (* [remove_edge] keeps the endpoint, so the node sets still differ
     from a graph that never saw node 2. *)
  check "node sets compared too" false (Lgraph.same_support a b);
  Lgraph.add_node a 2;
  check "support restored" true (Lgraph.same_support a b)

(* The Approx memo rests on: support-equal graphs agree on strong
   connectivity.  Drive a real multi-process run and cross-check the
   memoized answer against a fresh SCC pass every round. *)
let test_approx_sc_memo_consistent () =
  let open Ssg_core in
  let n = 5 in
  let rng = Rng.of_int 11 in
  let procs = Array.init n (fun self -> Approx.create ~n ~self ()) in
  for round = 1 to 3 * n do
    let messages = Array.map Approx.message procs in
    (* Random (but self-inclusive) delivery each round. *)
    let delivered =
      Array.init n (fun p ->
          Array.init n (fun q -> p = q || Rng.float rng < 0.7))
    in
    Array.iteri
      (fun p t ->
        Approx.step t ~round ~received:(fun q ->
            if delivered.(p).(q) then Some messages.(q) else None))
      procs;
    Array.iter
      (fun t ->
        check "memoized SC = fresh SC" true
          (Approx.is_strongly_connected t
          = Lgraph.is_strongly_connected (Approx.graph t));
        (* asking twice hits the memo; the answer must not drift *)
        check "memo stable" true
          (Approx.is_strongly_connected t = Approx.is_strongly_connected t))
      procs
  done

(* End to end: the rewired Monitor (incremental skeleton + cached
   analyses) still certifies Lemmas 3-7 / Theorem 8 on runs with
   recurrent noise — zero violations, same as the from-scratch monitor
   always reported. *)
let test_monitor_clean_on_recurrent_noise () =
  for seed = 0 to 4 do
    let rng = Rng.of_int (100 + seed) in
    let base =
      Build.block_sources rng ~n:6 ~k:2 ~prefix_len:2 ~noise:0.4 ()
    in
    let adv = Build.with_recurrent_noise rng base ~noise:0.3 in
    let r = Ssg_sim.Runner.run_kset ~monitor:true ~rounds:20 adv in
    Alcotest.(check (list string))
      (Printf.sprintf "monitors clean (seed %d)" seed)
      [] r.Ssg_sim.Runner.violations
  done

(* ---------------- suite ---------------- *)

let tests =
  [
    Alcotest.test_case "digraph: inter_into_count" `Quick
      test_inter_into_count;
    Alcotest.test_case "skeleton: absorb_delta = absorb" `Quick
      test_absorb_delta_matches_absorb;
    Alcotest.test_case "incremental: revisions and stability" `Quick
      test_incremental_stable_rounds_and_revision;
    Alcotest.test_case "incremental: stable-suffix entry" `Quick
      test_stable_suffix_entry;
    Alcotest.test_case "tracker: revision cache" `Quick
      test_min_k_tracker_revision_cache;
    Alcotest.test_case "lgraph: same_support" `Quick test_same_support;
    Alcotest.test_case "approx: SC memo consistent" `Quick
      test_approx_sc_memo_consistent;
    Alcotest.test_case "monitor: clean under recurrent noise" `Quick
      test_monitor_clean_on_recurrent_noise;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_incremental_matches_scratch;
        prop_warm_mis_optimal_under_any_seed;
        prop_warm_mis_along_shrinking_chain;
      ]
