(* Tests for the ssgd service engine: bounded queue, worker pool, LRU
   cache, job canonicalization, the framed wire protocol (qcheck
   round-trips), the engine's dedup/caching, and an end-to-end socket
   smoke test with concurrent clients. *)

open Ssg_util
open Ssg_adversary
open Ssg_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Bqueue --- *)

let test_bqueue_fifo () =
  let q = Bqueue.create ~capacity:8 () in
  List.iter (fun i -> assert (Bqueue.push q i)) [ 1; 2; 3 ];
  check_int "depth" 3 (Bqueue.length q);
  check_int "fifo 1" 1 (Option.get (Bqueue.pop q));
  check_int "fifo 2" 2 (Option.get (Bqueue.pop q));
  check_int "fifo 3" 3 (Option.get (Bqueue.pop q));
  check_int "drained" 0 (Bqueue.length q)

let test_bqueue_close () =
  let q = Bqueue.create ~capacity:4 () in
  assert (Bqueue.push q 7);
  Bqueue.close q;
  check "push refused after close" false (Bqueue.push q 8);
  check "drain survives close" true (Bqueue.pop q = Some 7);
  check "then None" true (Bqueue.pop q = None);
  check "closed" true (Bqueue.is_closed q)

let test_bqueue_backpressure () =
  let q = Bqueue.create ~capacity:1 () in
  assert (Bqueue.push q 1);
  let second_in = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        ignore (Bqueue.push q 2);
        Atomic.set second_in true)
      ()
  in
  Thread.delay 0.05;
  check "second push blocked on full queue" false (Atomic.get second_in);
  check_int "first out" 1 (Option.get (Bqueue.pop q));
  Thread.join t;
  check "second push completed after pop" true (Atomic.get second_in);
  check_int "second out" 2 (Option.get (Bqueue.pop q))

(* --- Ivar --- *)

let test_ivar () =
  let cell = Ivar.create () in
  check "empty peek" true (Ivar.peek cell = None);
  let got = Atomic.make 0 in
  let t = Thread.create (fun () -> Atomic.set got (Ivar.read cell)) () in
  Thread.delay 0.02;
  Ivar.fill cell 42;
  Thread.join t;
  check_int "reader woke with value" 42 (Atomic.get got);
  check_int "re-read immediate" 42 (Ivar.read cell);
  check "double fill rejected" true
    (try Ivar.fill cell 43; false with Invalid_argument _ -> true)

(* --- Lru --- *)

let test_lru_eviction () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check "hit a" true (Lru.find c "a" = Some 1);
  (* recency is now a > b, so adding c evicts b *)
  Lru.add c "c" 3;
  check "b evicted" true (Lru.find c "b" = None);
  check "a kept" true (Lru.find c "a" = Some 1);
  check "c kept" true (Lru.find c "c" = Some 3);
  check_int "evictions" 1 (Lru.evictions c);
  check_int "hits" 3 (Lru.hits c);
  check_int "misses" 1 (Lru.misses c);
  check_int "entries" 2 (Lru.length c)

let test_lru_overwrite_and_zero_capacity () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "k" 1;
  Lru.add c "k" 2;
  check "overwrite" true (Lru.find c "k" = Some 2);
  check_int "no duplicate entry" 1 (Lru.length c);
  let z = Lru.create ~capacity:0 in
  Lru.add z "k" 1;
  check "capacity 0 never stores" true (Lru.find z "k" = None);
  check_int "capacity 0 counts misses" 1 (Lru.misses z)

(* --- Pool --- *)

let test_pool_drains_all_on_shutdown () =
  let pool = Pool.create ~workers:2 ~queue_capacity:4 () in
  let done_count = Atomic.make 0 in
  for _ = 1 to 50 do
    assert (Pool.submit pool (fun () -> Atomic.incr done_count))
  done;
  Pool.shutdown pool;
  check_int "every accepted task ran before shutdown returned" 50
    (Atomic.get done_count);
  check "submit refused after shutdown" false (Pool.submit pool (fun () -> ()))

let test_pool_survives_raising_tasks () =
  let pool = Pool.create ~workers:1 ~queue_capacity:4 () in
  let done_count = Atomic.make 0 in
  assert (Pool.submit pool (fun () -> failwith "boom"));
  for _ = 1 to 5 do
    assert (Pool.submit pool (fun () -> Atomic.incr done_count))
  done;
  Pool.shutdown pool;
  check_int "worker survived the raising task" 5 (Atomic.get done_count)

(* --- Job --- *)

let sample_adv ?(seed = 11) ?(n = 6) () =
  Build.block_sources (Rng.of_int seed) ~n ~k:2 ~prefix_len:1 ()

let test_job_canonical_permuted_text () =
  (* The same run hand-written with edges (and rounds' edge lists) in a
     different order, plus comments: must canonicalize to the same key. *)
  let a =
    Job.of_run_text "ssg-run v1\nn 3\nround 1: 1>0 0>2 1>2 2>1\nstable: 1>0 0>2 1>2\n"
  in
  let b =
    Job.of_run_text
      "ssg-run v1\n# permuted but equal\nn 3\nround 1: 2>1 1>2 0>2 1>0\nstable: 0>2 1>2 1>0\n"
  in
  check "permuted descriptions share a key" true (Job.key a = Job.key b);
  check "Job.equal agrees" true (Job.equal a b)

let test_job_normalizes_default_inputs () =
  let adv = sample_adv () in
  let explicit = Job.make ~inputs:(Array.init 6 Fun.id) adv in
  let default = Job.make adv in
  check "explicit 0..n-1 collapses to default" true
    (Job.key explicit = Job.key default);
  let shuffled = Job.make ~inputs:[| 1; 0; 2; 3; 4; 5 |] adv in
  check "real input assignment keys differently" false
    (Job.key shuffled = Job.key default)

let test_job_execute_matches_runner () =
  let adv = sample_adv () in
  let outcome = Job.execute (Job.make ~monitor:true adv) in
  let report = Ssg_sim.Runner.run_kset ~monitor:true adv in
  check_int "min_k" report.Ssg_sim.Runner.min_k outcome.Job.min_k;
  check_int "distinct"
    (Ssg_sim.Metrics.distinct_decisions report.Ssg_sim.Runner.outcome)
    outcome.Job.distinct_decisions;
  check "violations" true (outcome.Job.violations = report.Ssg_sim.Runner.violations);
  check "decisions agree" true
    (outcome.Job.decisions
    = Array.map
        (Option.map (fun d ->
             (d.Ssg_rounds.Executor.round, d.Ssg_rounds.Executor.value)))
        report.Ssg_sim.Runner.outcome.Ssg_rounds.Executor.decisions)

(* --- Protocol: generators + qcheck round-trips --- *)

let gen_job rng =
  let n = 2 + Rng.int rng 6 in
  let adv =
    Build.arbitrary (Rng.copy rng) ~n ~density:0.4
      ~prefix_len:(Rng.int rng 3) ()
  in
  let algorithm =
    match Rng.int rng 4 with
    | 0 -> Job.Kset
    | 1 -> Job.Floodmin
    | 2 -> Job.Flood_consensus
    | _ -> Job.Naive_min
  in
  let inputs =
    if Rng.int rng 2 = 0 then None
    else Some (Array.init n (fun _ -> Rng.int rng 10))
  in
  let rounds = if Rng.int rng 2 = 0 then None else Some (Rng.int rng 40) in
  Job.make ~algorithm ~k:(1 + Rng.int rng 3) ?inputs ?rounds
    ~monitor:(Rng.int rng 2 = 0) adv

let gen_outcome rng : Job.outcome =
  let n = 1 + Rng.int rng 8 in
  {
    Job.algorithm = "alg-" ^ string_of_int (Rng.int rng 5);
    n;
    min_k = 1 + Rng.int rng n;
    rounds_run = Rng.int rng 50;
    decisions =
      Array.init n (fun _ ->
          if Rng.int rng 3 = 0 then None
          else Some (Rng.int rng 50, Rng.int rng 100));
    distinct_decisions = Rng.int rng n;
    messages_sent = Rng.int rng 100000;
    messages_delivered = Rng.int rng 100000;
    bits_sent = Rng.int rng 10000000;
    violations =
      List.init (Rng.int rng 3) (fun i -> "violation " ^ string_of_int i);
  }

let gen_completion rng : Job.completion =
  {
    Job.result =
      (if Rng.int rng 4 = 0 then Error "it broke" else Ok (gen_outcome rng));
    cached = Rng.int rng 2 = 0;
    latency_ms = Rng.float rng *. 1000.;
  }

let gen_snapshot rng : Telemetry.snapshot =
  let gen_summary () =
    if Rng.int rng 3 = 0 then None
    else
      Some
        {
          Stats.count = 1 + Rng.int rng 1000;
          mean = Rng.float rng *. 10.;
          stddev = Rng.float rng;
          min = Rng.float rng;
          max = 10. +. Rng.float rng;
          p50 = Rng.float rng *. 5.;
          p95 = Rng.float rng *. 9.;
          p99 = Rng.float rng *. 10.;
        }
  in
  let summary = gen_summary () in
  {
    Telemetry.uptime_s = Rng.float rng *. 3600.;
    workers = 1 + Rng.int rng 16;
    queue_depth = Rng.int rng 64;
    queue_capacity = 64;
    jobs_submitted = Rng.int rng 100000;
    jobs_completed = Rng.int rng 100000;
    jobs_failed = Rng.int rng 100;
    jobs_rejected_lint = Rng.int rng 100;
    cache_hits = Rng.int rng 100000;
    cache_misses = Rng.int rng 100000;
    dedup_joins = Rng.int rng 1000;
    cache_entries = Rng.int rng 1024;
    throughput_jps = Rng.float rng *. 1000.;
    lifetime_jps = Rng.float rng *. 1000.;
    recent_window_s = 1. +. (Rng.float rng *. 60.);
    rejected_frames = Rng.int rng 100;
    timed_out_connections = Rng.int rng 100;
    connections_rejected = Rng.int rng 100;
    faults_injected = Rng.int rng 100;
    latency_ms = summary;
    queue_wait_ms = gen_summary ();
    exec_ms = gen_summary ();
  }

let gen_trace_event rng : Ssg_obs.Tracer.event =
  let open Ssg_obs.Tracer in
  {
    kind =
      (match Rng.int rng 3 with 0 -> Begin | 1 -> End | _ -> Instant);
    name = Printf.sprintf "span-%d" (Rng.int rng 100);
    domain = Rng.int rng 8;
    ts_us = Rng.float rng *. 1e6;
    args =
      List.init (Rng.int rng 3) (fun i ->
          ( Printf.sprintf "arg%d" i,
            match Rng.int rng 3 with
            | 0 -> Int (Rng.int rng 1000)
            | 1 -> Float (Rng.float rng)
            | _ -> Str "value" ));
  }

let gen_entries rng =
  List.init (Rng.int rng 4) (fun i ->
      ( Printf.sprintf "key-%d" i,
        Protocol.outcome_to_string (gen_outcome rng) ))

let gen_request rng =
  match Rng.int rng 11 with
  | 0 -> Protocol.Submit (gen_job rng)
  | 1 -> Protocol.Batch (List.init (Rng.int rng 4) (fun _ -> gen_job rng))
  | 2 -> Protocol.Stats
  | 3 -> Protocol.Trace
  | 4 -> Protocol.Metrics
  | 5 -> Protocol.Join "unix:/tmp/w1.sock"
  | 6 -> Protocol.Leave "tcp:127.0.0.1:7001"
  | 7 -> Protocol.Export (Rng.int rng 2048)
  | 8 -> Protocol.Transfer (gen_entries rng)
  | 9 -> Protocol.Compact
  | _ -> Protocol.Shutdown

let gen_reply rng =
  match Rng.int rng 11 with
  | 0 -> Protocol.Completed (gen_completion rng)
  | 1 ->
      Protocol.Batch_completed
        (List.init (Rng.int rng 4) (fun _ -> gen_completion rng))
  | 2 -> Protocol.Stats_snapshot (gen_snapshot rng)
  | 3 -> Protocol.Trace_events (List.init (Rng.int rng 5) (fun _ -> gen_trace_event rng))
  | 4 -> Protocol.Metrics_text "# TYPE ssgd_jobs_submitted counter\nssgd_jobs_submitted 3\n"
  | 5 -> Protocol.Shutting_down
  | 6 -> Protocol.Ack
  | 7 -> Protocol.Entries (gen_entries rng)
  | 8 -> Protocol.Transferred (Rng.int rng 2048)
  | 9 -> Protocol.Compacted (Rng.int rng 2048)
  | _ -> Protocol.Error "nope"

let prop_request_roundtrip =
  QCheck2.Test.make ~count:150 ~name:"protocol round-trips random requests"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let req = gen_request (Rng.of_int seed) in
      Protocol.request_of_bytes (Protocol.request_to_bytes req) = req)

let prop_reply_roundtrip =
  QCheck2.Test.make ~count:150 ~name:"protocol round-trips random replies"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let reply = gen_reply (Rng.of_int seed) in
      Protocol.reply_of_bytes (Protocol.reply_to_bytes reply) = reply)

(* Decode fuzz: arbitrary byte garbage either parses or raises [Failure]
   — never [Invalid_argument] (the Job constructors' vocabulary), never
   anything else, never a hang.  Pure random bytes mostly die at the tag
   byte, so also fuzz by mutating bytes of a {e valid} encoding, which
   reaches the deep field decoders (and, for [Submit], job
   validation). *)

let decodes_or_fails_cleanly decode bytes =
  match decode bytes with
  | (_ : 'a) -> true
  | exception Failure _ -> true
  | exception _ -> false

let prop_request_decode_fuzz =
  QCheck2.Test.make ~count:300
    ~name:"request decoder: garbage parses or raises Failure only"
    QCheck2.Gen.(pair (int_bound 1000000) (string_size (int_bound 64)))
    (fun (seed, garbage) ->
      let rng = Rng.of_int seed in
      let valid = Protocol.request_to_bytes (gen_request rng) in
      let mutated = Bytes.copy valid in
      if Bytes.length mutated > 0 then begin
        let i = Rng.int rng (Bytes.length mutated) in
        Bytes.set mutated i (Char.chr (Rng.int rng 256))
      end;
      decodes_or_fails_cleanly Protocol.request_of_bytes
        (Bytes.of_string garbage)
      && decodes_or_fails_cleanly Protocol.request_of_bytes mutated)

let prop_reply_decode_fuzz =
  QCheck2.Test.make ~count:300
    ~name:"reply decoder: garbage parses or raises Failure only"
    QCheck2.Gen.(pair (int_bound 1000000) (string_size (int_bound 64)))
    (fun (seed, garbage) ->
      let rng = Rng.of_int seed in
      let valid = Protocol.reply_to_bytes (gen_reply rng) in
      let mutated = Bytes.copy valid in
      if Bytes.length mutated > 0 then begin
        let i = Rng.int rng (Bytes.length mutated) in
        Bytes.set mutated i (Char.chr (Rng.int rng 256))
      end;
      decodes_or_fails_cleanly Protocol.reply_of_bytes
        (Bytes.of_string garbage)
      && decodes_or_fails_cleanly Protocol.reply_of_bytes mutated)

let prop_read_frame_fuzz =
  QCheck2.Test.make ~count:100
    ~name:"read_frame: byte garbage yields a frame, Failure or End_of_file"
    QCheck2.Gen.(string_size (int_bound 32))
    (fun garbage ->
      let read_fd, write_fd = Unix.pipe () in
      let oc = Unix.out_channel_of_descr write_fd in
      let ic = Unix.in_channel_of_descr read_fd in
      output_string oc garbage;
      close_out oc;
      let ok =
        match Protocol.read_frame ic with
        | (_ : Bytes.t) -> true
        | exception Failure _ -> true
        | exception End_of_file -> true
        | exception _ -> false
      in
      close_in ic;
      ok)

(* Lru against a naive most-recent-first association-list model: random
   add/find sequences must preserve [length <= capacity], agree on every
   lookup, and evict in exactly recency order. *)
let prop_lru_model =
  let capacity = 3 in
  let keys = [| "a"; "b"; "c"; "d"; "e"; "f" |] in
  QCheck2.Test.make ~count:300 ~name:"lru agrees with naive recency model"
    QCheck2.Gen.(list_size (int_bound 60) (pair (int_bound 5) (int_bound 1)))
    (fun ops ->
      let c = Lru.create ~capacity in
      let model = ref [] in  (* (key, value), most recent first *)
      let model_add k v =
        let kept = List.remove_assoc k !model in
        let kept =
          if List.mem_assoc k !model || List.length kept < capacity then kept
          else List.filteri (fun i _ -> i < capacity - 1) kept
        in
        model := (k, v) :: kept
      in
      let model_find k =
        match List.assoc_opt k !model with
        | None -> None
        | Some v ->
            model := (k, v) :: List.remove_assoc k !model;
            Some v
      in
      List.for_all
        (fun (ki, op) ->
          let key = keys.(ki) in
          let agree =
            if op = 0 then begin
              let v = ki * 10 in
              Lru.add c key v;
              model_add key v;
              true
            end
            else Lru.find c key = model_find key
          in
          agree
          && Lru.length c = List.length !model
          && Lru.length c <= capacity)
        ops)

let test_protocol_framing_over_pipe () =
  let read_fd, write_fd = Unix.pipe () in
  let ic = Unix.in_channel_of_descr read_fd in
  let oc = Unix.out_channel_of_descr write_fd in
  let rng = Rng.of_int 77 in
  let reqs = List.init 5 (fun _ -> gen_request rng) in
  List.iter (Protocol.write_request oc) reqs;
  List.iter
    (fun req -> check "framed request" true (Protocol.read_request ic = req))
    reqs;
  close_out oc;
  check "clean EOF at frame boundary" true
    (try ignore (Protocol.read_request ic); false with End_of_file -> true);
  close_in ic

let test_protocol_rejects_garbage () =
  check "unknown tag" true
    (try ignore (Protocol.request_of_bytes (Bytes.of_string "Z")); false
     with Failure _ -> true);
  check "truncated" true
    (try ignore (Protocol.reply_of_bytes (Bytes.of_string "R\001")); false
     with Failure _ -> true)

(* --- Engine --- *)

let test_engine_cache_and_dedup () =
  let engine = Engine.create ~workers:2 ~queue_capacity:8 () in
  let job = Job.make ~k:2 (sample_adv ()) in
  let first = Engine.run engine job in
  check "first computed" false first.Job.cached;
  let again = Engine.run engine job in
  check "resubmission served from cache" true again.Job.cached;
  check "same outcome" true (first.Job.result = again.Job.result);
  (* In-flight dedup: submit the same fresh job twice before awaiting. *)
  let fresh = Job.make ~k:2 (sample_adv ~seed:99 ()) in
  let t1 = Engine.submit engine fresh in
  let t2 = Engine.submit engine fresh in
  let c1 = Engine.await engine t1 and c2 = Engine.await engine t2 in
  check "dedup twin shares the result" true (c1.Job.result = c2.Job.result);
  let s = Engine.stats engine in
  (* The resubmission is an LRU hit; the twin is either a dedup join (if
     it arrived while the first was in flight) or a hit (if the first
     had already finished) — but never both kinds at once. *)
  check_int "one hit or join per duplicate submission" 2
    (s.Telemetry.cache_hits + s.Telemetry.dedup_joins);
  check "lru hits not inflated by dedup" true (s.Telemetry.cache_hits >= 1);
  check_int "the deduped pair executed once" 2 s.Telemetry.jobs_completed;
  Engine.shutdown engine

let test_engine_failure_propagation () =
  let engine = Engine.create ~workers:1 ~queue_capacity:4 () in
  (* 3 inputs for a 6-process run: Job.execute raises, the engine must
     turn that into an Error completion and keep serving. *)
  let bad = Job.make ~k:2 ~inputs:[| 1; 2; 3 |] (sample_adv ()) in
  (match (Engine.run engine bad).Job.result with
  | Error msg -> check "error mentions the cause" true (msg <> "")
  | Ok _ -> Alcotest.fail "inconsistent job must fail");
  let good = Engine.run engine (Job.make ~k:2 (sample_adv ())) in
  check "engine alive after failure" true (Result.is_ok good.Job.result);
  let s = Engine.stats engine in
  check_int "failure counted" 1 s.Telemetry.jobs_failed;
  check "failures are not cached" false
    ((Engine.run engine bad).Job.cached);
  Engine.shutdown engine;
  (* A cached job would still be served after shutdown; a fresh one must
     error because the pool no longer accepts work. *)
  (match (Engine.run engine (Job.make ~k:2 (sample_adv ~seed:4242 ()))).Job.result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fresh submission after shutdown must error")

let test_engine_batch () =
  let engine = Engine.create ~workers:2 ~queue_capacity:4 () in
  let jobs =
    List.init 20 (fun i -> Job.make ~k:2 (sample_adv ~seed:(i mod 5) ()))
  in
  let completions = Engine.run_batch engine jobs in
  check_int "every job answered" 20 (List.length completions);
  check "all ok" true
    (List.for_all (fun c -> Result.is_ok c.Job.result) completions);
  let s = Engine.stats engine in
  check_int "only distinct jobs executed" 5 s.Telemetry.jobs_completed;
  check_int "the rest were hits or in-flight joins" 15
    (s.Telemetry.cache_hits + s.Telemetry.dedup_joins);
  Engine.shutdown engine

(* --- End-to-end socket smoke test with concurrent clients --- *)

let test_server_end_to_end () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ssgd-test-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let server =
    Thread.create
      (fun () ->
        Server.serve ~workers:2 ~queue_capacity:16 ~cache_capacity:64 ~socket
          ())
      ()
  in
  let rec wait_up tries =
    if tries = 0 then Alcotest.fail "server did not come up";
    match Client.connect ~socket () with
    | c -> c
    | exception Unix.Unix_error _ ->
        Thread.delay 0.05;
        wait_up (tries - 1)
  in
  let c0 = wait_up 100 in
  (* Concurrent clients: every thread submits the same 3 jobs (plus one
     per-thread unique job) on its own connection and checks the replies
     against in-process execution. *)
  let shared = List.init 3 (fun i -> Job.make ~k:2 (sample_adv ~seed:i ())) in
  let expected = List.map Job.execute shared in
  let failures = Atomic.make 0 in
  let clients =
    List.init 4 (fun t ->
        Thread.create
          (fun () ->
            try
              let c = Client.connect ~socket () in
              let mine = Job.make ~k:2 (sample_adv ~seed:(1000 + t) ()) in
              let completions = Client.submit_batch c (shared @ [ mine ]) in
              List.iteri
                (fun i completion ->
                  match (completion.Job.result, List.nth_opt expected i) with
                  | Ok got, Some want when got = want -> ()
                  | Ok _, None -> ()  (* the per-thread unique job *)
                  | _ -> Atomic.incr failures)
                completions;
              Client.close c
            with _ -> Atomic.incr failures)
          ())
  in
  List.iter Thread.join clients;
  check_int "all concurrent replies matched in-process execution" 0
    (Atomic.get failures);
  let s = Client.stats c0 in
  check "shared jobs were hits or joins across clients" true
    (s.Telemetry.cache_hits + s.Telemetry.dedup_joins >= 9);
  check_int "distinct jobs executed once each" 7 s.Telemetry.jobs_completed;
  Client.shutdown c0;
  Client.close c0;
  Thread.join server;
  check "socket file removed on shutdown" false (Sys.file_exists socket)

let tests =
  [
    Alcotest.test_case "bqueue fifo" `Quick test_bqueue_fifo;
    Alcotest.test_case "bqueue close drains" `Quick test_bqueue_close;
    Alcotest.test_case "bqueue backpressure" `Quick test_bqueue_backpressure;
    Alcotest.test_case "ivar" `Quick test_ivar;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "lru overwrite / capacity 0" `Quick
      test_lru_overwrite_and_zero_capacity;
    Alcotest.test_case "pool graceful shutdown" `Quick
      test_pool_drains_all_on_shutdown;
    Alcotest.test_case "pool survives raising tasks" `Quick
      test_pool_survives_raising_tasks;
    Alcotest.test_case "job canonicalization (permuted text)" `Quick
      test_job_canonical_permuted_text;
    Alcotest.test_case "job canonicalization (default inputs)" `Quick
      test_job_normalizes_default_inputs;
    Alcotest.test_case "job execute = in-process runner" `Quick
      test_job_execute_matches_runner;
    Alcotest.test_case "protocol framing over a pipe" `Quick
      test_protocol_framing_over_pipe;
    Alcotest.test_case "protocol rejects garbage" `Quick
      test_protocol_rejects_garbage;
    Alcotest.test_case "engine cache + in-flight dedup" `Quick
      test_engine_cache_and_dedup;
    Alcotest.test_case "engine failure propagation" `Quick
      test_engine_failure_propagation;
    Alcotest.test_case "engine batch dedup" `Quick test_engine_batch;
    Alcotest.test_case "server end-to-end (concurrent clients)" `Quick
      test_server_end_to_end;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_request_roundtrip;
        prop_reply_roundtrip;
        prop_request_decode_fuzz;
        prop_reply_decode_fuzz;
        prop_read_frame_fuzz;
        prop_lru_model;
      ]
