(* Tests for the observability layer: the span/event tracer (nesting,
   per-domain ordering, disabled fast path, ring overflow), the metrics
   registry (counters, gauges, histograms, Prometheus exposition), the
   Chrome trace exporter (qcheck: always well-formed JSON, always
   B/E-balanced), the Telemetry snapshot serializers derived from
   [Telemetry.fields], and an end-to-end trace pull from a live ssgd.

   The tracer is process-global, so every test starts with [reset] and
   finishes disabled — Alcotest runs cases sequentially in-process. *)

open Ssg_util
module Tracer = Ssg_obs.Tracer
module Metrics = Ssg_obs.Metrics
module Export = Ssg_obs.Export

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let is_infix ~affix s =
  let h = String.length s and n = String.length affix in
  let rec go i = i + n <= h && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let with_tracing f =
  Tracer.reset ();
  Tracer.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Tracer.set_enabled false;
      Tracer.reset ())
    f

(* --- tracer --- *)

let test_disabled_emits_nothing () =
  Tracer.reset ();
  Tracer.set_enabled false;
  Tracer.instant "i";
  Tracer.span_begin "s";
  Tracer.span_end "s";
  check_int "with_span still runs its body" 7
    (Tracer.with_span "w" (fun () -> 7));
  check_int "no events recorded" 0 (List.length (Tracer.events ()));
  check_int "nothing dropped" 0 (Tracer.dropped ())

let test_span_nesting () =
  with_tracing (fun () ->
      let r =
        Tracer.with_span "outer" (fun () ->
            Tracer.instant "mid";
            Tracer.with_span "inner" (fun () -> 41) + 1)
      in
      check_int "body result" 42 r;
      match Tracer.events () with
      | [ b_outer; mid; b_inner; e_inner; e_outer ] ->
          check "B outer" true
            (b_outer.Tracer.kind = Tracer.Begin
            && b_outer.Tracer.name = "outer");
          check "instant between" true (mid.Tracer.kind = Tracer.Instant);
          check "B inner" true
            (b_inner.Tracer.kind = Tracer.Begin
            && b_inner.Tracer.name = "inner");
          check "E inner before E outer" true
            (e_inner.Tracer.kind = Tracer.End
            && e_inner.Tracer.name = "inner"
            && e_outer.Tracer.kind = Tracer.End
            && e_outer.Tracer.name = "outer");
          let d = b_outer.Tracer.domain in
          check "one domain" true
            (List.for_all
               (fun (e : Tracer.event) -> e.Tracer.domain = d)
               (Tracer.events ()))
      | evs -> Alcotest.failf "expected 5 events, got %d" (List.length evs))

let test_span_end_on_raise () =
  with_tracing (fun () ->
      (try Tracer.with_span "doomed" (fun () -> failwith "boom")
       with Failure _ -> ());
      let kinds =
        List.map (fun (e : Tracer.event) -> e.Tracer.kind) (Tracer.events ())
      in
      check "span closed despite the raise" true
        (kinds = [ Tracer.Begin; Tracer.End ]))

let test_timestamps_monotone () =
  with_tracing (fun () ->
      for i = 1 to 500 do
        Tracer.instant ~args:[ ("i", Tracer.Int i) ] "tick"
      done;
      let rec mono = function
        | (a : Tracer.event) :: (b : Tracer.event) :: rest ->
            a.Tracer.ts_us <= b.Tracer.ts_us && mono (b :: rest)
        | _ -> true
      in
      check "per-domain emission order is timestamp order" true
        (mono (Tracer.events ())))

let test_instant_args () =
  with_tracing (fun () ->
      Tracer.instant
        ~args:
          [
            ("n", Tracer.Int 6);
            ("rate", Tracer.Float 0.5);
            ("who", Tracer.Str "p3");
          ]
        "decide";
      match Tracer.events () with
      | [ e ] ->
          check "args preserved" true
            (e.Tracer.args
            = [
                ("n", Tracer.Int 6);
                ("rate", Tracer.Float 0.5);
                ("who", Tracer.Str "p3");
              ])
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let test_ring_overflow () =
  with_tracing (fun () ->
      let total = 20000 in
      for i = 1 to total do
        Tracer.instant ~args:[ ("i", Tracer.Int i) ] "tick"
      done;
      let evs = Tracer.events () in
      check "retention bounded by the ring" true (List.length evs <= 16384);
      check_int "overflow counted" (total - List.length evs)
        (Tracer.dropped ());
      (* The ring keeps the newest events: the last one emitted must
         still be there, the first must be gone. *)
      let has i =
        List.exists
          (fun (e : Tracer.event) -> e.Tracer.args = [ ("i", Tracer.Int i) ])
          evs
      in
      check "newest retained" true (has total);
      check "oldest overwritten" false (has 1))

(* --- metrics registry --- *)

let test_counters_and_gauges () =
  let t = Metrics.create () in
  let c = Metrics.counter t ~help:"jobs" "jobs_total" in
  let g = Metrics.gauge t "queue_depth" in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter accumulates" 5 (Metrics.counter_value c);
  Metrics.set_gauge g 3.5;
  check "gauge holds last set" true (Metrics.gauge_value g = 3.5);
  let text = Metrics.to_prometheus t in
  check "TYPE line" true
    (is_infix ~affix:"# TYPE jobs_total counter" text);
  check "HELP line" true (is_infix ~affix:"# HELP jobs_total jobs" text);
  check "counter sample" true (is_infix ~affix:"jobs_total 5" text);
  check "gauge sample" true (is_infix ~affix:"queue_depth 3.5" text)

let test_histogram_buckets () =
  let t = Metrics.create () in
  let h = Metrics.histogram t ~buckets:[| 1.; 10.; 100. |] "lat_ms" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 5.; 50.; 5000. ];
  let s = Metrics.hist_snapshot h in
  check_int "count" 5 s.Metrics.count;
  check "sum" true (abs_float (s.Metrics.sum -. 5060.5) < 1e-6);
  (match s.Metrics.buckets with
  | [| (b1, c1); (b10, c10); (b100, c100); (binf, cinf) |] ->
      check "bounds" true (b1 = 1. && b10 = 10. && b100 = 100. && binf = infinity);
      check "cumulative counts" true
        (c1 = 1 && c10 = 3 && c100 = 4 && cinf = 5)
  | _ -> Alcotest.fail "expected 4 buckets");
  let text = Metrics.to_prometheus t in
  check "le=+Inf rendered" true
    (is_infix ~affix:"lat_ms_bucket{le=\"+Inf\"} 5" text);
  check "cumulative le=10" true
    (is_infix ~affix:"lat_ms_bucket{le=\"10\"} 3" text);
  check "sum line" true (is_infix ~affix:"lat_ms_sum 5060.5" text);
  check "count line" true (is_infix ~affix:"lat_ms_count 5" text)

let test_registry_rejects_bad_names () =
  let t = Metrics.create () in
  ignore (Metrics.counter t "ok_name");
  check "duplicate raises" true
    (match Metrics.counter t "ok_name" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "invalid chars raise" true
    (match Metrics.counter t "bad-name" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "bad buckets raise" true
    (match Metrics.histogram t ~buckets:[| 2.; 1. |] "h" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Telemetry snapshot serializers --- *)

let field_name = function
  | Ssg_engine.Telemetry.F_count (n, _)
  | Ssg_engine.Telemetry.F_gauge_i (n, _)
  | Ssg_engine.Telemetry.F_gauge_f (n, _)
  | Ssg_engine.Telemetry.F_summary (n, _) ->
      n

let sample_adv ?(seed = 11) () =
  Ssg_adversary.Build.block_sources (Rng.of_int seed) ~n:6 ~k:2 ~prefix_len:1
    ()

let test_snapshot_serializers_cover_every_field () =
  let engine = Ssg_engine.Engine.create ~workers:1 ~queue_capacity:4 () in
  let job = Ssg_engine.Job.make ~k:2 (sample_adv ()) in
  (match (Ssg_engine.Engine.run engine job).Ssg_engine.Job.result with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "job failed: %s" msg);
  let s = Ssg_engine.Engine.stats engine in
  let fields = Ssg_engine.Telemetry.fields s in
  check "snapshot flattens to every record field" true
    (List.length fields = 22);
  let json = Ssg_engine.Telemetry.json_of_snapshot s in
  check "JSON well-formed" true (Export.json_wellformed json);
  List.iter
    (fun f ->
      check
        (Printf.sprintf "JSON carries %S" (field_name f))
        true
        (is_infix ~affix:(Printf.sprintf "%S:" (field_name f)) json))
    fields;
  let prom = Ssg_engine.Engine.prometheus engine in
  List.iter
    (fun f ->
      check
        (Printf.sprintf "Prometheus carries %S" (field_name f))
        true
        (is_infix ~affix:("ssgd_" ^ field_name f) prom))
    fields;
  check "phase histogram buckets exposed" true
    (is_infix ~affix:"ssgd_job_queue_wait_ms_bucket{le=" prom);
  check "exec histogram exposed" true
    (is_infix ~affix:"ssgd_job_exec_ms_bucket{le=" prom);
  check "latency summary quantiles exposed" true
    (is_infix ~affix:"ssgd_latency_ms{quantile=\"0.5\"}" prom);
  check "phase split sums to the legacy latency" true
    (match (s.Ssg_engine.Telemetry.latency_ms,
            s.Ssg_engine.Telemetry.queue_wait_ms,
            s.Ssg_engine.Telemetry.exec_ms) with
    | Some l, Some q, Some e ->
        abs_float (l.Stats.mean -. (q.Stats.mean +. e.Stats.mean)) < 1.0
    | _ -> false);
  Ssg_engine.Engine.shutdown engine

(* --- Chrome export + JSON checker --- *)

let test_json_wellformed_rejects_garbage () =
  List.iter
    (fun s -> check (Printf.sprintf "rejects %S" s) false (Export.json_wellformed s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "[1 2]"; "nul"; "\"unterminated"; "01";
      "[]]"; "{\"a\":1,}" ];
  List.iter
    (fun s -> check (Printf.sprintf "accepts %S" s) true (Export.json_wellformed s))
    [ "[]"; "{}"; "null"; "-1.5e3"; "{\"a\":[1,2,{\"b\":\"c\\n\"}]} " ]

(* qcheck: any recorded trace exports to well-formed, B/E-balanced
   Chrome JSON.  Random span trees are generated through the public API
   (with_span recursion + instants), which is exactly how instrumented
   code produces traces. *)
let gen_trace_shape =
  QCheck2.Gen.(int_bound 100000)

let record_random_tree seed =
  let rng = Rng.of_int seed in
  let rec grow depth =
    let n = Rng.int rng 4 in
    for _ = 1 to n do
      match Rng.int rng 3 with
      | 0 -> Tracer.instant ~args:[ ("d", Tracer.Int depth) ] "leaf"
      | _ ->
          Tracer.with_span
            ~args:[ ("name", Tracer.Str (Printf.sprintf "s\"\\%d" depth)) ]
            (Printf.sprintf "span%d" (Rng.int rng 5))
            (fun () -> if depth < 4 then grow (depth + 1))
    done
  in
  grow 0

let balanced events =
  (* Stack discipline per domain: every E matches the innermost open B. *)
  let stacks = Hashtbl.create 8 in
  let ok = ref true in
  List.iter
    (fun (e : Tracer.event) ->
      let stack =
        Option.value (Hashtbl.find_opt stacks e.Tracer.domain) ~default:[]
      in
      match e.Tracer.kind with
      | Tracer.Begin ->
          Hashtbl.replace stacks e.Tracer.domain (e.Tracer.name :: stack)
      | Tracer.End -> (
          match stack with
          | top :: rest when top = e.Tracer.name ->
              Hashtbl.replace stacks e.Tracer.domain rest
          | _ -> ok := false)
      | Tracer.Instant -> ())
    events;
  Hashtbl.iter (fun _ stack -> if stack <> [] then ok := false) stacks;
  !ok

let prop_chrome_export_wellformed_and_balanced =
  QCheck2.Test.make ~count:60
    ~name:"chrome export: well-formed JSON, B/E balanced" gen_trace_shape
    (fun seed ->
      with_tracing (fun () ->
          record_random_tree seed;
          let events = Tracer.events () in
          Export.json_wellformed (Export.chrome_json events)
          && balanced events))

let prop_disabled_tracing_emits_zero =
  QCheck2.Test.make ~count:60
    ~name:"disabled tracing records no events" gen_trace_shape (fun seed ->
      Tracer.reset ();
      Tracer.set_enabled false;
      record_random_tree seed;
      Tracer.events () = [] && Tracer.dropped () = 0)

(* --- trace context --- *)

module Context = Ssg_obs.Context
module Stitch = Ssg_obs.Stitch

let gen_ctx =
  QCheck2.Gen.(
    map3
      (fun hi lo sp ->
        (* An all-zero trace id is invalid by construction. *)
        let hi, lo = if Int64.logor hi lo = 0L then (1L, 0L) else (hi, lo) in
        { Context.trace_hi = hi; trace_lo = lo; span_id = sp;
          parent_span_id = 77L })
      int64 int64 int64)

let same_identity (c : Context.t) (d : Context.t) =
  d.Context.trace_hi = c.Context.trace_hi
  && d.Context.trace_lo = c.Context.trace_lo
  && d.Context.span_id = c.Context.span_id
  && d.Context.parent_span_id = 0L

let prop_context_text_roundtrip =
  QCheck2.Test.make ~count:200
    ~name:"context traceparent codec round-trips" gen_ctx (fun c ->
      let s = Context.to_string c in
      String.length s = 55
      && s.[2] = '-' && s.[35] = '-' && s.[52] = '-'
      && match Context.of_string s with
         | None -> false
         | Some d -> same_identity c d)

let prop_context_wire_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"context wire codec round-trips" gen_ctx
    (fun c ->
      let w = Context.to_wire c in
      String.length w = Context.wire_len
      && match Context.of_wire w with
         | None -> false
         | Some d -> same_identity c d)

let test_context_ids_and_rejects () =
  Context.seed 42;
  let a = Context.root () in
  let b = Context.child a in
  check "child keeps the trace id" true
    (a.Context.trace_hi = b.Context.trace_hi
    && a.Context.trace_lo = b.Context.trace_lo);
  check "child's parent is the minting span" true
    (b.Context.parent_span_id = a.Context.span_id);
  check "child mints a fresh span id" false
    (b.Context.span_id = a.Context.span_id);
  check "root has no parent" true (a.Context.parent_span_id = 0L);
  Context.seed 42;
  check "seeded id stream is deterministic" true
    (Context.equal a (Context.root ()));
  List.iter
    (fun s ->
      check (Printf.sprintf "of_string rejects %S" s) true
        (Context.of_string s = None))
    [
      "";
      "not a traceparent";
      String.make 55 'x';
      (* all-zero trace id *)
      "00-00000000000000000000000000000000-00000000000000ab-01";
      (* wrong separators *)
      "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01";
      (* truncated *)
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333";
    ];
  check "of_wire rejects wrong length" true
    (Context.of_wire "short" = None);
  check "of_wire rejects a zero trace id" true
    (Context.of_wire (String.make Context.wire_len '\000') = None)

(* --- fleet stitching --- *)

let ev ?(domain = 0) ?(args = []) kind name ts_us =
  { Tracer.kind; name; domain; ts_us; args }

let ids ~span ~parent =
  [
    ("trace_id", Tracer.Str (String.make 32 'a'));
    ("span_id", Tracer.Str span);
    ("parent_span_id", Tracer.Str parent);
  ]

let test_stitch_links_metadata_and_clock () =
  let r_gw =
    {
      Tracer.role = "gateway";
      pid = 1111;
      epoch_s = 500.;
      dropped_events = 0;
      events =
        [
          ev Tracer.Begin "gateway.request" 0.
            ~args:(ids ~span:"00000000000000aa" ~parent:"0000000000000000");
          ev Tracer.End "gateway.request" 100.;
        ];
    }
  in
  let r_wk =
    {
      Tracer.role = "worker";
      pid = 2222;
      epoch_s = 502.;
      dropped_events = 0;
      events =
        [
          ev Tracer.Begin "engine.execute" 10.
            ~args:(ids ~span:"00000000000000bb" ~parent:"00000000000000aa");
          ev Tracer.End "engine.execute" 60.;
        ];
    }
  in
  let json = Stitch.chrome_of_reports [ r_gw; r_wk ] in
  check "stitched doc is well-formed JSON" true (Export.json_wellformed json);
  check "gateway process metadata present" true
    (is_infix ~affix:"gateway (pid 1111)" json);
  check "worker process metadata present" true
    (is_infix ~affix:"worker (pid 2222)" json);
  (* The worker's epoch is 2 s after the fleet zero: its 10 µs event
     must land at 2000010 µs on the stitched clock. *)
  check "clock-aligned worker timestamp" true (is_infix ~affix:"2000010" json);
  match Stitch.audit_string json with
  | Error msg -> Alcotest.failf "audit rejected the stitched doc: %s" msg
  | Ok { Stitch.events; processes; links; truncated_ends; open_spans } ->
      (* 4 span events + the cross-process flow pair (s/f). *)
      check_int "span + flow events audited" 6 events;
      check_int "two processes" 2 processes;
      check_int "no truncated ends on a clean doc" 0 truncated_ends;
      check_int "no in-flight spans on a clean doc" 0 open_spans;
      (match links with
      | [ l ] ->
          check "link parent is the gateway span" true
            (l.Stitch.parent_name = "gateway.request"
            && l.Stitch.child_name = "engine.execute"
            && l.Stitch.parent_pid <> l.Stitch.child_pid)
      | ls -> Alcotest.failf "expected 1 cross-process link, got %d"
                (List.length ls))

let test_stitch_legacy_report_unshifted () =
  (* epoch_s = 0 marks a pre-context peer's anchor-less report: its
     timestamps must pass through unshifted, and a same-process parent
     link must NOT become a flow event. *)
  let legacy =
    {
      Tracer.role = "worker";
      pid = 0;
      epoch_s = 0.;
      dropped_events = 0;
      events =
        [
          ev Tracer.Begin "a" 5.
            ~args:(ids ~span:"00000000000000aa" ~parent:"0000000000000000");
          ev Tracer.Begin "b" 6.
            ~args:(ids ~span:"00000000000000bb" ~parent:"00000000000000aa");
          ev Tracer.End "b" 7.;
          ev Tracer.End "a" 8.;
        ];
    }
  in
  let anchored =
    {
      Tracer.role = "router";
      pid = 9;
      epoch_s = 400.;
      dropped_events = 0;
      events = [ ev Tracer.Begin "r" 1.; ev Tracer.End "r" 2. ];
    }
  in
  let json = Stitch.chrome_of_reports [ anchored; legacy ] in
  (match Stitch.audit_string json with
  | Error msg -> Alcotest.failf "audit rejected: %s" msg
  | Ok { Stitch.links; _ } ->
      check_int "same-process parents produce no cross-process links" 0
        (List.length links);
      check "legacy timestamps unshifted" true (is_infix ~affix:"\"ts\":5" json));
  (* A busy-fleet shape: an end whose begin was evicted by the ring
     buffer, and a span still open at pull time.  Counted, not
     rejected. *)
  let busy =
    {
      Tracer.role = "worker";
      pid = 1;
      epoch_s = 0.;
      dropped_events = 3;
      events = [ ev Tracer.End "evicted" 1.; ev Tracer.Begin "inflight" 2. ];
    }
  in
  match Stitch.audit_string (Stitch.chrome_of_reports [ busy ]) with
  | Error msg -> Alcotest.failf "audit rejected the busy doc: %s" msg
  | Ok a ->
      check_int "truncated end counted" 1 a.Stitch.truncated_ends;
      check_int "in-flight span counted" 1 a.Stitch.open_spans

let test_report_json_roundtrip () =
  let r =
    {
      Tracer.role = "worker";
      pid = 7;
      epoch_s = 123.5;
      dropped_events = 3;
      events =
        [
          ev Tracer.Begin "s" 1.5
            ~args:
              [ ("a", Tracer.Int 1); ("b", Tracer.Str "x\"y");
                ("c", Tracer.Float 2.5) ];
          ev Tracer.End "s" 2.;
          ev Tracer.Instant "i" 3. ~domain:2;
        ];
    }
  in
  let rendered = Export.json_to_string (Stitch.report_to_json r) in
  check "report JSON well-formed" true (Export.json_wellformed rendered);
  match
    Option.bind (Export.json_of_string rendered) Stitch.report_of_json
  with
  | None -> Alcotest.fail "report did not round-trip"
  | Some r' ->
      check "role survives" true (r'.Tracer.role = "worker");
      check_int "pid survives" 7 r'.Tracer.pid;
      check "epoch survives" true (r'.Tracer.epoch_s = 123.5);
      check_int "drop counter survives" 3 r'.Tracer.dropped_events;
      check_int "events survive" 3 (List.length r'.Tracer.events);
      let b = List.hd r'.Tracer.events in
      check "kind survives" true (b.Tracer.kind = Tracer.Begin);
      check "args survive" true
        (List.assoc "b" b.Tracer.args = Tracer.Str "x\"y"
        && List.assoc "c" b.Tracer.args = Tracer.Float 2.5)

(* --- remote-parent spans --- *)

let test_span_ctx_identity_args () =
  with_tracing (fun () ->
      Context.seed 7;
      let remote = Context.root () in
      let child =
        Tracer.with_span_ctx ~ctx:remote "hop" (fun c ->
            Tracer.instant "inside";
            c)
      in
      check "returned child parents under the remote span" true
        (child.Context.parent_span_id = remote.Context.span_id);
      match Tracer.events () with
      | [ b; _inside; e ] ->
          check "begin carries the trace id" true
            (List.assoc "trace_id" b.Tracer.args
            = Tracer.Str (Context.trace_id_hex remote));
          check "begin carries the child span id" true
            (List.assoc "span_id" b.Tracer.args
            = Tracer.Str (Context.span_id_hex child));
          check "begin carries the remote parent" true
            (List.assoc "parent_span_id" b.Tracer.args
            = Tracer.Str (Context.span_id_hex remote));
          check "balanced" true
            (b.Tracer.kind = Tracer.Begin && e.Tracer.kind = Tracer.End)
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

(* --- hop histograms + trace drop counter exposition --- *)

let test_hop_histograms_and_dropped_counter () =
  Tracer.reset ();
  let t = Ssg_engine.Telemetry.create () in
  Ssg_engine.Telemetry.record_submitted t;
  Ssg_engine.Telemetry.record_completed t ~latency_ms:5. ~queue_ms:2.
    ~exec_ms:3.;
  let s =
    Ssg_engine.Telemetry.snapshot t ~workers:1 ~queue_depth:0
      ~queue_capacity:4 ~cache_entries:0
  in
  let prom = Ssg_engine.Telemetry.prometheus t s in
  check "queue hop histogram conformant" true
    (is_infix ~affix:"# TYPE ssg_hop_queue_wait_ms histogram" prom
    && is_infix ~affix:"ssg_hop_queue_wait_ms_bucket{le=" prom
    && is_infix ~affix:"ssg_hop_queue_wait_ms_bucket{le=\"+Inf\"} 1" prom
    && is_infix ~affix:"ssg_hop_queue_wait_ms_sum 2" prom
    && is_infix ~affix:"ssg_hop_queue_wait_ms_count 1" prom);
  check "exec hop histogram conformant" true
    (is_infix ~affix:"ssg_hop_exec_ms_bucket{le=\"+Inf\"} 1" prom
    && is_infix ~affix:"ssg_hop_exec_ms_sum 3" prom
    && is_infix ~affix:"ssg_hop_exec_ms_count 1" prom);
  check "trace drop counter exposed (at zero)" true
    (is_infix ~affix:"# TYPE ssg_trace_dropped_total counter" prom
    && is_infix ~affix:"ssg_trace_dropped_total 0" prom);
  (* The forwarding processes' hops register into their own
     registries. *)
  let reg = Metrics.create () in
  let gw = Ssg_engine.Telemetry.hop_gateway_router reg in
  let rt = Ssg_engine.Telemetry.hop_router_worker reg in
  Metrics.observe gw 1.5;
  Metrics.observe rt 0.5;
  let text = Metrics.to_prometheus reg in
  check "gateway hop series" true
    (is_infix ~affix:"ssg_hop_gateway_router_ms_bucket{le=" text
    && is_infix ~affix:"ssg_hop_gateway_router_ms_count 1" text);
  check "router hop series" true
    (is_infix ~affix:"ssg_hop_router_worker_ms_count 1" text)

(* --- end to end: pull a trace and metrics from a live ssgd --- *)

let test_trace_pull_from_live_daemon () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ssgd-obs-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let server =
    Thread.create
      (fun () ->
        Ssg_engine.Server.serve ~workers:1 ~queue_capacity:8 ~cache_capacity:0
          ~trace:true ~socket ())
      ()
  in
  let rec wait_up tries =
    if tries = 0 then Alcotest.fail "server did not come up";
    match Ssg_engine.Client.connect ~socket () with
    | c -> c
    | exception Unix.Unix_error _ ->
        Thread.delay 0.05;
        wait_up (tries - 1)
  in
  let c = wait_up 100 in
  Fun.protect
    ~finally:(fun () ->
      (try Ssg_engine.Client.shutdown c with _ -> ());
      Ssg_engine.Client.close c;
      Thread.join server;
      Tracer.set_enabled false;
      Tracer.reset ())
    (fun () ->
      let job = Ssg_engine.Job.make ~k:2 (sample_adv ~seed:23 ()) in
      (match (Ssg_engine.Client.submit c job).Ssg_engine.Job.result with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "job failed: %s" msg);
      let events = Ssg_engine.Client.trace c in
      let has name kind =
        List.exists
          (fun (e : Tracer.event) ->
            e.Tracer.name = name && e.Tracer.kind = kind)
          events
      in
      check "engine submit span pulled" true (has "engine.submit" Tracer.Begin);
      check "worker execute span pulled" true
        (has "engine.execute" Tracer.Begin && has "engine.execute" Tracer.End);
      check "per-round sim spans pulled" true (has "round" Tracer.Begin);
      check "kset round instants pulled" true (has "kset.round" Tracer.Instant);
      check "decide instants pulled" true (has "decide" Tracer.Instant);
      check "reply write span pulled" true
        (has "server.reply_write" Tracer.Begin);
      check "remote trace exports clean" true
        (Export.json_wellformed (Export.chrome_json events));
      let prom = Ssg_engine.Client.metrics_text c in
      check "served exposition has counters" true
        (is_infix ~affix:"ssgd_jobs_completed 1" prom);
      check "served exposition has phase buckets" true
        (is_infix ~affix:"ssgd_job_queue_wait_ms_bucket{le=" prom))

let tests =
  [
    Alcotest.test_case "disabled tracer emits nothing" `Quick
      test_disabled_emits_nothing;
    Alcotest.test_case "span nesting order" `Quick test_span_nesting;
    Alcotest.test_case "with_span closes on raise" `Quick
      test_span_end_on_raise;
    Alcotest.test_case "timestamps monotone per domain" `Quick
      test_timestamps_monotone;
    Alcotest.test_case "instant args preserved" `Quick test_instant_args;
    Alcotest.test_case "ring overflow drops oldest" `Quick test_ring_overflow;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "histogram buckets cumulative" `Quick
      test_histogram_buckets;
    Alcotest.test_case "registry rejects bad names" `Quick
      test_registry_rejects_bad_names;
    Alcotest.test_case "snapshot serializers cover every field" `Quick
      test_snapshot_serializers_cover_every_field;
    Alcotest.test_case "json checker rejects garbage" `Quick
      test_json_wellformed_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_chrome_export_wellformed_and_balanced;
    QCheck_alcotest.to_alcotest prop_disabled_tracing_emits_zero;
    QCheck_alcotest.to_alcotest prop_context_text_roundtrip;
    QCheck_alcotest.to_alcotest prop_context_wire_roundtrip;
    Alcotest.test_case "context ids, children and rejects" `Quick
      test_context_ids_and_rejects;
    Alcotest.test_case "stitch: links, metadata, clock alignment" `Quick
      test_stitch_links_metadata_and_clock;
    Alcotest.test_case "stitch: legacy reports stay unshifted" `Quick
      test_stitch_legacy_report_unshifted;
    Alcotest.test_case "tracer report JSON round-trips" `Quick
      test_report_json_roundtrip;
    Alcotest.test_case "remote-parent spans carry identity args" `Quick
      test_span_ctx_identity_args;
    Alcotest.test_case "hop histograms + trace drop counter" `Quick
      test_hop_histograms_and_dropped_counter;
    Alcotest.test_case "trace + metrics pull from live ssgd" `Quick
      test_trace_pull_from_live_daemon;
  ]
