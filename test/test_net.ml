(* Net suite: the transport address parser (units + the round-trip
   property the mli promises), the frame id envelope, the client-side
   mux against a scripted peer (including the shuffled-replies
   correlation property), the HTTP/1.1 parser, and the pipelined path
   end to end over real TCP: out-of-order completion without
   head-of-line blocking, back-pressure at the in-flight cap, and the
   supervised-close regression where a client vanishes between request
   and reply. *)

open Ssg_net
open Ssg_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---------------- harness ---------------- *)

(* A free TCP port: bind port 0, read the kernel's choice back, release
   it.  The tiny release-to-rebind window is acceptable in tests. *)
let fresh_tcp () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  Unix.close fd;
  Printf.sprintf "tcp:127.0.0.1:%d" port

let wait_connect ?(deadline_s = 10.) socket =
  let rec go tries =
    if tries = 0 then Alcotest.fail "service did not come up";
    match Client.connect ~retries:0 ~socket ~deadline_s () with
    | c -> c
    | exception Unix.Unix_error _ ->
        Thread.delay 0.05;
        go (tries - 1)
  in
  go 100

let start_server ?(workers = 2) ?max_inflight ?socket () =
  let socket = match socket with Some s -> s | None -> fresh_tcp () in
  let thread =
    Thread.create
      (fun () ->
        Server.serve ~workers ~queue_capacity:64 ~cache_capacity:64
          ?max_inflight ~drain_timeout_s:5. ~socket ())
      ()
  in
  let c = wait_connect socket in
  Client.close c;
  (socket, thread)

let stop_server socket thread =
  let c = wait_connect socket in
  Client.shutdown c;
  Client.close c;
  Thread.join thread

let two_islands = "ssg-run v1\nn 6\nstable: 0>1 1>2 2>0 3>4 4>5 5>3\n"
let good_job ?inputs ?rounds () = Job.of_run_text ?inputs ?rounds ~k:2 two_islands
let bad_job () = Job.of_run_text ~k:1 two_islands

(* ---------------- transport: units ---------------- *)

let test_transport_parse () =
  let ok s a =
    match Transport.of_string s with
    | Ok got -> check ("parse " ^ s) true (Transport.equal got a)
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  let err s fragment =
    match Transport.of_string s with
    | Ok a -> Alcotest.fail (s ^ " must not parse: " ^ Transport.to_string a)
    | Error e -> check ("error names the problem: " ^ e) true (contains e fragment)
  in
  ok "unix:/tmp/ssgd.sock" (Transport.Unix_sock "/tmp/ssgd.sock");
  ok "/tmp/ssgd.sock" (Transport.Unix_sock "/tmp/ssgd.sock");
  ok "relative.sock" (Transport.Unix_sock "relative.sock");
  ok "tcp:127.0.0.1:7000" (Transport.Tcp ("127.0.0.1", 7000));
  ok "tcp:localhost:0" (Transport.Tcp ("localhost", 0));
  ok "tcp:[::1]:8080" (Transport.Tcp ("::1", 8080));
  (* An absolute path containing ':' is still a path. *)
  ok "/tmp/odd:name.sock" (Transport.Unix_sock "/tmp/odd:name.sock");
  err "" "empty address";
  err "unix:" "missing socket path";
  err "tcp:localhost" "missing port";
  err "tcp::9" "missing host";
  err "tcp:h:notaport" "not a number";
  err "tcp:h:70000" "out of range";
  err "tcp:h:-1" "out of range";
  err "udp:h:9" "unknown address scheme";
  check "is_tcp" true (Transport.is_tcp (Transport.Tcp ("h", 1)));
  check "is_tcp unix" false (Transport.is_tcp (Transport.Unix_sock "p"));
  match Transport.of_string_exn "tcp:x" with
  | _ -> Alcotest.fail "of_string_exn must raise"
  | exception Invalid_argument _ -> ()

let test_transport_to_string () =
  check_string "unix canonical" "unix:/a/b.sock"
    (Transport.to_string (Transport.Unix_sock "/a/b.sock"));
  check_string "tcp canonical" "tcp:10.0.0.1:80"
    (Transport.to_string (Transport.Tcp ("10.0.0.1", 80)));
  (* IPv6 hosts are re-bracketed so the result re-parses. *)
  check_string "ipv6 re-bracketed" "tcp:[::1]:8080"
    (Transport.to_string (Transport.Tcp ("::1", 8080)))

let test_transport_listen_connect () =
  (* tcp:HOST:0 binds an ephemeral port; bound_addr reads it back. *)
  let a = Transport.of_string_exn "tcp:127.0.0.1:0" in
  let lfd = Transport.listen a in
  let bound = Transport.bound_addr lfd a in
  (match bound with
  | Transport.Tcp ("127.0.0.1", p) -> check "real port" true (p > 0)
  | _ -> Alcotest.fail "expected a tcp address with the kernel's port");
  let cfd = Transport.connect bound in
  let sfd, _ = Unix.accept lfd in
  Unix.close sfd;
  Unix.close cfd;
  Unix.close lfd;
  Transport.cleanup bound

(* ---------------- transport: round-trip property ---------------- *)

let gen_addr =
  QCheck2.Gen.(
    let path_char =
      oneof [ char_range 'a' 'z'; char_range '0' '9'; return '/'; return '.' ]
    in
    let host_char =
      oneof [ char_range 'a' 'z'; char_range '0' '9'; return '.'; return '-' ]
    in
    let nonempty g = string_size ~gen:g (int_range 1 24) in
    oneof
      [
        (nonempty path_char >|= fun p -> Transport.Unix_sock p);
        ( pair (nonempty host_char) (int_bound 65535) >|= fun (h, p) ->
          Transport.Tcp (h, p) );
        (* IPv6-shaped hosts exercise the bracket round-trip. *)
        (int_bound 65535 >|= fun p -> Transport.Tcp ("::1", p));
        (int_bound 65535 >|= fun p -> Transport.Tcp ("fe80::2", p));
      ])

let prop_transport_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"transport: of_string (to_string a) = Ok a"
    gen_addr (fun a ->
      match Transport.of_string (Transport.to_string a) with
      | Ok b -> Transport.equal a b
      | Error _ -> false)

(* ---------------- frame: id envelope ---------------- *)

let test_frame_envelope () =
  let payload = Bytes.of_string "Shello" in
  (match Frame.classify (Frame.with_id ~id:42 payload) with
  | Frame.Id (42, inner) -> check "inner intact" true (Bytes.equal inner payload)
  | _ -> Alcotest.fail "wrapped frame must classify as Id");
  (* A plain protocol payload stays plain. *)
  (match Frame.classify payload with
  | Frame.Plain p -> check "plain intact" true (Bytes.equal p payload)
  | Frame.Id _ -> Alcotest.fail "unwrapped frame must stay Plain");
  (* Large ids survive the 8-byte field. *)
  let big = (1 lsl 53) + 7 in
  (match Frame.classify (Frame.with_id ~id:big payload) with
  | Frame.Id (got, _) -> check_int "big id" big got
  | _ -> Alcotest.fail "Id expected");
  (match Frame.with_id ~id:(-1) payload with
  | _ -> Alcotest.fail "negative id must be rejected"
  | exception Invalid_argument _ -> ());
  (* A payload that starts with the magic but cannot carry an id is a
     truncated envelope, not a plain payload. *)
  match Frame.classify (Bytes.of_string (String.make 1 Frame.id_magic ^ "abc")) with
  | _ -> Alcotest.fail "truncated envelope must be refused"
  | exception Failure msg -> check "names truncation" true (contains msg "truncated")

let test_frame_fd_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with _ -> ()) [ a; b ])
    (fun () ->
      let payload = Bytes.of_string (String.init 100_000 (fun i -> Char.chr (i land 0xff))) in
      let writer = Thread.create (fun () -> Frame.write_fd a payload) () in
      let got = Frame.read_fd b in
      Thread.join writer;
      check "100kB frame round-trips" true (Bytes.equal got payload);
      (* Oversized frames are refused on the write side... *)
      (match Frame.write_fd a (Bytes.create (Frame.max_frame_bytes + 1)) with
      | () -> Alcotest.fail "oversized write must be refused"
      | exception Failure msg -> check "refusal names size" true (contains msg "too large"));
      (* ...and on the read side, from the header alone. *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int (Frame.max_frame_bytes + 1));
      ignore (Unix.write a hdr 0 4);
      (match Frame.read_fd b with
      | _ -> Alcotest.fail "oversized read must be refused"
      | exception Failure msg -> check "read refusal" true (contains msg "refused")))

let test_frame_eof_semantics () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Peer gone at a frame boundary: End_of_file. *)
  Unix.close a;
  (match Frame.read_fd b with
  | _ -> Alcotest.fail "closed peer must raise End_of_file"
  | exception End_of_file -> ());
  Unix.close b;
  (* Peer dying mid-frame is a distinct, named failure. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 100l;
  ignore (Unix.write a hdr 0 4);
  ignore (Unix.write a (Bytes.make 10 'x') 0 10);
  Unix.close a;
  (match Frame.read_fd b with
  | _ -> Alcotest.fail "mid-frame death must be a Failure"
  | exception Failure msg -> check "names mid-frame" true (contains msg "mid-frame"));
  Unix.close b

let test_frame_ctx_envelope () =
  let payload = Bytes.of_string "Shello" in
  let ctx = String.init Frame.ctx_len (fun i -> Char.chr (i + 1)) in
  (* Round-trip: the envelope is transparent to its payload. *)
  (match Frame.split_ctx (Frame.with_ctx ~ctx payload) with
  | Some got, inner ->
      check_string "ctx intact" ctx got;
      check "payload intact" true (Bytes.equal inner payload)
  | None, _ -> Alcotest.fail "wrapped payload must yield its context");
  (* A pre-context payload passes through untouched — this is the
     compatibility contract old clients rely on. *)
  (match Frame.split_ctx payload with
  | None, p -> check "plain passthrough" true (p == payload)
  | Some _, _ -> Alcotest.fail "unwrapped payload must carry no context");
  (match Frame.split_ctx Bytes.empty with
  | None, p -> check "empty passthrough" true (Bytes.length p = 0)
  | Some _, _ -> Alcotest.fail "empty payload must carry no context");
  (* Contexts are fixed-width; anything else is a caller bug. *)
  (match Frame.with_ctx ~ctx:"short" payload with
  | _ -> Alcotest.fail "short context must be rejected"
  | exception Invalid_argument _ -> ());
  (* The magic byte with too few bytes behind it is a truncated
     envelope, not a plain payload. *)
  (match Frame.split_ctx (Bytes.of_string (String.make 1 Frame.ctx_magic ^ "abc")) with
  | _ -> Alcotest.fail "truncated context envelope must be refused"
  | exception Failure msg -> check "names truncation" true (contains msg "truncated"));
  (* Nesting order: id outermost, context inside — the mux can
     correlate replies without knowing the context shape. *)
  match Frame.classify (Frame.with_id ~id:9 (Frame.with_ctx ~ctx payload)) with
  | Frame.Id (9, inner) -> (
      match Frame.split_ctx inner with
      | Some got, p ->
          check_string "nested ctx" ctx got;
          check "nested payload" true (Bytes.equal p payload)
      | None, _ -> Alcotest.fail "context lost inside the id envelope")
  | _ -> Alcotest.fail "Id expected"

(* ---------------- mux: scripted peer ---------------- *)

(* A peer that reads [n] id-framed requests, then answers them in the
   order [reply_order] (indices into arrival order), echoing each inner
   payload with an "ack:" prefix. *)
let scripted_peer fd n reply_order =
  Thread.create
    (fun () ->
      let arrived = Array.make n (0, Bytes.empty) in
      for i = 0 to n - 1 do
        match Frame.classify (Frame.read_fd fd) with
        | Frame.Id (id, inner) -> arrived.(i) <- (id, inner)
        | Frame.Plain _ -> failwith "peer expected id-framed requests"
      done;
      List.iter
        (fun i ->
          let id, inner = arrived.(i) in
          let echo = Bytes.cat (Bytes.of_string "ack:") inner in
          Frame.write_fd fd (Frame.with_id ~id echo))
        reply_order;
      Unix.close fd)
    ()

let test_mux_out_of_order () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let peer = scripted_peer b 3 [ 2; 0; 1 ] in
  let m = Mux.create a in
  let t1 = Mux.send m (Bytes.of_string "one") in
  let t2 = Mux.send m (Bytes.of_string "two") in
  let t3 = Mux.send m (Bytes.of_string "three") in
  check_int "three in flight" 3 (Mux.inflight m);
  (* Replies arrive 3,1,2 — each ticket still gets its own. *)
  check "t2 correlates" true (Mux.await t2 = Ok (Bytes.of_string "ack:two"));
  check "t1 correlates" true (Mux.await t1 = Ok (Bytes.of_string "ack:one"));
  check "t3 correlates" true (Mux.await t3 = Ok (Bytes.of_string "ack:three"));
  check "await is idempotent" true (Mux.await t2 = Ok (Bytes.of_string "ack:two"));
  check_int "drained" 0 (Mux.inflight m);
  Thread.join peer;
  Mux.close m

let test_mux_dead_connection_fails_all () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let m = Mux.create a in
  let t = Mux.send m (Bytes.of_string "doomed") in
  Unix.close b;
  (match Mux.await t with
  | Error msg ->
      (* Clean EOF or ECONNRESET (the peer closed with our request still
         unread) — both are a dead connection. *)
      check "failure names the close" true
        (contains msg "closed" || contains msg "reset")
  | Ok _ -> Alcotest.fail "a reply from a closed peer?");
  check "connection marked dead" false (Mux.alive m);
  (match Mux.send m (Bytes.of_string "after death") with
  | _ -> Alcotest.fail "send on a dead mux must raise"
  | exception Failure _ -> ());
  Mux.close m;
  Mux.close m (* idempotent *)

let test_mux_plain_reply_is_fatal () =
  (* A peer answering outside the envelope cannot be correlated; the
     connection must fail loudly rather than stall the ticket. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let m = Mux.create a in
  let t = Mux.send m (Bytes.of_string "x") in
  Frame.write_fd b (Bytes.of_string "plain reply");
  (match Mux.await t with
  | Error msg -> check "names the envelope" true (contains msg "envelope")
  | Ok _ -> Alcotest.fail "plain reply must not correlate");
  Mux.close m;
  Unix.close b

let prop_mux_correlation =
  QCheck2.Test.make ~count:40
    ~name:"mux: N interleaved requests correlate under shuffled replies"
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 1_000_000))
    (fun (n, salt) ->
      (* A deterministic shuffle of the reply order from [salt]. *)
      let order = Array.init n Fun.id in
      let state = ref (salt + 1) in
      let next bound =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      for i = n - 1 downto 1 do
        let j = next (i + 1) in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let peer = scripted_peer b n (Array.to_list order) in
      let m = Mux.create a in
      let tickets =
        List.init n (fun i -> (i, Mux.send m (Bytes.of_string (Printf.sprintf "req-%d-%d" salt i))))
      in
      let ok =
        List.for_all
          (fun (i, t) ->
            Mux.await t = Ok (Bytes.of_string (Printf.sprintf "ack:req-%d-%d" salt i)))
          tickets
      in
      Thread.join peer;
      Mux.close m;
      ok)

(* ---------------- http ---------------- *)

let http_exchange raw =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let writer =
    Thread.create
      (fun () ->
        let bytes = Bytes.of_string raw in
        ignore (Unix.write a bytes 0 (Bytes.length bytes));
        Unix.close a)
      ()
  in
  let conn = Http.conn_of_fd b in
  Fun.protect
    ~finally:(fun () ->
      Thread.join writer;
      Unix.close b)
    (fun () -> Http.read_request conn)

let test_http_request_parsing () =
  (match http_exchange "GET /submit?k=2&note=a%20b+c HTTP/1.1\r\nHost: x\r\nX-Thing: V\r\n\r\n" with
  | Some req ->
      check_string "method uppercased" "GET" req.Http.meth;
      check_string "path split from query" "/submit" req.Http.path;
      check "query decoded" true (Http.query_param req "k" = Some "2");
      check "percent and plus decode" true (Http.query_param req "note" = Some "a b c");
      check "header names lowercase" true (Http.header req "x-thing" = Some "V");
      check "header lookup is case-insensitive" true (Http.header req "X-THING" = Some "V");
      check_string "no body on GET" "" req.Http.body;
      check "1.1 defaults to keep-alive" true (Http.keep_alive req)
  | None -> Alcotest.fail "request expected");
  (match http_exchange "POST /submit HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\nssg-run v1\n" with
  | Some req ->
      check_string "body by content-length" "ssg-run v1\n" req.Http.body;
      check "connection: close opts out" false (Http.keep_alive req)
  | None -> Alcotest.fail "request expected");
  (match http_exchange "GET / HTTP/1.0\r\n\r\n" with
  | Some req -> check "1.0 defaults to close" false (Http.keep_alive req)
  | None -> Alcotest.fail "request expected");
  (* Clean EOF between requests: None, not an error. *)
  check "clean EOF" true (http_exchange "" = None)

let test_http_request_rejection () =
  let bad raw fragment =
    match http_exchange raw with
    | Some _ | None -> Alcotest.fail ("must reject: " ^ String.escaped raw)
    | exception Http.Bad_request msg ->
        check ("reason mentions " ^ fragment) true (contains msg fragment)
  in
  bad "NONSENSE\r\n\r\n" "request line";
  bad "GET /\r\n\r\n" "request line";
  bad "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" "chunked";
  bad "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n" "content-length";
  (* Header blocks have a budget; don't let a hostile peer feed forever. *)
  bad ("GET / HTTP/1.1\r\nX: " ^ String.make 20_000 'a' ^ "\r\n\r\n") "header"

let test_http_write_response () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Http.write_response ~status:404 ~keep_alive:false a "{\"error\":\"nope\"}";
  Unix.close a;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec drain () =
    match Unix.read b chunk 0 1024 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
  in
  drain ();
  Unix.close b;
  let text = Buffer.contents buf in
  check "status line" true (contains text "HTTP/1.1 404 Not Found");
  check "content-length framing" true (contains text "content-length: 16");
  check "json by default" true (contains text "application/json");
  check "connection close honored" true (contains text "connection: close");
  check "body last" true (contains text "{\"error\":\"nope\"}")

let test_http_json_escape () =
  check_string "quotes and control chars" "a\\\"b\\\\c\\n\\u0001"
    (Http.json_escape "a\"b\\c\n\001")

(* ---------------- server over TCP, pipelined ---------------- *)

let test_tcp_server_end_to_end () =
  let socket, thread = start_server () in
  (* The strict one-shot client works unchanged over TCP. *)
  let c = Client.connect ~socket ~deadline_s:10. () in
  let completion = Client.submit c (good_job ()) in
  check "job served over tcp" true (Result.is_ok completion.Job.result);
  (match Client.submit c (bad_job ()) with
  | _ -> Alcotest.fail "lint-rejected job must error"
  | exception Failure msg -> check "lint diagnostics relayed" true (contains msg "SSG"));
  let s = Client.stats c in
  check "stats over tcp" true (s.Telemetry.jobs_submitted >= 1);
  Client.close c;
  stop_server socket thread

let test_pclient_correlation_under_load () =
  let socket, thread = start_server () in
  let pc = Pclient.connect ~socket ~deadline_s:30. () in
  (* 24 distinct jobs in flight at once; each ticket must resolve to
     the completion of its own job — checked through the inputs array,
     which round-trips into the outcome's decision count. *)
  let tickets =
    List.init 24 (fun i ->
        let inputs = Array.init 6 (fun j -> (100 * i) + j) in
        (i, Pclient.submit pc (good_job ~inputs ())))
  in
  List.iter
    (fun (i, t) ->
      match Pclient.await t with
      | Ok completion -> (
          match completion.Job.result with
          | Ok outcome ->
              check_int (Printf.sprintf "job %d answered with its own outcome" i) 6
                outcome.Job.n;
              check
                (Printf.sprintf "job %d decisions drawn from its own inputs" i)
                true
                (Array.for_all
                   (function
                     | Some (_, v) -> v >= 100 * i && v < (100 * i) + 6
                     | None -> true)
                   outcome.Job.decisions)
          | Error e -> Alcotest.fail e)
      | Error e -> Alcotest.fail e)
    (List.rev tickets);
  Pclient.close pc;
  stop_server socket thread

let test_pclient_no_head_of_line_blocking () =
  (* One worker, several slow jobs ahead of one cache hit: on a strict
     in-order connection the hit would wait behind the queue; on the
     pipelined connection it overtakes. *)
  let socket, thread = start_server ~workers:1 () in
  let pc = Pclient.connect ~socket ~deadline_s:60. () in
  let warm = good_job () in
  (match Pclient.await (Pclient.submit pc warm) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let slow =
    List.init 8 (fun i ->
        Pclient.submit pc
          (good_job ~inputs:(Array.init 6 (fun j -> (1000 * (i + 1)) + j)) ~rounds:4000 ()))
  in
  let fast = Pclient.submit pc warm in
  (match Pclient.await fast with
  | Ok completion ->
      check "fast reply is the cache hit" true completion.Job.cached;
      check "slow jobs still outstanding when the hit returns" true
        (Pclient.inflight pc >= 1)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun t ->
      match Pclient.await t with
      | Ok completion -> check "slow job eventually ok" true (Result.is_ok completion.Job.result)
      | Error e -> Alcotest.fail e)
    slow;
  Pclient.close pc;
  stop_server socket thread

let test_pclient_lint_rejection_is_error_result () =
  let socket, thread = start_server () in
  let pc = Pclient.connect ~socket ~deadline_s:10. () in
  (match Pclient.await (Pclient.submit pc (bad_job ())) with
  | Error msg -> check "diagnostics in the message" true (contains msg "SSG")
  | Ok completion -> (
      (* The dedup-twin path reports the rejection inside the
         completion; either shape must carry the diagnostics. *)
      match completion.Job.result with
      | Error msg -> check "diagnostics in the completion" true (contains msg "SSG")
      | Ok _ -> Alcotest.fail "lint-rejected job must not succeed"));
  (match Pclient.submit_sync pc (good_job ()) with
  | completion -> check "sync submit ok" true (Result.is_ok completion.Job.result));
  Pclient.close pc;
  check "closed pclient is dead" false (Pclient.alive pc);
  stop_server socket thread

let test_backpressure_at_inflight_cap () =
  (* cap = 2: flooding 16 requests still answers all of them — the
     reader serves inline past the cap instead of queueing unboundedly. *)
  let socket, thread = start_server ~workers:1 ~max_inflight:2 () in
  let pc = Pclient.connect ~socket ~deadline_s:30. () in
  let tickets =
    List.init 16 (fun i ->
        Pclient.submit pc (good_job ~inputs:(Array.init 6 (fun j -> (50 * i) + j)) ()))
  in
  List.iter
    (fun t ->
      match Pclient.await t with
      | Ok completion -> check "answered" true (Result.is_ok completion.Job.result)
      | Error e -> Alcotest.fail e)
    tickets;
  Pclient.close pc;
  stop_server socket thread

(* The supervised-close regression: a client that vanishes between
   request and reply costs the server nothing but that connection. *)
let test_client_vanishes_before_reply () =
  let socket, thread = start_server () in
  let addr = Transport.of_string_exn socket in
  (* Plain dialect: send a submit, close before the reply arrives. *)
  let fd = Transport.connect addr in
  Protocol.write_request_fd fd (Protocol.Submit (good_job ~inputs:(Array.init 6 (fun j -> 7000 + j)) ~rounds:4000 ()));
  Unix.close fd;
  (* Pipelined dialect: same, through the id envelope. *)
  let fd = Transport.connect addr in
  let req =
    Protocol.request_to_bytes
      (Protocol.Submit (good_job ~inputs:(Array.init 6 (fun j -> 8000 + j)) ~rounds:4000 ()))
  in
  Frame.write_fd fd (Frame.with_id ~id:1 req);
  Unix.close fd;
  (* The server must shrug both off (EPIPE/ECONNRESET on the reply
     write) and keep serving everyone else. *)
  Thread.delay 0.2;
  let c = Client.connect ~socket ~deadline_s:20. () in
  let completion = Client.submit c (good_job ()) in
  check "server survived both vanishing clients" true
    (Result.is_ok completion.Job.result);
  check "stats still served" true
    ((Client.stats c).Telemetry.jobs_submitted >= 1);
  Client.close c;
  stop_server socket thread

(* Context-envelope compatibility: the server serves all four request
   shapes on one socket — pre-context and ctx-framed, in both the plain
   and the pipelined dialect. *)
let test_ctx_compat_both_dialects () =
  let socket, thread = start_server () in
  let addr = Transport.of_string_exn socket in
  let expect_completed fd label =
    match Protocol.read_reply_fd fd with
    | Protocol.Completed completion ->
        check label true (Result.is_ok completion.Job.result)
    | _ -> Alcotest.fail (label ^ ": Completed expected")
  in
  (* Plain dialect, pre-context client: the request bytes carry no
     envelope at all. *)
  let fd = Transport.connect addr in
  Protocol.write_request_fd fd
    (Protocol.Submit (good_job ~inputs:(Array.init 6 (fun j -> 9000 + j)) ()));
  expect_completed fd "plain pre-context served";
  (* Plain dialect, ctx-framed: the envelope spliced in by hand, the
     same framing the server's reader sees from [Client.rpc ?ctx]. *)
  let ctx = Ssg_obs.Context.root () in
  Frame.write_fd fd
    (Frame.with_ctx
       ~ctx:(Ssg_obs.Context.to_wire ctx)
       (Protocol.request_to_bytes
          (Protocol.Submit (good_job ~inputs:(Array.init 6 (fun j -> 9100 + j)) ()))));
  expect_completed fd "plain ctx-framed served";
  (* The reply is never ctx-framed: a pre-context client reading this
     connection parses it without ever seeing the magic byte. *)
  Unix.close fd;
  (* Pipelined dialect, both shapes interleaved on one connection. *)
  let pc = Pclient.connect ~socket ~deadline_s:30. () in
  let bare =
    Pclient.submit pc (good_job ~inputs:(Array.init 6 (fun j -> 9200 + j)) ())
  in
  let framed =
    Pclient.submit
      ~ctx:(Ssg_obs.Context.root ())
      pc
      (good_job ~inputs:(Array.init 6 (fun j -> 9300 + j)) ())
  in
  List.iter
    (fun (label, t) ->
      match Pclient.await t with
      | Ok completion -> check label true (Result.is_ok completion.Job.result)
      | Error e -> Alcotest.fail (label ^ ": " ^ e))
    [ ("pipelined pre-context served", bare); ("pipelined ctx-framed served", framed) ];
  Pclient.close pc;
  (* And the synchronous client's ctx path end to end. *)
  let c = Client.connect ~socket ~deadline_s:10. () in
  let completion = Client.submit ~ctx:(Ssg_obs.Context.root ()) c (good_job ()) in
  check "client ctx submit served" true (Result.is_ok completion.Job.result);
  Client.close c;
  stop_server socket thread

(* ---------------- router over TCP ---------------- *)

let test_router_over_tcp () =
  let w1, wt1 = start_server () in
  let w2, wt2 = start_server () in
  let router = fresh_tcp () in
  let rt =
    Thread.create
      (fun () ->
        Ssg_cluster.Router.serve ~down_after:2 ~probe_interval_s:0.5
          ~probe_timeout_s:2. ~request_timeout_s:10. ~drain_timeout_s:5.
          ~backends:[ w1; w2 ] ~socket:router ())
      ()
  in
  let c = wait_connect router in
  let completions =
    Client.submit_batch c
      (List.init 8 (fun i -> good_job ~inputs:(Array.init 6 (fun j -> (300 * i) + j)) ()))
  in
  check_int "batch answered through the tcp router" 8 (List.length completions);
  List.iter
    (fun (completion : Job.completion) ->
      check "routed job ok" true (Result.is_ok completion.Job.result))
    completions;
  let s = Client.stats c in
  check_int "merged stats see both workers" 4 s.Telemetry.workers;
  Client.shutdown c;
  Client.close c;
  Thread.join rt;
  stop_server w1 wt1;
  stop_server w2 wt2

(* ---------------- signals: transient EINTR ---------------- *)

(* A signal mid-[connect]/[accept] surfaces as EINTR; the transport and
   server loops must restart the call instead of failing the exchange.
   Hammer the process with no-op SIGUSR1 from a side thread while fresh
   connections submit jobs — every request must still be answered. *)
let with_signal_fire f =
  let previous = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  let stop = Atomic.make false in
  let pid = Unix.getpid () in
  let bomber =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          Unix.kill pid Sys.sigusr1;
          Thread.delay 0.0005
        done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join bomber;
      Sys.set_signal Sys.sigusr1 previous)
    f

let test_signals_during_submits () =
  let socket, thread = start_server () in
  with_signal_fire (fun () ->
      for i = 1 to 20 do
        (* A fresh connection per job: each one walks connect() (and the
           server's accept()) with signals in flight. *)
        let c = wait_connect socket in
        let completion =
          Client.submit c
            (good_job ~inputs:(Array.init 6 (fun j -> (100 * i) + j)) ())
        in
        check "answered under signal fire" true
          (Result.is_ok completion.Job.result);
        Client.close c
      done);
  stop_server socket thread

let test_prepare_keeps_live_socket_under_signals () =
  (* Regression: [Transport.prepare]'s liveness probe used to treat any
     [Unix_error] — EINTR included — as "dead server" and unlink the
     socket file out from under a live listener. *)
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ssg-net-eintr-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let addr = Transport.of_string_exn path in
  let listen_fd = Transport.listen addr in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Transport.cleanup addr)
    (fun () ->
      with_signal_fire (fun () ->
          for _ = 1 to 50 do
            (match Transport.listen addr with
            | fd ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                Alcotest.fail "double-bind of a live socket must be refused"
            | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ());
            check "socket file survives the probe" true (Sys.file_exists path)
          done))

(* ---------------- suite ---------------- *)

let tests =
  [
    Alcotest.test_case "transport: parse" `Quick test_transport_parse;
    Alcotest.test_case "transport: to_string" `Quick test_transport_to_string;
    Alcotest.test_case "transport: listen/connect tcp:0" `Quick
      test_transport_listen_connect;
    QCheck_alcotest.to_alcotest prop_transport_roundtrip;
    Alcotest.test_case "frame: id envelope" `Quick test_frame_envelope;
    Alcotest.test_case "frame: fd round-trip and size caps" `Quick
      test_frame_fd_roundtrip;
    Alcotest.test_case "frame: eof semantics" `Quick test_frame_eof_semantics;
    Alcotest.test_case "frame: context envelope" `Quick test_frame_ctx_envelope;
    Alcotest.test_case "mux: out-of-order replies" `Quick test_mux_out_of_order;
    Alcotest.test_case "mux: dead connection fails all" `Quick
      test_mux_dead_connection_fails_all;
    Alcotest.test_case "mux: plain reply is fatal" `Quick
      test_mux_plain_reply_is_fatal;
    QCheck_alcotest.to_alcotest prop_mux_correlation;
    Alcotest.test_case "http: request parsing" `Quick test_http_request_parsing;
    Alcotest.test_case "http: rejection" `Quick test_http_request_rejection;
    Alcotest.test_case "http: response writing" `Quick test_http_write_response;
    Alcotest.test_case "http: json escape" `Quick test_http_json_escape;
    Alcotest.test_case "server: tcp end to end" `Quick test_tcp_server_end_to_end;
    Alcotest.test_case "pclient: correlation under load" `Quick
      test_pclient_correlation_under_load;
    Alcotest.test_case "pclient: no head-of-line blocking" `Quick
      test_pclient_no_head_of_line_blocking;
    Alcotest.test_case "pclient: lint rejection" `Quick
      test_pclient_lint_rejection_is_error_result;
    Alcotest.test_case "server: back-pressure at the in-flight cap" `Quick
      test_backpressure_at_inflight_cap;
    Alcotest.test_case "server: client vanishes before reply" `Quick
      test_client_vanishes_before_reply;
    Alcotest.test_case "server: context compat in both dialects" `Quick
      test_ctx_compat_both_dialects;
    Alcotest.test_case "router: over tcp" `Quick test_router_over_tcp;
    Alcotest.test_case "signals: submits survive EINTR fire" `Quick
      test_signals_during_submits;
    Alcotest.test_case "signals: prepare keeps live socket" `Quick
      test_prepare_keeps_live_socket_under_signals;
  ]
