let () =
  Alcotest.run "ssg"
    [
      ("bitset", Test_bitset.tests);
      ("rng", Test_rng.tests);
      ("stats", Test_stats.tests);
      ("util-misc", Test_util_misc.tests);
      ("digraph", Test_digraph.tests);
      ("scc-reach", Test_scc_reach.tests);
      ("lgraph", Test_lgraph.tests);
      ("gen-dot", Test_gen_dot.tests);
      ("codec", Test_codec.tests);
      ("rounds", Test_rounds.tests);
      ("skeleton", Test_skeleton.tests);
      ("predicates", Test_predicates.tests);
      ("adversary", Test_adversary.tests);
      ("approx", Test_approx.tests);
      ("kset", Test_kset.tests);
      ("monitor", Test_monitor.tests);
      ("baselines", Test_baselines.tests);
      ("sim", Test_sim.tests);
      ("exhaustive", Test_exhaustive.tests);
      ("experiment", Test_experiment.tests);
      ("system-props", Test_system_props.tests);
      ("timing", Test_timing.tests);
      ("apps", Test_apps.tests);
      ("ho-otr", Test_ho_otr.tests);
      ("edge-cases", Test_edge_cases.tests);
      ("shrink", Test_shrink.tests);
      ("dynamic", Test_dynamic.tests);
      ("certificate", Test_certificate.tests);
      ("run-format", Test_run_format.tests);
      ("lint", Test_lint.tests);
      ("obs", Test_obs.tests);
      ("engine", Test_engine.tests);
      ("faults", Test_faults.tests);
      ("cluster", Test_cluster.tests);
    ]
