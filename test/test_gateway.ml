(* Gateway suite: the HTTP/JSON front door end to end against a real
   worker (submit / stats / metrics / error statuses / shutdown), and
   the load generator's pure parts (SLO specs, percentile math) plus a
   short closed-loop smoke run with SLO grading. *)

open Ssg_net
open Ssg_engine
open Ssg_gateway

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---------------- harness ---------------- *)

let fresh_tcp () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  Unix.close fd;
  Printf.sprintf "tcp:127.0.0.1:%d" port

let wait_connect ?(deadline_s = 10.) socket =
  let rec go tries =
    if tries = 0 then Alcotest.fail "service did not come up";
    match Client.connect ~retries:0 ~socket ~deadline_s () with
    | c -> c
    | exception Unix.Unix_error _ ->
        Thread.delay 0.05;
        go (tries - 1)
  in
  go 100

let start_worker () =
  let socket = fresh_tcp () in
  let thread =
    Thread.create
      (fun () ->
        Server.serve ~workers:2 ~queue_capacity:64 ~cache_capacity:64
          ~drain_timeout_s:5. ~socket ())
      ()
  in
  let c = wait_connect socket in
  Client.close c;
  (socket, thread)

let stop_worker socket thread =
  let c = wait_connect socket in
  Client.shutdown c;
  Client.close c;
  Thread.join thread

let two_islands = "ssg-run v1\nn 6\nstable: 0>1 1>2 2>0 3>4 4>5 5>3\n"

(* A one-shot HTTP exchange: connect, send [raw], read to EOF, split
   into (status, whole response text). *)
let http_request listen raw =
  let addr = Transport.of_string_exn listen in
  let rec dial tries =
    match Transport.connect addr with
    | fd -> fd
    | exception Unix.Unix_error _ when tries > 0 ->
        Thread.delay 0.05;
        dial (tries - 1)
  in
  let fd = dial 100 in
  let bytes = Bytes.of_string raw in
  ignore (Unix.write fd bytes 0 (Bytes.length bytes));
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  drain ();
  Unix.close fd;
  let text = Buffer.contents buf in
  let status =
    match String.split_on_char ' ' text with
    | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:0
    | _ -> 0
  in
  (status, text)

let get listen path =
  http_request listen
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n" path)

let post listen path body =
  http_request listen
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       path (String.length body) body)

(* ---------------- loadgen: pure parts ---------------- *)

let test_slo_of_string () =
  (match Loadgen.slo_of_string "p99<250ms" with
  | Ok s ->
      check "quantile" true (Float.abs (s.Loadgen.quantile -. 0.99) < 1e-9);
      check "limit" true (s.Loadgen.limit_ms = 250.);
      check "spec preserved" true (s.Loadgen.spec = "p99<250ms")
  | Error e -> Alcotest.fail e);
  (match Loadgen.slo_of_string "p50<1.5ms" with
  | Ok s ->
      check "fractional quantile" true (Float.abs (s.Loadgen.quantile -. 0.5) < 1e-9);
      check "fractional limit" true (Float.abs (s.Loadgen.limit_ms -. 1.5) < 1e-9)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Loadgen.slo_of_string bad with
      | Ok _ -> Alcotest.fail ("must reject " ^ bad)
      | Error msg -> check ("rejection names the spec: " ^ bad) true (contains msg bad))
    [ "p99"; "99<250ms"; "p99<250"; "p0<1ms"; "p100<1ms"; "p99<-3ms"; "<5ms" ]

let test_percentile () =
  check "empty is nan" true (Float.is_nan (Loadgen.percentile [||] 0.5));
  check "singleton" true (Loadgen.percentile [| 7. |] 0.99 = 7.);
  let sorted = [| 1.; 2.; 3.; 4. |] in
  check "p0 is the min" true (Loadgen.percentile sorted 0. = 1.);
  check "p100 is the max" true (Loadgen.percentile sorted 1. = 4.);
  (* rank 0.5 * 3 = 1.5 — halfway between 2 and 3. *)
  check "p50 interpolates" true
    (Float.abs (Loadgen.percentile sorted 0.5 -. 2.5) < 1e-9);
  check "p75 interpolates" true
    (Float.abs (Loadgen.percentile sorted 0.75 -. 3.25) < 1e-9)

(* ---------------- gateway: end to end ---------------- *)

let test_gateway_end_to_end () =
  let backend, wt = start_worker () in
  let listen = fresh_tcp () in
  let gt =
    Thread.create
      (fun () -> Gateway.serve ~drain_timeout_s:2. ~listen ~backend ())
      ()
  in
  (* Liveness needs no backend round-trip. *)
  let status, _ = get listen "/healthz" in
  check_int "healthz" 200 status;
  (* A good submission: JSON completion with the outcome. *)
  let status, text = post listen "/submit?k=2" two_islands in
  check_int "submit ok" 200 status;
  check "outcome present" true (contains text "\"outcome\"");
  check "six processes" true (contains text "\"n\":6");
  check "cached flag present" true (contains text "\"cached\"");
  (* The same job again is a cache hit. *)
  let status, text = post listen "/submit?k=2" two_islands in
  check_int "cache hit ok" 200 status;
  check "served from cache" true (contains text "\"cached\":true");
  (* k=1 is lint-rejected: 422 with the diagnostics. *)
  let status, text = post listen "/submit?k=1" two_islands in
  check_int "lint rejection is 422" 422 status;
  check "diagnostics in the body" true (contains text "SSG");
  (* Malformed parameters and run text: 400. *)
  let status, _ = post listen "/submit?k=zero" two_islands in
  check_int "bad k" 400 status;
  let status, _ = post listen "/submit?algorithm=quantum" two_islands in
  check_int "bad algorithm" 400 status;
  let status, _ = post listen "/submit?k=2" "this is not a run" in
  check_int "bad run text" 400 status;
  (* Stats and metrics. *)
  let status, text = get listen "/stats" in
  check_int "stats" 200 status;
  check "telemetry json" true (contains text "jobs_submitted");
  let status, text = get listen "/metrics" in
  check_int "metrics" 200 status;
  check "gateway series" true (contains text "ssg_gateway_requests_total");
  check "backend exposition appended" true (contains text "ssgd_jobs_submitted");
  (* Unknown path / wrong method. *)
  let status, _ = get listen "/nope" in
  check_int "404" 404 status;
  let status, _ = get listen "/submit" in
  check_int "405 for GET /submit" 405 status;
  (* Broken HTTP costs that connection a 400, not the gateway. *)
  let status, _ = http_request listen "NONSENSE\r\n\r\n" in
  check_int "syntactic garbage is 400" 400 status;
  let status, _ = get listen "/healthz" in
  check_int "still alive after garbage" 200 status;
  (* Shutdown stops the gateway, never the backend. *)
  let status, _ = post listen "/shutdown" "" in
  check_int "shutdown acknowledged" 200 status;
  Thread.join gt;
  let c = wait_connect backend in
  check "backend survived the gateway shutdown" true
    ((Client.stats c).Telemetry.jobs_submitted >= 1);
  Client.close c;
  stop_worker backend wt

let test_gateway_backend_down_is_502 () =
  let dead = fresh_tcp () in
  let listen = fresh_tcp () in
  let gt =
    Thread.create
      (fun () -> Gateway.serve ~drain_timeout_s:1. ~listen ~backend:dead ())
      ()
  in
  let status, text = post listen "/submit?k=2" two_islands in
  check_int "unreachable backend is 502" 502 status;
  check "error body" true (contains text "\"error\"");
  (* Metrics still answer; the backend half degrades to a comment. *)
  let status, text = get listen "/metrics" in
  check_int "metrics degrade gracefully" 200 status;
  check "own series still exposed" true (contains text "ssg_gateway_requests_total");
  let status, _ = post listen "/shutdown" "" in
  check_int "shutdown" 200 status;
  Thread.join gt

(* ---------------- tracing: end to end ---------------- *)

(* The full hop chain in one process: gateway → router → worker, all
   sharing the process-global tracer, so one [Tracer.events ()] pull
   sees every hop's spans.  A fixed traceparent goes in over HTTP; the
   identity args on each begin event must chain back to it. *)
let test_gateway_trace_propagation () =
  let module T = Ssg_obs.Tracer in
  let backend, wt = start_worker () in
  let router = fresh_tcp () in
  let rt =
    Thread.create
      (fun () ->
        Ssg_cluster.Router.serve ~down_after:2 ~probe_interval_s:0.5
          ~probe_timeout_s:2. ~request_timeout_s:10. ~drain_timeout_s:5.
          ~backends:[ backend ] ~socket:router ())
      ()
  in
  (let c = wait_connect router in
   Client.close c);
  let listen = fresh_tcp () in
  let gt =
    Thread.create
      (fun () ->
        Gateway.serve ~trace:true ~drain_timeout_s:5. ~listen ~backend:router ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    (fun () ->
      let trace_id = "0123456789abcdef0123456789abcdef" in
      let caller_span = "00000000000000aa" in
      let status, text =
        http_request listen
          (Printf.sprintf
             "POST /submit?k=2 HTTP/1.1\r\n\
              Host: t\r\n\
              Content-Length: %d\r\n\
              traceparent: 00-%s-%s-01\r\n\
              Connection: close\r\n\
              \r\n\
              %s"
             (String.length two_islands) trace_id caller_span two_islands)
      in
      check_int "traced submit ok" 200 status;
      check "traceparent echoed with the caller's trace id" true
        (contains text ("traceparent: 00-" ^ trace_id));
      let arg (e : T.event) key =
        List.find_map
          (fun (k, v) ->
            if String.equal k key then
              match v with T.Str s -> Some s | _ -> None
            else None)
          e.T.args
      in
      let begins =
        List.filter
          (fun (e : T.event) ->
            e.T.kind = T.Begin && arg e "trace_id" = Some trace_id)
          (T.events ())
      in
      let find name =
        match
          List.find_opt (fun (e : T.event) -> String.equal e.T.name name) begins
        with
        | Some e -> e
        | None -> Alcotest.fail ("no span " ^ name ^ " on the caller's trace")
      in
      let gw = find "gateway.request" in
      let route = find "router.route" in
      let submit = find "engine.submit" in
      let exec = find "engine.execute" in
      check "gateway adopted the remote parent" true
        (arg gw "parent_span_id" = Some caller_span);
      check "router.route is a child of gateway.request" true
        (arg route "parent_span_id" = arg gw "span_id");
      check "engine.submit is a child of router.route" true
        (arg submit "parent_span_id" = arg route "span_id");
      check "engine.execute is a child of engine.submit" true
        (arg exec "parent_span_id" = arg submit "span_id");
      (* The fleet pull through the router: its own report plus the
         relayed worker report, roles labelled. *)
      let c = wait_connect router in
      let reports = Client.trace_pull c in
      Client.close c;
      check "fleet pull yields router and worker reports" true
        (List.length reports >= 2);
      check "router report present" true
        (List.exists (fun (r : T.report) -> String.equal r.T.role "router") reports);
      check "worker report present" true
        (List.exists (fun (r : T.report) -> String.equal r.T.role "worker") reports);
      List.iter
        (fun (r : T.report) ->
          check "pull reply carries a clock anchor" true (r.T.epoch_s > 0.))
        reports);
  let status, _ = post listen "/shutdown" "" in
  check_int "gateway shutdown" 200 status;
  Thread.join gt;
  let c = wait_connect router in
  Client.shutdown c;
  Client.close c;
  Thread.join rt;
  stop_worker backend wt

(* ---------------- loadgen: smoke ---------------- *)

let test_loadgen_closed_loop_smoke () =
  let socket, wt = start_worker () in
  let report =
    Loadgen.run ~threads:2 ~pipeline:4 ~connections:8 ~duration_s:0.5
      ~target:socket
      ~slos:
        [
          (match Loadgen.slo_of_string "p99<60000ms" with
          | Ok s -> s
          | Error e -> Alcotest.fail e);
        ]
      ()
  in
  check_int "connections as asked" 8 report.Loadgen.connections;
  check "traffic flowed" true (report.Loadgen.sent > 0);
  check_int "zero client-visible errors" 0 report.Loadgen.errors;
  check "every send accounted for" true
    (report.Loadgen.completed = report.Loadgen.sent);
  check "default mix produces lint rejections" true (report.Loadgen.rejected > 0);
  check "latencies measured" true (report.Loadgen.p99_ms > 0.);
  check "percentiles ordered" true
    (report.Loadgen.p50_ms <= report.Loadgen.p95_ms
    && report.Loadgen.p95_ms <= report.Loadgen.p99_ms
    && report.Loadgen.p99_ms <= report.Loadgen.max_ms);
  check "generous slo holds" true (report.Loadgen.slo_violations = []);
  check "json renders" true
    (contains (Loadgen.to_json report) "\"throughput_rps\"");
  (* An impossible SLO must be flagged. *)
  let report =
    Loadgen.run ~threads:1 ~connections:2 ~duration_s:0.2 ~target:socket
      ~slos:
        [
          (match Loadgen.slo_of_string "p50<0.000001ms" with
          | Ok s -> s
          | Error e -> Alcotest.fail e);
        ]
      ()
  in
  check "impossible slo violated" true (report.Loadgen.slo_violations <> []);
  stop_worker socket wt

let test_loadgen_open_loop_smoke () =
  let socket, wt = start_worker () in
  let report =
    Loadgen.run ~threads:2 ~rate:200. ~connections:4 ~duration_s:0.5
      ~target:socket ()
  in
  check "open loop flowed" true (report.Loadgen.sent > 0);
  check_int "open loop error-free" 0 report.Loadgen.errors;
  (* 200 req/s for 0.5 s: the schedule bounds the send count. *)
  check "rate respected" true (report.Loadgen.sent <= 140);
  stop_worker socket wt

let test_loadgen_trace_top () =
  let socket, wt = start_worker () in
  let report =
    Loadgen.run ~threads:1 ~pipeline:2 ~connections:2 ~duration_s:0.3
      ~target:socket ~trace_top:3 ()
  in
  check "traffic flowed" true (report.Loadgen.sent > 0);
  check "slowest requests sampled" true (report.Loadgen.slow_traces <> []);
  check "at most top-N sampled" true
    (List.length report.Loadgen.slow_traces <= 3);
  let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
  List.iter
    (fun (ms, id) ->
      check "sampled latency positive" true (ms > 0.);
      check "sampled trace id is 32 hex chars" true
        (String.length id = 32 && String.for_all is_hex id))
    report.Loadgen.slow_traces;
  (* Slowest first. *)
  (match report.Loadgen.slow_traces with
  | (a, _) :: (b, _) :: _ -> check "sorted descending" true (a >= b)
  | _ -> ());
  check "json carries the samples" true
    (contains (Loadgen.to_json report) "\"slow_traces\"");
  stop_worker socket wt

let test_loadgen_rejects_nonsense () =
  (match Loadgen.run ~connections:0 ~duration_s:1. ~target:"unix:/none" () with
  | _ -> Alcotest.fail "connections=0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Loadgen.run ~connections:1 ~duration_s:0. ~target:"unix:/none" () with
  | _ -> Alcotest.fail "duration=0 must be rejected"
  | exception Invalid_argument _ -> ()

(* ---------------- suite ---------------- *)

let tests =
  [
    Alcotest.test_case "loadgen: slo specs" `Quick test_slo_of_string;
    Alcotest.test_case "loadgen: percentile math" `Quick test_percentile;
    Alcotest.test_case "gateway: end to end" `Quick test_gateway_end_to_end;
    Alcotest.test_case "gateway: backend down" `Quick
      test_gateway_backend_down_is_502;
    Alcotest.test_case "gateway: trace propagation end to end" `Quick
      test_gateway_trace_propagation;
    Alcotest.test_case "loadgen: slow-request trace sampling" `Quick
      test_loadgen_trace_top;
    Alcotest.test_case "loadgen: closed-loop smoke" `Quick
      test_loadgen_closed_loop_smoke;
    Alcotest.test_case "loadgen: open-loop smoke" `Quick
      test_loadgen_open_loop_smoke;
    Alcotest.test_case "loadgen: parameter validation" `Quick
      test_loadgen_rejects_nonsense;
  ]
