(* Tests for the sweep grid: enumeration, validation, naming, JSON, and
   a small end-to-end batch through the engine pool. *)

open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_cells_row_major_and_skipped () =
  let grid =
    Sweep.create ~ns:[ 6; 4 ] ~ks:[ 5; 1 ]
      ~families:[ Sweep.Block_sources; Sweep.Partitioned ]
      ~seed:42
  in
  (* ns and ks are sorted; (n=4, k=5) is undescribable and dropped. *)
  let cells = Sweep.cells grid in
  check_int "cell count" 6 (List.length cells);
  check_int "skipped (k >= n)" 2 (Sweep.skipped grid);
  let shapes =
    List.map (fun (c : Sweep.cell) -> (c.n, c.k, c.family)) cells
  in
  Alcotest.(check bool)
    "row-major, n outer" true
    (shapes
    = [
        (4, 1, Sweep.Block_sources);
        (4, 1, Sweep.Partitioned);
        (6, 1, Sweep.Block_sources);
        (6, 1, Sweep.Partitioned);
        (6, 5, Sweep.Block_sources);
        (6, 5, Sweep.Partitioned);
      ]);
  (* Seeds are distinct per cell and reproducible across equal grids. *)
  let seeds = List.map (fun (c : Sweep.cell) -> c.seed) cells in
  check_int "distinct seeds" (List.length cells)
    (List.length (List.sort_uniq compare seeds));
  let grid' =
    Sweep.create ~ns:[ 4; 6 ] ~ks:[ 1; 5 ]
      ~families:[ Sweep.Block_sources; Sweep.Partitioned ]
      ~seed:42
  in
  check "reproducible" true (Sweep.cells grid = Sweep.cells grid')

let test_create_validation () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check "empty ns" true (raises (fun () ->
      Sweep.create ~ns:[] ~ks:[ 1 ] ~families:[ Sweep.Arbitrary ] ~seed:0));
  check "empty ks" true (raises (fun () ->
      Sweep.create ~ns:[ 4 ] ~ks:[] ~families:[ Sweep.Arbitrary ] ~seed:0));
  check "empty families" true (raises (fun () ->
      Sweep.create ~ns:[ 4 ] ~ks:[ 1 ] ~families:[] ~seed:0));
  check "n < 2" true (raises (fun () ->
      Sweep.create ~ns:[ 4; 1 ] ~ks:[ 1 ] ~families:[ Sweep.Arbitrary ]
        ~seed:0));
  check "k < 1" true (raises (fun () ->
      Sweep.create ~ns:[ 4 ] ~ks:[ 0 ] ~families:[ Sweep.Arbitrary ] ~seed:0));
  (* Duplicate axis entries collapse instead of double-running cells. *)
  let grid =
    Sweep.create ~ns:[ 4; 4 ] ~ks:[ 2; 2 ]
      ~families:[ Sweep.Arbitrary; Sweep.Arbitrary ]
      ~seed:0
  in
  check_int "deduplicated axes" 1 (List.length (Sweep.cells grid))

let test_family_names_roundtrip () =
  List.iter
    (fun f ->
      match Sweep.family_of_string (Sweep.family_name f) with
      | Ok f' -> check ("roundtrip " ^ Sweep.family_name f) true (f = f')
      | Error e -> Alcotest.fail e)
    Sweep.all_families;
  (* tolerant spellings *)
  check "underscored" true
    (Sweep.family_of_string "Block_Sources" = Ok Sweep.Block_sources);
  check "trimmed" true
    (Sweep.family_of_string " single-root " = Ok Sweep.Single_root);
  match Sweep.family_of_string "quantum" with
  | Ok _ -> Alcotest.fail "accepted unknown family"
  | Error msg ->
      check "error lists expected families" true
        (String.length msg > 0
        &&
        let contains needle =
          let nl = String.length needle and hl = String.length msg in
          let rec go i =
            i + nl <= hl && (String.sub msg i nl = needle || go (i + 1))
          in
          go 0
        in
        contains "quantum" && contains "block-sources" && contains "arbitrary")

let test_effective_k_clamps_up () =
  (* A partitioned run with k blocks can have min_k > k; the submitted k
     must absorb that so the engine's lint front door accepts the job. *)
  List.iter
    (fun (cell : Sweep.cell) ->
      let adv = Sweep.adversary cell in
      let k = Sweep.effective_k cell adv in
      check "k_submitted >= requested" true (k >= cell.k);
      check "k_submitted >= min_k" true (k >= Ssg_adversary.Adversary.min_k adv))
    (Sweep.cells
       (Sweep.create ~ns:[ 5; 7 ] ~ks:[ 1; 2 ]
          ~families:Sweep.all_families ~seed:9))

let sample_results grid =
  List.map
    (fun (cell : Sweep.cell) ->
      {
        Sweep.cell;
        k_submitted = cell.k;
        outcome =
          (if cell.n = 4 then Error "boom"
           else
             Ok
               {
                 Sweep.min_k = cell.k;
                 rounds_run = 7;
                 decided = cell.n;
                 distinct_decisions = 1;
                 messages_sent = 100;
                 bits_sent = 800;
                 violations = 0;
               });
        cached = false;
        latency_ms = 1.5;
      })
    (Sweep.cells grid)

let test_to_json_wellformed () =
  let grid =
    Sweep.create ~ns:[ 4; 6 ] ~ks:[ 1 ]
      ~families:[ Sweep.Block_sources; Sweep.Arbitrary ]
      ~seed:3
  in
  let json =
    Sweep.to_json ~elapsed_ms:12.5 ~workers:4 ~domains_used:2 grid
      (sample_results grid)
  in
  check "wellformed" true (Ssg_obs.Export.json_wellformed json);
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i =
      i + nl <= hl && (String.sub json i nl = needle || go (i + 1))
    in
    go 0
  in
  check "grid axes present" true (contains "\"ns\":[4,6]");
  check "cell count" true (contains "\"cells\":4");
  check "error cell kept" true (contains "\"error\":\"boom\"");
  check "ok cell kept" true (contains "\"min_k\":1");
  check "pool utilization" true (contains "\"domains_used\":2")

(* End to end: a small grid as a real batch on the engine pool, mirroring
   the [ssg sweep] command's submit-then-await fold. *)
let test_sweep_through_engine () =
  let grid =
    Sweep.create ~ns:[ 4; 5 ] ~ks:[ 1; 2 ]
      ~families:[ Sweep.Block_sources; Sweep.Partitioned ]
      ~seed:11
  in
  let cells = Sweep.cells grid in
  let engine = Ssg_engine.Engine.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Ssg_engine.Engine.shutdown engine)
    (fun () ->
      let tickets =
        List.map
          (fun (cell : Sweep.cell) ->
            let adv = Sweep.adversary cell in
            let k = Sweep.effective_k cell adv in
            (cell, k, Ssg_engine.Engine.submit engine (Ssg_engine.Job.make ~k adv)))
          cells
      in
      List.iter
        (fun ((cell : Sweep.cell), k_submitted, ticket) ->
          let completion = Ssg_engine.Engine.await engine ticket in
          match completion.Ssg_engine.Job.result with
          | Error msg ->
              Alcotest.failf "cell (n=%d,k=%d) failed: %s" cell.n cell.k msg
          | Ok (o : Ssg_engine.Job.outcome) ->
              check "submitted k is achievable" true (o.min_k <= k_submitted);
              check "at most k_submitted decisions" true
                (o.distinct_decisions <= k_submitted))
        tickets)

let tests =
  [
    Alcotest.test_case "cells: row-major + skipped" `Quick
      test_cells_row_major_and_skipped;
    Alcotest.test_case "create: validation + dedup" `Quick
      test_create_validation;
    Alcotest.test_case "family names roundtrip" `Quick
      test_family_names_roundtrip;
    Alcotest.test_case "effective_k clamps up" `Quick
      test_effective_k_clamps_up;
    Alcotest.test_case "to_json wellformed" `Quick test_to_json_wellformed;
    Alcotest.test_case "sweep through engine" `Quick
      test_sweep_through_engine;
  ]
