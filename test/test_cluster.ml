(* Cluster suite: the consistent-hash ring (unit + property tests for
   the balance and monotonicity claims), the health registry's
   mark-down/re-admission state machine against live and dead servers,
   multi-address client failover, the blackhole fault plan, and the
   router end to end — including the acceptance chaos run: 3 workers,
   one killed and healed mid-burst, 200 jobs, zero client-visible
   errors, failovers observed. *)

open Ssg_adversary
open Ssg_util
open Ssg_engine
open Ssg_cluster

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---------------- harness ---------------- *)

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ssg-cluster-%d-%d.sock" (Unix.getpid ()) !socket_counter)

let wait_connect ?(deadline_s = 10.) socket =
  let rec go tries =
    if tries = 0 then Alcotest.fail "service did not come up";
    match Client.connect ~retries:0 ~socket ~deadline_s () with
    | c -> c
    | exception Unix.Unix_error _ ->
        Thread.delay 0.05;
        go (tries - 1)
  in
  go 100

(* One backend worker on a fresh socket; returns (socket, thread). *)
let start_worker ?(workers = 1) ?faults ?persist ?announce ?socket () =
  let socket = match socket with Some s -> s | None -> fresh_socket () in
  if Sys.file_exists socket then Sys.remove socket;
  let thread =
    Thread.create
      (fun () ->
        Server.serve ~workers ~queue_capacity:32 ~cache_capacity:64
          ~drain_timeout_s:5. ?faults ?persist ?announce ~socket ())
      ()
  in
  let c = wait_connect socket in
  Client.close c;
  (socket, thread)

let stop_worker socket thread =
  let c = wait_connect socket in
  Client.shutdown c;
  Client.close c;
  Thread.join thread

let start_router ?vnodes ?(down_after = 2) ?(probe_interval_s = 0.05)
    ?(probe_timeout_s = 2.) ?(request_timeout_s = 5.) ~backends () =
  let socket = fresh_socket () in
  if Sys.file_exists socket then Sys.remove socket;
  let thread =
    Thread.create
      (fun () ->
        Router.serve ?vnodes ~down_after ~probe_interval_s ~probe_timeout_s
          ~request_timeout_s ~drain_timeout_s:5. ~backends ~socket ())
      ()
  in
  let c = wait_connect socket in
  Client.close c;
  (socket, thread)

let stop_router socket thread =
  let c = wait_connect socket in
  Client.shutdown c;
  Client.close c;
  Thread.join thread

let sample_adv ?(seed = 11) ?(n = 6) () =
  Build.block_sources (Rng.of_int seed) ~n ~k:2 ~prefix_len:1 ()

let sample_job ?seed ?n () = Job.make ~k:2 (sample_adv ?seed ?n ())

(* Pull one counter's value out of a Prometheus text exposition. *)
let prom_counter text name =
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
             int_of_string_opt
               (String.trim (String.sub line i (String.length line - i)))
         | _ -> None)

(* ---------------- ring: unit ---------------- *)

let test_ring_basics () =
  let members = [ "/a.sock"; "/b.sock"; "/c.sock" ] in
  let ring = Ring.create members in
  check_int "members sorted, distinct" 3 (List.length (Ring.members ring));
  check "dup collapsed" true
    (Ring.members (Ring.create [ "/a"; "/a"; "/b" ]) = [ "/a"; "/b" ]);
  check "empty ring has no owner" true (Ring.owner (Ring.create []) "k" = None);
  check "empty successors" true (Ring.successors (Ring.create []) "k" = []);
  (* Determinism: the same configuration always agrees on placement. *)
  let ring' = Ring.create (List.rev members) in
  for i = 0 to 99 do
    let key = Printf.sprintf "key-%d" i in
    check "placement deterministic" true (Ring.owner ring key = Ring.owner ring' key)
  done;
  (match Ring.create ~vnodes:1 members with
  | _ -> ()
  | exception Invalid_argument _ -> Alcotest.fail "vnodes=1 is legal");
  match Ring.create ~vnodes:0 members with
  | _ -> Alcotest.fail "vnodes=0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_ring_successors () =
  let members = List.init 5 (fun i -> Printf.sprintf "/w%d.sock" i) in
  let ring = Ring.create members in
  for i = 0 to 49 do
    let key = Printf.sprintf "key-%d" i in
    let succ = Ring.successors ring key in
    check_int "successors cover every member" 5 (List.length succ);
    check "head is the owner" true (Some (List.hd succ) = Ring.owner ring key);
    check "successors distinct" true
      (List.length (List.sort_uniq compare succ) = 5)
  done

let test_ring_add_remove_identity () =
  let ring = Ring.create [ "/a"; "/b"; "/c" ] in
  check "adding a present member is the identity" true
    (Ring.members (Ring.add ring "/b") = Ring.members ring);
  check "removing an absent member is the identity" true
    (Ring.members (Ring.remove ring "/zzz") = Ring.members ring);
  check "remove then add restores membership" true
    (Ring.members (Ring.add (Ring.remove ring "/b") "/b") = Ring.members ring)

(* ---------------- ring: properties ---------------- *)

let gen_member_set =
  QCheck2.Gen.(
    pair (int_range 3 8) (int_bound 10_000) >|= fun (n, salt) ->
    List.init n (fun i -> Printf.sprintf "/srv/ssgd-%d-%d.sock" salt i))

(* Balance: with >= 64 vnodes, no member owns more than twice the
   uniform share of a large key population. *)
let prop_balanced =
  QCheck2.Test.make ~count:30 ~name:"ring balance within 2x of uniform"
    gen_member_set (fun members ->
      let keys = 4000 in
      let ring = Ring.create ~vnodes:128 members in
      let counts = Hashtbl.create 8 in
      for i = 0 to keys - 1 do
        match Ring.owner ring (Printf.sprintf "job-key-%d" i) with
        | Some m ->
            Hashtbl.replace counts m
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts m))
        | None -> failwith "non-empty ring returned no owner"
      done;
      let uniform = float_of_int keys /. float_of_int (List.length members) in
      List.for_all
        (fun m ->
          float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts m))
          <= 2. *. uniform)
        members)

(* Monotonicity: removing one member remaps only the keys it owned. *)
let prop_remove_remaps_only_removed =
  QCheck2.Test.make ~count:50
    ~name:"removing a member remaps only its own keys"
    QCheck2.Gen.(pair gen_member_set (int_bound 1_000_000))
    (fun (members, pick) ->
      let ring = Ring.create ~vnodes:64 members in
      let removed = List.nth members (pick mod List.length members) in
      let shrunk = Ring.remove ring removed in
      let ok = ref true in
      for i = 0 to 1999 do
        let key = Printf.sprintf "stable-key-%d" i in
        match Ring.owner ring key with
        | Some m when m <> removed ->
            if Ring.owner shrunk key <> Some m then ok := false
        | Some _ ->
            (* The removed member's keys must land on someone else. *)
            if Ring.owner shrunk key = Some removed then ok := false
        | None -> ok := false
      done;
      !ok)

(* ---------------- registry ---------------- *)

let test_registry_state_machine () =
  let transitions = ref [] in
  let r =
    Registry.create ~down_after:3
      ~on_transition:(fun addr up -> transitions := (addr, up) :: !transitions)
      [ "/b.sock"; "/a.sock" ]
  in
  check "backends sorted" true (Registry.backends r = [ "/a.sock"; "/b.sock" ]);
  check "all start up" true (Registry.up r = Registry.backends r);
  Registry.mark_failure r "/a.sock";
  Registry.mark_failure r "/a.sock";
  check "below down_after still routed" true (Registry.is_up r "/a.sock");
  check "probation recorded" true
    (List.assoc "/a.sock" (Registry.health r) = Registry.Probation 2);
  let gen_before = Registry.generation r in
  Registry.mark_failure r "/a.sock";
  check "down after consecutive failures" false (Registry.is_up r "/a.sock");
  check "ring rebuilt on mark-down" true (Registry.generation r > gen_before);
  check "ring excludes the down backend" true
    (Ring.members (Registry.ring r) = [ "/b.sock" ]);
  check "transition fired downward" true (!transitions = [ ("/a.sock", false) ]);
  (* One success anywhere heals; the count resets fully. *)
  Registry.mark_success r "/a.sock";
  check "one success re-admits" true (Registry.is_up r "/a.sock");
  check "transition fired upward" true
    (List.hd !transitions = ("/a.sock", true));
  Registry.mark_failure r "/a.sock";
  check "failure count was reset by the success" true
    (List.assoc "/a.sock" (Registry.health r) = Registry.Probation 1)

let test_registry_candidates_when_all_down () =
  let r = Registry.create ~down_after:1 [ "/a.sock"; "/b.sock" ] in
  Registry.mark_failure r "/a.sock";
  Registry.mark_failure r "/b.sock";
  check "nothing up" true (Registry.up r = []);
  (* Better to try a possibly-healed backend than fail without trying. *)
  check "candidates fall back to the full list" true
    (List.sort compare (Registry.candidates r "some-key")
    = [ "/a.sock"; "/b.sock" ])

let test_registry_probe_live_and_dead () =
  let socket, thread = start_worker () in
  let dead = fresh_socket () in
  let r = Registry.create ~down_after:1 ~probe_timeout_s:2. [ socket; dead ] in
  check "probing a live backend succeeds" true (Registry.probe r socket);
  check "probing a dead backend fails" false (Registry.probe r dead);
  check "live stays up" true (Registry.is_up r socket);
  check "dead marked down" false (Registry.is_up r dead);
  stop_worker socket thread

let test_registry_prober_thread () =
  let socket, thread = start_worker () in
  let r =
    Registry.create ~down_after:1 ~probe_interval_s:0.05 ~probe_timeout_s:2.
      [ socket ]
  in
  (* Poison the state, then let the background prober heal it. *)
  Registry.mark_failure r socket;
  check "marked down" false (Registry.is_up r socket);
  Registry.start r;
  let rec wait tries =
    if tries = 0 then Alcotest.fail "prober never re-admitted the backend";
    if not (Registry.is_up r socket) then begin
      Thread.delay 0.05;
      wait (tries - 1)
    end
  in
  wait 100;
  Registry.stop r;
  stop_worker socket thread

(* Regression: [stop] must return promptly even when called in the
   middle of a long probe sleep — the prober sleeps in short slices and
   re-checks the stop flag, so shutdown never waits out the interval. *)
let test_registry_prober_stop_is_prompt () =
  let socket, thread = start_worker () in
  let r =
    Registry.create ~down_after:1 ~probe_interval_s:30. ~probe_timeout_s:2.
      [ socket ]
  in
  Registry.start r;
  (* Let the prober finish its first round and settle into the sleep. *)
  Thread.delay 0.2;
  let t0 = Unix.gettimeofday () in
  Registry.stop r;
  let elapsed = Unix.gettimeofday () -. t0 in
  check "stop returned well within the probe interval" true (elapsed < 2.);
  (* Idempotent, and restartable after a stop. *)
  Registry.stop r;
  Registry.start r;
  Registry.stop r;
  stop_worker socket thread

let test_registry_elastic_membership () =
  let r = Registry.create ~down_after:1 [ "/a.sock"; "/b.sock" ] in
  Registry.mark_failure r "/b.sock";
  check "b is down" false (Registry.is_up r "/b.sock");
  let gen = Registry.generation r in
  (* A genuinely new member joins without disturbing existing health. *)
  check "new member changes the up-set" true (Registry.add_member r "/c.sock");
  check "membership sorted with the joiner" true
    (Registry.backends r = [ "/a.sock"; "/b.sock"; "/c.sock" ]);
  check "joiner is up" true (Registry.is_up r "/c.sock");
  check "b's mark-down survived the join" false (Registry.is_up r "/b.sock");
  check "ring rebuilt" true (Registry.generation r > gen);
  check "ring holds exactly the up members" true
    (Ring.members (Registry.ring r) = [ "/a.sock"; "/c.sock" ]);
  (* Joining an already-up member is a no-op. *)
  check "duplicate join is a no-op" false (Registry.add_member r "/a.sock");
  (* Joining a known-down member re-admits it. *)
  check "down member re-admitted by join" true (Registry.add_member r "/b.sock");
  check "b is back" true (Registry.is_up r "/b.sock");
  (* Leave removes from membership and the ring both. *)
  check "leave changes the up-set" true (Registry.remove_member r "/c.sock");
  check "gone from membership" true
    (Registry.backends r = [ "/a.sock"; "/b.sock" ]);
  check "unknown member cannot leave" false (Registry.remove_member r "/zzz");
  (* Leaving while already down does not change the up-set. *)
  Registry.mark_failure r "/b.sock";
  check "down member's leave leaves the up-set alone" false
    (Registry.remove_member r "/b.sock");
  check "but it is still retired" true (Registry.backends r = [ "/a.sock" ]);
  (* Memberless registries are legal: the elastic router starts empty. *)
  let empty = Registry.create [] in
  check "empty membership" true (Registry.backends empty = []);
  check "nobody up" true (Registry.up empty = []);
  check "first join seeds the ring" true (Registry.add_member empty "/w.sock");
  check "ring of one" true (Ring.members (Registry.ring empty) = [ "/w.sock" ])

(* ---------------- telemetry merge ---------------- *)

let test_telemetry_merge () =
  let engine = Engine.create ~workers:1 ~queue_capacity:8 ~cache_capacity:8 () in
  List.iter
    (fun seed -> ignore (Engine.run engine (sample_job ~seed ())))
    [ 1; 2; 3 ];
  let s = Engine.stats engine in
  Engine.shutdown engine;
  let m = Telemetry.merge [ s; s ] in
  check_int "submitted sums" (2 * s.Telemetry.jobs_submitted)
    m.Telemetry.jobs_submitted;
  check_int "workers sum" (2 * s.Telemetry.workers) m.Telemetry.workers;
  check "uptime is the max, not the sum" true
    (m.Telemetry.uptime_s = s.Telemetry.uptime_s);
  (match (s.Telemetry.latency_ms, m.Telemetry.latency_ms) with
  | Some single, Some merged ->
      check_int "latency samples pool" (2 * single.Stats.count) merged.Stats.count;
      check "pooled mean is preserved" true
        (Float.abs (merged.Stats.mean -. single.Stats.mean) < 1e-9);
      check "min/max exact" true
        (merged.Stats.min = single.Stats.min
        && merged.Stats.max = single.Stats.max)
  | _ -> Alcotest.fail "expected latency summaries");
  match Telemetry.merge [] with
  | _ -> Alcotest.fail "merging nothing must be rejected"
  | exception Invalid_argument _ -> ()

(* ---------------- client: multi-address failover ---------------- *)

let test_connect_any_failover () =
  let socket, thread = start_worker () in
  let dead = fresh_socket () in
  (* Dead address first: the client must move on to the live one. *)
  let c = Client.connect_any ~retries:0 ~sockets:[ dead; socket ] () in
  let completion = Client.submit c (sample_job ()) in
  check "job served through the fallback address" true
    (Result.is_ok completion.Job.result);
  Client.close c;
  (match Client.connect_any ~retries:0 ~sockets:[ dead ] () with
  | c -> Client.close c; Alcotest.fail "connect to nothing must fail"
  | exception Unix.Unix_error _ -> ());
  (match Client.connect_any ~sockets:[] () with
  | c -> Client.close c; Alcotest.fail "empty socket list must be rejected"
  | exception Invalid_argument _ -> ());
  stop_worker socket thread

(* ---------------- blackhole fault plan ---------------- *)

let test_blackhole_spec_roundtrip () =
  (match Faults.of_spec "blackhole:3" with
  | Ok f -> check "spec round-trips" true (Faults.spec f = "blackhole:3")
  | Error e -> Alcotest.fail e);
  match Faults.of_spec "partition:4" with
  | Ok f -> check "partition is an alias" true (Faults.spec f = "blackhole:4")
  | Error e -> Alcotest.fail e

let test_blackhole_swallows_reply () =
  (* Every reply swallowed: the server stays reachable but mute, so the
     client's reply deadline is the only way out. *)
  let faults = Faults.create ~blackhole_every:1 () in
  let socket, thread = start_worker ~faults () in
  let c = Client.connect ~retries:0 ~deadline_s:0.3 ~socket () in
  (match Client.submit c (sample_job ()) with
  | _ -> Alcotest.fail "a blackholed reply must not arrive"
  | exception Failure msg ->
      check "deadline names the timeout" true (contains msg "deadline")
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  Client.close c;
  (* The shutdown ack is also swallowed; shut down fd-level instead. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Protocol.write_request_fd fd Protocol.Shutdown;
  Unix.close fd;
  Thread.join thread

(* ---------------- router: end to end ---------------- *)

let test_router_routes_and_merges () =
  let w1, t1 = start_worker () in
  let w2, t2 = start_worker () in
  let w3, t3 = start_worker () in
  let backends = [ w1; w2; w3 ] in
  let router, rt = start_router ~backends () in
  let c = Client.connect ~socket:router ~deadline_s:10. () in
  let jobs = List.init 24 (fun i -> sample_job ~seed:(1000 + i) ()) in
  let completions = Client.submit_batch c jobs in
  check_int "every job answered" 24 (List.length completions);
  List.iter
    (fun (completion : Job.completion) ->
      check "job succeeded" true (Result.is_ok completion.Job.result))
    completions;
  (* Merged stats see the whole fleet. *)
  let s = Client.stats c in
  check_int "worker counts sum across shards" 3 s.Telemetry.workers;
  check "all submissions accounted for" true (s.Telemetry.jobs_submitted >= 24);
  (* The exposition names every shard and the merged cluster series. *)
  let text = Client.metrics_text c in
  List.iteri
    (fun i addr ->
      (* The router canonicalizes addresses on parse, so shards are
         named in [unix:PATH] form whatever spelling was passed in. *)
      let canonical =
        Ssg_net.Transport.(to_string (of_string_exn addr))
      in
      check "shard comment present" true
        (contains text (Printf.sprintf "# shard %d = %s" i canonical));
      check "per-shard routed counter present" true
        (contains text (Printf.sprintf "ssg_router_shard%d_routed_total" i)))
    (List.sort compare backends);
  check "merged snapshot under cluster prefix" true
    (contains text "ssg_cluster_jobs_submitted");
  (* Placement actually spread the keys over several shards. *)
  let routed_shards =
    List.filter
      (fun i ->
        match
          prom_counter text (Printf.sprintf "ssg_router_shard%d_routed_total" i)
        with
        | Some v -> v > 0
        | None -> false)
      [ 0; 1; 2 ]
  in
  check "more than one shard saw traffic" true (List.length routed_shards >= 2);
  Client.close c;
  stop_router router rt;
  stop_worker w1 t1;
  stop_worker w2 t2;
  stop_worker w3 t3

let test_router_dedups_duplicate_backends () =
  let w1, t1 = start_worker () in
  let w2, t2 = start_worker () in
  (* The same worker listed three times under two spellings: bare path
     and explicit unix: scheme.  Before canonical dedup, each listing
     survived to the ring (doubling the worker's vnode share) and every
     stats/metrics fan-out counted the worker once per listing. *)
  let backends = [ w1; "unix:" ^ w1; w2; w1 ] in
  let router, rt = start_router ~backends () in
  let c = Client.connect ~socket:router ~deadline_s:10. () in
  let text = Client.metrics_text c in
  check "two backends survive dedup" true
    (contains text "# ssg cluster: 2 backend(s)");
  check "no phantom third shard" false (contains text "# shard 2 = ");
  let s = Client.stats c in
  check_int "fan-out does not double-count the duplicate" 2
    s.Telemetry.workers;
  let completion = Client.submit c (sample_job ()) in
  check "jobs still route" true (Result.is_ok completion.Job.result);
  Client.close c;
  stop_router router rt;
  stop_worker w1 t1;
  stop_worker w2 t2

let test_router_relays_job_errors_without_failover () =
  let w1, t1 = start_worker () in
  let w2, t2 = start_worker () in
  let router, rt = start_router ~backends:[ w1; w2 ] () in
  let c = Client.connect ~socket:router ~deadline_s:10. () in
  (* k=1 is unsatisfiable for this run: the backend's lint front door
     rejects it with a protocol Error.  Deterministic, so retrying on
     another shard would only repeat it — the router must relay it. *)
  let doomed = Job.make ~k:1 (sample_adv ()) in
  (match Client.submit c doomed with
  | _ -> Alcotest.fail "lint-rejected job must error"
  | exception Failure msg -> check "lint error relayed" true (contains msg "SSG"));
  let text = Client.metrics_text c in
  check "no failover for a job-level error" true
    (prom_counter text "ssg_router_failovers_total" = Some 0);
  check "not counted as a routing failure" true
    (prom_counter text "ssg_router_jobs_failed_total" = Some 0);
  Client.close c;
  stop_router router rt;
  stop_worker w1 t1;
  stop_worker w2 t2

let test_router_exhaustion_is_an_error_reply () =
  (* Both backends dead: the client still gets an answer, not a hang. *)
  let w1, t1 = start_worker () in
  let w2, t2 = start_worker () in
  let router, rt =
    start_router ~backends:[ w1; w2 ] ~probe_interval_s:10. ()
  in
  stop_worker w1 t1;
  stop_worker w2 t2;
  let c = Client.connect ~socket:router ~deadline_s:10. () in
  (match Client.submit c (sample_job ()) with
  | _ -> Alcotest.fail "no backend can serve: must error"
  | exception Failure msg ->
      check "exhaustion is explicit" true (contains msg "no live backend"));
  let text = Client.metrics_text c in
  check "exhaustion counted" true
    (match prom_counter text "ssg_router_jobs_failed_total" with
    | Some v -> v >= 1
    | None -> false);
  Client.close c;
  stop_router router rt

(* The acceptance chaos run: 3 workers behind the router, one worker
   killed mid-burst and healed before the end, 200 distinct jobs from
   concurrent clients — zero client-visible errors, failover observed. *)
let test_router_chaos_kill_heal () =
  let w1, t1 = start_worker () in
  let w2, t2 = start_worker () in
  let w3, t3 = start_worker () in
  let router, rt = start_router ~backends:[ w1; w2; w3 ] () in
  let errors = Atomic.make 0 and done_jobs = Atomic.make 0 in
  let burst offset count =
    let c = Client.connect ~socket:router ~deadline_s:30. () in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        for i = 0 to count - 1 do
          (match Client.submit c (sample_job ~seed:(offset + i) ~n:6 ()) with
          | completion ->
              if Result.is_error completion.Job.result then Atomic.incr errors
          | exception _ -> Atomic.incr errors);
          Atomic.incr done_jobs
        done)
  in
  let clients =
    List.map
      (fun w -> Thread.create (fun () -> burst (w * 1000) 50) ())
      [ 1; 2; 3; 4 ]
  in
  (* Kill w2 once the burst is moving, heal it before the end. *)
  let rec wait_progress () =
    if Atomic.get done_jobs < 30 then begin
      Thread.delay 0.01;
      wait_progress ()
    end
  in
  wait_progress ();
  stop_worker w2 t2;
  Thread.delay 0.3;
  let _, healed_thread = start_worker ~socket:w2 () in
  List.iter Thread.join clients;
  check_int "all 200 jobs answered" 200 (Atomic.get done_jobs);
  check_int "zero client-visible errors" 0 (Atomic.get errors);
  let c = Client.connect ~socket:router ~deadline_s:10. () in
  let text = Client.metrics_text c in
  (match prom_counter text "ssg_router_failovers_total" with
  | Some v -> check "failover happened" true (v > 0)
  | None -> Alcotest.fail "failover counter missing");
  (match prom_counter text "ssg_router_jobs_routed_total" with
  | Some v -> check "every job was routed" true (v >= 200)
  | None -> Alcotest.fail "routed counter missing");
  Client.close c;
  stop_router router rt;
  stop_worker w1 t1;
  stop_worker w2 healed_thread;
  stop_worker w3 t3

(* ---------------- elastic membership: end to end ---------------- *)

(* Poll the router's exposition until a counter satisfies [pred]. *)
let wait_prom router name pred =
  let rec go tries =
    if tries = 0 then Alcotest.fail (name ^ ": condition never reached");
    let c = Client.connect ~socket:router ~deadline_s:10. () in
    let v = prom_counter (Client.metrics_text c) name in
    Client.close c;
    match v with
    | Some v when pred v -> ()
    | _ ->
        Thread.delay 0.05;
        go (tries - 1)
  in
  go 200

(* A worker started with [--announce] joins a live ring at runtime; the
   warm handoff streams the hot keys for its new ranges, so resubmitting
   the original burst stays all-hits even though a third of the keys
   changed owner. *)
let test_router_elastic_join_warm_handoff () =
  let w1, t1 = start_worker () in
  let w2, t2 = start_worker () in
  let router, rt = start_router ~backends:[ w1; w2 ] () in
  let jobs = List.init 60 (fun i -> sample_job ~seed:(5000 + i) ()) in
  let c = Client.connect ~socket:router ~deadline_s:30. () in
  let first = Client.submit_batch c jobs in
  check "burst succeeded" true
    (List.for_all (fun x -> Result.is_ok x.Job.result) first);
  (* A third worker walks up and announces itself to the router. *)
  let w3, t3 = start_worker ~announce:router () in
  wait_prom router "ssg_router_joins_total" (fun v -> v >= 1);
  wait_prom router "ssg_router_handoff_keys_total" (fun v -> v > 0);
  let s = Client.stats c in
  check_int "fleet grew to three" 3 s.Telemetry.workers;
  (* The whole burst again: keys that moved to the joiner must be served
     from its handed-off cache, not recomputed. *)
  let again = Client.submit_batch c jobs in
  check "no errors across the join" true
    (List.for_all (fun x -> Result.is_ok x.Job.result) again);
  check "every key still a cache hit" true
    (List.for_all (fun x -> x.Job.cached) again);
  let w3c = wait_connect w3 in
  let w3s = Client.stats w3c in
  Client.close w3c;
  check "the joiner served hits from handed-off keys" true
    (w3s.Telemetry.cache_hits > 0);
  Client.close c;
  stop_router router rt;
  stop_worker w1 t1;
  stop_worker w2 t2;
  stop_worker w3 t3

(* Leave is the reverse: the leaver's hot keys are rescued to the
   ranges' new owners before it drops out, so the burst stays all-hits
   with one fewer worker. *)
let test_router_elastic_leave_rescues_keys () =
  let w1, t1 = start_worker () in
  let w2, t2 = start_worker () in
  let w3, t3 = start_worker () in
  let router, rt = start_router ~backends:[ w1; w2; w3 ] () in
  let jobs = List.init 45 (fun i -> sample_job ~seed:(7000 + i) ()) in
  let c = Client.connect ~socket:router ~deadline_s:30. () in
  let first = Client.submit_batch c jobs in
  check "burst succeeded" true
    (List.for_all (fun x -> Result.is_ok x.Job.result) first);
  Client.leave c w3;
  let s = Client.stats c in
  check_int "fleet shrank to two" 2 s.Telemetry.workers;
  let text = Client.metrics_text c in
  check "leave counted" true
    (prom_counter text "ssg_router_leaves_total" = Some 1);
  check "rescued keys counted" true
    (match prom_counter text "ssg_router_handoff_keys_total" with
    | Some v -> v > 0
    | None -> false);
  let again = Client.submit_batch c jobs in
  check "no errors across the leave" true
    (List.for_all (fun x -> Result.is_ok x.Job.result) again);
  check "every key still a cache hit" true
    (List.for_all (fun x -> x.Job.cached) again);
  Client.close c;
  stop_router router rt;
  stop_worker w1 t1;
  stop_worker w2 t2;
  (* The leaver itself keeps running; it just left the ring. *)
  stop_worker w3 t3

(* ---------------- suite ---------------- *)

let tests =
  [
    Alcotest.test_case "ring: basics" `Quick test_ring_basics;
    Alcotest.test_case "ring: successors" `Quick test_ring_successors;
    Alcotest.test_case "ring: add/remove identity" `Quick
      test_ring_add_remove_identity;
    QCheck_alcotest.to_alcotest prop_balanced;
    QCheck_alcotest.to_alcotest prop_remove_remaps_only_removed;
    Alcotest.test_case "registry: state machine" `Quick
      test_registry_state_machine;
    Alcotest.test_case "registry: all-down fallback" `Quick
      test_registry_candidates_when_all_down;
    Alcotest.test_case "registry: probe live/dead" `Quick
      test_registry_probe_live_and_dead;
    Alcotest.test_case "registry: prober re-admits" `Quick
      test_registry_prober_thread;
    Alcotest.test_case "registry: prober stop is prompt" `Quick
      test_registry_prober_stop_is_prompt;
    Alcotest.test_case "registry: elastic membership" `Quick
      test_registry_elastic_membership;
    Alcotest.test_case "telemetry: merge" `Quick test_telemetry_merge;
    Alcotest.test_case "client: connect_any failover" `Quick
      test_connect_any_failover;
    Alcotest.test_case "faults: blackhole spec" `Quick
      test_blackhole_spec_roundtrip;
    Alcotest.test_case "faults: blackhole swallows replies" `Quick
      test_blackhole_swallows_reply;
    Alcotest.test_case "router: routes and merges" `Quick
      test_router_routes_and_merges;
    Alcotest.test_case "router: dedups duplicate backends" `Quick
      test_router_dedups_duplicate_backends;
    Alcotest.test_case "router: relays job errors" `Quick
      test_router_relays_job_errors_without_failover;
    Alcotest.test_case "router: exhaustion" `Quick
      test_router_exhaustion_is_an_error_reply;
    Alcotest.test_case "router: chaos kill/heal 200-job burst" `Slow
      test_router_chaos_kill_heal;
    Alcotest.test_case "router: elastic join + warm handoff" `Quick
      test_router_elastic_join_warm_handoff;
    Alcotest.test_case "router: elastic leave rescues keys" `Quick
      test_router_elastic_leave_rescues_keys;
  ]
