(* Lint v2: the semantic fixpoint layer (SSG2xx), autofixes,
   suppressions, SARIF, and the fleet-lint plumbing.

   Every SSG2xx diagnostic is cross-checked against ground truth
   computed the slow way: a fresh [Skeleton.start]/[absorb] enumeration
   per prefix position, with [Analysis]/[Predicate] rebuilt from scratch
   at each step — no incremental caching, no warm starts. *)

open Ssg_util
open Ssg_graph
open Ssg_skeleton
open Ssg_predicates
open Ssg_adversary
open Ssg_engine
open Ssg_lint

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let codes diags = List.map (fun (d : Diagnostic.t) -> d.code) diags
let with_code c diags =
  List.filter (fun (d : Diagnostic.t) -> d.code = c) diags

(* ---------------- slow-way ground truth ---------------- *)

(* [G^∩r] from scratch: a fresh accumulator fed rounds [1..r], no reuse
   across positions.  [r = prefix + 1] is the limit (stable absorbed). *)
let slow_skeleton adv r =
  let n = Adversary.n adv in
  let prefix = Adversary.prefix_length adv in
  let acc = Skeleton.start ~n in
  for i = 1 to min r prefix do
    ignore (Skeleton.absorb acc (Adversary.graph adv i))
  done;
  if r > prefix then ignore (Skeleton.absorb acc (Adversary.stable_skeleton adv));
  Digraph.copy (Skeleton.current acc)

let slow_min_k skel = Predicate.min_k (Predicate.of_skeleton skel)
let slow_root_count skel = Analysis.root_count (Analysis.analyze skel)

(* Earliest r (1-based, limit included) whose skeleton equals the limit. *)
let slow_r_st adv =
  let prefix = Adversary.prefix_length adv in
  let limit = slow_skeleton adv (prefix + 1) in
  let rec find r =
    if r > prefix then prefix + 1
    else if Digraph.equal (slow_skeleton adv r) limit then r
    else find (r + 1)
  in
  find 1

let gen_adversary rng =
  let n = 2 + Rng.int rng 7 in
  match Rng.int rng 5 with
  | 0 -> Build.synchronous ~n
  | 1 ->
      Build.block_sources rng ~n
        ~k:(1 + Rng.int rng (min 3 n))
        ~prefix_len:(Rng.int rng 4) ()
  | 2 ->
      Build.partitioned rng ~n
        ~blocks:(1 + Rng.int rng (min 3 (n - 1)))
        ~prefix_len:(Rng.int rng 4) ()
  | 3 -> Build.single_root rng ~n ~prefix_len:(Rng.int rng 4) ()
  | _ ->
      Build.arbitrary rng ~n ~density:(Rng.float rng)
        ~prefix_len:(Rng.int rng 4) ()

(* ---------------- fixtures ---------------- *)

let two_islands =
  "ssg-run v1\nn 6\nstable: 0>1 1>2 2>0 3>4 4>5 5>3\n"

(* Rounds 2 and 3 repeat round 1 exactly: dead at their chain position,
   and the declared prefix overshoots stabilization by two rounds. *)
let overshoot =
  "ssg-run v1\n\
   n 3\n\
   round 1: 0>1 1>2\n\
   round 2: 0>1 1>2\n\
   round 3: 0>1 1>2\n\
   stable: 0>1 1>2\n"

(* One genuinely collapsing empty round (unfixable: without it the
   remaining rounds do not reproduce the loops-only skeleton) and one
   that the first already subsumes (fixable). *)
let two_empty_rounds =
  "ssg-run v1\nn 3\nround 1:\nround 2:\nstable: 0>1\n"

(* ---------------- Semantic ---------------- *)

let test_semantic_chain_facts () =
  let adv = Build.figure1 () in
  let chain = Semantic.analyze adv in
  let prefix = Adversary.prefix_length adv in
  check_int "n" (Adversary.n adv) chain.Semantic.n;
  check_int "facts = prefix + 1" (prefix + 1) (Array.length chain.Semantic.facts);
  Array.iteri
    (fun i (f : Semantic.fact) ->
      let r = i + 1 in
      let skel = slow_skeleton adv r in
      check_int (Printf.sprintf "round %d edges" r) (Digraph.edge_count skel)
        f.Semantic.edge_count;
      check_int (Printf.sprintf "round %d roots" r) (slow_root_count skel)
        f.Semantic.root_count;
      check_int (Printf.sprintf "round %d min_k" r) (slow_min_k skel)
        f.Semantic.min_k;
      check_int (Printf.sprintf "round %d number" r) r f.Semantic.round)
    chain.Semantic.facts;
  check_int "r_st" (slow_r_st adv) chain.Semantic.r_st;
  check_int "final min_k" (Adversary.min_k adv) chain.Semantic.final_min_k;
  check_int "decision bound"
    (chain.Semantic.r_st + (3 * chain.Semantic.n) + 4)
    (Semantic.decision_bound chain);
  (* The fold's last observation is the limit. *)
  let last =
    Semantic.fold adv ~init:None ~f:(fun _ (o : Semantic.obs) -> Some o)
  in
  (match last with
  | Some o ->
      check "last obs is limit" true o.Semantic.is_limit;
      check "limit skeleton = slow limit" true
        (Digraph.equal o.Semantic.skeleton (slow_skeleton adv (prefix + 1)))
  | None -> Alcotest.fail "fold produced no observations")

let test_semantic_lost_at_and_trajectory () =
  let adv = Run_format.of_string two_islands in
  let chain = Semantic.analyze adv in
  check "min_k 2 on the limit" true (chain.Semantic.final_min_k = 2);
  check "k = 2 never lost" true (Semantic.lost_at chain ~k:2 = None);
  (match Semantic.lost_at chain ~k:1 with
  | Some r -> check "k = 1 lost at a real chain position" true (r >= 1)
  | None -> Alcotest.fail "k = 1 must be lost on a two-island run");
  let t = Semantic.trajectory chain in
  check "trajectory starts complete" true (contains t "1 (complete)");
  check "trajectory reaches 2" true (contains t "-> 2")

(* ---------------- SSG201 ---------------- *)

let test_ssg201_certificate () =
  (* Below the certificate: an error carrying the trajectory. *)
  let diags = Lint.check_text ~k:1 two_islands in
  (match with_code "SSG201" diags with
  | [ d ] ->
      check "201 is an error" true (d.Diagnostic.severity = Diagnostic.Error);
      check "carries the trajectory" true
        (contains d.Diagnostic.message "(complete)");
      check "hints the needed k" true
        (match d.Diagnostic.hint with
        | Some h -> contains h "2"
        | None -> false)
  | ds -> Alcotest.failf "expected one SSG201 error, got %d" (List.length ds));
  (* At or above it: an info certificate, never an error. *)
  let diags2 = Lint.check_text ~k:2 two_islands in
  (match with_code "SSG201" diags2 with
  | [ d ] -> check "201 is info at k = min_k" true (d.Diagnostic.severity = Diagnostic.Info)
  | ds -> Alcotest.failf "expected one SSG201 info, got %d" (List.length ds))

(* ---------------- SSG202 ---------------- *)

let test_ssg202_window () =
  let diags = Lint.check_text overshoot in
  let ds = with_code "SSG202" diags in
  check "info report present" true
    (List.exists (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Info) ds);
  (* The declared prefix runs past r_ST = 1: an overshoot warning whose
     span covers the trailing dead rounds (a multi-line range). *)
  (match
     List.find_opt (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Warning) ds
   with
  | Some d -> (
      check "mentions r_ST" true (contains d.Diagnostic.message "r_ST");
      match d.Diagnostic.span with
      | Some s -> check "multi-line span" true (s.end_line > s.line)
      | None -> Alcotest.fail "overshoot warning must carry a span")
  | None -> Alcotest.fail "expected an SSG202 overshoot warning");
  (* The paper's bound and the Lemma 11 horizon are both reported. *)
  let infos =
    List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Info) ds
  in
  check "names the 3n + 4 bound" true
    (List.exists (fun (d : Diagnostic.t) -> contains d.message "3n + 4") infos);
  (* A run that stabilizes exactly at its last round has no overshoot. *)
  let tight = "ssg-run v1\nn 3\nround 1: 0>1\nstable: 0>1 1>2\n" in
  check "no warning when the prefix is tight" true
    (List.for_all
       (fun (d : Diagnostic.t) -> d.severity <> Diagnostic.Warning)
       (with_code "SSG202" (Lint.check_text tight)))

(* ---------------- SSG203 ---------------- *)

let test_ssg203_dead_rounds () =
  let diags = Lint.check_text overshoot in
  let ds = with_code "SSG203" diags in
  check_int "rounds 2 and 3 are dead" 2 (List.length ds);
  List.iter
    (fun (d : Diagnostic.t) ->
      check "dead round is a warning" true (d.severity = Diagnostic.Warning);
      check "anchored" true (d.span <> None))
    ds;
  (* Ground truth: dead ⟺ the slow skeleton does not change there. *)
  let adv = Run_format.of_string overshoot in
  let chain = Semantic.analyze adv in
  check "chain agrees" true (chain.Semantic.dead = [ 2; 3 ])

(* ---------------- Fix ---------------- *)

let relints_clean_for_fixed_codes text =
  let diags = Lint.check_text text in
  List.for_all
    (fun c ->
      c = "SSG103" (* empty rounds may be legitimately unfixable *)
      || with_code c diags = [])
    Fix.fixed_codes

let test_fix_figure1 () =
  let text = Run_format.to_string (Build.figure1 ()) in
  match Fix.fix text with
  | None -> Alcotest.fail "figure1 text must parse"
  | Some (fixed, plan) ->
      check "something to fix" false (Fix.is_empty plan);
      check "rounds dropped" true (plan.Fix.dropped_rounds <> []);
      check "fixed text parses" true
        (match Run_format.of_string fixed with
        | _ -> true
        | exception _ -> false);
      check "re-lints clean for fixed codes" true
        (relints_clean_for_fixed_codes fixed);
      (* Idempotent: fixing the fixed text is a no-op. *)
      (match Fix.fix fixed with
      | Some (fixed2, plan2) ->
          check "second fix is empty" true (Fix.is_empty plan2);
          check "second fix changes nothing" true (fixed2 = fixed)
      | None -> Alcotest.fail "fixed text must still parse");
      (* Semantics preserved, verified the slow way. *)
      let before = Run_format.of_string text
      and after = Run_format.of_string fixed in
      check "stable skeleton preserved" true
        (Digraph.equal
           (Adversary.stable_skeleton before)
           (Adversary.stable_skeleton after));
      check_int "min_k preserved" (Adversary.min_k before)
        (Adversary.min_k after)

let test_fix_unfixable_empty_round () =
  match Fix.fix two_empty_rounds with
  | None -> Alcotest.fail "fixture must parse"
  | Some (fixed, plan) ->
      (* One of the two empty rounds is subsumed and dropped; the
         survivor genuinely collapses the skeleton and must stay. *)
      check_int "exactly one round dropped" 1
        (List.length plan.Fix.dropped_rounds);
      check "survivor keeps its SSG103" true
        (with_code "SSG103" (Lint.check_text fixed) <> []);
      let before = Run_format.of_string two_empty_rounds
      and after = Run_format.of_string fixed in
      check "stable skeleton preserved" true
        (Digraph.equal
           (Adversary.stable_skeleton before)
           (Adversary.stable_skeleton after))

let test_fix_rejects_unparseable () =
  check "no plan for garbage" true (Fix.plan "not a run\n" = None);
  check "no fix for garbage" true (Fix.fix "not a run\n" = None)

(* ---------------- Suppress ---------------- *)

let test_suppress_line_scope () =
  let noisy_with_directive =
    "ssg-run v1\n\
     n 4\n\
     round 1: 0>1 1>0 2>3 0>2 0>2  # ssg-lint: disable=SSG105\n\
     stable: 0>1 1>0 2>3\n"
  in
  let out = Lint.lint_text noisy_with_directive in
  check "SSG105 suppressed" true
    (with_code "SSG105" out.Lint.suppressed <> []);
  check "SSG105 not active" true (with_code "SSG105" out.Lint.active = []);
  (* The directive is code-specific: SSG101 anchors to the same line
     (round 1 subsumes the stable graph) and must stay active. *)
  check "SSG101 on the same line still active" true
    (with_code "SSG101" out.Lint.active <> [])

let test_suppress_file_scope () =
  let text = "# ssg-lint: disable=SSG001,SSG201\n" ^ two_islands in
  let out = Lint.lint_text ~k:1 text in
  check "SSG001 suppressed file-wide" true
    (with_code "SSG001" out.Lint.suppressed <> []);
  check "no active errors left" false (Lint.has_errors out.Lint.active);
  (* The engine gate honors the opt-out: same text now passes. *)
  check "gate admits the suppressed run" true (Lint.gate ~k:1 text = None);
  check "gate rejects without the directive" true
    (Lint.gate ~k:1 two_islands <> None)

let test_suppress_counts_in_summary () =
  let text = "# ssg-lint: disable=SSG001,SSG201\n" ^ two_islands in
  let out = Lint.lint_text ~k:1 text in
  let s =
    Lint.summarize ~suppressed:(List.length out.Lint.suppressed) out.Lint.active
  in
  check_int "suppressed counted" 2 s.Lint.suppressed;
  check_int "errors zeroed" 0 s.Lint.errors;
  (* The JSON reporter marks them. *)
  let json = Report.json [ ("t.run", out.Lint.active, out.Lint.suppressed) ] in
  check "json marks suppression" true (contains json "\"suppressed\": true");
  check "json counts suppression" true (contains json "\"suppressed\": 2")

let test_suppress_parse_shapes () =
  let text =
    "# ssg-lint: disable=SSG104\n# just a comment\nn 3  # ssg-lint: disable=SSG105\n"
  in
  let ds = Suppress.parse text in
  check_int "two directives" 2 (List.length ds);
  (match ds with
  | [ a; b ] ->
      check "first is file-scoped" true (a.Suppress.scope = Suppress.File);
      check "second is line-scoped" true (b.Suppress.scope = Suppress.Line 3)
  | _ -> ());
  check "empty code list ignored" true
    (Suppress.parse "# ssg-lint: disable=\n" = [])

(* ---------------- SARIF ---------------- *)

module E = Ssg_obs.Export

(* Depth-first search for the first field named [name], so tests can
   reach nested SARIF fields (result → locations → physicalLocation →
   artifactLocation → uri) without spelling the whole path. *)
let rec find_field name j =
  let first f xs =
    List.fold_left
      (fun acc x -> match acc with Some _ -> acc | None -> f x)
      None xs
  in
  match j with
  | E.Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> Some v
      | None -> first (fun (_, v) -> find_field name v) fields)
  | E.Arr xs -> first (find_field name) xs
  | _ -> None

let sarif_results sarif =
  match E.json_of_string sarif with
  | Some (E.Obj top) -> (
      match List.assoc_opt "runs" top with
      | Some (E.Arr [ E.Obj run ]) -> (
          match List.assoc_opt "results" run with
          | Some (E.Arr results) -> Some (run, results)
          | _ -> None)
      | _ -> None)
  | _ -> None

let test_sarif_wellformed_and_roundtrip () =
  let file = "examples/islands.run" in
  let out = Lint.lint_text ~k:1 two_islands in
  let sarif = Sarif.export [ (file, out.Lint.active, out.Lint.suppressed) ] in
  check "validates with the obs JSON checker" true (E.json_wellformed sarif);
  match sarif_results sarif with
  | None -> Alcotest.fail "SARIF shape: runs[0].results missing"
  | Some (run, results) ->
      check_int "one result per diagnostic"
        (List.length out.Lint.active + List.length out.Lint.suppressed)
        (List.length results);
      (* The rule table mirrors the registry. *)
      (match find_field "tool" (E.Obj run) with
      | Some tool -> (
          match find_field "rules" tool with
          | Some (E.Arr rules) ->
              check_int "rules = registry" (List.length Diagnostic.registry)
                (List.length rules)
          | _ -> Alcotest.fail "driver.rules missing")
      | None -> Alcotest.fail "tool missing");
      (* Every diagnostic round-trips file, line and code. *)
      List.iter
        (fun (d : Diagnostic.t) ->
          let matches r =
            find_field "ruleId" r = Some (E.Str d.code)
            && find_field "uri" r = Some (E.Str file)
            &&
            match d.span with
            | Some s -> find_field "startLine" r = Some (E.Int s.line)
            | None -> true
          in
          check (Printf.sprintf "%s round-trips" d.code) true
            (List.exists matches results))
        (out.Lint.active @ out.Lint.suppressed)

let test_sarif_suppressions_and_fixes () =
  let file = "noisy.run" in
  let text =
    "ssg-run v1\n\
     n 4\n\
     round 1: 0>1 1>0 2>3 0>2 0>2\n\
     stable: 0>1 1>0 2>3  # ssg-lint: disable=SSG104\n"
  in
  let out = Lint.lint_text text in
  let plan =
    match Fix.plan text with Some p -> p | None -> Alcotest.fail "parses"
  in
  let sarif =
    Sarif.export
      ~fixes:[ (file, plan) ]
      [ (file, out.Lint.active, out.Lint.suppressed) ]
  in
  check "wellformed" true (E.json_wellformed sarif);
  match sarif_results sarif with
  | None -> Alcotest.fail "SARIF shape"
  | Some (_, results) ->
      let suppressed_results =
        List.filter (fun r -> find_field "suppressions" r <> None) results
      in
      check_int "suppressed results marked"
        (List.length out.Lint.suppressed)
        (List.length suppressed_results);
      List.iter
        (fun r ->
          match find_field "suppressions" r with
          | Some (E.Arr [ s ]) ->
              check "inSource kind" true
                (find_field "kind" s = Some (E.Str "inSource"))
          | _ -> Alcotest.fail "suppressions shape")
        suppressed_results;
      (* The fixable SSG105 result carries the plan. *)
      let fixable =
        List.filter
          (fun r ->
            match find_field "ruleId" r with
            | Some (E.Str c) -> List.mem c Fix.fixed_codes
            | _ -> false)
          results
      in
      check "some fixable result" true (fixable <> []);
      List.iter
        (fun r -> check "fix attached" true (find_field "fixes" r <> None))
        fixable

(* ---------------- Report.human multi-line clamp ---------------- *)

let test_human_excerpt_clamp () =
  let src = String.concat "\n" [ "l1"; "l2"; "l3"; "l4"; "l5"; "l6"; "l7" ] in
  let d =
    Diagnostic.warning ~span:(Diagnostic.range 2 7) ~code:"SSG202" "window"
  in
  let out = Report.human ~src [ d ] in
  check "first span line shown" true (contains out "l2");
  check "fourth span line shown" true (contains out "l5");
  check "fifth span line elided" false (contains out "l6");
  check "ellipsis counts the rest" true (contains out "(2 more line(s))");
  (* Short spans print whole, no marker. *)
  let d2 =
    Diagnostic.warning ~span:(Diagnostic.range 2 4) ~code:"SSG202" "window"
  in
  let out2 = Report.human ~src [ d2 ] in
  check "short span complete" true (contains out2 "l4");
  check "no marker" false (contains out2 "more line(s)")

(* ---------------- Pool.map ---------------- *)

let test_pool_map_order_and_fallback () =
  let pool = Pool.create ~workers:2 ~queue_capacity:2 () in
  let xs = List.init 100 Fun.id in
  check "ordered results" true
    (Pool.map pool (fun x -> x * 2) xs = List.map (fun x -> x * 2) xs);
  check "empty list" true (Pool.map pool Fun.id [] = []);
  Pool.shutdown pool;
  (* After shutdown submissions are refused; map falls back inline. *)
  check "inline fallback after shutdown" true
    (Pool.map pool (fun x -> x + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ])

let test_pool_map_propagates_exception () =
  let pool = Pool.create ~workers:2 ~queue_capacity:4 () in
  let raised =
    match
      Pool.map pool (fun x -> if x = 3 then failwith "boom" else x) (List.init 8 Fun.id)
    with
    | _ -> false
    | exception Failure m -> m = "boom"
  in
  Pool.shutdown pool;
  check "first error re-raised" true raised

(* ---------------- Engine.submit_batch ---------------- *)

let batch_jobs () =
  let good = Run_format.to_string (Build.synchronous ~n:4) in
  let bad = two_islands in
  [
    Job.of_run_text ~k:1 good;
    Job.of_run_text ~k:1 bad;
    Job.of_run_text ~k:1 good (* duplicate: must dedup, not re-gate *);
  ]

let test_submit_batch_mixed () =
  let engine = Engine.create ~workers:2 ~queue_capacity:8 () in
  let tickets = Engine.submit_batch engine (batch_jobs ()) in
  check_int "one ticket per job" 3 (List.length tickets);
  (match tickets with
  | [ ok1; rejected; ok2 ] ->
      check "good job admitted" true (Engine.rejection ok1 = None);
      check "two-island job rejected at the door" true
        (match Engine.rejection rejected with
        | Some msg -> contains msg "SSG001"
        | None -> false);
      check "duplicate admitted" true (Engine.rejection ok2 = None);
      let c1 = Engine.await engine ok1 and c2 = Engine.await engine ok2 in
      check "good job succeeded" true (Result.is_ok c1.Job.result);
      check "duplicate shares the result" true (Result.is_ok c2.Job.result)
  | _ -> ());
  Engine.shutdown engine

(* The batch pre-gate is an optimization only: telemetry must match a
   serial submission of the same jobs, counter for counter. *)
let test_submit_batch_telemetry_matches_serial () =
  let probe submit_all =
    let engine = Engine.create ~workers:2 ~queue_capacity:8 () in
    let tickets = submit_all engine (batch_jobs ()) in
    List.iter
      (fun t ->
        if Engine.rejection t = None then ignore (Engine.await engine t))
      tickets;
    let s = Engine.stats engine in
    Engine.shutdown engine;
    ( s.Telemetry.jobs_submitted,
      s.Telemetry.jobs_completed,
      s.Telemetry.jobs_rejected_lint )
  in
  let serial = probe (fun e jobs -> List.map (Engine.submit e) jobs) in
  let batch = probe Engine.submit_batch in
  check "submitted equal" true
    (let a, _, _ = serial and b, _, _ = batch in
     a = b);
  check "completed equal" true
    (let _, a, _ = serial and _, b, _ = batch in
     a = b);
  check "rejected equal" true
    (let _, _, a = serial and _, _, b = batch in
     a = b)

(* ---------------- properties: SSG2xx vs the slow way ---------------- *)

let prop_chain_matches_slow_enumeration =
  QCheck2.Test.make ~count:120
    ~name:"Semantic.analyze matches from-scratch enumeration"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let adv = gen_adversary rng in
      let prefix = Adversary.prefix_length adv in
      let chain = Semantic.analyze adv in
      Array.length chain.Semantic.facts = prefix + 1
      && Array.for_all
           (fun (f : Semantic.fact) ->
             let skel = slow_skeleton adv f.Semantic.round in
             f.Semantic.edge_count = Digraph.edge_count skel
             && f.Semantic.root_count = slow_root_count skel
             && f.Semantic.min_k = slow_min_k skel)
           chain.Semantic.facts
      && chain.Semantic.r_st = slow_r_st adv
      && chain.Semantic.final_min_k
         = slow_min_k (slow_skeleton adv (prefix + 1))
      (* dead ⟺ the slow skeleton is unchanged at that position *)
      && List.for_all
           (fun r ->
             Digraph.equal (slow_skeleton adv r) (slow_skeleton adv (r - 1)))
           (List.filter (fun r -> r > 1) chain.Semantic.dead)
      && List.for_all
           (fun r ->
             List.mem r chain.Semantic.dead
             || r = 1 (* round 1 vs the complete graph: rarely dead *)
             || not
                  (Digraph.equal (slow_skeleton adv r)
                     (slow_skeleton adv (r - 1))))
           (List.init prefix (fun i -> i + 1)))

let prop_ssg201_matches_slow_min_k =
  QCheck2.Test.make ~count:120
    ~name:"SSG201 error iff k below the slow-way limit min_k"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let adv = gen_adversary rng in
      if Adversary.is_recurrent adv then true
      else
        let text = Run_format.to_string adv in
        let prefix = Adversary.prefix_length adv in
        let true_min_k = slow_min_k (slow_skeleton adv (prefix + 1)) in
        let k = 1 + Rng.int rng (Adversary.n adv) in
        let diags = Lint.check_text ~k text in
        let errors =
          List.filter Diagnostic.is_error (with_code "SSG201" diags)
        in
        if k < true_min_k then
          (* exactly one error, anchored at the earliest slow round whose
             min_k exceeds k *)
          match errors with
          | [ _ ] ->
              let chain = Semantic.analyze adv in
              let slow_lost =
                let rec find r =
                  if r > prefix + 1 then None
                  else if slow_min_k (slow_skeleton adv r) > k then Some r
                  else find (r + 1)
                in
                find 1
              in
              Semantic.lost_at chain ~k = slow_lost
          | _ -> false
        else errors = [] && with_code "SSG201" diags <> [])

let prop_ssg203_matches_slow_deltas =
  QCheck2.Test.make ~count:120
    ~name:"SSG203 warnings exactly at slow-way zero-delta rounds"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let adv = gen_adversary rng in
      if Adversary.is_recurrent adv then true
      else
        let prefix = Adversary.prefix_length adv in
        let slow_dead =
          List.filter
            (fun r ->
              Digraph.equal (slow_skeleton adv r)
                (if r = 1 then
                   Digraph.complete ~self_loops:true (Adversary.n adv)
                 else slow_skeleton adv (r - 1)))
            (List.init prefix (fun i -> i + 1))
        in
        let diags =
          Lint.check_text (Run_format.to_string adv)
        in
        List.length (with_code "SSG203" diags) = List.length slow_dead)

let prop_ssg202_r_st_matches_slow =
  QCheck2.Test.make ~count:120
    ~name:"SSG202 reports the slow-way stabilization round"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let adv = gen_adversary rng in
      if Adversary.is_recurrent adv then true
      else
        let diags = Lint.check_text (Run_format.to_string adv) in
        let expected = Printf.sprintf "r_ST = %d" (slow_r_st adv) in
        List.exists
          (fun (d : Diagnostic.t) -> contains d.message expected)
          (with_code "SSG202" diags))

(* ---------------- properties: fix soundness ---------------- *)

let prop_fix_sound_and_idempotent =
  QCheck2.Test.make ~count:120
    ~name:"--fix preserves skeleton and min_k, re-lints clean, idempotent"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 2 + Rng.int rng 7 in
      let adv =
        Build.arbitrary rng ~n ~density:(Rng.float rng)
          ~prefix_len:(Rng.int rng 5) ~noise:(Rng.float rng) ()
      in
      if Adversary.is_recurrent adv then true
      else
        let text = Run_format.to_string adv in
        match Fix.fix text with
        | None -> false (* serialized adversaries always parse *)
        | Some (fixed, _) -> (
            match Run_format.of_string fixed with
            | exception _ -> false
            | after ->
                Digraph.equal
                  (Adversary.stable_skeleton adv)
                  (Adversary.stable_skeleton after)
                && Adversary.min_k adv = Adversary.min_k after
                && relints_clean_for_fixed_codes fixed
                &&
                match Fix.fix fixed with
                | Some (fixed2, plan2) -> Fix.is_empty plan2 && fixed2 = fixed
                | None -> false))

(* ---------------- properties: SARIF ---------------- *)

let prop_sarif_wellformed_and_complete =
  QCheck2.Test.make ~count:80
    ~name:"SARIF export validates and covers every diagnostic"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let adv = gen_adversary rng in
      if Adversary.is_recurrent adv then true
      else
        let text = Run_format.to_string adv in
        let k = 1 + Rng.int rng (Adversary.n adv) in
        let out = Lint.lint_text ~k text in
        let sarif =
          Sarif.export [ ("gen.run", out.Lint.active, out.Lint.suppressed) ]
        in
        E.json_wellformed sarif
        &&
        match sarif_results sarif with
        | Some (_, results) ->
            List.length results
            = List.length out.Lint.active + List.length out.Lint.suppressed
            && List.for_all
                 (fun (d : Diagnostic.t) ->
                   List.exists
                     (fun r -> find_field "ruleId" r = Some (E.Str d.code))
                     results)
                 (out.Lint.active @ out.Lint.suppressed)
        | None -> false)

let tests =
  [
    Alcotest.test_case "semantic chain facts" `Quick test_semantic_chain_facts;
    Alcotest.test_case "lost_at and trajectory" `Quick
      test_semantic_lost_at_and_trajectory;
    Alcotest.test_case "SSG201 certificate" `Quick test_ssg201_certificate;
    Alcotest.test_case "SSG202 window" `Quick test_ssg202_window;
    Alcotest.test_case "SSG203 dead rounds" `Quick test_ssg203_dead_rounds;
    Alcotest.test_case "fix figure1" `Quick test_fix_figure1;
    Alcotest.test_case "fix keeps unfixable empty round" `Quick
      test_fix_unfixable_empty_round;
    Alcotest.test_case "fix rejects unparseable" `Quick
      test_fix_rejects_unparseable;
    Alcotest.test_case "suppress: line scope" `Quick test_suppress_line_scope;
    Alcotest.test_case "suppress: file scope + gate" `Quick
      test_suppress_file_scope;
    Alcotest.test_case "suppress: summary counts" `Quick
      test_suppress_counts_in_summary;
    Alcotest.test_case "suppress: directive shapes" `Quick
      test_suppress_parse_shapes;
    Alcotest.test_case "sarif roundtrip" `Quick
      test_sarif_wellformed_and_roundtrip;
    Alcotest.test_case "sarif suppressions and fixes" `Quick
      test_sarif_suppressions_and_fixes;
    Alcotest.test_case "human excerpt clamp" `Quick test_human_excerpt_clamp;
    Alcotest.test_case "pool map: order and fallback" `Quick
      test_pool_map_order_and_fallback;
    Alcotest.test_case "pool map: exception" `Quick
      test_pool_map_propagates_exception;
    Alcotest.test_case "submit_batch: mixed" `Quick test_submit_batch_mixed;
    Alcotest.test_case "submit_batch: telemetry matches serial" `Quick
      test_submit_batch_telemetry_matches_serial;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_chain_matches_slow_enumeration;
        prop_ssg201_matches_slow_min_k;
        prop_ssg203_matches_slow_deltas;
        prop_ssg202_r_st_matches_slow;
        prop_fix_sound_and_idempotent;
        prop_sarif_wellformed_and_complete;
      ]
