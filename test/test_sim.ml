(* Tests for the simulation harness: Runner defaults and Metrics. *)

open Ssg_util
open Ssg_rounds
open Ssg_adversary
open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_inputs () =
  Alcotest.(check (array int)) "distinct" [| 0; 1; 2 |] (Runner.distinct_inputs 3);
  let s = Runner.shuffled_inputs (Rng.of_int 1) 10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffled is permutation" (Runner.distinct_inputs 10) sorted

let test_report_fields () =
  let adv = Build.lower_bound ~n:6 ~k:2 in
  let r = Runner.run_kset adv in
  check_int "n" 6 r.Runner.n;
  check_int "min_k" 2 r.Runner.min_k;
  check "adversary name" true (r.Runner.adversary = "lower_bound(n=6,k=2)");
  check "algorithm name" true (r.Runner.algorithm = "skeleton-kset");
  check "skeleton has self loops" true
    (Ssg_graph.Digraph.has_all_self_loops r.Runner.skeleton)

let test_default_rounds_suffice () =
  let rng = Rng.of_int 2 in
  for _ = 1 to 20 do
    let adv = Build.block_sources rng ~n:8 ~k:3 ~prefix_len:6 ~noise:0.4 () in
    let r = Runner.run_kset adv in
    check "terminated within default horizon" true
      (Metrics.termination r.Runner.outcome)
  done

let test_custom_inputs_respected () =
  let adv = Build.synchronous ~n:4 in
  let r = Runner.run_kset ~inputs:[| 9; 8; 7; 6 |] adv in
  Alcotest.(check (list int)) "decides provided min" [ 6 ]
    (Executor.decision_values r.Runner.outcome)

let test_run_packed_baseline () =
  let adv = Build.synchronous ~n:4 in
  let r = Runner.run_packed (Ssg_baselines.Floodmin.make ~rounds:1) adv in
  check "baseline name" true (r.Runner.algorithm = "floodmin(R=1)");
  check "no monitors" true (r.Runner.violations = [])

(* Metrics *)

let outcome_of adv = (Runner.run_kset adv).Runner.outcome

let test_metrics_distinct_and_rounds () =
  let o = outcome_of (Build.lower_bound ~n:5 ~k:2) in
  check_int "distinct" 2 (Metrics.distinct_decisions o);
  (match (Metrics.first_decision_round o, Metrics.last_decision_round o) with
  | Some f, Some l -> check "first <= last" true (f <= l)
  | _ -> Alcotest.fail "missing rounds");
  check "k_agreement 2" true (Metrics.k_agreement ~k:2 o);
  check "k_agreement 1 fails" false (Metrics.k_agreement ~k:1 o)

let test_metrics_validity () =
  let o = outcome_of (Build.synchronous ~n:3) in
  check "validity" true (Metrics.validity ~inputs:[| 0; 1; 2 |] o);
  check "validity fails for foreign inputs" false
    (Metrics.validity ~inputs:[| 5; 6; 7 |] o)

let test_verdict_all_ok () =
  let adv = Build.lower_bound ~n:5 ~k:2 in
  let r = Runner.run_kset adv in
  let v = Metrics.verdict ~k:2 r in
  check "all ok" true (Metrics.all_ok v);
  let v = Metrics.verdict ~k:1 r in
  check "agreement fails at k=1" false (Metrics.all_ok v)

let test_batch_helpers () =
  let rng = Rng.of_int 3 in
  let rs =
    List.init 5 (fun _ ->
        Runner.run_kset (Build.single_root rng ~n:6 ()))
  in
  check_int "count_if all" 5
    (Metrics.count_if (fun r -> Metrics.termination r.Runner.outcome) rs);
  check_int "max distinct" 1
    (Metrics.max_over (fun r -> Metrics.distinct_decisions r.Runner.outcome) rs);
  check "mean in [1,1]" true
    (Metrics.mean_over (fun r -> Metrics.distinct_decisions r.Runner.outcome) rs
     = 1.0);
  check "empty batch raises" true
    (try ignore (Metrics.max_over (fun _ -> 0) []); false
     with Invalid_argument _ -> true)

let test_decisions_per_root () =
  let r = Runner.run_kset (Build.lower_bound ~n:6 ~k:3) in
  let d, roots = Metrics.decisions_per_root r in
  check_int "distinct" 3 d;
  check_int "roots" 3 roots

(* --- Render --- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_render_matrix () =
  let g = Ssg_graph.Digraph.of_edges 3 [ (0, 1); (2, 2) ] in
  let s = Render.matrix g in
  check "receiver header" true (contains ~needle:"(column = receiver)" s);
  let lines = String.split_on_char '
' s in
  check "p1 row" true (contains ~needle:"p1  .#." (List.nth lines 1));
  check "p3 self loop" true (contains ~needle:"p3  ..#" (List.nth lines 3))

let test_render_timeline () =
  let adv = Build.lower_bound ~n:6 ~k:2 in
  let s = Render.timeline adv ~rounds:(Adversary.decision_horizon adv) in
  check "legend" true (contains ~needle:"legend" s);
  check "has decision marker" true (contains ~needle:"D" s);
  check "certificate marker for loner" true (contains ~needle:"o" s);
  check "reports decisions" true (contains ~needle:"decides" s)

let test_render_decisions () =
  let adv = Build.synchronous ~n:3 in
  let r = Runner.run_kset adv in
  let s = Render.decisions r.Runner.outcome in
  check "mentions p1" true (contains ~needle:"p1:0@r" s)

(* --- Series --- *)

let test_series_collect () =
  let rng = Rng.of_int 31 in
  let adv = Build.block_sources rng ~n:8 ~k:2 ~prefix_len:3 () in
  let samples = Series.collect adv in
  check_int "one sample per round" (Runner.default_rounds adv)
    (List.length samples);
  (* rounds are 1..R in order *)
  List.iteri
    (fun i s -> check_int "round numbering" (i + 1) s.Series.round)
    samples;
  (* decided is monotone and ends with everyone *)
  let rec monotone prev = function
    | [] -> true
    | s :: rest -> s.Series.decided >= prev && monotone s.Series.decided rest
  in
  check "decided monotone" true (monotone 0 samples);
  check_int "all decided at the end" 8
    (List.nth samples (List.length samples - 1)).Series.decided;
  (* skeleton edges are antitone (eq. 1) *)
  let rec antitone prev = function
    | [] -> true
    | s :: rest ->
        s.Series.skeleton_edges <= prev
        && antitone s.Series.skeleton_edges rest
  in
  check "skeleton antitone" true (antitone max_int samples);
  (* the warm-started min_k column settles on the run's true min_k *)
  check_int "min_k settles" (Adversary.min_k adv)
    (List.nth samples (List.length samples - 1)).Series.min_k

let test_series_csv () =
  let adv = Build.synchronous ~n:3 in
  let samples = Series.collect ~rounds:4 adv in
  let csv = Series.to_csv samples in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 4 rows" 5 (List.length lines);
  check "header" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 5 = "round")

let test_series_sparkline () =
  let adv = Build.synchronous ~n:3 in
  let samples = Series.collect ~rounds:5 adv in
  let flat = Series.sparkline (fun _ -> 1.0) samples in
  (* constant series: all the same block, one per sample (UTF-8: 3 bytes
     per block char) *)
  check_int "one glyph per sample" (5 * 3) (String.length flat);
  let rising = Series.sparkline (fun s -> float_of_int s.Series.round) samples in
  check "rising starts low" true (String.sub rising 0 3 = "\xe2\x96\x81");
  check "rising ends high" true
    (String.sub rising (String.length rising - 3) 3 = "\xe2\x96\x88")

let tests =
  [
    Alcotest.test_case "inputs" `Quick test_inputs;
    Alcotest.test_case "series collect" `Quick test_series_collect;
    Alcotest.test_case "series csv" `Quick test_series_csv;
    Alcotest.test_case "series sparkline" `Quick test_series_sparkline;
    Alcotest.test_case "render matrix" `Quick test_render_matrix;
    Alcotest.test_case "render timeline" `Quick test_render_timeline;
    Alcotest.test_case "render decisions" `Quick test_render_decisions;
    Alcotest.test_case "report fields" `Quick test_report_fields;
    Alcotest.test_case "default rounds suffice" `Quick test_default_rounds_suffice;
    Alcotest.test_case "custom inputs" `Quick test_custom_inputs_respected;
    Alcotest.test_case "run_packed baseline" `Quick test_run_packed_baseline;
    Alcotest.test_case "metrics distinct/rounds" `Quick
      test_metrics_distinct_and_rounds;
    Alcotest.test_case "metrics validity" `Quick test_metrics_validity;
    Alcotest.test_case "verdict" `Quick test_verdict_all_ok;
    Alcotest.test_case "batch helpers" `Quick test_batch_helpers;
    Alcotest.test_case "decisions per root" `Quick test_decisions_per_root;
  ]
