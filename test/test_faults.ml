(* Chaos suite for the ssgd service: a real server driven by
   adversarial clients (malformed jobs, garbage frames, mid-frame
   disconnects, half-open connections, saturation bursts) and by an
   injected fault plan (crashing / slow jobs, corrupted / truncated
   replies).  The assertions mirror the supervision contract: every
   well-formed request gets a reply, every hostile exchange ends with an
   [Error] and a closed connection, the telemetry counters record each
   fault class, and nothing hangs or leaks a descriptor. *)

open Ssg_adversary
open Ssg_util
open Ssg_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---------------- harness ---------------- *)

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ssgd-chaos-%d-%d.sock" (Unix.getpid ()) !socket_counter)

(* Start a server in a thread; return the socket, the thread, and a
   connected control client (which also proves the server is up). *)
let start_server ?(workers = 1) ?(queue_capacity = 16) ?max_connections
    ?read_timeout_s ?(drain_timeout_s = 5.) ?faults () =
  let socket = fresh_socket () in
  if Sys.file_exists socket then Sys.remove socket;
  let thread =
    Thread.create
      (fun () ->
        Server.serve ~workers ~queue_capacity ~cache_capacity:64
          ?max_connections ?read_timeout_s ~drain_timeout_s ?faults ~socket ())
      ()
  in
  let rec wait_up tries =
    if tries = 0 then Alcotest.fail "server did not come up";
    match Client.connect ~socket ~deadline_s:10. () with
    | c -> c
    | exception Unix.Unix_error _ ->
        Thread.delay 0.05;
        wait_up (tries - 1)
  in
  let control = wait_up 100 in
  (socket, thread, control)

let stop_server control thread =
  Client.shutdown control;
  Client.close control;
  Thread.join thread

(* A raw adversarial connection: no Client niceties, just a descriptor
   with a receive timeout so a buggy server cannot hang the suite. *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5. with _ -> ());
  fd

let raw_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* [Ok reply], [Error `Eof] on a closed connection, [Error `Timeout] if
   nothing arrived before the receive timeout. *)
let try_read_reply fd =
  match Protocol.read_reply_fd fd with
  | reply -> Ok reply
  | exception End_of_file -> Error `Eof
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error `Timeout
  | exception Failure msg -> Error (`Garbled msg)

let sample_adv ?(seed = 11) ?(n = 6) () =
  Build.block_sources (Rng.of_int seed) ~n ~k:2 ~prefix_len:1 ()

let sample_job ?seed () = Job.make ~k:2 (sample_adv ?seed ())

let open_fds () =
  Array.length (Sys.readdir "/proc/self/fd")

(* ---------------- hand-rolled wire encoding ---------------- *)

(* The regression payloads must be built without [Job]'s constructors —
   those validate.  Minimal re-implementation of the writers. *)

let put_int buf x =
  let open Int64 in
  let v = of_int x in
  for shift = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (to_int (logand (shift_right_logical v (8 * shift)) 0xFFL)))
  done

let valid_run_text =
  "ssg-run v1\nn 3\nround 1: 1>0 0>2 1>2 2>1\nstable: 1>0 0>2 1>2\n"

(* A [Submit] payload that frames perfectly but carries k = 0 — the
   exact shape that used to escape the connection handler as
   [Invalid_argument], skip the [close], and leave the client blocked in
   read_reply forever. *)
let k0_submit_payload () =
  let buf = Buffer.create 128 in
  Buffer.add_char buf 'S';
  put_int buf (String.length valid_run_text);
  Buffer.add_string buf valid_run_text;
  Buffer.add_char buf '\000';  (* algorithm tag: Kset *)
  put_int buf 0;  (* k = 0: rejected by Job.build *)
  Buffer.add_char buf '\000';  (* inputs = None *)
  Buffer.add_char buf '\000';  (* rounds = None *)
  Buffer.add_char buf '\000';  (* monitor = false *)
  Buffer.to_bytes buf

(* ---------------- regression: malformed job over the wire ---------- *)

let test_k0_submit_gets_error_and_close () =
  let socket, thread, control = start_server () in
  let fd = raw_connect socket in
  Protocol.write_frame_fd fd (k0_submit_payload ());
  (match try_read_reply fd with
  | Ok (Protocol.Error msg) ->
      check "error names the bad parameter" true
        (contains msg "k must be >= 1")
  | Ok _ -> Alcotest.fail "expected an Error reply to the k=0 job"
  | Error `Timeout ->
      Alcotest.fail "no reply to the k=0 job: client would hang forever"
  | Error `Eof -> Alcotest.fail "connection closed without a reply"
  | Error (`Garbled msg) -> Alcotest.fail ("garbled reply: " ^ msg));
  (* The hostile connection is then closed by the server... *)
  check "connection closed after the error" true
    (try_read_reply fd = Error `Eof);
  raw_close fd;
  (* ... and the server is still serving healthy clients. *)
  let ok = Client.submit control (sample_job ()) in
  check "server alive after malformed job" true (Result.is_ok ok.Job.result);
  let s = Client.stats control in
  check "rejected frame counted" true (s.Telemetry.rejected_frames >= 1);
  stop_server control thread

(* ---------------- adversarial framing ---------------- *)

let test_garbage_and_midframe_disconnects () =
  let socket, thread, control = start_server () in
  (* Garbage payload in a well-delimited frame: Error reply, then the
     connection is dropped. *)
  let fd = raw_connect socket in
  Protocol.write_frame_fd fd (Bytes.of_string "ZZZZ-not-a-request");
  (match try_read_reply fd with
  | Ok (Protocol.Error _) -> ()
  | _ -> Alcotest.fail "garbage frame must be answered with Error");
  check "connection dropped after garbage" true
    (try_read_reply fd = Error `Eof);
  raw_close fd;
  (* Oversized frame header: refused outright. *)
  let fd = raw_connect socket in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Protocol.max_frame_bytes + 1));
  ignore (Unix.write fd header 0 4);
  (match try_read_reply fd with
  | Ok (Protocol.Error _) -> ()
  | _ -> Alcotest.fail "oversized frame must be answered with Error");
  raw_close fd;
  (* Mid-frame disconnect: promise 100 bytes, deliver 10, vanish. *)
  let fd = raw_connect socket in
  Bytes.set_int32_be header 0 100l;
  ignore (Unix.write fd header 0 4);
  ignore (Unix.write fd (Bytes.make 10 'x') 0 10);
  raw_close fd;
  Thread.delay 0.05;
  (* The server shrugged all of it off. *)
  let ok = Client.submit control (sample_job ()) in
  check "server alive after framing attacks" true (Result.is_ok ok.Job.result);
  let s = Client.stats control in
  check "every attack counted as a rejected frame" true
    (s.Telemetry.rejected_frames >= 3);
  stop_server control thread

(* ---------------- half-open clients are reaped ---------------- *)

let test_read_timeout_reaps_stalled_connection () =
  let socket, thread, control = start_server ~read_timeout_s:0.2 () in
  (* The control connection is also subject to the timeout; it will be
     reaped while we idle below, so drop it and use fresh ones. *)
  Client.close control;
  let fd = raw_connect socket in
  (* Send nothing; the server must reap us, we must see the close. *)
  let reaped =
    match try_read_reply fd with Error `Eof -> true | _ -> false
  in
  check "server closed the half-open connection" true reaped;
  raw_close fd;
  let c = Client.connect ~socket ~deadline_s:10. () in
  let s = Client.stats c in
  check "reap counted" true (s.Telemetry.timed_out_connections >= 1);
  (* A fresh client that actually talks still gets served. *)
  let ok = Client.submit c (sample_job ()) in
  check "server alive after reaping" true (Result.is_ok ok.Job.result);
  stop_server c thread

(* ---------------- connection limit ---------------- *)

let test_connection_limit () =
  let socket, thread, control = start_server ~max_connections:2 () in
  (* [control] occupies one slot; a raw idle connection takes the other. *)
  let held = raw_connect socket in
  Thread.delay 0.05;
  let fd = raw_connect socket in
  (match try_read_reply fd with
  | Ok (Protocol.Error msg) ->
      check "rejection says why" true (contains msg "limit")
  | _ -> Alcotest.fail "over-limit connection must get an Error reply");
  check "then closed" true (try_read_reply fd = Error `Eof);
  raw_close fd;
  raw_close held;
  Thread.delay 0.05;
  let s = Client.stats control in
  check "rejection counted" true (s.Telemetry.connections_rejected >= 1);
  stop_server control thread

(* ---------------- injected faults: crash / slow jobs -------------- *)

let test_injected_crashes_still_reply () =
  let faults = Faults.create ~crash_every:2 () in
  let socket, thread, control = start_server ~workers:2 ~faults () in
  ignore socket;
  let jobs = List.init 6 (fun i -> sample_job ~seed:(2000 + i) ()) in
  let completions = List.map (Client.submit control) jobs in
  check_int "every submission got a reply" 6 (List.length completions);
  let failed =
    List.length
      (List.filter (fun c -> Result.is_error c.Job.result) completions)
  in
  check_int "every second execution crashed" 3 failed;
  let s = Client.stats control in
  check_int "injections counted" 3 s.Telemetry.faults_injected;
  check_int "crashes counted as failed jobs" 3 s.Telemetry.jobs_failed;
  check "failures are not cached" true (s.Telemetry.cache_entries <= 3);
  stop_server control thread

let test_slow_jobs_hit_client_deadline () =
  let faults = Faults.create ~slow_every:1 ~slow_s:0.5 () in
  let socket, thread, control = start_server ~faults () in
  let c = Client.connect ~socket ~deadline_s:0.1 () in
  let deadline_hit =
    match Client.submit c (sample_job ~seed:31 ()) with
    | _ -> false
    | exception Failure msg -> contains msg "deadline"
  in
  Client.close c;
  check "client gave up at its deadline instead of hanging" true deadline_hit;
  stop_server control thread

(* ---------------- injected faults: reply corruption --------------- *)

let test_corrupt_and_truncated_replies_fail_cleanly () =
  let faults = Faults.create ~corrupt_every:1 () in
  let socket, thread, control0 = start_server ~faults () in
  let c = Client.connect ~socket ~deadline_s:5. () in
  let corrupt_detected =
    match Client.submit c (sample_job ~seed:41 ()) with
    | _ -> false
    | exception Failure _ -> true
  in
  Client.close c;
  check "corrupted reply rejected by the client decoder" true corrupt_detected;
  (* control0 was connected before; its stats exchange will also be
     corrupted, so shut down over a raw socket instead. *)
  let fd = raw_connect socket in
  Protocol.write_request_fd fd Protocol.Shutdown;
  ignore (try_read_reply fd);
  raw_close fd;
  Client.close control0;
  Thread.join thread;
  (* Truncated replies: the client must detect the mid-frame death. *)
  let faults = Faults.create ~truncate_every:1 () in
  let socket, thread, control0 = start_server ~faults () in
  let c = Client.connect ~socket ~deadline_s:5. () in
  let truncation_detected =
    match Client.submit c (sample_job ~seed:42 ()) with
    | _ -> false
    | exception Failure msg -> contains msg "mid-frame"
  in
  Client.close c;
  check "truncated reply detected as a mid-frame death" true
    truncation_detected;
  let fd = raw_connect socket in
  Protocol.write_request_fd fd Protocol.Shutdown;
  ignore (try_read_reply fd);
  raw_close fd;
  Client.close control0;
  Thread.join thread

(* ---------------- queue saturation burst ---------------- *)

let test_saturation_burst_every_request_answered () =
  let faults = Faults.create ~slow_every:1 ~slow_s:0.02 () in
  (* 16 concurrent distinct jobs against a 1-worker, 2-slot queue: the
     burst must drain through backpressure, never drop a reply. *)
  let socket, thread, control =
    start_server ~workers:1 ~queue_capacity:2 ~faults ()
  in
  let answered = Atomic.make 0 and wrong = Atomic.make 0 in
  let clients =
    List.init 8 (fun t ->
        Thread.create
          (fun () ->
            try
              let c = Client.connect ~socket ~deadline_s:30. () in
              let mine =
                [ sample_job ~seed:(5000 + t) (); sample_job ~seed:(6000 + t) () ]
              in
              List.iter
                (fun job ->
                  match (Client.submit c job).Job.result with
                  | Ok _ -> Atomic.incr answered
                  | Error _ -> Atomic.incr wrong)
                mine;
              Client.close c
            with _ -> Atomic.incr wrong)
          ())
  in
  List.iter Thread.join clients;
  check_int "no reply lost or failed under saturation" 0 (Atomic.get wrong);
  check_int "all 16 burst submissions answered" 16 (Atomic.get answered);
  let s = Client.stats control in
  check_int "all 16 executed exactly once" 16 s.Telemetry.jobs_completed;
  stop_server control thread

(* ---------------- shutdown drains live connections ---------------- *)

let test_shutdown_drains_inflight_request () =
  let faults = Faults.create ~slow_every:1 ~slow_s:0.3 () in
  let socket, thread, control = start_server ~faults () in
  let inflight_result = ref None in
  let submitter =
    Thread.create
      (fun () ->
        let c = Client.connect ~socket ~deadline_s:10. () in
        (inflight_result :=
           match Client.submit c (sample_job ~seed:71 ()) with
           | completion -> Some (Result.is_ok completion.Job.result)
           | exception _ -> Some false);
        Client.close c)
      ()
  in
  Thread.delay 0.1;  (* the slow job is now in flight *)
  Client.shutdown control;
  Client.close control;
  Thread.join submitter;
  Thread.join thread;
  check "in-flight request was answered during shutdown drain" true
    (!inflight_result = Some true)

(* ---------------- no fd leak under a hostile barrage -------------- *)

let test_no_fd_leak_under_barrage () =
  Gc.full_major ();
  let before = open_fds () in
  let socket, thread, control = start_server () in
  (* Hostile traffic of every flavour. *)
  for i = 0 to 4 do
    let fd = raw_connect socket in
    Protocol.write_frame_fd fd (Bytes.of_string "garbage!");
    ignore (try_read_reply fd);
    raw_close fd;
    ignore i
  done;
  for _ = 0 to 2 do
    let fd = raw_connect socket in
    let header = Bytes.create 4 in
    Bytes.set_int32_be header 0 64l;
    ignore (Unix.write fd header 0 4);
    raw_close fd  (* mid-frame disconnect *)
  done;
  for _ = 0 to 1 do
    let fd = raw_connect socket in
    Protocol.write_frame_fd fd (k0_submit_payload ());
    ignore (try_read_reply fd);
    ignore (try_read_reply fd);
    raw_close fd
  done;
  (* Healthy traffic interleaved. *)
  List.iter
    (fun seed ->
      check "healthy job ok" true
        (Result.is_ok (Client.submit control (sample_job ~seed ())).Job.result))
    [ 9001; 9002; 9003 ];
  stop_server control thread;
  Gc.full_major ();
  Thread.delay 0.05;
  let after = open_fds () in
  check ("no leaked fds: " ^ string_of_int before ^ " before, "
        ^ string_of_int after ^ " after")
    true
    (after <= before)

let tests =
  [
    Alcotest.test_case "k=0 submit: Error reply + closed connection (regression)"
      `Quick test_k0_submit_gets_error_and_close;
    Alcotest.test_case "garbage / oversized / mid-frame attacks" `Quick
      test_garbage_and_midframe_disconnects;
    Alcotest.test_case "read timeout reaps half-open clients" `Quick
      test_read_timeout_reaps_stalled_connection;
    Alcotest.test_case "connection limit refuses with an Error" `Quick
      test_connection_limit;
    Alcotest.test_case "injected crashing jobs still reply" `Quick
      test_injected_crashes_still_reply;
    Alcotest.test_case "injected slow jobs hit the client deadline" `Quick
      test_slow_jobs_hit_client_deadline;
    Alcotest.test_case "corrupt / truncated replies fail cleanly" `Quick
      test_corrupt_and_truncated_replies_fail_cleanly;
    Alcotest.test_case "saturation burst: every request answered" `Quick
      test_saturation_burst_every_request_answered;
    Alcotest.test_case "shutdown drains in-flight requests" `Quick
      test_shutdown_drains_inflight_request;
    Alcotest.test_case "no fd leak under hostile barrage" `Quick
      test_no_fd_leak_under_barrage;
  ]
