(* The lint subsystem: diagnostics, semantic passes, reporters, and the
   engine/ssgd front door.

   The fixture texts mirror the paper's geometry: [two_islands] has a
   stable skeleton with two source components (min_k = 2, so Psrcs(1)
   is unsatisfiable — Theorem 1 says consensus is impossible there),
   [noisy] layers every text-level smell (subsumed rounds, a near-miss
   edge, redundant tokens) over a satisfiable run. *)

open Ssg_util
open Ssg_adversary
open Ssg_engine
open Ssg_lint

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let codes diags = List.map (fun (d : Diagnostic.t) -> d.code) diags
let with_code c diags =
  List.filter (fun (d : Diagnostic.t) -> d.code = c) diags

let two_islands =
  "ssg-run v1\nn 6\nstable: 0>1 1>2 2>0 3>4 4>5 5>3\n"

let noisy =
  "ssg-run v1\n\
   n 4\n\
   round 1: 0>1 1>0 2>3 1>3 0>2 0>2 1>1\n\
   round 2: 0>1 1>0 2>3 1>3\n\
   stable: 0>1 1>0 2>3\n"

(* ---------------- semantic passes ---------------- *)

let test_psrcs_unsatisfiable () =
  let diags = Lint.check_text ~k:1 two_islands in
  let errors = with_code "SSG001" diags in
  check_int "exactly one SSG001" 1 (List.length errors);
  check "has_errors" true (Lint.has_errors diags);
  let d = List.hd errors in
  check "names both source components" true
    (contains d.Diagnostic.message "{0, 1, 2}"
    && contains d.Diagnostic.message "{3, 4, 5}");
  check "states the needed k" true (contains d.Diagnostic.message "k >= 2");
  check "anchored to the stable line" true
    (d.Diagnostic.span = Some (Diagnostic.line 3));
  check "witness hint present" true (d.Diagnostic.hint <> None);
  (* The same run at k = 2 is satisfiable — and exactly tight. *)
  let diags2 = Lint.check_text ~k:2 two_islands in
  check "no errors at k = 2" false (Lint.has_errors diags2);
  check "tightness reported" true
    (List.exists
       (fun (d : Diagnostic.t) -> contains d.message "tight")
       (with_code "SSG002" diags2))

let test_psrcs_profile_infos () =
  (* No k: satisfiability is reported, never judged. *)
  let diags = Lint.check_text two_islands in
  check "no errors without k" false (Lint.has_errors diags);
  check "min_k reported" true
    (List.exists
       (fun (d : Diagnostic.t) -> contains d.message "k >= 2")
       (with_code "SSG002" diags));
  (* Slack: k above min_k. *)
  let diags = Lint.check_text ~k:4 two_islands in
  check "slack reported" true
    (List.exists
       (fun (d : Diagnostic.t) -> contains d.message "slack")
       (with_code "SSG002" diags))

let test_parse_failure_is_ssg000 () =
  let diags = Lint.check_text ~k:1 "ssg-run v1\nn 3\nstable: 0>9\n" in
  check_int "single diagnostic" 1 (List.length diags);
  let d = List.hd diags in
  check "code" true (d.Diagnostic.code = "SSG000");
  check "is error" true (Diagnostic.is_error d);
  check "line extracted from the parser message" true
    (d.Diagnostic.span = Some (Diagnostic.line 3));
  (* Total garbage never raises either. *)
  check "garbage yields SSG000" true
    (codes (Lint.check_text "\x00\xffnot a run") = [ "SSG000" ])

let test_degenerate_n_is_ssg000 () =
  (* n 0 / n 1 are parse-time errors; the lint surfaces them anchored
     to the [n] line instead of letting the degenerate run through. *)
  List.iter
    (fun n_directive ->
      let text = Printf.sprintf "ssg-run v1\n# degenerate\n%s\nstable:\n" n_directive in
      let diags = Lint.check_text ~k:1 text in
      check_int (n_directive ^ ": single diagnostic") 1 (List.length diags);
      let d = List.hd diags in
      check (n_directive ^ ": code") true (d.Diagnostic.code = "SSG000");
      check (n_directive ^ ": is error") true (Diagnostic.is_error d);
      check (n_directive ^ ": anchored to the n line") true
        (d.Diagnostic.span = Some (Diagnostic.line 3));
      check (n_directive ^ ": names the bound") true
        (contains d.Diagnostic.message "at least 2"))
    [ "n 0"; "n 1" ]

let test_text_level_warnings () =
  let diags = Lint.check_text ~k:2 noisy in
  check "no errors" false (Lint.has_errors diags);
  check_int "both rounds subsumed (SSG101)" 2
    (List.length (with_code "SSG101" diags));
  (let near = with_code "SSG102" diags in
   check_int "one near-miss edge" 1 (List.length near);
   check "it is 1>3" true
     (contains (List.hd near).Diagnostic.message "1>3");
   check "anchored to stable line" true
     ((List.hd near).Diagnostic.span = Some (Diagnostic.line 5)));
  (let redundant = with_code "SSG105" diags in
   check_int "duplicate + explicit self-loop" 2 (List.length redundant);
   check "all on round 1's line" true
     (List.for_all
        (fun (d : Diagnostic.t) -> d.span = Some (Diagnostic.line 3))
        redundant));
  check "no empty-round warning" true (with_code "SSG103" diags = [])

let test_empty_round_and_isolation () =
  let text = "ssg-run v1\nn 3\nround 1:\nstable: 0>1 1>0 2>0\n" in
  let diags = Lint.check_text ~k:3 text in
  check_int "empty round flagged" 1 (List.length (with_code "SSG103" diags));
  (* The empty round wipes the skeleton: all processes isolated. *)
  let iso = with_code "SSG104" diags in
  check_int "isolation collapses to one warning" 1 (List.length iso);
  check "aggregated message" true
    (contains (List.hd iso).Diagnostic.message "all 3 processes");
  (* One isolated process among connected ones is reported by name. *)
  let text = "ssg-run v1\nn 3\nstable: 0>1 1>0\n" in
  let iso = with_code "SSG104" (Lint.check_text ~k:2 text) in
  check_int "one isolated process" 1 (List.length iso);
  check "names process 2" true
    (contains (List.hd iso).Diagnostic.message "process 2")

let test_stabilization_info () =
  (* Prefix keeps shrinking the skeleton until the stable round (3). *)
  let text =
    "ssg-run v1\nn 3\nround 1: 0>1 1>0 1>2\nround 2: 0>1 1>0\nstable: 0>1\n"
  in
  let info = with_code "SSG003" (Lint.check_text text) in
  check_int "one stabilization info" 1 (List.length info);
  check "r_ST = 3" true
    (contains (List.hd info).Diagnostic.message "round 3 (r_ST)")

let test_check_in_memory () =
  (* Figure 1 has three root components: 2-set agreement is hopeless,
     3-set agreement is exactly tight. *)
  let adv = Build.figure1 () in
  check "figure1 fails k=2" true (Lint.has_errors (Lint.check ~k:2 adv));
  check "figure1 clean at k=3" false (Lint.has_errors (Lint.check ~k:3 adv));
  check "no spans without text" true
    (List.for_all
       (fun (d : Diagnostic.t) -> d.span = None)
       (Lint.check ~k:3 adv))

(* ---------------- reporters ---------------- *)

let test_human_report () =
  let diags = Lint.check_text ~k:1 two_islands in
  let out = Report.human ~file:"islands.run" ~src:two_islands diags in
  check "file:line prefix" true (contains out "islands.run:3: error SSG001");
  check "source excerpt" true
    (contains out "3 | stable: 0>1 1>2 2>0 3>4 4>5 5>3");
  check "hint line" true (contains out "hint:");
  (* Span-less diagnostics still render without a location prefix. *)
  let out = Report.human (Lint.check ~k:1 (Build.synchronous ~n:3)) in
  check "in-memory render works" true (contains out "SSG002")

let test_json_report () =
  let diags = Lint.check_text ~k:1 two_islands in
  let out = Report.json [ ("islands.run", diags, []) ] in
  check "file field" true (contains out "\"file\": \"islands.run\"");
  (* Two errors: SSG001's verdict and SSG201's certificate trail. *)
  check "error count" true (contains out "\"errors\": 2");
  check "code field" true (contains out "\"code\": \"SSG001\"");
  check "severity field" true (contains out "\"severity\": \"error\"");
  check "line field" true (contains out "\"line\": 3");
  (* Escaping: messages quote tokens like "0>2". *)
  let out = Report.json [ ("noisy.run", Lint.check_text ~k:2 noisy, []) ] in
  check "quotes escaped" true (contains out "\\\"0>2\\\"");
  check "balanced array" true
    (String.length out > 2
    && String.get out 0 = '['
    && String.get (String.trim out) (String.length (String.trim out) - 1) = ']')

let test_summary_and_strictness () =
  let diags = Lint.check_text ~k:2 noisy in
  let s = Lint.summarize diags in
  check_int "errors" 0 s.Lint.errors;
  check "warnings counted" true (s.Lint.warnings >= 4);
  check "infos counted" true (s.Lint.infos >= 1);
  check "ok by default" true (Lint.ok diags);
  check "not ok under strict" false (Lint.ok ~strict:true diags);
  check "errors fail both" false (Lint.ok (Lint.check_text ~k:1 two_islands))

(* ---------------- engine front door ---------------- *)

let bad_job () = Job.of_run_text ~k:1 two_islands
let good_job () = Job.of_run_text ~k:2 two_islands

let test_gate () =
  (match Lint.gate ~k:1 two_islands with
  | None -> Alcotest.fail "gate must reject k=1"
  | Some rendered ->
      check "rendered diagnostics" true (contains rendered "SSG001");
      check "errors only" false (contains rendered "SSG002"));
  check "gate passes k=2" true (Lint.gate ~k:2 two_islands = None)

let test_engine_front_door () =
  let engine = Engine.create ~workers:1 ~queue_capacity:4 () in
  let bad = bad_job () in
  (* Rejected: an Error completion that names the diagnostic. *)
  (match (Engine.run engine bad).Ssg_engine.Job.result with
  | Error msg ->
      check "rejection mentions lint" true (contains msg "rejected by lint");
      check "rejection carries SSG001" true (contains msg "SSG001")
  | Ok _ -> Alcotest.fail "unsatisfiable job must be rejected");
  (* The ticket-level accessor the server uses. *)
  check "rejection accessor" true
    (Engine.rejection (Engine.submit engine bad) <> None);
  let good_ticket = Engine.submit engine (good_job ()) in
  check "accessor is None for good jobs" true
    (Engine.rejection good_ticket = None);
  ignore (Engine.await engine good_ticket);
  (* Rejections never execute, never cache, and are counted. *)
  (match (Engine.run engine bad).Ssg_engine.Job.result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resubmitted bad job must be rejected again");
  let s = Engine.stats engine in
  check_int "every rejection counted" 3 s.Telemetry.jobs_rejected_lint;
  check_int "rejections never execute or fail" 0 s.Telemetry.jobs_failed;
  check_int "good twin executed once" 1 s.Telemetry.jobs_completed;
  Engine.shutdown engine

let test_engine_batch_mixed () =
  let engine = Engine.create ~workers:2 ~queue_capacity:8 () in
  match Engine.run_batch engine [ bad_job (); good_job () ] with
  | [ bad; good ] ->
      check "bad rejected in batch" true (Result.is_error bad.Ssg_engine.Job.result);
      check "good survives the batch" true
        (Result.is_ok good.Ssg_engine.Job.result);
      Engine.shutdown engine
  | _ -> Alcotest.fail "batch must answer per job"

(* ---------------- e2e: ssgd rejects at the front door ---------------- *)

let test_ssgd_rejects_at_submit () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ssgd-lint-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let server =
    Thread.create
      (fun () ->
        Server.serve ~workers:1 ~queue_capacity:8 ~cache_capacity:16 ~socket ())
      ()
  in
  let rec wait_up tries =
    if tries = 0 then Alcotest.fail "server did not come up";
    match Client.connect ~socket ~deadline_s:10. () with
    | c -> c
    | exception Unix.Unix_error _ ->
        Thread.delay 0.05;
        wait_up (tries - 1)
  in
  let c = wait_up 100 in
  (* The unsatisfiable job comes back as a protocol Error carrying the
     rendered diagnostics ... *)
  (match Client.submit c (bad_job ()) with
  | _ -> Alcotest.fail "ssgd must refuse the job"
  | exception Failure msg ->
      check "Error reply carries the diagnostics" true (contains msg "SSG001");
      check "Error reply names the front door" true
        (contains msg "rejected by lint"));
  (* ... the connection stays usable ... *)
  let completion = Client.submit c (good_job ()) in
  check "same connection still serves" true
    (Result.is_ok completion.Ssg_engine.Job.result);
  (* ... and the rejection is visible in the telemetry snapshot. *)
  let s = Client.stats c in
  check_int "jobs_rejected_lint over the wire" 1 s.Telemetry.jobs_rejected_lint;
  check_int "nothing failed" 0 s.Telemetry.jobs_failed;
  Client.shutdown c;
  Client.close c;
  Thread.join server

(* ---------------- properties ---------------- *)

(* Build a run description, then maybe maul it: the linter must never
   raise, whatever the parser thinks of the text. *)
let prop_never_raises =
  QCheck2.Test.make ~count:300 ~name:"lint never raises on any input text"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 1 + Rng.int rng 8 in
      let adv =
        Build.arbitrary rng ~n ~density:(Rng.float rng)
          ~prefix_len:(Rng.int rng 3) ~noise:0.5 ()
      in
      let text = Run_format.to_string adv in
      let text =
        (* Mutate half the cases: flip a byte, truncate, or prepend junk. *)
        match Rng.int rng 6 with
        | 0 -> String.sub text 0 (Rng.int rng (String.length text))
        | 1 ->
            let b = Bytes.of_string text in
            Bytes.set b
              (Rng.int rng (Bytes.length b))
              (Char.chr (Rng.int rng 256));
            Bytes.to_string b
        | 2 -> "garbage\n" ^ text
        | _ -> text
      in
      let k = 1 + Rng.int rng 4 in
      let diags = Lint.check_text ~k text in
      let accepted = match Run_format.of_string text with
        | _ -> true
        | exception _ -> false
      in
      (* Accepted text never produces a parse-error diagnostic; rejected
         text produces exactly one. *)
      if accepted then with_code "SSG000" diags = []
      else codes diags = [ "SSG000" ])

(* Well-formed generated adversaries lint clean: no errors at k = min_k
   (and none without a k at all). *)
let prop_generated_lint_clean =
  QCheck2.Test.make ~count:200
    ~name:"generated adversaries lint clean at k = min_k"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 2 + Rng.int rng 8 in
      let adv =
        match Rng.int rng 6 with
        | 0 -> Build.synchronous ~n
        | 1 -> Build.block_sources rng ~n ~k:(1 + Rng.int rng (min 3 n)) ~prefix_len:(Rng.int rng 3) ()
        | 2 -> Build.partitioned rng ~n ~blocks:(1 + Rng.int rng (min 3 (n - 1))) ~prefix_len:(Rng.int rng 3) ()
        | 3 -> Build.single_root rng ~n ~prefix_len:(Rng.int rng 3) ()
        | 4 -> Build.lower_bound ~n ~k:(1 + Rng.int rng (max 1 (n - 1)))
        | _ -> Build.arbitrary rng ~n ~density:(Rng.float rng) ~prefix_len:(Rng.int rng 3) ()
      in
      (not (Lint.has_errors (Lint.check adv)))
      && not (Lint.has_errors (Lint.check ~k:(Adversary.min_k adv) adv)))

(* Recurrent runs have no serialized form, but the in-memory API must
   still analyze them without raising. *)
let prop_recurrent_never_raises =
  QCheck2.Test.make ~count:100 ~name:"lint handles recurrent runs"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 2 + Rng.int rng 6 in
      let adv =
        Build.with_recurrent_noise rng (Build.synchronous ~n)
          ~noise:(Rng.float rng)
      in
      let diags = Lint.check ~k:1 adv in
      (* Synchronous core: one source component, so never an SSG001. *)
      with_code "SSG001" diags = [])

let tests =
  [
    Alcotest.test_case "Psrcs(k) unsatisfiable" `Quick
      test_psrcs_unsatisfiable;
    Alcotest.test_case "Psrcs(k) profile infos" `Quick
      test_psrcs_profile_infos;
    Alcotest.test_case "parse failure is SSG000" `Quick
      test_parse_failure_is_ssg000;
    Alcotest.test_case "degenerate n is SSG000" `Quick
      test_degenerate_n_is_ssg000;
    Alcotest.test_case "text-level warnings" `Quick test_text_level_warnings;
    Alcotest.test_case "empty rounds / isolation" `Quick
      test_empty_round_and_isolation;
    Alcotest.test_case "stabilization info" `Quick test_stabilization_info;
    Alcotest.test_case "in-memory check" `Quick test_check_in_memory;
    Alcotest.test_case "human reporter" `Quick test_human_report;
    Alcotest.test_case "json reporter" `Quick test_json_report;
    Alcotest.test_case "summary and strictness" `Quick
      test_summary_and_strictness;
    Alcotest.test_case "gate" `Quick test_gate;
    Alcotest.test_case "engine front door" `Quick test_engine_front_door;
    Alcotest.test_case "engine batch with rejection" `Quick
      test_engine_batch_mixed;
    Alcotest.test_case "ssgd rejects at submit (e2e)" `Quick
      test_ssgd_rejects_at_submit;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_never_raises; prop_generated_lint_clean; prop_recurrent_never_raises ]
