(* Tests for the durable result store: CRC-32 vectors, record framing
   (round-trip + one-byte-mutation qcheck fuzz), journal group commit
   and torn-tail recovery, snapshot atomicity, generation compaction,
   the outcome string codec, engine warm boot, and an end-to-end
   crash-recovery run: a server with an injected torn write is killed
   and restarted, and the longest valid journal prefix must come back
   as cache hits. *)

open Ssg_util
open Ssg_adversary
open Ssg_engine
open Ssg_store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ssg-store-test-%d-%d" (Unix.getpid ()) !dir_counter)

let fresh_path name =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ssg-store-test-%d-%d-%s" (Unix.getpid ()) !dir_counter name)

(* --- Crc32 --- *)

let test_crc32_vectors () =
  (* The IEEE 802.3 check value: crc32("123456789") = 0xCBF43926. *)
  check "check value" true (Crc32.digest "123456789" = 0xCBF43926l);
  check "empty" true (Crc32.digest "" = 0l);
  let a = "stable skeleton" and b = " graphs" in
  check "update continues a digest" true
    (Crc32.update (Crc32.digest a) b 0 (String.length b)
    = Crc32.digest (a ^ b));
  check "ranged digest" true
    (Crc32.digest ~pos:2 ~len:3 "xx123xx" = Crc32.digest "123")

(* --- Record --- *)

let test_record_roundtrip () =
  let cases =
    [
      ("key", "value");
      ("", "");
      ("k", "");
      ("", "v");
      ("bin\000\255key", String.init 300 (fun i -> Char.chr (i mod 256)));
    ]
  in
  List.iter
    (fun (key, value) ->
      check "round-trip" true (Record.unframe (Record.frame ~key ~value) = (key, value)))
    cases;
  check "oversized record refused" true
    (try
       ignore (Record.frame ~key:"k" ~value:(String.make (Record.max_record_bytes + 1) 'x'));
       false
     with Failure _ -> true)

let test_record_scan_longest_prefix () =
  let r1 = Record.frame ~key:"a" ~value:"1" in
  let r2 = Record.frame ~key:"b" ~value:"22" in
  let r3 = Record.frame ~key:"c" ~value:"333" in
  let torn_tail = String.sub r1 0 (String.length r1 / 2) in
  let image = r1 ^ r2 ^ r3 ^ torn_tail in
  let seen = ref [] in
  let r = Record.scan image ~f:(fun ~key ~value -> seen := (key, value) :: !seen) in
  check_int "valid records delivered" 3 r.Record.records;
  check_int "valid_bytes is the clean prefix"
    (String.length r1 + String.length r2 + String.length r3)
    r.Record.valid_bytes;
  check "torn flagged" true r.Record.torn;
  check "records in file order" true
    (List.rev !seen = [ ("a", "1"); ("b", "22"); ("c", "333") ]);
  (* A clean image reports no tear; garbage-only is an empty torn walk. *)
  let clean = Record.scan (r1 ^ r2) ~f:(fun ~key:_ ~value:_ -> ()) in
  check "clean image not torn" false clean.Record.torn;
  let garbage = Record.scan "not a record" ~f:(fun ~key:_ ~value:_ -> ()) in
  check_int "garbage yields nothing" 0 garbage.Record.records;
  check "garbage is torn" true garbage.Record.torn

(* Satellite: the decoder contract under single-byte corruption.  CRC-32
   detects every one-byte error, so [unframe] must raise [Failure] — and
   only [Failure] — for any one-byte mutation of a framed record. *)
let prop_record_mutation_fuzz =
  QCheck2.Test.make ~count:300
    ~name:"store record: any one-byte mutation is rejected with Failure"
    QCheck2.Gen.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let gen_str n = String.init (Rng.int rng n) (fun _ -> Char.chr (Rng.int rng 256)) in
      let key = gen_str 20 and value = gen_str 64 in
      let framed = Record.frame ~key ~value in
      let b = Bytes.of_string framed in
      let pos = Rng.int rng (Bytes.length b) in
      let delta = 1 + Rng.int rng 255 in
      Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xff));
      match Record.unframe (Bytes.to_string b) with
      | _ -> false (* a corrupt record must never decode *)
      | exception Failure _ -> true
      | exception _ -> false)

(* --- Journal --- *)

let test_journal_roundtrip_and_group_commit () =
  let path = fresh_path "journal.log" in
  let j = Journal.open_append ~fsync_every:2 path in
  for i = 1 to 4 do
    check "append accepted" true
      (Journal.append j ~key:(Printf.sprintf "k%d" i) ~value:(Printf.sprintf "v%d" i))
  done;
  check_int "group commit: one fsync per 2 records" 2 (Journal.fsyncs j);
  Journal.close j;
  let seen = ref [] in
  let r = Journal.recover path ~f:(fun ~key ~value -> seen := (key, value) :: !seen) in
  check_int "all records recovered" 4 r.Record.records;
  check "no tear" false r.Record.torn;
  check "append order preserved" true
    (List.rev !seen = [ ("k1", "v1"); ("k2", "v2"); ("k3", "v3"); ("k4", "v4") ]);
  Sys.remove path;
  (* fsync_every 0: the OS decides, no fsync issued by us. *)
  let path = fresh_path "journal-nosync.log" in
  let j = Journal.open_append ~fsync_every:0 path in
  ignore (Journal.append j ~key:"k" ~value:"v");
  check_int "never-sync issues no fsync on append" 0 (Journal.fsyncs j);
  Journal.close j;
  Sys.remove path

let test_journal_torn_write_wedges_and_recovers () =
  let path = fresh_path "journal-torn.log" in
  let j = Journal.open_append ~fsync_every:1 path in
  check "first append lands" true (Journal.append j ~key:"a" ~value:"1");
  check "second append lands" true (Journal.append j ~key:"b" ~value:"2");
  let bytes_before = Journal.bytes j in
  check "torn append reports failure" false
    (Journal.append ~torn:true j ~key:"c" ~value:"3");
  check "handle wedged" true (Journal.wedged j);
  check "torn tail on disk" true (Journal.bytes j > bytes_before);
  check "later appends dropped" false (Journal.append j ~key:"d" ~value:"4");
  check_int "dropped append wrote nothing"
    (Journal.bytes j)
    ((Unix.stat path).Unix.st_size);
  Journal.close j;
  let seen = ref 0 in
  let r = Journal.recover path ~f:(fun ~key:_ ~value:_ -> incr seen) in
  check_int "longest valid prefix recovered" 2 r.Record.records;
  check "tear detected" true r.Record.torn;
  check_int "callback saw the prefix" 2 !seen;
  check_int "file truncated to the valid prefix" r.Record.valid_bytes
    ((Unix.stat path).Unix.st_size);
  (* Second recovery sees a clean log. *)
  let r2 = Journal.recover path ~f:(fun ~key:_ ~value:_ -> ()) in
  check "clean after truncation" false r2.Record.torn;
  check_int "same records" 2 r2.Record.records;
  Sys.remove path

(* --- Snapshot --- *)

let test_snapshot_roundtrip () =
  let path = fresh_path "snapshot.ssg" in
  let entries = List.init 10 (fun i -> (Printf.sprintf "k%d" i, String.make i 'v')) in
  check_int "write count" 10 (Snapshot.write path entries);
  check "no temp file left behind" false (Sys.file_exists (path ^ ".tmp"));
  let seen = ref [] in
  let r = Snapshot.read path ~f:(fun ~key ~value -> seen := (key, value) :: !seen) in
  check_int "read count" 10 r.Record.records;
  check "list order preserved" true (List.rev !seen = entries);
  (* Rewrite replaces wholesale. *)
  ignore (Snapshot.write path [ ("only", "one") ]);
  let again = ref [] in
  ignore (Snapshot.read path ~f:(fun ~key ~value -> again := (key, value) :: !again));
  check "atomic replace" true (!again = [ ("only", "one") ]);
  Sys.remove path;
  let missing = Snapshot.read path ~f:(fun ~key:_ ~value:_ -> ()) in
  check_int "missing file is an empty snapshot" 0 missing.Record.records;
  check "missing file is not torn" false missing.Record.torn

(* --- Store --- *)

let test_sync_of_string () =
  check "always" true (Store.sync_of_string "always" = Ok Store.Always);
  check "never" true (Store.sync_of_string "Never" = Ok Store.Never);
  check "group" true (Store.sync_of_string "group:8" = Ok (Store.Group 8));
  check "group 1" true (Store.sync_of_string "group:1" = Ok (Store.Group 1));
  check "group 0 refused" true (Result.is_error (Store.sync_of_string "group:0"));
  check "garbage refused" true (Result.is_error (Store.sync_of_string "sometimes"));
  List.iter
    (fun p -> check "round-trip" true
        (Store.sync_of_string (Store.sync_to_string p) = Ok p))
    [ Store.Always; Store.Never; Store.Group 7 ]

let test_store_warm_boot () =
  let dir = fresh_dir () in
  let s = Store.open_ ~sync:Store.Always ~dir () in
  check_int "fresh store replays nothing" 0 (Store.replayed_records s);
  check_int "generation 0" 0 (Store.generation s);
  for i = 1 to 3 do
    check "append" true
      (Store.append s ~key:(Printf.sprintf "k%d" i) ~value:(Printf.sprintf "v%d" i))
  done;
  Store.close s;
  let s2 = Store.open_ ~dir () in
  check_int "warm boot recovers the journal" 3 (Store.replayed_records s2);
  check_int "no torn tails" 0 (Store.torn_recoveries s2);
  let seen = ref [] in
  check_int "replay delivers and counts" 3
    (Store.replay s2 (fun ~key ~value -> seen := (key, value) :: !seen));
  check "file order" true
    (List.rev !seen = [ ("k1", "v1"); ("k2", "v2"); ("k3", "v3") ]);
  check_int "replay consumes" 0 (Store.replay s2 (fun ~key:_ ~value:_ -> ()));
  Store.close s2

let test_store_torn_tail_recovery () =
  let dir = fresh_dir () in
  let s = Store.open_ ~sync:Store.Always ~dir () in
  ignore (Store.append s ~key:"a" ~value:"1");
  ignore (Store.append s ~key:"b" ~value:"2");
  check "torn append fails" false (Store.append ~torn:true s ~key:"c" ~value:"3");
  check "store wedged" true (Store.wedged s);
  check "wedged store refuses compaction" true (Store.compact s ~entries:[] = 0);
  check "wedged store never wants compaction" false (Store.should_compact s);
  Store.close s;
  let s2 = Store.open_ ~dir () in
  check_int "prefix recovered" 2 (Store.replayed_records s2);
  check_int "one torn tail" 1 (Store.torn_recoveries s2);
  check "recovered store is not wedged" false (Store.wedged s2);
  check "appends work again" true (Store.append s2 ~key:"c" ~value:"3");
  Store.close s2;
  let s3 = Store.open_ ~dir () in
  check_int "clean reboot after repair" 3 (Store.replayed_records s3);
  check_int "no new tear" 0 (Store.torn_recoveries s3);
  Store.close s3

let test_store_compaction_rolls_generation () =
  let dir = fresh_dir () in
  let s = Store.open_ ~sync:Store.Never ~compact_bytes:64 ~dir () in
  let rec fill i =
    if not (Store.should_compact s) then begin
      ignore (Store.append s ~key:(Printf.sprintf "key-%d" i) ~value:(String.make 16 'v'));
      fill (i + 1)
    end
  in
  fill 0;
  check "journal outgrew the threshold" true (Store.journal_bytes s > 64);
  let entries = [ ("hot", "1"); ("warm", "2") ] in
  check_int "compaction returns the snapshot size" 2 (Store.compact s ~entries);
  check_int "generation rolled" 1 (Store.generation s);
  check_int "journal reset" 0 (Store.journal_bytes s);
  check "old generation files deleted" false
    (Sys.file_exists (Filename.concat dir "journal-000000.log")
    || Sys.file_exists (Filename.concat dir "snapshot-000000.ssg"));
  check "new snapshot exists" true
    (Sys.file_exists (Filename.concat dir "snapshot-000001.ssg"));
  ignore (Store.append s ~key:"fresh" ~value:"3");
  Store.close s;
  let s2 = Store.open_ ~dir () in
  check_int "boot from CURRENT" 1 (Store.generation s2);
  let seen = ref [] in
  ignore (Store.replay s2 (fun ~key ~value -> seen := (key, value) :: !seen));
  check "snapshot then journal, file order" true
    (List.rev !seen = [ ("hot", "1"); ("warm", "2"); ("fresh", "3") ]);
  Store.close s2;
  (* Losing CURRENT falls back to the directory scan. *)
  Sys.remove (Filename.concat dir "CURRENT");
  let s3 = Store.open_ ~dir () in
  check_int "generation rediscovered without CURRENT" 1 (Store.generation s3);
  check_int "records survive" 3 (Store.replayed_records s3);
  Store.close s3

(* --- Outcome string codec --- *)

let sample_outcome () : Job.outcome =
  {
    Job.algorithm = "kset";
    n = 4;
    min_k = 2;
    rounds_run = 7;
    decisions = [| Some (1, 3); None; Some (2, 0); Some (7, 1) |];
    distinct_decisions = 3;
    messages_sent = 120;
    messages_delivered = 118;
    bits_sent = 99456;
    violations = [ "agreement: 3 > 2" ];
  }

let test_outcome_codec () =
  let o = sample_outcome () in
  let s = Protocol.outcome_to_string o in
  check "round-trip" true (Protocol.outcome_of_string s = o);
  check "trailing bytes rejected" true
    (try ignore (Protocol.outcome_of_string (s ^ "x")); false
     with Failure _ -> true);
  check "truncation rejected" true
    (try ignore (Protocol.outcome_of_string (String.sub s 0 (String.length s - 1))); false
     with Failure _ -> true);
  check "garbage rejected" true
    (try ignore (Protocol.outcome_of_string "not an outcome"); false
     with Failure _ -> true)

let test_faults_torn_write_spec () =
  match Faults.of_spec "torn-write:3" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      check "round-trippable" true (Faults.spec plan = "torn-write:3");
      let fates = List.init 6 (fun _ -> Faults.on_append plan) in
      check "fires on exactly every 3rd append" true
        (fates
        = [ Faults.Write; Faults.Write; Faults.Torn;
            Faults.Write; Faults.Write; Faults.Torn ])

(* --- Engine warm boot --- *)

let sample_adv ?(seed = 11) ?(n = 6) () =
  Build.block_sources (Rng.of_int seed) ~n ~k:2 ~prefix_len:1 ()

let prom_value text name =
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
             float_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
         | _ -> None)

let test_engine_warm_boot () =
  let dir = fresh_dir () in
  let jobs = List.init 3 (fun i -> Job.make ~k:2 (sample_adv ~seed:i ())) in
  let store = Store.open_ ~sync:Store.Always ~dir () in
  let engine = Engine.create ~workers:2 ~store () in
  let first = Engine.run_batch engine jobs in
  check "all computed fresh" true
    (List.for_all (fun c -> Result.is_ok c.Job.result && not c.Job.cached) first);
  Engine.shutdown engine;
  (* Cold process, same directory: the cache must come back pre-warmed. *)
  let store2 = Store.open_ ~dir () in
  check_int "journal replayed" 3 (Store.replayed_records store2);
  let engine2 = Engine.create ~workers:2 ~store:store2 () in
  let again = Engine.run_batch engine2 jobs in
  check "warm boot serves every job from cache" true
    (List.for_all (fun c -> c.Job.cached) again);
  check "results identical across the restart" true
    (List.for_all2 (fun a b -> a.Job.result = b.Job.result) first again);
  let prom = Engine.prometheus engine2 in
  check "store series spliced into the exposition" true
    (prom_value prom "ssg_store_replayed_total" = Some 3.);
  (* Explicit compaction snapshots the live cache and rolls the generation. *)
  check_int "compaction snapshots the cache" 3 (Engine.compact engine2);
  check_int "generation rolled" 1 (Store.generation store2);
  Engine.shutdown engine2;
  let store3 = Store.open_ ~dir () in
  check_int "snapshot carries the records" 3 (Store.replayed_records store3);
  Store.close store3

(* --- Crash recovery end to end ---

   A server with [torn-write:3] injected and a persist directory: the
   third fresh outcome's append is torn mid-record and wedges the
   journal (simulating a writer killed mid-write), so of 5 completed
   jobs only the first 2 reach the platter.  Restarting over the same
   directory must recover exactly that longest valid prefix — the
   first 2 jobs answer as cache hits, the rest recompute — and the
   torn-tail recovery must show up in the Prometheus exposition. *)

let test_server_crash_recovery () =
  let dir = fresh_dir () in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ssgd-store-test-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let jobs = List.init 5 (fun i -> Job.make ~k:2 (sample_adv ~seed:(100 + i) ())) in
  let faults =
    match Faults.of_spec "torn-write:3" with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let wait_up () =
    let rec go tries =
      if tries = 0 then Alcotest.fail "server did not come up";
      match Client.connect ~socket () with
      | c -> c
      | exception Unix.Unix_error _ ->
          Thread.delay 0.05;
          go (tries - 1)
    in
    go 100
  in
  (* Life 1: one worker so journal appends happen in submission order. *)
  let server1 =
    Thread.create
      (fun () ->
        Server.serve ~workers:1 ~queue_capacity:16 ~cache_capacity:64 ~faults
          ~persist:dir ~persist_sync:Store.Always ~socket ())
      ()
  in
  let c = wait_up () in
  List.iter
    (fun job ->
      let completion = Client.submit c job in
      check "job completed despite the torn journal" true
        (Result.is_ok completion.Job.result))
    jobs;
  Client.shutdown c;
  Client.close c;
  Thread.join server1;
  (* Life 2: same directory, no faults — recover and serve. *)
  let server2 =
    Thread.create
      (fun () ->
        Server.serve ~workers:1 ~queue_capacity:16 ~cache_capacity:64
          ~persist:dir ~socket ())
      ()
  in
  let c = wait_up () in
  let completions = List.map (Client.submit c) jobs in
  let cached = List.map (fun x -> x.Job.cached) completions in
  check "longest valid prefix answers from cache" true
    (List.filteri (fun i _ -> i < 2) cached = [ true; true ]);
  check "torn and wedged-out jobs recompute" true
    (List.filteri (fun i _ -> i >= 2) cached = [ false; false; false ]);
  let prom = Client.metrics_text c in
  check "replayed records exported" true
    (prom_value prom "ssg_store_replayed_total" = Some 2.);
  check "torn-tail recovery exported" true
    (prom_value prom "ssg_store_torn_tail_recoveries_total" = Some 1.);
  Client.shutdown c;
  Client.close c;
  Thread.join server2;
  (* Life 3: everything recomputed in life 2 was journaled again — a
     third boot serves all 5 from the platter. *)
  let server3 =
    Thread.create
      (fun () ->
        Server.serve ~workers:1 ~queue_capacity:16 ~cache_capacity:64
          ~persist:dir ~socket ())
      ()
  in
  let c = wait_up () in
  let completions = List.map (Client.submit c) jobs in
  check "full fleet of hits after a clean life" true
    (List.for_all (fun x -> x.Job.cached) completions);
  Client.shutdown c;
  Client.close c;
  Thread.join server3

let tests =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "record round-trip" `Quick test_record_roundtrip;
    Alcotest.test_case "record scan: longest valid prefix" `Quick
      test_record_scan_longest_prefix;
    Alcotest.test_case "journal round-trip + group commit" `Quick
      test_journal_roundtrip_and_group_commit;
    Alcotest.test_case "journal torn write wedges + recovers" `Quick
      test_journal_torn_write_wedges_and_recovers;
    Alcotest.test_case "snapshot atomic round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "sync policy parsing" `Quick test_sync_of_string;
    Alcotest.test_case "store warm boot" `Quick test_store_warm_boot;
    Alcotest.test_case "store torn-tail recovery" `Quick
      test_store_torn_tail_recovery;
    Alcotest.test_case "store compaction rolls the generation" `Quick
      test_store_compaction_rolls_generation;
    Alcotest.test_case "outcome string codec" `Quick test_outcome_codec;
    Alcotest.test_case "faults: torn-write spec" `Quick
      test_faults_torn_write_spec;
    Alcotest.test_case "engine warm boot" `Quick test_engine_warm_boot;
    Alcotest.test_case "server crash recovery end-to-end" `Quick
      test_server_crash_recovery;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_record_mutation_fuzz ]
