(* ssg — command-line front end.

   Subcommands:
     run         simulate Algorithm 1 (or a baseline) on a generated run
     figure1     reproduce the paper's Figure 1
     experiment  run one experiment (F1, E1..E8, A1) or all of them
     check       build a run description and report its predicate profile
     dot         export a run's stable skeleton as Graphviz
     serve       run the ssgd simulation service on a Unix-domain socket
     route       front N ssgd workers with a consistent-hash router
     submit      send one job, a --repeat batch, or FILE... to a service
     stats       query a running ssgd's metrics (text, --json or --prom)
     trace       record a Chrome trace of a run (or pull one from ssgd)
     shutdown    gracefully stop a running ssgd (or router)
     sweep       fan an (n, k, family) grid across the engine pool *)

open Cmdliner
open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_adversary
open Ssg_sim

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let verbose_arg =
  let doc = "Log per-round execution details to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let seed_arg =
  let doc = "Random seed (experiments are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let n_arg =
  let doc = "Number of processes." in
  Arg.(value & opt int 8 & info [ "n"; "processes" ] ~docv:"N" ~doc)

let k_arg =
  let doc = "Agreement parameter k." in
  Arg.(value & opt int 2 & info [ "k"; "agreement" ] ~docv:"K" ~doc)

let family_arg =
  let doc =
    "Adversary family: block-sources | partitioned | single-root | \
     lower-bound | synchronous | arbitrary | figure1."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("block-sources", `Block);
             ("partitioned", `Partitioned);
             ("single-root", `Single);
             ("lower-bound", `Lower);
             ("synchronous", `Sync);
             ("arbitrary", `Arbitrary);
             ("figure1", `Figure1);
           ])
        `Block
    & info [ "family"; "f" ] ~docv:"FAMILY" ~doc)

let prefix_arg =
  let doc = "Length of the noisy pre-stabilization prefix." in
  Arg.(value & opt int 0 & info [ "prefix" ] ~docv:"ROUNDS" ~doc)

let load_arg =
  let doc = "Load the run description from FILE instead of generating one." in
  Arg.(value & opt (some file) None & info [ "load" ] ~docv:"FILE" ~doc)

let build_adversary ?load family ~n ~k ~prefix ~seed =
  match load with
  | Some path ->
      (* Advisory lint on loaded runs: surface problems (an unsatisfiable
         Psrcs(k), near-miss edges, ...) on stderr but still run the
         scenario — watching a doomed run fail is a legitimate use. *)
      let text = In_channel.with_open_bin path In_channel.input_all in
      let advisory =
        Ssg_lint.Lint.check_text ~k text
        |> List.filter (fun d ->
               d.Ssg_lint.Diagnostic.severity <> Ssg_lint.Diagnostic.Info)
      in
      if advisory <> [] then
        prerr_string (Ssg_lint.Report.human ~file:path ~src:text advisory);
      Run_format.of_string text
  | None ->
  let rng = Rng.of_int seed in
  match family with
  | `Block -> Build.block_sources rng ~n ~k ~prefix_len:prefix ()
  | `Partitioned -> Build.partitioned rng ~n ~blocks:k ~prefix_len:prefix ()
  | `Single -> Build.single_root rng ~n ~prefix_len:prefix ()
  | `Lower -> Build.lower_bound ~n ~k
  | `Sync -> Build.synchronous ~n
  | `Arbitrary -> Build.arbitrary rng ~n ~density:0.25 ~prefix_len:prefix ()
  | `Figure1 -> Build.figure1 ()

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let print_report (r : Runner.report) =
  Printf.printf "adversary   : %s\n" r.Runner.adversary;
  Printf.printf "algorithm   : %s\n" r.Runner.algorithm;
  Printf.printf "n           : %d\n" r.Runner.n;
  Printf.printf "min_k       : %d   (least k with Psrcs(k))\n" r.Runner.min_k;
  Printf.printf "roots       : %d\n" (Analysis.root_count r.Runner.analysis);
  List.iteri
    (fun i root ->
      Printf.printf "  root %d    : %s\n" (i + 1) (Bitset.to_string root))
    (Analysis.roots r.Runner.analysis);
  let o = r.Runner.outcome in
  Printf.printf "rounds run  : %d\n" o.Executor.rounds_run;
  Printf.printf "decisions   : %s (%d distinct)\n"
    (String.concat ", " (List.map string_of_int (Executor.decision_values o)))
    (Metrics.distinct_decisions o);
  Array.iteri
    (fun p d ->
      match d with
      | Some { Executor.round; value } ->
          Printf.printf "  p%-3d      : decides %d at round %d\n" (p + 1) value round
      | None -> Printf.printf "  p%-3d      : UNDECIDED\n" (p + 1))
    o.Executor.decisions;
  Printf.printf "messages    : %d sent, %d delivered\n" o.Executor.messages_sent
    o.Executor.messages_delivered;
  Printf.printf "bits        : %d total, largest message %d bits\n"
    o.Executor.bits_sent o.Executor.max_message_bits;
  let v = Metrics.verdict ~k:r.Runner.min_k r in
  Printf.printf "verdict     : agreement=%b validity=%b termination=%b\n"
    v.Metrics.agreement v.Metrics.validity v.Metrics.termination;
  if r.Runner.violations <> [] then begin
    Printf.printf "MONITOR VIOLATIONS (%d):\n" (List.length r.Runner.violations);
    List.iter (fun s -> Printf.printf "  %s\n" s) r.Runner.violations
  end
  else Printf.printf "monitors    : clean\n"

let run_cmd =
  let monitor_arg =
    let doc = "Shadow the run with the lemma monitors (Lemmas 3-7, Thm 8)." in
    Arg.(value & flag & info [ "monitor"; "m" ] ~doc)
  in
  let baseline_arg =
    let doc = "Run a baseline instead: floodmin | flood-consensus | naive." in
    Arg.(
      value
      & opt
          (some (enum [ ("floodmin", `Floodmin); ("flood-consensus", `Cons); ("naive", `Naive) ]))
          None
      & info [ "baseline" ] ~docv:"ALG" ~doc)
  in
  let timeline_arg =
    let doc = "Render a per-round timeline of the run instead of details." in
    Arg.(value & flag & info [ "timeline"; "t" ] ~doc)
  in
  let series_arg =
    let doc = "Print per-round series sparklines (add --csv for raw data)." in
    Arg.(value & flag & info [ "series" ] ~doc)
  in
  let series_csv_arg =
    let doc = "With --series: emit CSV instead of sparklines." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let action verbose family n k prefix seed load monitor baseline timeline
      series series_csv =
    setup_logs verbose;
    let adv = build_adversary ?load family ~n ~k ~prefix ~seed in
    if series then begin
      let samples = Series.collect adv in
      if series_csv then print_string (Series.to_csv samples)
      else begin
        print_endline (Series.summary samples);
        Printf.printf "(%d rounds; --csv for raw data)\n" (List.length samples)
      end
    end
    else if timeline then begin
      print_string
        (Render.timeline adv ~rounds:(Adversary.decision_horizon adv));
      print_newline ();
      print_endline "stable skeleton:";
      print_string (Render.matrix (Adversary.stable_skeleton adv))
    end
    else
    let report =
      match baseline with
      | None -> Runner.run_kset ~monitor adv
      | Some `Floodmin ->
          let rounds = Ssg_baselines.Floodmin.rounds_for ~f:(n / 2) ~k in
          Runner.run_packed (Ssg_baselines.Floodmin.make ~rounds) adv
      | Some `Cons ->
          Runner.run_packed (Ssg_baselines.Flood_consensus.make ~f:(n / 2)) adv
      | Some `Naive ->
          Runner.run_packed (Ssg_baselines.Naive_min.make ~horizon:n) adv
    in
    print_report report
  in
  let doc = "Simulate one run and print decisions, metrics and verdicts." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const action $ verbose_arg $ family_arg $ n_arg $ k_arg $ prefix_arg
      $ seed_arg $ load_arg $ monitor_arg $ baseline_arg $ timeline_arg
      $ series_arg $ series_csv_arg)

(* ------------------------------------------------------------------ *)
(* figure1                                                             *)
(* ------------------------------------------------------------------ *)

let figure1_cmd =
  let action () =
    match Experiment.find "F1" with
    | Some e -> print_string (Experiment.run_and_render e `Standard)
    | None -> prerr_endline "internal error: F1 not registered"
  in
  let doc = "Reproduce Figure 1 (the 6-process worked example)." in
  Cmd.v (Cmd.info "figure1" ~doc) Term.(const action $ const ())

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (F1, E1..E8, A1) or 'all'." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let scale_arg =
    let doc = "Scale: quick | standard | full." in
    Arg.(
      value
      & opt (enum [ ("quick", `Quick); ("standard", `Standard); ("full", `Full) ]) `Standard
      & info [ "scale" ] ~docv:"SCALE" ~doc)
  in
  let csv_arg =
    let doc = "Emit the table as CSV (notes omitted)." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let action id scale csv =
    let render e =
      if csv then Experiment.run_to_csv e scale
      else Experiment.run_and_render e scale
    in
    if String.lowercase_ascii id = "all" then begin
      List.iter
        (fun e ->
          print_string (render e);
          print_newline ())
        Experiment.all;
      `Ok ()
    end
    else
      match Experiment.find id with
      | Some e ->
          print_string (render e);
          `Ok ()
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; known: %s, all" id
                (String.concat ", " (List.map (fun e -> e.Experiment.id) Experiment.all)) )
  in
  let doc = "Regenerate an experiment table (or all of them)." in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(ret (const action $ id_arg $ scale_arg $ csv_arg))

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let save_arg =
    let doc = "Also save the run description to FILE (ssg-run v1 format)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let action family n k prefix seed load save =
    let adv = build_adversary ?load family ~n ~k ~prefix ~seed in
    (match save with
    | Some path ->
        Run_format.save adv path;
        Printf.printf "saved run description to %s\n" path
    | None -> ());
    let skel = Adversary.stable_skeleton adv in
    let a = Analysis.analyze skel in
    Printf.printf "adversary      : %s\n" (Adversary.name adv);
    Printf.printf "n              : %d\n" (Adversary.n adv);
    Printf.printf "prefix length  : %d\n" (Adversary.prefix_length adv);
    Printf.printf "skeleton edges : %d (self-loops included)\n"
      (Digraph.edge_count skel);
    Printf.printf "components     : %d\n" (Analysis.partition a).Scc.count;
    Printf.printf "root components: %d\n" (Analysis.root_count a);
    List.iteri
      (fun i root ->
        Printf.printf "  root %d       : %s\n" (i + 1) (Bitset.to_string root))
      (Analysis.roots a);
    let mk = Adversary.min_k adv in
    Printf.printf "min_k          : %d (Psrcs(k) holds iff k >= %d)\n" mk mk;
    let pts = Adversary.pts adv in
    (match Ssg_predicates.Predicate.psrcs_violation pts ~k:(max 1 (mk - 1)) with
    | Some s when mk > 1 ->
        Printf.printf "witness        : %s is pairwise source-disjoint (defeats k=%d)\n"
          (Bitset.to_string s) (mk - 1)
    | _ -> ());
    Printf.printf "decision bound : all processes decide by round %d (Lemma 11)\n"
      (Adversary.decision_horizon adv)
  in
  let doc = "Analyze a run description: skeleton, roots, predicate profile." in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const action $ family_arg $ n_arg $ k_arg $ prefix_arg $ seed_arg
      $ load_arg $ save_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)
(* ------------------------------------------------------------------ *)

let dot_cmd =
  let what_arg =
    let doc = "What to export: skeleton | round1 | roots." in
    Arg.(
      value
      & opt (enum [ ("skeleton", `Skeleton); ("round1", `Round1); ("roots", `Roots) ]) `Skeleton
      & info [ "what" ] ~docv:"WHAT" ~doc)
  in
  let action family n k prefix seed load what =
    let adv = build_adversary ?load family ~n ~k ~prefix ~seed in
    let out =
      match what with
      | `Skeleton ->
          Dot.of_digraph ~name:"stable_skeleton" (Adversary.stable_skeleton adv)
      | `Round1 -> Dot.of_digraph ~name:"round1" (Adversary.graph adv 1)
      | `Roots ->
          let skel = Adversary.stable_skeleton adv in
          Dot.of_digraph_with_components ~name:"roots" skel
            (Analysis.roots (Analysis.analyze skel))
    in
    print_string out
  in
  let doc = "Export a run's graphs as Graphviz DOT on stdout." in
  Cmd.v
    (Cmd.info "dot" ~doc)
    Term.(
      const action $ family_arg $ n_arg $ k_arg $ prefix_arg $ seed_arg
      $ load_arg $ what_arg)

(* ------------------------------------------------------------------ *)
(* shrink                                                              *)
(* ------------------------------------------------------------------ *)

let shrink_cmd =
  let out_arg =
    let doc = "Write the shrunk run description to FILE." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let hunt_arg =
    let doc =
      "Instead of loading a run, hunt for a Theorem 16 violation (paper        decision rule deciding more than min_k values) and shrink it."
    in
    Arg.(value & flag & info [ "hunt" ] ~doc)
  in
  let violates adv =
    let r = Runner.run_kset adv in
    Metrics.distinct_decisions r.Runner.outcome > r.Runner.min_k
  in
  let action load hunt out =
    let candidate =
      if hunt then begin
        let found = ref None in
        let i = ref 0 in
        while !found = None && !i < 5000 do
          let rng = Rng.of_int (424242 + !i) in
          let n = 6 + Rng.int rng 4 in
          let adv =
            Build.block_sources rng ~n ~k:(1 + Rng.int rng 2)
              ~prefix_len:(2 + Rng.int rng 3) ~noise:0.5 ()
          in
          if violates adv then found := Some adv;
          incr i
        done;
        !found
      end
      else
        Option.map
          (fun path ->
            let adv = Run_format.load path in
            let advisory =
              Ssg_lint.Lint.check adv
              |> List.filter (fun d ->
                     d.Ssg_lint.Diagnostic.severity
                     = Ssg_lint.Diagnostic.Warning)
            in
            if advisory <> [] then
              prerr_string (Ssg_lint.Report.human ~file:path advisory);
            adv)
          load
    in
    match candidate with
    | None ->
        `Error
          (false, "nothing to shrink: pass --load FILE or --hunt")
    | Some adv ->
        if not (violates adv) then
          `Error (false, "the loaded run does not violate Theorem 16 at min_k")
        else begin
          Printf.printf "input : n=%d prefix=%d (size %d)\n" (Adversary.n adv)
            (Adversary.prefix_length adv) (Shrink.size adv);
          let shrunk, checks = Shrink.minimize violates adv in
          Printf.printf "shrunk: n=%d prefix=%d (size %d) after %d checks\n\n"
            (Adversary.n shrunk)
            (Adversary.prefix_length shrunk)
            (Shrink.size shrunk) checks;
          print_string (Run_format.to_string shrunk);
          (match out with
          | Some path ->
              Run_format.save shrunk path;
              Printf.printf "\nwritten to %s\n" path
          | None -> ());
          `Ok ()
        end
  in
  let doc =
    "Minimize a Theorem 16 counterexample (QuickCheck-style shrinking over      run descriptions)."
  in
  Cmd.v
    (Cmd.info "shrink" ~doc)
    Term.(ret (const action $ load_arg $ hunt_arg $ out_arg))

(* ------------------------------------------------------------------ *)
(* timing                                                              *)
(* ------------------------------------------------------------------ *)

let timing_cmd =
  let clusters_arg =
    let doc = "Number of latency clusters (fast links inside, slow across)." in
    Arg.(value & opt int 3 & info [ "clusters" ] ~docv:"C" ~doc)
  in
  let tau_arg =
    let doc = "Round timeout (same for every process)." in
    Arg.(value & opt float 1.0 & info [ "tau" ] ~docv:"T" ~doc)
  in
  let action n clusters tau seed =
    let assign = Array.init n (fun p -> p mod clusters) in
    let latency =
      Ssg_timing.Latency.clustered ~assign
        ~intra:(Ssg_timing.Latency.uniform ~seed ~lo:0.1 ~hi:0.5)
        ~inter:(Ssg_timing.Latency.uniform ~seed:(seed + 1) ~lo:0.5 ~hi:3.0)
    in
    let r =
      Ssg_timing.Round_sync.run_kset
        ~timeouts:(Array.make n tau)
        ~inputs:(Array.init n (fun p -> p))
        ~latency ~max_rounds:(3 * n) ()
    in
    let skel = Skeleton.final r.Ssg_timing.Round_sync.trace in
    let a = Analysis.analyze skel in
    Printf.printf
      "n=%d clusters=%d tau=%.2f: %d rounds simulated, final time %.2f
" n
      clusters tau r.Ssg_timing.Round_sync.rounds
      r.Ssg_timing.Round_sync.final_time;
    Printf.printf "induced skeleton: %d edges, %d root component(s), min_k=%d
"
      (Digraph.edge_count skel) (Analysis.root_count a)
      (Ssg_predicates.Predicate.min_k (Ssg_predicates.Predicate.of_skeleton skel));
    Printf.printf "messages: %d sent, %d consumed, %d late-dropped
"
      r.Ssg_timing.Round_sync.messages_sent
      r.Ssg_timing.Round_sync.messages_delivered
      r.Ssg_timing.Round_sync.messages_late;
    Array.iteri
      (fun p d ->
        match d with
        | Some { Ssg_timing.Round_sync.round; value } ->
            Printf.printf "  p%-3d decides %d at local round %d
" (p + 1)
              value round
        | None -> Printf.printf "  p%-3d undecided
" (p + 1))
      r.Ssg_timing.Round_sync.decisions;
    print_newline ();
    print_endline "induced stable skeleton:";
    print_string (Render.matrix skel)
  in
  let doc =
    "Run Algorithm 1 on the discrete-event timing substrate (latency      clusters; predicates are emergent)."
  in
  Cmd.v
    (Cmd.info "timing" ~doc)
    Term.(const action $ n_arg $ clusters_arg $ tau_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* service mode: serve / submit / stats / shutdown                     *)
(* ------------------------------------------------------------------ *)

(* Every flag that names a service endpoint goes through the one shared
   parser, so unix:PATH, tcp:HOST:PORT and bare paths mean the same
   thing on every surface and a typo is caught at the command line, not
   as a confusing connect error. *)
let addr_conv =
  let parse s =
    match Ssg_net.Transport.of_string s with
    | Ok _ -> Ok s
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Format.pp_print_string)

let socket_arg =
  let doc =
    "Address of the ssgd service: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a      bare Unix-socket path."
  in
  Arg.(
    value
    & opt addr_conv
        (Filename.concat (Filename.get_temp_dir_name ()) "ssgd.sock")
    & info [ "socket"; "s" ] ~docv:"ADDR" ~doc)

let serve_cmd =
  let workers_arg =
    let doc = "Worker domains (default: all cores but one, at least 1)." in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"W" ~doc)
  in
  let queue_arg =
    let doc = "Job queue capacity (submissions block when full)." in
    Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"JOBS" ~doc)
  in
  let cache_arg =
    let doc = "LRU result-cache capacity in entries (0 disables)." in
    Arg.(value & opt int 1024 & info [ "cache-cap" ] ~docv:"ENTRIES" ~doc)
  in
  let max_conn_arg =
    let doc =
      "Maximum concurrent client connections; extra connections are        refused with an error reply."
    in
    Arg.(value & opt int 256 & info [ "max-connections" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Pipelined (id-framed) requests running concurrently per        connection; past the cap the connection's reader serves requests        inline, back-pressuring the client."
    in
    Arg.(value & opt int 32 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let read_timeout_arg =
    let doc =
      "Per-connection read timeout in seconds — half-open or stalled        clients are reaped after this long (0 disables)."
    in
    Arg.(value & opt float 30. & info [ "read-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let drain_timeout_arg =
    let doc =
      "On shutdown, wait this long for live connections to finish before        abandoning them."
    in
    Arg.(value & opt float 5. & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let chaos_arg =
    let doc =
      "Fault-injection plan (chaos mode): comma-separated        crash:N | slow:N | slow:N@MS | corrupt:N | truncate:N |        blackhole:N | torn-write:N — every N-th job execution crashes /        sleeps MS milliseconds, every N-th reply frame is corrupted /        truncated / silently swallowed (a simulated partition), every        N-th journal append is torn mid-record.  'off' disables."
    in
    Arg.(value & opt string "off" & info [ "chaos" ] ~docv:"PLAN" ~doc)
  in
  let trace_arg =
    let doc =
      "Enable in-process tracing: engine phases and reply writes are        recorded into ring buffers a client can pull with $(b,ssg trace        --remote)."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let persist_arg =
    let doc =
      "Directory of the durable result store.  The cache is pre-warmed        from it at boot (warm boot) and every fresh outcome is journaled;        a torn tail from a crashed writer is recovered to the longest        valid prefix and truncated."
    in
    Arg.(value & opt (some string) None & info [ "persist" ] ~docv:"DIR" ~doc)
  in
  let fsync_arg =
    let doc =
      "Journal fsync policy: $(b,always), $(b,never), or $(b,group:N)        (group commit — one fsync per N records)."
    in
    Arg.(value & opt string "group:8" & info [ "fsync" ] ~docv:"POLICY" ~doc)
  in
  let compact_bytes_arg =
    let doc =
      "Journal size in bytes beyond which the store compacts (snapshots        the live cache and truncates the journal)."
    in
    Arg.(
      value
      & opt int (4 * 1024 * 1024)
      & info [ "compact-bytes" ] ~docv:"BYTES" ~doc)
  in
  let announce_arg =
    let doc =
      "Router address ($(b,ssg route)'s socket) to announce this worker        to once it is listening: the router admits it into the hash ring        and streams it the hot keys it now owns (warm handoff).  A        best-effort Leave is sent at shutdown."
    in
    Arg.(
      value & opt (some addr_conv) None & info [ "announce" ] ~docv:"ADDR" ~doc)
  in
  let action verbose socket workers queue_cap cache_cap max_connections
      max_inflight read_timeout drain_timeout chaos trace persist fsync
      compact_bytes announce =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.App));
    match Ssg_engine.Faults.of_spec chaos with
    | Error msg -> `Error (false, "--chaos: " ^ msg)
    | Ok faults -> (
        match Ssg_store.Store.sync_of_string fsync with
        | Error msg -> `Error (false, "--fsync: " ^ msg)
        | Ok persist_sync ->
            Ssg_engine.Server.serve ?workers ~queue_capacity:queue_cap
              ~cache_capacity:cache_cap ~max_connections ~max_inflight
              ~read_timeout_s:read_timeout ~drain_timeout_s:drain_timeout
              ~faults ~trace ?persist ~persist_sync
              ~persist_compact_bytes:compact_bytes ?announce ~socket ();
            `Ok ())
  in
  let doc =
    "Run the ssgd simulation service: a persistent engine with a domain      worker pool, job dedup and an LRU result cache, served over a      Unix-domain or TCP socket.  Blocks until a client sends shutdown.      With $(b,--persist) the cache survives restarts (journal +      snapshot, crash-safe); with $(b,--announce) the worker joins a      router's hash ring at boot instead of being pre-listed."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const action $ verbose_arg $ socket_arg $ workers_arg $ queue_arg
        $ cache_arg $ max_conn_arg $ max_inflight_arg $ read_timeout_arg
        $ drain_timeout_arg $ chaos_arg $ trace_arg $ persist_arg $ fsync_arg
        $ compact_bytes_arg $ announce_arg))

let route_cmd =
  let backend_arg =
    let doc =
      "Address of one backend ssgd worker — $(b,unix:PATH),        $(b,tcp:HOST:PORT), or a bare path (repeatable).  Jobs are        placed on backends by consistent hashing of their cache key, so        each worker keeps its cache hit rate.  May be omitted entirely:        workers started with $(b,--announce) join the ring at runtime."
    in
    Arg.(value & opt_all addr_conv [] & info [ "backend"; "b" ] ~docv:"ADDR" ~doc)
  in
  let vnodes_arg =
    let doc = "Virtual nodes per backend on the hash ring." in
    Arg.(
      value
      & opt int Ssg_cluster.Ring.default_vnodes
      & info [ "vnodes" ] ~docv:"N" ~doc)
  in
  let down_after_arg =
    let doc =
      "Consecutive probe/forward failures before a backend leaves the        ring (one healthy exchange re-admits it)."
    in
    Arg.(value & opt int 3 & info [ "down-after" ] ~docv:"N" ~doc)
  in
  let probe_interval_arg =
    let doc = "Seconds between health-probe sweeps over the backends." in
    Arg.(value & opt float 1. & info [ "probe-interval" ] ~docv:"SECONDS" ~doc)
  in
  let probe_timeout_arg =
    let doc = "Reply deadline of one health probe." in
    Arg.(value & opt float 1. & info [ "probe-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let request_timeout_arg =
    let doc =
      "Reply deadline of one forwarded exchange — a mute backend becomes        a failover after this long, not a hang."
    in
    Arg.(value & opt float 30. & info [ "request-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_conn_arg =
    let doc = "Maximum concurrent client connections on the front socket." in
    Arg.(value & opt int 256 & info [ "max-connections" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Pipelined (id-framed) requests running concurrently per front        connection."
    in
    Arg.(value & opt int 32 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let read_timeout_arg =
    let doc = "Per-connection read timeout on the front socket (0 disables)." in
    Arg.(value & opt float 30. & info [ "read-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let drain_timeout_arg =
    let doc =
      "On shutdown, wait this long for live connections to finish before        abandoning them."
    in
    Arg.(value & opt float 5. & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let trace_arg =
    let doc =
      "Enable in-process tracing: routing spans and failover instants,        pullable with $(b,ssg trace --remote)."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let action verbose socket backends vnodes down_after probe_interval
      probe_timeout request_timeout max_connections max_inflight read_timeout
      drain_timeout trace =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.App));
    match
      Ssg_cluster.Router.serve ~vnodes ~down_after
        ~probe_interval_s:probe_interval ~probe_timeout_s:probe_timeout
        ~request_timeout_s:request_timeout ~max_connections ~max_inflight
        ~read_timeout_s:read_timeout ~drain_timeout_s:drain_timeout ~trace
        ~backends ~socket ()
    with
    | () -> `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  let doc =
    "Front N independent ssgd workers with one routing socket: clients      speak the ordinary ssgd protocol to it, jobs are sharded over the      workers by consistent hashing of their cache keys, a health-probed      registry takes dead workers out of the ring, and failed forwards      retry on the successor shard.  Stats and metrics are merged across      the fleet."
  in
  Cmd.v
    (Cmd.info "route" ~doc)
    Term.(
      ret
        (const action $ verbose_arg $ socket_arg $ backend_arg $ vnodes_arg
        $ down_after_arg $ probe_interval_arg $ probe_timeout_arg
        $ request_timeout_arg $ max_conn_arg $ max_inflight_arg
        $ read_timeout_arg $ drain_timeout_arg $ trace_arg))

let submit_cmd =
  let monitor_arg =
    let doc = "Shadow the run with the lemma monitors (Algorithm 1 only)." in
    Arg.(value & flag & info [ "monitor"; "m" ] ~doc)
  in
  let algorithm_arg =
    let doc =
      "Algorithm: kset | floodmin | flood-consensus | naive-min."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("kset", Ssg_engine.Job.Kset);
               ("floodmin", Ssg_engine.Job.Floodmin);
               ("flood-consensus", Ssg_engine.Job.Flood_consensus);
               ("naive-min", Ssg_engine.Job.Naive_min);
             ])
          Ssg_engine.Job.Kset
      & info [ "algorithm"; "a" ] ~docv:"ALG" ~doc)
  in
  let rounds_arg =
    let doc = "Round budget (default: the run's decision horizon)." in
    Arg.(value & opt (some int) None & info [ "rounds" ] ~docv:"R" ~doc)
  in
  let repeat_arg =
    let doc =
      "Submit the job description COUNT times as one batch, varying the        seed — a quick way to exercise the worker pool and the cache from        the command line."
    in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"COUNT" ~doc)
  in
  let quiet_arg =
    let doc = "Print only the one-line per-job summary." in
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-reply deadline in seconds: fail instead of waiting forever on        an unresponsive server."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let sockets_arg =
    let doc =
      "Address of the ssgd service or router — $(b,unix:PATH),        $(b,tcp:HOST:PORT), or a bare path (repeatable: with several, each        connection attempt walks the list in order and fails over to the        next address)."
    in
    Arg.(value & opt_all addr_conv [] & info [ "socket"; "s" ] ~docv:"ADDR" ~doc)
  in
  let files_arg =
    let doc =
      "Run description files to submit as one batch over one connection        (per-file result lines; exit 1 if any file fails to parse or        errors server-side).  Without files, a run is generated from the        $(b,run)-style options instead."
    in
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let default_socket =
    Filename.concat (Filename.get_temp_dir_name ()) "ssgd.sock"
  in
  let summarize_completion label completion =
    let open Ssg_engine.Job in
    match completion.result with
    | Ok o ->
        Printf.printf
          "%s: %d distinct decision(s), min_k=%d, %d rounds  [%s, %.2f ms]\n"
          label o.distinct_decisions o.min_k o.rounds_run
          (if completion.cached then "cache" else "computed")
          completion.latency_ms;
        true
    | Error msg ->
        Printf.printf "%s: ERROR %s\n" label msg;
        false
  in
  let action sockets family n k prefix seed load algorithm rounds monitor
      repeat quiet deadline_s files =
    let sockets = if sockets = [] then [ default_socket ] else sockets in
    let with_client f =
      let c = Ssg_engine.Client.connect_any ?deadline_s ~sockets () in
      Fun.protect ~finally:(fun () -> Ssg_engine.Client.close c) (fun () -> f c)
    in
    if files <> [] then begin
      if repeat > 1 then
        `Error (false, "--repeat cannot be combined with FILE arguments")
      else begin
        (* Parse every file first: a malformed description costs only its
           own result line, never the batch. *)
        let parsed =
          List.map
            (fun file ->
              let text = In_channel.with_open_bin file In_channel.input_all in
              match Run_format.of_string text with
              | adv ->
                  (file, Ok (Ssg_engine.Job.make ~algorithm ~k ?rounds ~monitor adv))
              | exception Failure msg -> (file, Error msg)
              | exception Invalid_argument msg -> (file, Error msg))
            files
        in
        let jobs = List.filter_map (fun (_, r) -> Result.to_option r) parsed in
        let completions =
          match jobs with [] -> [] | jobs -> with_client (fun c -> Ssg_engine.Client.submit_batch c jobs)
        in
        (* Reassemble in file order: parse failures kept their slot. *)
        let ok = ref true in
        let remaining = ref completions in
        List.iter
          (fun (file, r) ->
            match r with
            | Error msg ->
                Printf.printf "%s: PARSE ERROR %s\n" file msg;
                ok := false
            | Ok _ -> (
                match !remaining with
                | completion :: rest ->
                    remaining := rest;
                    if not (summarize_completion file completion) then ok := false
                | [] ->
                    Printf.printf "%s: ERROR no reply\n" file;
                    ok := false))
          parsed;
        if not !ok then Stdlib.exit 1;
        `Ok ()
      end
    end
    else if repeat < 1 then `Error (false, "--repeat must be >= 1")
    else begin
      let job_of_seed seed =
        let adv = build_adversary ?load family ~n ~k ~prefix ~seed in
        Ssg_engine.Job.make ~algorithm ~k ?rounds ~monitor adv
      in
      let jobs = List.init repeat (fun i -> job_of_seed (seed + i)) in
      with_client (fun c ->
          let completions =
            match jobs with
            | [ job ] -> [ Ssg_engine.Client.submit c job ]
            | jobs -> Ssg_engine.Client.submit_batch c jobs
          in
          List.iteri
            (fun i completion ->
              if quiet || repeat > 1 then
                ignore
                  (summarize_completion (Printf.sprintf "job %-3d" (i + 1))
                     completion)
              else Format.printf "%a" Ssg_engine.Job.pp_completion completion)
            completions);
      `Ok ()
    end
  in
  let doc =
    "Submit work to a running ssgd service (or cluster router): either one      generated run (same options as $(b,run), $(b,--repeat) for a batch),      or run description FILEs sent as one batch over one connection."
  in
  Cmd.v
    (Cmd.info "submit" ~doc)
    Term.(
      ret
        (const action $ sockets_arg $ family_arg $ n_arg $ k_arg $ prefix_arg
        $ seed_arg $ load_arg $ algorithm_arg $ rounds_arg $ monitor_arg
        $ repeat_arg $ quiet_arg $ deadline_arg $ files_arg))

let stats_cmd =
  let json_arg =
    let doc = "Emit the snapshot as a JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let prom_arg =
    let doc =
      "Emit Prometheus text exposition (rendered server-side, including        the per-phase latency histograms)."
    in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let action socket json prom =
    if json && prom then `Error (false, "--json and --prom are exclusive")
    else begin
      let c = Ssg_engine.Client.connect ~socket () in
      Fun.protect
        ~finally:(fun () -> Ssg_engine.Client.close c)
        (fun () ->
          if prom then print_string (Ssg_engine.Client.metrics_text c)
          else begin
            let snapshot = Ssg_engine.Client.stats c in
            if json then
              print_endline (Ssg_engine.Telemetry.json_of_snapshot snapshot)
            else Format.printf "%a" Ssg_engine.Telemetry.pp_snapshot snapshot
          end);
      `Ok ()
    end
  in
  let doc =
    "Print a running ssgd service's metrics snapshot (human-readable,      $(b,--json), or Prometheus $(b,--prom))."
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(ret (const action $ socket_arg $ json_arg $ prom_arg))

let trace_cmd =
  let file_arg =
    let doc =
      "Run description to trace locally (omit when pulling with        $(b,--remote))."
    in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the Chrome trace JSON to $(docv) (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let remote_arg =
    let doc =
      "Pull the trace buffers of a running ssgd (started with        $(b,--trace)) instead of executing locally."
    in
    Arg.(value & flag & info [ "remote" ] ~doc)
  in
  let k_opt_arg =
    let doc =
      "Agreement parameter for the traced job (default: the run's min_k,        which always passes the engine's lint front door)."
    in
    Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K" ~doc)
  in
  let rounds_arg =
    let doc = "Round budget (default: the run's decision horizon)." in
    Arg.(value & opt (some int) None & info [ "rounds" ] ~docv:"R" ~doc)
  in
  let fleet_arg =
    let doc =
      "Pull a stitched fleet trace: ask the service at $(b,--socket) for        per-process tracer reports (a router relays the pull to every        backend) and emit one Chrome trace with per-process tracks, clock        -aligned timestamps and cross-process flow arrows."
    in
    Arg.(value & flag & info [ "fleet" ] ~doc)
  in
  let gateway_arg =
    let doc =
      "With $(b,--fleet): also fetch the HTTP gateway's own report from        $(docv)/trace and stitch it in as the edge process."
    in
    Arg.(value & opt (some string) None & info [ "gateway" ] ~docv:"URL" ~doc)
  in
  let check_arg =
    let doc =
      "Validate the emitted document before writing it: JSON        well-formedness, balanced begin/end per track, and print the        cross-process link count."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  (* Minimal HTTP GET of the gateway's /trace endpoint; raises Failure
     with a printable reason. *)
  let fetch_gateway_report url =
    let rest =
      let p = "http://" in
      if
        String.length url >= String.length p
        && String.lowercase_ascii (String.sub url 0 (String.length p)) = p
      then String.sub url (String.length p) (String.length url - String.length p)
      else url
    in
    let hostport =
      match String.index_opt rest '/' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    let fd =
      Ssg_net.Transport.connect
        (Ssg_net.Transport.of_string_exn ("tcp:" ^ hostport))
    in
    let body =
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let req =
            Printf.sprintf
              "GET /trace HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
              hostport
          in
          ignore (Unix.write_substring fd req 0 (String.length req));
          let buf = Buffer.create 8192 in
          let chunk = Bytes.create 8192 in
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
          in
          drain ();
          let s = Buffer.contents buf in
          let limit = String.length s - 3 in
          let rec find i =
            if i >= limit then None
            else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
            else find (i + 1)
          in
          match find 0 with
          | None -> failwith ("no HTTP reply from gateway " ^ url)
          | Some off -> String.sub s off (String.length s - off))
    in
    match
      Option.bind
        (Ssg_obs.Export.json_of_string body)
        Ssg_obs.Stitch.report_of_json
    with
    | Some report -> report
    | None ->
        failwith ("gateway " ^ url ^ " returned an unparsable trace report")
  in
  let emit_doc out count json =
    match out with
    | None -> print_endline json
    | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc json);
        Printf.printf "wrote %d trace events to %s\n" count path
  in
  let action verbose socket file out remote fleet gateway check k rounds =
    setup_logs verbose;
    let finish count json =
      if check then
        match Ssg_obs.Stitch.audit_string json with
        | Error msg -> `Error (false, "trace check failed: " ^ msg)
        | Ok { Ssg_obs.Stitch.events; processes; links; truncated_ends; open_spans }
          ->
            Printf.printf
              "trace ok: %d event(s), %d process(es), %d cross-process \
               link(s)\n"
              events processes (List.length links);
            if truncated_ends > 0 || open_spans > 0 then
              Printf.printf
                "  (%d end(s) truncated by the ring buffer, %d span(s) still \
                 in flight)\n"
                truncated_ends open_spans;
            emit_doc out count json;
            `Ok ()
      else begin
        emit_doc out count json;
        `Ok ()
      end
    in
    if fleet then begin
      match
        let edge =
          match gateway with
          | None -> []
          | Some url -> [ fetch_gateway_report url ]
        in
        let c = Ssg_engine.Client.connect ~socket () in
        let pulled =
          Fun.protect
            ~finally:(fun () -> Ssg_engine.Client.close c)
            (fun () ->
              try Ssg_engine.Client.trace_pull c
              with Failure _ ->
                (* A pre-Trace_pull peer: degrade to the plain drain,
                   anchor-less (epoch 0 stays unshifted). *)
                [
                  {
                    Ssg_obs.Tracer.role = "worker";
                    pid = 0;
                    epoch_s = 0.;
                    dropped_events = 0;
                    events = Ssg_engine.Client.trace c;
                  };
                ])
        in
        edge @ pulled
      with
      | exception Failure msg -> `Error (false, msg)
      | reports ->
          let count =
            List.fold_left
              (fun a r -> a + List.length r.Ssg_obs.Tracer.events)
              0 reports
          in
          finish count (Ssg_obs.Stitch.chrome_of_reports reports)
    end
    else if remote then begin
      let c = Ssg_engine.Client.connect ~socket () in
      let events =
        Fun.protect
          ~finally:(fun () -> Ssg_engine.Client.close c)
          (fun () -> Ssg_engine.Client.trace c)
      in
      finish (List.length events)
        (Ssg_obs.Export.chrome_json ~process:"ssgd" events)
    end
    else
      match file with
      | None ->
          `Error (false, "pass a run description FILE, or --remote to pull        from a live ssgd")
      | Some path ->
          let adv = Run_format.load path in
          let k = match k with Some k -> k | None -> Adversary.min_k adv in
          (* Trace an in-process engine end to end: cache off so the job
             really executes, one worker so the execution track is one
             clean lane next to the submit track. *)
          Ssg_obs.Tracer.reset ();
          Ssg_obs.Tracer.set_enabled true;
          let engine =
            Ssg_engine.Engine.create ~workers:1 ~queue_capacity:4
              ~cache_capacity:0 ()
          in
          let job =
            Ssg_engine.Job.make ~algorithm:Ssg_engine.Job.Kset ~k ?rounds
              ~monitor:false adv
          in
          let completion = Ssg_engine.Engine.run engine job in
          Ssg_engine.Engine.shutdown engine;
          Ssg_obs.Tracer.set_enabled false;
          let events = Ssg_obs.Tracer.events () in
          (match completion.Ssg_engine.Job.result with
          | Error msg -> `Error (false, msg)
          | Ok _ ->
              finish (List.length events)
                (Ssg_obs.Export.chrome_json ~process:"ssg" events))
  in
  let doc =
    "Record a Chrome trace-event JSON file (chrome://tracing,      ui.perfetto.dev) of one run executed through the engine — engine      phase spans plus per-round simulation events — pull the trace      buffers of a live ssgd with $(b,--remote), or stitch a whole      fleet's buffers into one document with $(b,--fleet)."
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      ret
        (const action $ verbose_arg $ socket_arg $ file_arg $ out_arg
        $ remote_arg $ fleet_arg $ gateway_arg $ check_arg $ k_opt_arg
        $ rounds_arg))

let shutdown_cmd =
  let action socket =
    let c = Ssg_engine.Client.connect ~socket () in
    Fun.protect
      ~finally:(fun () -> Ssg_engine.Client.close c)
      (fun () ->
        Ssg_engine.Client.shutdown c;
        print_endline "ssgd acknowledged shutdown")
  in
  let doc = "Gracefully stop a running ssgd service." in
  Cmd.v (Cmd.info "shutdown" ~doc) Term.(const action $ socket_arg)

let compact_cmd =
  let action socket =
    let c = Ssg_engine.Client.connect ~socket () in
    Fun.protect
      ~finally:(fun () -> Ssg_engine.Client.close c)
      (fun () ->
        let n = Ssg_engine.Client.compact c in
        Printf.printf "compacted: %d record(s) in the new snapshot\n" n)
  in
  let doc =
    "Roll the durable store's generation: snapshot the live cache,      truncate the journal.  Against a router, fans out to every up      worker and prints the summed snapshot size; against a worker      without $(b,--persist), prints 0."
  in
  Cmd.v (Cmd.info "compact" ~doc) Term.(const action $ socket_arg)

(* ------------------------------------------------------------------ *)
(* gateway / loadgen                                                   *)
(* ------------------------------------------------------------------ *)

let gateway_cmd =
  let listen_arg =
    let doc =
      "Address the HTTP gateway listens on: $(b,tcp:HOST:PORT) or        $(b,unix:PATH)."
    in
    Arg.(
      value
      & opt addr_conv "tcp:127.0.0.1:8080"
      & info [ "listen"; "l" ] ~docv:"ADDR" ~doc)
  in
  let backend_arg =
    let doc =
      "Native-protocol backend the gateway fronts (an ssgd worker or a        router)."
    in
    Arg.(
      value
      & opt addr_conv
          (Filename.concat (Filename.get_temp_dir_name ()) "ssgd.sock")
      & info [ "backend"; "b" ] ~docv:"ADDR" ~doc)
  in
  let backend_deadline_arg =
    let doc =
      "Liveness deadline on the pipelined backend connection: total        silence for this long fails the in-flight requests with 502s."
    in
    Arg.(value & opt float 30. & info [ "backend-deadline" ] ~docv:"SECONDS" ~doc)
  in
  let max_conn_arg =
    let doc = "Maximum concurrent HTTP connections." in
    Arg.(value & opt int 1024 & info [ "max-connections" ] ~docv:"N" ~doc)
  in
  let read_timeout_arg =
    let doc = "Per-connection HTTP read timeout in seconds (0 disables)." in
    Arg.(value & opt float 30. & info [ "read-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let drain_timeout_arg =
    let doc =
      "On shutdown, wait this long for live connections to finish before        abandoning them."
    in
    Arg.(value & opt float 5. & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let trace_arg =
    let doc =
      "Enable in-process tracing: every request gets a        $(b,gateway.request) span whose context propagates to the backend        (traceparent in, traceparent out), pullable from $(b,GET /trace)        or stitched with $(b,ssg trace --fleet --gateway)."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let action verbose listen backend backend_deadline max_connections
      read_timeout drain_timeout trace =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.App));
    match
      Ssg_gateway.Gateway.serve ~backend_deadline_s:backend_deadline
        ~max_connections ~read_timeout_s:read_timeout
        ~drain_timeout_s:drain_timeout ~trace ~listen ~backend ()
    with
    | () -> `Ok ()
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  let doc =
    "Serve an HTTP/JSON front door over a native ssgd or router backend:      POST /submit (run text body, k/algorithm/rounds/monitor query      parameters), GET /stats, GET /metrics (Prometheus), GET /trace,      GET /healthz, POST /shutdown.  All backend traffic shares one      pipelined connection."
  in
  Cmd.v
    (Cmd.info "gateway" ~doc)
    Term.(
      ret
        (const action $ verbose_arg $ listen_arg $ backend_arg
        $ backend_deadline_arg $ max_conn_arg $ read_timeout_arg
        $ drain_timeout_arg $ trace_arg))

let loadgen_cmd =
  let target_arg =
    let doc = "Native-protocol endpoint to drive (worker or router)." in
    Arg.(
      value
      & opt addr_conv
          (Filename.concat (Filename.get_temp_dir_name ()) "ssgd.sock")
      & info [ "target"; "t" ] ~docv:"ADDR" ~doc)
  in
  let connections_arg =
    let doc = "Concurrent connections to hold open." in
    Arg.(value & opt int 100 & info [ "connections"; "c" ] ~docv:"N" ~doc)
  in
  let duration_arg =
    let doc = "How long to drive load, in seconds." in
    Arg.(value & opt float 10. & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc)
  in
  let threads_arg =
    let doc =
      "Driver threads; each owns an equal slice of the connections        (default: min(connections, 8))."
    in
    Arg.(value & opt (some int) None & info [ "threads" ] ~docv:"T" ~doc)
  in
  let pipeline_arg =
    let doc = "In-flight pipelined requests per connection (closed-loop)." in
    Arg.(value & opt int 1 & info [ "pipeline"; "p" ] ~docv:"M" ~doc)
  in
  let rate_arg =
    let doc =
      "Open-loop mode: schedule this many requests/second in aggregate        and measure latency from the scheduled send time (0 = closed-loop)."
    in
    Arg.(value & opt float 0. & info [ "rate" ] ~docv:"RPS" ~doc)
  in
  let mix_arg =
    let doc =
      "Job mix as cached:uncached:lint-error integer weights.  Lint-error        jobs are expected to be rejected; a rejection is not an error."
    in
    Arg.(value & opt string "8:1:1" & info [ "mix" ] ~docv:"C:U:L" ~doc)
  in
  let deadline_arg =
    let doc = "Per-connection reply deadline; a miss counts as an error." in
    Arg.(value & opt float 30. & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let slo_arg =
    let doc =
      "SLO gate like $(b,p99<250ms) (repeatable).  Any violation — or any        client-visible error — makes the command exit non-zero."
    in
    Arg.(value & opt_all string [] & info [ "slo" ] ~docv:"SPEC" ~doc)
  in
  let json_arg =
    let doc = "Emit the report as a JSON object instead of the table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let trace_top_arg =
    let doc =
      "Originate a trace context on every request and report the trace        ids of the $(docv) slowest — grep for them in a stitched fleet        trace ($(b,ssg trace --fleet)) to see where a tail request spent        its time.  0 disables sampling."
    in
    Arg.(value & opt int 0 & info [ "trace-top" ] ~docv:"N" ~doc)
  in
  let parse_mix s =
    match String.split_on_char ':' s with
    | [ c; u; l ] -> (
        match
          (int_of_string_opt c, int_of_string_opt u, int_of_string_opt l)
        with
        | Some cached, Some uncached, Some lint_error
          when cached >= 0 && uncached >= 0 && lint_error >= 0
               && cached + uncached + lint_error > 0 ->
            Ok { Ssg_gateway.Loadgen.cached; uncached; lint_error }
        | _ -> Error (Printf.sprintf "bad --mix %S" s))
    | _ -> Error (Printf.sprintf "bad --mix %S (expected C:U:L)" s)
  in
  let parse_slos specs =
    List.fold_left
      (fun acc spec ->
        match (acc, Ssg_gateway.Loadgen.slo_of_string spec) with
        | Error e, _ -> Error e
        | Ok slos, Ok slo -> Ok (slo :: slos)
        | Ok _, Error e -> Error e)
      (Ok []) specs
  in
  let action verbose target connections duration threads pipeline rate mix
      deadline slos json trace_top =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.App));
    match (parse_mix mix, parse_slos slos) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok mix, Ok slos -> (
        match
          Ssg_gateway.Loadgen.run ?threads ~pipeline ~rate ~mix
            ~deadline_s:deadline ~slos ~trace_top ~connections
            ~duration_s:duration ~target ()
        with
        | exception Invalid_argument msg -> `Error (false, msg)
        | report ->
            if json then
              print_endline (Ssg_gateway.Loadgen.to_json report)
            else Format.printf "%a" Ssg_gateway.Loadgen.pp report;
            if report.Ssg_gateway.Loadgen.slo_violations <> [] then
              Stdlib.exit 1
            else `Ok ())
  in
  let doc =
    "Drive synthetic load — thousands of concurrent pipelined connections      with a configurable cached/uncached/lint-error job mix — against a      worker or router, report latency percentiles and error counts, and      exit non-zero when an $(b,--slo) gate is violated or any      client-visible error occurred."
  in
  Cmd.v
    (Cmd.info "loadgen" ~doc)
    Term.(
      ret
        (const action $ verbose_arg $ target_arg $ connections_arg
        $ duration_arg $ threads_arg $ pipeline_arg $ rate_arg $ mix_arg
        $ deadline_arg $ slo_arg $ json_arg $ trace_top_arg))

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let files_arg =
    let doc = "Run description files to lint." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let k_opt_arg =
    let doc =
      "Agreement parameter to check Psrcs($(docv)) satisfiability against \
       (unsatisfiable = error SSG001).  Without it, satisfiability is \
       reported as info only."
    in
    Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K" ~doc)
  in
  let json_arg =
    let doc = "Emit diagnostics as a JSON array (one object per file)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let strict_arg =
    let doc = "Exit non-zero on warnings too, not only errors." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let fix_arg =
    let doc =
      "Apply machine fixes in place (codes SSG101/103/105/203): delete dead \
       and subsumed rounds, provably-safe empty rounds and redundant edge \
       tokens, renumber the survivors, then lint the fixed text.  The fix \
       preserves the stable skeleton and min_k."
    in
    Arg.(value & flag & info [ "fix" ] ~doc)
  in
  let sarif_arg =
    let doc =
      "Write a SARIF 2.1.0 report to $(docv) (suppressed diagnostics and \
       autofix plans included)."
    in
    Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)
  in
  let jobs_arg =
    let doc =
      "Lint files on $(docv) worker domains (default: one per core, capped \
       at the file count; 1 = serial)."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"J" ~doc)
  in
  let action k json strict fix sarif jobs files =
    let lint_file file =
      let text = In_channel.with_open_bin file In_channel.input_all in
      let text, plan =
        if not fix then (text, None)
        else
          match Ssg_lint.Fix.fix text with
          | None -> (text, None) (* SSG000: nothing mechanical to do *)
          | Some (_, plan) when Ssg_lint.Fix.is_empty plan -> (text, Some plan)
          | Some (fixed, plan) ->
              Out_channel.with_open_bin file (fun oc ->
                  Out_channel.output_string oc fixed);
              (fixed, Some plan)
      in
      (file, text, Ssg_lint.Lint.lint_text ?k text, plan)
    in
    let jobs =
      match jobs with
      | Some j -> max 1 j
      | None -> max 1 (min (Parallel.default_domains ()) (List.length files))
    in
    let results =
      if jobs = 1 || List.length files < 2 then List.map lint_file files
      else begin
        let pool = Ssg_engine.Pool.create ~workers:jobs () in
        Fun.protect
          ~finally:(fun () -> Ssg_engine.Pool.shutdown pool)
          (fun () -> Ssg_engine.Pool.map pool lint_file files)
      end
    in
    (* Notices go to stderr so --json / piped stdout stays machine-clean. *)
    if fix then
      List.iter
        (fun (file, _, _, plan) ->
          match plan with
          | Some (p : Ssg_lint.Fix.plan) when not (Ssg_lint.Fix.is_empty p) ->
              Printf.eprintf "%s: fixed — %d round(s) dropped, %d line(s) \
                              cleaned\n"
                file
                (List.length p.dropped_rounds)
                (List.length p.cleaned_lines)
          | _ -> ())
        results;
    let triples =
      List.map
        (fun (f, _, (o : Ssg_lint.Lint.outcome), _) ->
          (f, o.active, o.suppressed))
        results
    in
    (match sarif with
    | None -> ()
    | Some path ->
        let fixes =
          List.filter_map
            (fun (f, _, _, plan) -> Option.map (fun p -> (f, p)) plan)
            results
        in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (Ssg_lint.Sarif.export ~fixes triples);
            Out_channel.output_char oc '\n');
        Printf.eprintf "wrote SARIF report to %s\n" path);
    if json then print_string (Ssg_lint.Report.json triples)
    else begin
      List.iter
        (fun (file, text, (o : Ssg_lint.Lint.outcome), _) ->
          print_string (Ssg_lint.Report.human ~file ~src:text o.active))
        results;
      let suppressed =
        List.fold_left (fun acc (_, _, s) -> acc + List.length s) 0 triples
      in
      let totals =
        Ssg_lint.Lint.summarize ~suppressed
          (List.concat_map (fun (_, a, _) -> a) triples)
      in
      Printf.printf
        "checked %d file(s): %d error(s), %d warning(s), %d info(s), %d \
         suppressed\n"
        (List.length results) totals.Ssg_lint.Lint.errors
        totals.Ssg_lint.Lint.warnings totals.Ssg_lint.Lint.infos
        totals.Ssg_lint.Lint.suppressed
    end;
    if
      List.exists
        (fun (_, active, _) -> not (Ssg_lint.Lint.ok ~strict active))
        triples
    then Stdlib.exit 1
  in
  let doc =
    "Statically analyze run descriptions: Psrcs(k) satisfiability, skeleton \
     structure, achievable-k certificates and stabilization windows \
     (diagnostic codes SSG000-SSG203), with machine fixes ($(b,--fix)), \
     inline suppressions, SARIF output and multi-core file fan-out."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const action $ k_opt_arg $ json_arg $ strict_arg $ fix_arg $ sarif_arg
      $ jobs_arg $ files_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let ns_arg =
    let doc = "Comma-separated system sizes to sweep." in
    Arg.(value & opt (list int) [ 8; 16 ] & info [ "ns" ] ~docv:"N,..." ~doc)
  in
  let ks_arg =
    let doc = "Comma-separated agreement parameters to sweep." in
    Arg.(value & opt (list int) [ 1; 2 ] & info [ "ks" ] ~docv:"K,..." ~doc)
  in
  let families_list_arg =
    let doc =
      "Comma-separated adversary families: block-sources | partitioned |        single-root | arbitrary."
    in
    Arg.(
      value
      & opt (list string) [ "block-sources"; "partitioned"; "single-root" ]
      & info [ "families" ] ~docv:"FAM,..." ~doc)
  in
  let workers_arg =
    let doc = "Worker domains in the engine pool (default: all cores)." in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"W" ~doc)
  in
  let rounds_arg =
    let doc =
      "Round budget per cell (default: each run's decision horizon)."
    in
    Arg.(value & opt (some int) None & info [ "rounds" ] ~docv:"R" ~doc)
  in
  let out_arg =
    let doc = "Write the JSON report to $(docv) (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let parse_families names =
    List.fold_left
      (fun acc name ->
        match (acc, Sweep.family_of_string name) with
        | Error e, _ -> Error e
        | Ok fs, Ok f -> Ok (f :: fs)
        | Ok _, Error e -> Error e)
      (Ok []) names
    |> Result.map List.rev
  in
  let outcome_of_completion (completion : Ssg_engine.Job.completion) =
    match completion.result with
    | Ok (o : Ssg_engine.Job.outcome) ->
        Ok
          {
            Sweep.min_k = o.min_k;
            rounds_run = o.rounds_run;
            decided =
              Array.fold_left
                (fun acc d -> if d <> None then acc + 1 else acc)
                0 o.decisions;
            distinct_decisions = o.distinct_decisions;
            messages_sent = o.messages_sent;
            bits_sent = o.bits_sent;
            violations = List.length o.violations;
          }
    | Error msg -> Error msg
  in
  let action verbose ns ks families seed workers rounds out =
    setup_logs verbose;
    match parse_families families with
    | Error msg -> `Error (false, msg)
    | Ok families -> (
        match Sweep.create ~ns ~ks ~families ~seed with
        | exception Invalid_argument msg -> `Error (false, msg)
        | grid -> (
            match Sweep.cells grid with
            | [] ->
                `Error
                  (false, "sweep grid is empty: every grid point has k >= n")
            | cells ->
                (* Trace the whole sweep so the report can prove how many
                   pool domains actually executed cells. *)
                Ssg_obs.Tracer.reset ();
                Ssg_obs.Tracer.set_enabled true;
                let engine = Ssg_engine.Engine.create ?workers () in
                let t0 = Unix.gettimeofday () in
                (* Submit everything as one batch: the engine pre-gates
                   (lints) the whole grid on the pool up front, then the
                   pool pipelines execution; await in cell order under
                   per-cell spans. *)
                let prepared =
                  List.map
                    (fun cell ->
                      let adv = Sweep.adversary cell in
                      let k = Sweep.effective_k cell adv in
                      (cell, k, Ssg_engine.Job.make ~k ?rounds adv))
                    cells
                in
                let tickets =
                  Ssg_engine.Engine.submit_batch engine
                    (List.map (fun (_, _, job) -> job) prepared)
                  |> List.map2
                       (fun (cell, k, _) ticket -> (cell, k, ticket))
                       prepared
                in
                let results =
                  List.map
                    (fun ((cell : Sweep.cell), k_submitted, ticket) ->
                      Ssg_obs.Tracer.with_span
                        ~args:
                          [
                            ("n", Ssg_obs.Tracer.Int cell.n);
                            ("k", Ssg_obs.Tracer.Int cell.k);
                            ( "family",
                              Ssg_obs.Tracer.Str
                                (Sweep.family_name cell.family) );
                          ]
                        "sweep.cell"
                        (fun () ->
                          let completion =
                            Ssg_engine.Engine.await engine ticket
                          in
                          {
                            Sweep.cell;
                            k_submitted;
                            outcome = outcome_of_completion completion;
                            cached = completion.cached;
                            latency_ms = completion.latency_ms;
                          }))
                    tickets
                in
                let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
                Ssg_engine.Engine.shutdown engine;
                Ssg_obs.Tracer.set_enabled false;
                let domains_used =
                  Sweep.domains_used (Ssg_obs.Tracer.events ())
                in
                let workers =
                  match workers with
                  | Some w -> w
                  | None -> max 1 (Parallel.default_domains ())
                in
                let json =
                  Sweep.to_json ~elapsed_ms ~workers ~domains_used grid results
                in
                (match out with
                | None -> print_endline json
                | Some path ->
                    Out_channel.with_open_bin path (fun oc ->
                        Out_channel.output_string oc json;
                        Out_channel.output_char oc '\n');
                    Printf.printf "wrote %d cell result(s) to %s\n"
                      (List.length results) path);
                `Ok ()))
  in
  let doc =
    "Fan an (n, k, adversary-family) grid across the engine's worker pool      as one pipelined batch and report per-cell JSON results (decisions,      min_k, message complexity, cache/latency), plus how many pool      domains the sweep actually used."
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      ret
        (const action $ verbose_arg $ ns_arg $ ks_arg $ families_list_arg
        $ seed_arg $ workers_arg $ rounds_arg $ out_arg))

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "Stable skeleton graphs and k-set agreement (Biely, Robinson, Schmid 2011)"
  in
  let info = Cmd.info "ssg" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; figure1_cmd; experiment_cmd; check_cmd; dot_cmd;
            timing_cmd; shrink_cmd; lint_cmd; serve_cmd; route_cmd;
            submit_cmd; stats_cmd; trace_cmd; shutdown_cmd; compact_cmd;
            gateway_cmd; loadgen_cmd; sweep_cmd;
          ]))
