(* Benchmark harness.

   Two parts, both printed by `dune exec bench/main.exe`:

   1. Bechamel micro-benchmarks (B1..B8, B10, B11) — one Test.make per
      core operation, timing the building blocks whose complexity the
      paper's Section V argument relies on (SCC, skeleton intersection,
      graph merging, a full Algorithm 1 round, the Psrcs decision
      procedure, a full run end to end, the wire codec, a timing-layer
      run, a sequential-vs-parallel round, the lint analyzer).

   2. B9 — service-engine batch throughput: a >= 100-job batch pushed
      through the persistent ssgd engine (worker pool + dedup + LRU
      cache) against a naive sequential loop, wall-clock.

   3. B12 — tracing overhead: the B9 workload with the lib/obs tracer
      off / on / on + Chrome export, plus a disabled-probe microcost and
      an overhead bound gated <= 2% when SSG_OBS_GATE=1.

   4. B13 — cluster routing throughput: the same all-distinct cache-miss
      batch pushed through one single-worker ssgd versus three of them
      behind the lib/cluster router, wall-clock (gated >= 2x when
      SSG_CLUSTER_GATE=1 — meaningful only on a multi-core host).

   5. B14 — front-door transport throughput: the same all-distinct
      cache-miss batch pushed through one ssgd over the Unix socket with
      the strict one-shot client (request, wait, reply, repeat) versus
      the same daemon over TCP with the pipelined client keeping many
      requests in flight on one connection (gated: pipelined TCP >= the
      Unix one-shot when SSG_NET_GATE=1).  Prints a JSON summary line
      (what bench/baselines/BENCH_B14.json stores).

   6. B15 — incremental skeleton hot path + sweep fan-out: the per-round
      derivation pipeline (SCC analysis, PT rows, min_k) from scratch
      every round versus the revision-cached incremental layer with a
      warm-started MIS (gated >= 2x at n >= 64 when SSG_SWEEP_GATE=1),
      plus the `ssg sweep` grid as one pipelined batch on 1 worker vs
      the default pool (scaling leg of the gate arms on >= 4 cores).
      Prints a JSON summary line (what bench/baselines/BENCH_B15.json
      stores).

   7. B16 — fleet-scale lint: a generated run-description corpus linted
      file-by-file on one domain versus fanned across the engine pool
      with Pool.map (gated >= 2x on >= 4 cores when SSG_LINT_GATE=1).
      Prints a JSON summary line (what bench/baselines/BENCH_B16.json
      stores).

   8. B17 — context-propagation overhead: B14's pipelined-TCP batch
      with and without a trace context on every request, tracing off,
      plus a per-request envelope microcost whose overhead bound is
      gated <= 2% when SSG_OBS_GATE=1.  Prints a JSON summary line
      (what bench/baselines/BENCH_B17.json stores).

   9. B18 — warm boot vs cold boot: a working set computed once into a
      lib/store journal, then the wall-clock from boot to serving 90%
      of that set measured for a cold engine (empty cache, recomputes)
      versus a warm one (Store.open_ + replay folded into the timed
      region, serves hits immediately); gated warm <= half of cold when
      SSG_STORE_GATE=1.  Prints a JSON summary line (what
      bench/baselines/BENCH_B18.json stores).

   10. The experiment tables F1, E1..E11, A1 — one per figure/claim of
      the paper (see DESIGN.md's index and EXPERIMENTS.md for
      discussion).

   Scale: set SSG_BENCH_SCALE=quick|standard|full (default standard).
   Set SSG_BENCH_ONLY=B9|B12|B13|B14|B15|B16|B17|B18 to run a single
   wall-clock section.
   Set SSG_BENCH_CSV_DIR=<dir> to additionally write each experiment's
   table as <dir>/<id>.csv for external plotting. *)

open Bechamel
open Toolkit
open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_adversary
open Ssg_core
open Ssg_sim

let scale () =
  match Sys.getenv_opt "SSG_BENCH_SCALE" with
  | Some "quick" -> `Quick
  | Some "full" -> `Full
  | _ -> `Standard

(* ---------------- micro-benchmark subjects ---------------- *)

(* B1: Tarjan SCC. *)
let bench_scc n =
  let g = Gen.gnp (Rng.of_int (100 + n)) n 0.1 in
  Test.make
    ~name:(Printf.sprintf "B1-scc/n=%d" n)
    (Staged.stage (fun () -> ignore (Scc.compute g)))

(* B2: one skeleton intersection step. *)
let bench_skeleton_step n =
  let g = Gen.gnp (Rng.of_int (200 + n)) n 0.3 in
  let acc = Digraph.complete ~self_loops:true n in
  Test.make
    ~name:(Printf.sprintf "B2-skel-step/n=%d" n)
    (Staged.stage (fun () -> Digraph.inter_into ~into:acc g))

(* B3: merging a received approximation graph (Lines 19-23). *)
let bench_merge n =
  let rng = Rng.of_int (300 + n) in
  let mk () =
    let g = Lgraph.create n ~self:0 in
    for _ = 1 to n * 2 do
      Lgraph.set_edge g (Rng.int rng n) (Rng.int rng n)
        ~label:(1 + Rng.int rng 9)
    done;
    g
  in
  let src = mk () and dst = mk () in
  Test.make
    ~name:(Printf.sprintf "B3-merge/n=%d" n)
    (Staged.stage (fun () -> Lgraph.merge_max_into ~into:dst src))

(* B4: one full Algorithm 1 round for the whole system. *)
let bench_round n =
  let adv =
    Build.block_sources (Rng.of_int (400 + n)) ~n ~k:(max 1 (n / 4)) ()
  in
  let graph = Adversary.graph adv 1 in
  Test.make
    ~name:(Printf.sprintf "B4-round/n=%d" n)
    (Staged.stage (fun () ->
         let states = Array.init n (fun self -> Approx.create ~n ~self ()) in
         let payloads = Array.map Approx.message states in
         Array.iteri
           (fun q s ->
             Approx.step s ~round:1 ~received:(fun p ->
                 if Digraph.mem_edge graph p q then Some payloads.(p)
                 else None))
           states))

(* B5: the Psrcs(k) decision procedure (MIS on the sharing graph). *)
let bench_psrcs n =
  let adv =
    Build.block_sources (Rng.of_int (500 + n)) ~n ~k:(max 1 (n / 4)) ()
  in
  let pts = Adversary.pts adv in
  Test.make
    ~name:(Printf.sprintf "B5-psrcs/n=%d" n)
    (Staged.stage (fun () ->
         ignore (Ssg_predicates.Predicate.psrcs pts ~k:(max 1 (n / 4)))))

(* B6: a full run end to end (build + execute to termination). *)
let bench_run n =
  Test.make
    ~name:(Printf.sprintf "B6-run/n=%d" n)
    (Staged.stage (fun () ->
         let rng = Rng.of_int (600 + n) in
         let adv = Build.block_sources rng ~n ~k:(max 1 (n / 4)) () in
         ignore (Runner.run_kset adv)))

(* B7: wire codec encode+decode roundtrip of a dense approximation graph. *)
let bench_codec n =
  let rng = Rng.of_int (700 + n) in
  let g = Lgraph.create n ~self:0 in
  for _ = 1 to n * n / 3 do
    Lgraph.set_edge g (Rng.int rng n) (Rng.int rng n) ~label:(1 + Rng.int rng 30)
  done;
  Test.make
    ~name:(Printf.sprintf "B7-codec/n=%d" n)
    (Staged.stage (fun () ->
         let bytes = Codec.encode g ~label_bits:6 in
         ignore (Codec.decode bytes ~n ~self:0 ~label_bits:6)))

(* B8: a full timing-layer run (event queue + latency model + Algorithm 1). *)
let bench_timing n =
  Test.make
    ~name:(Printf.sprintf "B8-timing-run/n=%d" n)
    (Staged.stage (fun () ->
         ignore
           (Ssg_timing.Round_sync.run_kset
              ~inputs:(Array.init n (fun i -> i))
              ~latency:(Ssg_timing.Latency.uniform ~seed:n ~lo:0.1 ~hi:1.5)
              ~max_rounds:(2 * n) ())))

(* B10: intra-round parallelism — one big Algorithm 1 round, sequential vs
   all cores (transitions are independent per process). *)
let bench_parallel_round ~domains n =
  let module E = Executor.Make (Kset_agreement.Alg) in
  let adv =
    Build.block_sources (Rng.of_int (900 + n)) ~n ~k:(max 1 (n / 4)) ~intra:0.3 ()
  in
  let label = if domains = 0 then "seq" else Printf.sprintf "%dd" domains in
  Test.make
    ~name:(Printf.sprintf "B10-par-round/%s/n=%d" label n)
    (Staged.stage (fun () ->
         let cfg =
           E.config ~domains ~stop_when_all_decided:false
             ~inputs:(Array.init n (fun i -> i))
             ~graphs:(Adversary.graph adv) ~max_rounds:3 ()
         in
         ignore (E.run cfg)))

(* B11: lint static-analysis throughput — what the ssgd front door and
   the CI `ssg lint examples/*.run` step pay per run description (span
   parse + skeleton + SCC + α(H) + all passes). *)
let bench_lint n =
  let adv =
    Build.block_sources
      (Rng.of_int (1100 + n))
      ~n ~k:(max 1 (n / 4)) ~prefix_len:3 ()
  in
  let text = Run_format.to_string adv in
  Test.make
    ~name:(Printf.sprintf "B11-lint/n=%d" n)
    (Staged.stage (fun () ->
         ignore (Ssg_lint.Lint.check_text ~k:(max 1 (n / 4)) text)))

let micro_tests scale =
  let sizes_small, sizes_mid =
    match scale with
    | `Quick -> ([ 16; 64 ], [ 8; 16 ])
    | `Standard -> ([ 16; 64; 256 ], [ 8; 16; 32 ])
    | `Full -> ([ 16; 64; 256; 1024 ], [ 8; 16; 32; 64 ])
  in
  List.concat
    [
      List.map bench_scc sizes_small;
      List.map bench_skeleton_step sizes_small;
      List.map bench_merge sizes_mid;
      List.map bench_round sizes_mid;
      List.map bench_psrcs sizes_small;
      List.map bench_run sizes_mid;
      List.map bench_codec sizes_mid;
      List.map bench_timing (List.filter (fun n -> n <= 16) sizes_mid);
      List.map bench_lint sizes_mid;
      (let biggest = List.fold_left max 0 sizes_mid in
       (* On a 1-core host the parallel row honestly reports the domain
          overhead; with more cores it reports the speedup. *)
       let workers = max 2 (Parallel.default_domains ()) in
       [
         bench_parallel_round ~domains:0 (4 * biggest);
         bench_parallel_round ~domains:workers (4 * biggest);
       ]);
    ]

let human_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let run_micro scale =
  let tests = micro_tests scale in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (match scale with `Quick -> 0.1 | _ -> 0.5))
      ~kde:None ()
  in
  let instance = Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let table = Table.create [ "benchmark"; "time/run" ] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | _ -> nan
          in
          Table.add_row table [ name; human_ns ns ])
        results)
    tests;
  print_endline "== B1..B8, B10, B11: micro-benchmarks (Bechamel, monotonic clock) ==";
  print_newline ();
  Table.print table;
  print_newline ()

(* ---------------- B9: service-engine batch throughput ---------------- *)

(* Wall-clock, not Bechamel: the subject is a persistent stateful engine
   (pool + dedup + cache), so repeated staged invocations would only
   measure the warm cache.  One batch of >= 100 jobs — realistic sweep
   traffic with 4x duplication, the dedup/cache workload the service
   exists for — is pushed through (a) a naive sequential loop that
   executes every submission, (b) a cold engine, (c) the same engine
   again fully warm. *)
let run_engine_bench scale =
  let n, total =
    match scale with
    | `Quick -> (16, 120)
    | `Standard -> (24, 200)
    | `Full -> (32, 400)
  in
  let distinct = total / 4 in
  let job i =
    Ssg_engine.Job.make
      ~k:(max 1 (n / 4))
      (Build.block_sources
         (Rng.of_int (9100 + i))
         ~n ~k:(max 1 (n / 4)) ~prefix_len:2 ())
  in
  let batch = List.init total (fun i -> job (i mod distinct)) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let (), seq_s =
    time (fun () ->
        List.iter (fun j -> ignore (Ssg_engine.Job.execute j)) batch)
  in
  let workers = max 2 (Parallel.default_domains ()) in
  let engine =
    Ssg_engine.Engine.create ~workers ~queue_capacity:32 ~cache_capacity:1024
      ()
  in
  let cold_completions, cold_s =
    time (fun () -> Ssg_engine.Engine.run_batch engine batch)
  in
  let warm_completions, warm_s =
    time (fun () -> Ssg_engine.Engine.run_batch engine batch)
  in
  let stats = Ssg_engine.Engine.stats engine in
  Ssg_engine.Engine.shutdown engine;
  let ok cs =
    List.for_all
      (fun c -> Result.is_ok c.Ssg_engine.Job.result)
      cs
  in
  assert (ok cold_completions && ok warm_completions);
  Printf.printf
    "== B9: engine batch throughput (%d jobs, %d distinct, n=%d, %d worker domain(s)) ==\n\n"
    total distinct n workers;
  let table = Table.create [ "pipeline"; "wall-clock"; "vs sequential" ] in
  let row label s =
    Table.add_row table
      [ label; Printf.sprintf "%.1f ms" (1000. *. s);
        Printf.sprintf "%.2fx" (seq_s /. Stdlib.max s 1e-9) ]
  in
  row "sequential loop (every job executed)" seq_s;
  row "engine, cold (pool + dedup + cache)" cold_s;
  row "engine, warm resubmission (all hits)" warm_s;
  Table.print table;
  let served_without_execution =
    stats.Ssg_engine.Telemetry.cache_hits
    + stats.Ssg_engine.Telemetry.dedup_joins
  in
  Printf.printf
    "\n\
    \  engine executed %d distinct jobs for %d submissions (%d cache \
     hits + %d dedup joins, %.0f%% served without execution)\n\n"
    stats.Ssg_engine.Telemetry.jobs_completed
    stats.Ssg_engine.Telemetry.jobs_submitted
    stats.Ssg_engine.Telemetry.cache_hits
    stats.Ssg_engine.Telemetry.dedup_joins
    (100.
    *. float_of_int served_without_execution
    /. float_of_int
         (Stdlib.max 1
            (served_without_execution
            + stats.Ssg_engine.Telemetry.cache_misses)))

(* ---------------- B12: tracing overhead ---------------- *)

(* The observability layer's contract is that leaving the
   instrumentation compiled into the hot paths is free while tracing is
   off.  B12 pushes the B9 engine workload (all-distinct jobs, so every
   submission really executes and crosses every instrumented phase)
   through three fresh engines: tracing off, on, and on with a Chrome
   export folded into the timed region.

   The ≤ 2% disabled-overhead gate (SSG_OBS_GATE=1) is asserted
   analytically — probe cost × probes per job against the measured
   per-job time — because at bench scale the wall-clock delta between
   the off/on runs is dominated by scheduler noise, not by the single
   atomic load a disabled probe costs. *)
let run_tracing_bench scale =
  let n, total =
    match scale with
    | `Quick -> (16, 60)
    | `Standard -> (24, 120)
    | `Full -> (32, 240)
  in
  let job i =
    Ssg_engine.Job.make
      ~k:(max 1 (n / 4))
      (Build.block_sources
         (Rng.of_int (12000 + i))
         ~n ~k:(max 1 (n / 4)) ~prefix_len:2 ())
  in
  let batch = List.init total job in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let workers = max 2 (Parallel.default_domains ()) in
  let push () =
    (* cache off: every phase must execute all [total] jobs *)
    let engine =
      Ssg_engine.Engine.create ~workers ~queue_capacity:32 ~cache_capacity:0 ()
    in
    let completions = Ssg_engine.Engine.run_batch engine batch in
    Ssg_engine.Engine.shutdown engine;
    assert (
      List.for_all (fun c -> Result.is_ok c.Ssg_engine.Job.result) completions)
  in
  Ssg_obs.Tracer.set_enabled false;
  Ssg_obs.Tracer.reset ();
  let (), off_s = time push in
  Ssg_obs.Tracer.reset ();
  Ssg_obs.Tracer.set_enabled true;
  let (), on_s = time push in
  let traced_events = List.length (Ssg_obs.Tracer.events ()) in
  let dropped = Ssg_obs.Tracer.dropped () in
  Ssg_obs.Tracer.reset ();
  let export_len = ref 0 in
  let (), export_s =
    time (fun () ->
        push ();
        export_len :=
          String.length (Ssg_obs.Export.chrome_json (Ssg_obs.Tracer.events ())))
  in
  Ssg_obs.Tracer.set_enabled false;
  Ssg_obs.Tracer.reset ();
  (* Disabled-probe microcost: the loop is exactly the guarded call the
     hot paths make — one atomic load, no allocation. *)
  let probes = 10_000_000 in
  let (), probe_s =
    time (fun () ->
        for i = 1 to probes do
          if Ssg_obs.Tracer.enabled () then
            Ssg_obs.Tracer.instant ~args:[ ("i", Ssg_obs.Tracer.Int i) ] "p"
        done)
  in
  let probe_ns = 1e9 *. probe_s /. float_of_int probes in
  (* Probes per job ≈ events per job when tracing: every emitted event
     is one enabled-guard crossing (span args add a second guard at the
     same site — fold a 2x safety factor in). *)
  let events_per_job =
    float_of_int (traced_events + dropped) /. float_of_int total
  in
  let per_job_s = off_s /. float_of_int total in
  let overhead_frac = 2. *. events_per_job *. (probe_ns *. 1e-9) /. per_job_s in
  Printf.printf
    "== B12: tracing overhead (B9 workload, %d all-distinct jobs, n=%d, %d \
     worker domain(s)) ==\n\n"
    total n workers;
  let table = Table.create [ "tracing"; "wall-clock"; "vs off" ] in
  let row label s =
    Table.add_row table
      [ label; Printf.sprintf "%.1f ms" (1000. *. s);
        Printf.sprintf "%.2fx" (s /. Stdlib.max off_s 1e-9) ]
  in
  row "off (statically disabled probes)" off_s;
  row
    (Printf.sprintf "on (%d events, %d dropped)" traced_events dropped)
    on_s;
  row
    (Printf.sprintf "on + Chrome export (%d KiB JSON)" (!export_len / 1024))
    export_s;
  Table.print table;
  Printf.printf
    "\n\
    \  disabled probe: %.2f ns/op; %.0f events/job -> disabled-tracing \
     overhead bound %.4f%% of job time\n"
    probe_ns events_per_job (100. *. overhead_frac);
  if Sys.getenv_opt "SSG_OBS_GATE" = Some "1" then
    if overhead_frac > 0.02 then begin
      Printf.printf
        "  GATE FAILED: disabled-tracing overhead bound %.4f%% > 2%%\n"
        (100. *. overhead_frac);
      exit 1
    end
    else
      Printf.printf "  gate: disabled-tracing overhead bound <= 2%% (OK)\n";
  print_newline ()

(* ---------------- B13: cluster routing throughput ---------------- *)

(* The cluster's throughput claim: one batch of all-distinct jobs (pure
   cache misses — placement cannot help, only parallelism can) through a
   single 1-worker ssgd versus three of them behind the lib/cluster
   router.  The router splits the batch by ring owner and forwards the
   sub-batches concurrently, so with real cores behind the workers the
   fleet approaches 3x; on a 1-core host the three daemons time-slice
   one core and the row honestly reports the multiplexing overhead
   instead.  The >= 2x acceptance gate therefore only arms under
   SSG_CLUSTER_GATE=1 (CI sets it on multi-core runners). *)
let run_cluster_bench scale =
  let n, total =
    match scale with
    | `Quick -> (16, 60)
    | `Standard -> (20, 120)
    | `Full -> (24, 240)
  in
  let job i =
    Ssg_engine.Job.make
      ~k:(max 1 (n / 4))
      (Build.block_sources
         (Rng.of_int (13000 + i))
         ~n ~k:(max 1 (n / 4)) ~prefix_len:2 ())
  in
  let batch = List.init total job in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sock name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ssg-bench-%s-%d.sock" name (Unix.getpid ()))
  in
  let start_worker socket =
    if Sys.file_exists socket then Sys.remove socket;
    Thread.create
      (fun () ->
        Ssg_engine.Server.serve ~workers:1 ~queue_capacity:64
          ~cache_capacity:0 ~socket ())
      ()
  in
  let wait_up socket =
    let rec go tries =
      if tries = 0 then failwith "bench service did not come up";
      match Ssg_engine.Client.connect ~retries:0 ~socket ~deadline_s:30. () with
      | c -> c
      | exception Unix.Unix_error _ ->
          Thread.delay 0.05;
          go (tries - 1)
    in
    go 200
  in
  let shutdown socket thread =
    let c = wait_up socket in
    Ssg_engine.Client.shutdown c;
    Ssg_engine.Client.close c;
    Thread.join thread
  in
  let push socket =
    let c = wait_up socket in
    Fun.protect
      ~finally:(fun () -> Ssg_engine.Client.close c)
      (fun () ->
        let completions = Ssg_engine.Client.submit_batch c batch in
        assert (
          List.for_all
            (fun c -> Result.is_ok c.Ssg_engine.Job.result)
            completions))
  in
  (* Single 1-worker daemon. *)
  let single = sock "single" in
  let single_thread = start_worker single in
  let (), single_s = time (fun () -> push single) in
  shutdown single single_thread;
  (* Three 1-worker daemons behind the router. *)
  let backends = List.map sock [ "w1"; "w2"; "w3" ] in
  let worker_threads = List.map start_worker backends in
  let router = sock "router" in
  if Sys.file_exists router then Sys.remove router;
  let router_thread =
    Thread.create
      (fun () ->
        Ssg_cluster.Router.serve ~probe_interval_s:0.5 ~request_timeout_s:60.
          ~backends ~socket:router ())
      ()
  in
  let (), cluster_s = time (fun () -> push router) in
  shutdown router router_thread;
  List.iter2 shutdown backends worker_threads;
  let cores = Domain.recommended_domain_count () in
  let ratio = single_s /. Stdlib.max cluster_s 1e-9 in
  Printf.printf
    "== B13: cluster routing throughput (%d all-distinct jobs, n=%d, 1 ssgd \
     vs router + 3, %d core(s)) ==\n\n"
    total n cores;
  let table = Table.create [ "pipeline"; "wall-clock"; "jobs/s"; "vs single" ] in
  let row label s =
    Table.add_row table
      [ label; Printf.sprintf "%.1f ms" (1000. *. s);
        Printf.sprintf "%.0f" (float_of_int total /. Stdlib.max s 1e-9);
        Printf.sprintf "%.2fx" (single_s /. Stdlib.max s 1e-9) ]
  in
  row "single ssgd (1 worker domain)" single_s;
  row "router + 3 ssgd (1 worker domain each)" cluster_s;
  Table.print table;
  Printf.printf
    "\n\
    \  cache-miss workload: placement cannot help, the speedup is pure \
     cross-daemon parallelism (needs >= 3 idle cores to show)\n";
  if Sys.getenv_opt "SSG_CLUSTER_GATE" = Some "1" then
    if ratio < 2. then begin
      Printf.printf "  GATE FAILED: router + 3 workers %.2fx < 2x single\n"
        ratio;
      exit 1
    end
    else Printf.printf "  gate: router + 3 workers >= 2x single (OK)\n";
  print_newline ()

(* ---------------- B14: front-door transport throughput ---------------- *)

(* The lib/net claim: multiplexing many in-flight requests onto one
   connection recovers the round-trip latency that the strict one-shot
   discipline pays per job.  Same daemon, same all-distinct cache-miss
   batch, two front doors:

   - Unix socket, one-shot {!Ssg_engine.Client}: submit, wait for the
     reply, submit the next — every job pays a full round trip with the
     worker pool idle during the client-side turnaround;
   - TCP + {!Ssg_engine.Pclient}: every job submitted before any reply
     is awaited, so the pool always has work and replies stream back in
     completion order.

   The pipelined side also carries TCP's framing overhead, so the >= 1x
   gate (SSG_NET_GATE=1) is a real claim: id-framed pipelining over the
   heavier transport must still beat strict one-shot over the lighter
   one at equal worker count.  Arm the gate at standard scale or above:
   quick-scale jobs (n=16) finish in ~3 ms, which is inside the noise of
   the mux reader thread and per-connection handler threads contending
   for the core, so the quick ratio swings either side of 1x run to
   run.  At n=20 the simulation dominates and the ratio is stable. *)
let run_net_bench scale =
  let n, total =
    match scale with
    | `Quick -> (16, 60)
    | `Standard -> (20, 160)
    | `Full -> (24, 320)
  in
  let job i =
    Ssg_engine.Job.make
      ~k:(max 1 (n / 4))
      (Build.block_sources
         (Rng.of_int (14000 + i))
         ~n ~k:(max 1 (n / 4)) ~prefix_len:2 ())
  in
  let batch = List.init total job in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let workers = max 2 (Parallel.default_domains ()) in
  let unix_sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ssg-bench-net-%d.sock" (Unix.getpid ()))
  in
  let tcp_addr =
    (* An ephemeral port read back from the kernel, released just before
       the server binds it. *)
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> failwith "no port"
    in
    Unix.close fd;
    Printf.sprintf "tcp:127.0.0.1:%d" port
  in
  let start_server socket =
    if Sys.file_exists socket then Sys.remove socket;
    Thread.create
      (fun () ->
        Ssg_engine.Server.serve ~workers ~queue_capacity:64 ~cache_capacity:0
          ~socket ())
      ()
  in
  let wait_up socket =
    let rec go tries =
      if tries = 0 then failwith "bench service did not come up";
      match Ssg_engine.Client.connect ~retries:0 ~socket ~deadline_s:60. () with
      | c -> c
      | exception Unix.Unix_error _ ->
          Thread.delay 0.05;
          go (tries - 1)
    in
    go 200
  in
  let shutdown socket thread =
    let c = wait_up socket in
    Ssg_engine.Client.shutdown c;
    Ssg_engine.Client.close c;
    Thread.join thread
  in
  (* Unix socket, strict one-shot: a full round trip per job. *)
  let ut = start_server unix_sock in
  let oneshot_s =
    let c = wait_up unix_sock in
    Fun.protect
      ~finally:(fun () -> Ssg_engine.Client.close c)
      (fun () ->
        let (), s =
          time (fun () ->
              List.iter
                (fun j ->
                  let completion = Ssg_engine.Client.submit c j in
                  assert (Result.is_ok completion.Ssg_engine.Job.result))
                batch)
        in
        s)
  in
  shutdown unix_sock ut;
  (* TCP, pipelined: every job in flight before any reply is read. *)
  let tt = start_server tcp_addr in
  let c = wait_up tcp_addr in
  Ssg_engine.Client.close c;
  let pipelined_s =
    let pc = Ssg_engine.Pclient.connect ~socket:tcp_addr ~deadline_s:120. () in
    Fun.protect
      ~finally:(fun () -> Ssg_engine.Pclient.close pc)
      (fun () ->
        let (), s =
          time (fun () ->
              let tickets =
                List.map (fun j -> Ssg_engine.Pclient.submit pc j) batch
              in
              List.iter
                (fun t ->
                  match Ssg_engine.Pclient.await t with
                  | Ok completion ->
                      assert (Result.is_ok completion.Ssg_engine.Job.result)
                  | Error msg -> failwith msg)
                tickets)
        in
        s)
  in
  shutdown tcp_addr tt;
  let jps s = float_of_int total /. Stdlib.max s 1e-9 in
  let ratio = oneshot_s /. Stdlib.max pipelined_s 1e-9 in
  Printf.printf
    "== B14: front-door transport throughput (%d all-distinct jobs, n=%d, %d \
     worker domain(s)) ==\n\n"
    total n workers;
  let table = Table.create [ "front door"; "wall-clock"; "jobs/s"; "vs one-shot" ] in
  let row label s =
    Table.add_row table
      [ label; Printf.sprintf "%.1f ms" (1000. *. s);
        Printf.sprintf "%.0f" (jps s);
        Printf.sprintf "%.2fx" (oneshot_s /. Stdlib.max s 1e-9) ]
  in
  row "unix socket, one-shot client" oneshot_s;
  row "tcp, pipelined client (all in flight)" pipelined_s;
  Table.print table;
  Printf.printf
    "\n\
    \  {\"bench\":\"B14\",\"jobs\":%d,\"n\":%d,\"workers\":%d,\"unix_oneshot_s\":%.4f,\"tcp_pipelined_s\":%.4f,\"unix_oneshot_jps\":%.0f,\"tcp_pipelined_jps\":%.0f,\"speedup\":%.3f}\n"
    total n workers oneshot_s pipelined_s (jps oneshot_s) (jps pipelined_s)
    ratio;
  if Sys.getenv_opt "SSG_NET_GATE" = Some "1" then
    if ratio < 1. then begin
      Printf.printf
        "  GATE FAILED: pipelined TCP %.2fx < 1x unix one-shot\n" ratio;
      exit 1
    end
    else
      Printf.printf "  gate: pipelined TCP >= unix one-shot (OK, %.2fx)\n" ratio;
  print_newline ()

(* ---------------- B15: incremental skeleton hot path + sweep ---------------- *)

(* The lib/skeleton claim: along the ⊇-chain (eq. 1) a round that removes
   no skeleton edge changes {e nothing} downstream, so the per-round
   derivations — SCC analysis, the PT rows, and min_k (a branch-and-bound
   MIS) — can be served from revision-stamped caches, with the MIS search
   warm-started from the previous round's witness when the skeleton does
   shrink.  Both sides of the comparison consume the same trace and
   produce the same per-round answers; only the recomputation discipline
   differs:

   - from scratch: Analysis.analyze + Timely.sources_of + Predicate.min_k
     rebuilt from the current skeleton every round (what the monitors and
     [ssg series] did before the incremental layer);
   - incremental: Skeleton.Incremental absorbs each round graph, bumping a
     revision only when edges were removed; analysis/PT/min_k are cached
     per revision, so the long stable suffix costs one O(n²/w)
     intersection per round and nothing else.

   Gate (SSG_SWEEP_GATE=1): incremental >= 2x from-scratch at n >= 64.

   The second half times [ssg sweep]'s fan-out: the same (n, k, family)
   grid as one pipelined batch on a single-worker pool versus the
   default pool, reporting jobs/s, the scaling ratio and how many pool
   domains actually executed cells (Sweep.domains_used over the drained
   tracer).  Near-linear scaling is only observable with idle cores, so
   the >= 1.5x scaling leg of the gate arms itself only when the host
   has >= 4 domains; the single-run speedup leg is host-independent. *)
let run_sweep_bench scale =
  let open Ssg_skeleton in
  let n, rounds =
    match scale with
    | `Quick -> (64, 96)
    | `Standard -> (64, 192)
    | `Full -> (96, 288)
  in
  let k = max 1 (n / 8) in
  let adv =
    Build.block_sources (Rng.of_int 15000) ~n ~k ~prefix_len:6 ~noise:0.3 ()
  in
  let tr = Adversary.trace adv ~rounds in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let scratch_min_k, scratch_s =
    time (fun () ->
        let acc = Skeleton.start ~n in
        let last = ref 0 in
        for r = 1 to rounds do
          ignore (Skeleton.absorb acc (Trace.graph tr r));
          let skel = Skeleton.view acc in
          let analysis = Analysis.analyze skel in
          ignore (Analysis.root_count analysis);
          last := Ssg_predicates.Predicate.min_k (Timely.sources_of skel)
        done;
        !last)
  in
  let inc_min_k, inc_s =
    time (fun () ->
        let inc = Incremental.start ~n in
        let tracker = Ssg_predicates.Min_k_tracker.create () in
        let last = ref 0 in
        for r = 1 to rounds do
          ignore (Incremental.absorb inc (Trace.graph tr r));
          ignore (Analysis.root_count (Incremental.analysis inc));
          last :=
            Ssg_predicates.Min_k_tracker.min_k
              ~revision:(Incremental.revision inc)
              tracker (Incremental.pts inc)
        done;
        !last)
  in
  (* Same trace, same answers — the cache is an optimization, not an
     approximation. *)
  assert (scratch_min_k = inc_min_k);
  let single_speedup = scratch_s /. Stdlib.max inc_s 1e-9 in
  (* Sweep fan-out: a 4 (n, k) x 3 family grid, submit-all-then-await,
     exactly the [ssg sweep] fold. *)
  let grid =
    Sweep.create ~ns:[ 10; 12 ] ~ks:[ 1; 2 ]
      ~families:[ Sweep.Block_sources; Sweep.Partitioned; Sweep.Single_root ]
      ~seed:15001
  in
  let cells = Sweep.cells grid in
  let jobs =
    List.map
      (fun (cell : Sweep.cell) ->
        let adv = Sweep.adversary cell in
        Ssg_engine.Job.make ~k:(Sweep.effective_k cell adv) adv)
      cells
  in
  let run_sweep workers =
    let engine = Ssg_engine.Engine.create ~workers ~cache_capacity:0 () in
    let (), s =
      time (fun () ->
          let tickets =
            List.map (fun j -> Ssg_engine.Engine.submit engine j) jobs
          in
          List.iter
            (fun t ->
              let completion = Ssg_engine.Engine.await engine t in
              assert (Result.is_ok completion.Ssg_engine.Job.result))
            tickets)
    in
    Ssg_engine.Engine.shutdown engine;
    s
  in
  let sweep_single_s = run_sweep 1 in
  let sweep_workers = Stdlib.max 1 (Parallel.default_domains ()) in
  Ssg_obs.Tracer.reset ();
  Ssg_obs.Tracer.set_enabled true;
  let sweep_multi_s = run_sweep sweep_workers in
  Ssg_obs.Tracer.set_enabled false;
  let domains_used = Sweep.domains_used (Ssg_obs.Tracer.events ()) in
  let sweep_speedup = sweep_single_s /. Stdlib.max sweep_multi_s 1e-9 in
  let ncells = List.length cells in
  Printf.printf
    "== B15: incremental skeleton hot path (n=%d, %d rounds) + sweep \
     fan-out (%d cells) ==\n\n"
    n rounds ncells;
  let table = Table.create [ "derivation path"; "wall-clock"; "vs scratch" ] in
  Table.add_row table
    [
      "from scratch every round (analysis+PT+min_k)";
      Printf.sprintf "%.1f ms" (1000. *. scratch_s);
      "1.00x";
    ];
  Table.add_row table
    [
      "incremental (revision-cached, warm MIS)";
      Printf.sprintf "%.1f ms" (1000. *. inc_s);
      Printf.sprintf "%.2fx" single_speedup;
    ];
  Table.print table;
  let jps s = float_of_int ncells /. Stdlib.max s 1e-9 in
  Printf.printf "\n";
  let table = Table.create [ "sweep pool"; "wall-clock"; "cells/s"; "scaling" ] in
  Table.add_row table
    [
      "1 worker";
      Printf.sprintf "%.1f ms" (1000. *. sweep_single_s);
      Printf.sprintf "%.0f" (jps sweep_single_s);
      "1.00x";
    ];
  Table.add_row table
    [
      Printf.sprintf "%d workers (%d domains used)" sweep_workers domains_used;
      Printf.sprintf "%.1f ms" (1000. *. sweep_multi_s);
      Printf.sprintf "%.0f" (jps sweep_multi_s);
      Printf.sprintf "%.2fx" sweep_speedup;
    ];
  Table.print table;
  Printf.printf
    "\n\
    \  {\"bench\":\"B15\",\"n\":%d,\"rounds\":%d,\"scratch_s\":%.4f,\"incremental_s\":%.4f,\"speedup\":%.3f,\"sweep_cells\":%d,\"sweep_single_s\":%.4f,\"sweep_multi_s\":%.4f,\"sweep_workers\":%d,\"sweep_domains_used\":%d,\"sweep_speedup\":%.3f}\n"
    n rounds scratch_s inc_s single_speedup ncells sweep_single_s sweep_multi_s
    sweep_workers domains_used sweep_speedup;
  if Sys.getenv_opt "SSG_SWEEP_GATE" = Some "1" then begin
    if single_speedup < 2. then begin
      Printf.printf
        "  GATE FAILED: incremental path %.2fx < 2x from-scratch at n=%d\n"
        single_speedup n;
      exit 1
    end
    else
      Printf.printf "  gate: incremental >= 2x from-scratch (OK, %.2fx)\n"
        single_speedup;
    if sweep_workers >= 4 then
      if sweep_speedup < 1.5 then begin
        Printf.printf
          "  GATE FAILED: sweep scaling %.2fx < 1.5x with %d workers\n"
          sweep_speedup sweep_workers;
        exit 1
      end
      else
        Printf.printf "  gate: sweep scaling >= 1.5x (OK, %.2fx)\n"
          sweep_speedup
    else
      Printf.printf
        "  gate: sweep-scaling leg skipped (%d worker domain(s); needs >= 4 \
         idle cores to be a claim)\n"
        sweep_workers
  end;
  print_newline ()

(* ---------------- B17: context-propagation overhead ---------------- *)

(* PR 9's distributed-tracing claim: carrying a trace context on every
   request is free while tracing is off.  Same daemon and all-distinct
   cache-miss batch as B14's pipelined-TCP side, two timed passes on
   fresh daemons: one plain, one attaching a root context to every
   submit ([Pclient.submit ~ctx] — the loadgen's trace-sampling path),
   tracing disabled on both ends throughout.

   The wall-clock ratio is reported (min of [reps] repetitions per side
   to shed scheduler noise), but the <= 2% gate (SSG_OBS_GATE=1) is
   asserted analytically, as in B12: the measured per-request envelope
   microcost (mint + encode on the client, strip + decode on the
   server) against the measured per-job service time.  At bench scale a
   2% wall-clock delta is inside run-to-run noise; the microcost is
   not. *)
let run_ctx_bench scale =
  let n, total, reps =
    match scale with
    | `Quick -> (16, 60, 2)
    | `Standard -> (20, 160, 3)
    | `Full -> (24, 320, 3)
  in
  let job i =
    Ssg_engine.Job.make
      ~k:(max 1 (n / 4))
      (Build.block_sources
         (Rng.of_int (17000 + i))
         ~n ~k:(max 1 (n / 4)) ~prefix_len:2 ())
  in
  let batch = List.init total job in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let workers = max 2 (Parallel.default_domains ()) in
  Ssg_obs.Tracer.set_enabled false;
  Ssg_obs.Tracer.reset ();
  let fresh_tcp () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> failwith "no port"
    in
    Unix.close fd;
    Printf.sprintf "tcp:127.0.0.1:%d" port
  in
  let wait_up socket =
    let rec go tries =
      if tries = 0 then failwith "bench service did not come up";
      match Ssg_engine.Client.connect ~retries:0 ~socket ~deadline_s:60. () with
      | c -> c
      | exception Unix.Unix_error _ ->
          Thread.delay 0.05;
          go (tries - 1)
    in
    go 200
  in
  (* One timed pass: fresh daemon (cache off, so every rep re-executes
     the whole batch), pipelined client, optional per-submit context. *)
  let pass ~ctx () =
    let socket = fresh_tcp () in
    let thread =
      Thread.create
        (fun () ->
          Ssg_engine.Server.serve ~workers ~queue_capacity:64 ~cache_capacity:0
            ~socket ())
        ()
    in
    let c = wait_up socket in
    Ssg_engine.Client.close c;
    let pc = Ssg_engine.Pclient.connect ~socket ~deadline_s:120. () in
    let (), s =
      Fun.protect
        ~finally:(fun () -> Ssg_engine.Pclient.close pc)
        (fun () ->
          time (fun () ->
              let tickets =
                List.map
                  (fun j ->
                    if ctx then
                      Ssg_engine.Pclient.submit
                        ~ctx:(Ssg_obs.Context.root ()) pc j
                    else Ssg_engine.Pclient.submit pc j)
                  batch
              in
              List.iter
                (fun t ->
                  match Ssg_engine.Pclient.await t with
                  | Ok completion ->
                      assert (Result.is_ok completion.Ssg_engine.Job.result)
                  | Error msg -> failwith msg)
                tickets))
    in
    let c = wait_up socket in
    Ssg_engine.Client.shutdown c;
    Ssg_engine.Client.close c;
    Thread.join thread;
    s
  in
  let best f =
    let rec go best left =
      if left = 0 then best else go (Float.min best (f ())) (left - 1)
    in
    go (f ()) (reps - 1)
  in
  let plain_s = best (pass ~ctx:false) in
  let ctx_s = best (pass ~ctx:true) in
  (* Envelope microcost: everything the context path adds per request
     when tracing is off — mint a root, encode it, wrap the payload,
     strip the envelope, decode the wire form. *)
  let payload =
    Ssg_engine.Protocol.request_to_bytes (Ssg_engine.Protocol.Submit (job 0))
  in
  let micro_reqs = 200_000 in
  let (), micro_s =
    time (fun () ->
        for _ = 1 to micro_reqs do
          let ctx = Ssg_obs.Context.root () in
          let framed =
            Ssg_net.Frame.with_ctx ~ctx:(Ssg_obs.Context.to_wire ctx) payload
          in
          match Ssg_net.Frame.split_ctx framed with
          | Some wire, _ -> ignore (Ssg_obs.Context.of_wire wire)
          | None, _ -> assert false
        done)
  in
  let envelope_ns = 1e9 *. micro_s /. float_of_int micro_reqs in
  let per_job_s = plain_s /. float_of_int total in
  let overhead_frac = envelope_ns *. 1e-9 /. Stdlib.max per_job_s 1e-9 in
  let ratio = ctx_s /. Stdlib.max plain_s 1e-9 in
  Printf.printf
    "== B17: context-propagation overhead (tracing off, %d all-distinct jobs, \
     n=%d, %d worker domain(s), best of %d) ==\n\n"
    total n workers reps;
  let table = Table.create [ "pipelined TCP submits"; "wall-clock"; "vs plain" ] in
  let row label s =
    Table.add_row table
      [ label; Printf.sprintf "%.1f ms" (1000. *. s);
        Printf.sprintf "%.2fx" (s /. Stdlib.max plain_s 1e-9) ]
  in
  row "plain (no context envelope)" plain_s;
  row "context envelope on every request" ctx_s;
  Table.print table;
  Printf.printf
    "\n\
    \  envelope microcost: %.0f ns/request -> disabled-tracing propagation \
     overhead bound %.4f%% of job time\n"
    envelope_ns (100. *. overhead_frac);
  Printf.printf
    "  {\"bench\":\"B17\",\"jobs\":%d,\"n\":%d,\"workers\":%d,\"plain_s\":%.4f,\"ctx_s\":%.4f,\"ratio\":%.3f,\"envelope_ns\":%.0f,\"overhead_bound_frac\":%.6f}\n"
    total n workers plain_s ctx_s ratio envelope_ns overhead_frac;
  if Sys.getenv_opt "SSG_OBS_GATE" = Some "1" then
    if overhead_frac > 0.02 then begin
      Printf.printf
        "  GATE FAILED: context-propagation overhead bound %.4f%% > 2%%\n"
        (100. *. overhead_frac);
      exit 1
    end
    else
      Printf.printf
        "  gate: disabled-tracing propagation overhead bound <= 2%% (OK)\n";
  print_newline ()

(* ---------------- B16: fleet-scale lint ---------------- *)

(* Lint v2's per-file work is real analysis — a fixpoint traversal of the
   skeleton chain with a per-revision min_k (branch-and-bound MIS), the
   Psrcs machinery, the text-level passes — and a lint fleet (`ssg lint
   FILE...`, the engine's batch pre-gate) is embarrassingly parallel
   across files.  B16 measures exactly the CLI's fan-out: the same
   generated corpus linted by a single-domain List.map versus
   Pool.map on the default pool, asserting identical summaries.

   Gate (SSG_LINT_GATE=1): pool lint >= 2x single-domain — armed only on
   >= 4 worker domains (with fewer cores there is no 2x to claim). *)
let run_lint_bench scale =
  let nfiles, n =
    match scale with
    | `Quick -> (64, 16)
    | `Standard -> (128, 24)
    | `Full -> (256, 32)
  in
  let texts =
    List.init nfiles (fun i ->
        let rng = Rng.of_int (16000 + i) in
        let adv =
          match i mod 4 with
          | 0 ->
              Build.block_sources rng ~n ~k:(1 + (i mod 3)) ~prefix_len:4
                ~noise:0.3 ()
          | 1 -> Build.partitioned rng ~n ~blocks:(2 + (i mod 3)) ~prefix_len:4 ()
          | 2 -> Build.single_root rng ~n ~prefix_len:4 ()
          | _ -> Build.arbitrary rng ~n ~density:0.4 ~prefix_len:4 ()
        in
        Run_format.to_string adv)
  in
  let lint text =
    Ssg_lint.Lint.summarize (Ssg_lint.Lint.check_text ~k:2 text)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let single, single_s = time (fun () -> List.map lint texts) in
  let workers = Stdlib.max 1 (Parallel.default_domains ()) in
  let pool = Ssg_engine.Pool.create ~workers () in
  let fleet, fleet_s = time (fun () -> Ssg_engine.Pool.map pool lint texts) in
  Ssg_engine.Pool.shutdown pool;
  (* Same corpus, same diagnostics — the fleet is a scheduler, not an
     approximation. *)
  assert (single = fleet);
  let speedup = single_s /. Stdlib.max fleet_s 1e-9 in
  let fps s = float_of_int nfiles /. Stdlib.max s 1e-9 in
  Printf.printf "== B16: fleet-scale lint (%d files, n=%d) ==\n\n" nfiles n;
  let table = Table.create [ "lint path"; "wall-clock"; "files/s"; "scaling" ] in
  Table.add_row table
    [
      "single domain (List.map)";
      Printf.sprintf "%.1f ms" (1000. *. single_s);
      Printf.sprintf "%.0f" (fps single_s);
      "1.00x";
    ];
  Table.add_row table
    [
      Printf.sprintf "pool fan-out (%d workers)" workers;
      Printf.sprintf "%.1f ms" (1000. *. fleet_s);
      Printf.sprintf "%.0f" (fps fleet_s);
      Printf.sprintf "%.2fx" speedup;
    ];
  Table.print table;
  Printf.printf
    "\n\
    \  {\"bench\":\"B16\",\"files\":%d,\"n\":%d,\"single_s\":%.4f,\"fleet_s\":%.4f,\"workers\":%d,\"speedup\":%.3f}\n"
    nfiles n single_s fleet_s workers speedup;
  if Sys.getenv_opt "SSG_LINT_GATE" = Some "1" then
    if workers >= 4 then
      if speedup < 2. then begin
        Printf.printf
          "  GATE FAILED: pool lint %.2fx < 2x single-domain with %d workers\n"
          speedup workers;
        exit 1
      end
      else
        Printf.printf "  gate: pool lint >= 2x single-domain (OK, %.2fx)\n"
          speedup
    else
      Printf.printf
        "  gate: skipped (%d worker domain(s); needs >= 4 cores to be a \
         claim)\n"
        workers;
  print_newline ()

(* ---------------- B18: warm boot vs cold boot ---------------- *)

(* The store's claim: restarting over a persisted journal returns a
   worker to its cache hit rate in the time it takes to re-read the
   journal, not to re-run the simulations.  A seeding life computes a
   working set of all-distinct jobs with a store attached; the timed
   legs then measure the wall-clock from boot to the moment 90% of the
   working set has been served — the cold engine (empty cache, no
   store) recomputes its way there, the warm one (Store.open_ + LRU
   replay folded into the timed region) serves hits from the first
   request.

   Gate (SSG_STORE_GATE=1): warm time-to-90% <= half the cold one.
   Cold work is simulation on worker domains and warm work is a journal
   read plus cache lookups, so the gate holds on any host. *)
let run_store_bench scale =
  let total, n =
    match scale with
    | `Quick -> (48, 10)
    | `Standard -> (96, 12)
    | `Full -> (192, 14)
  in
  let job i =
    Ssg_engine.Job.make ~k:2
      (Build.block_sources (Rng.of_int (18000 + i)) ~n ~k:2 ~prefix_len:2 ())
  in
  let batch = List.init total job in
  let workers = max 2 (Parallel.default_domains ()) in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ssg-bench-b18-%d" (Unix.getpid ()))
  in
  let clean () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  clean ();
  (* Seeding life: compute the working set once, journaled. *)
  let store = Ssg_store.Store.open_ ~dir () in
  let engine = Ssg_engine.Engine.create ~workers ~store () in
  let seeded = Ssg_engine.Engine.run_batch engine batch in
  assert (
    List.for_all (fun c -> Result.is_ok c.Ssg_engine.Job.result) seeded);
  Ssg_engine.Engine.shutdown engine;
  let target = (total * 9 + 9) / 10 in
  (* Boot under the clock, stream the working set, stop the clock when
     [target] jobs have been answered. *)
  let time_to_target boot =
    let t0 = Unix.gettimeofday () in
    let engine = boot () in
    let tickets = Ssg_engine.Engine.submit_batch engine batch in
    let served = ref 0 and t_target = ref Float.nan and hits = ref 0 in
    List.iter
      (fun ticket ->
        let c = Ssg_engine.Engine.await engine ticket in
        assert (Result.is_ok c.Ssg_engine.Job.result);
        if c.Ssg_engine.Job.cached then incr hits;
        incr served;
        if !served = target then t_target := Unix.gettimeofday () -. t0)
      tickets;
    Ssg_engine.Engine.shutdown engine;
    (!t_target, float_of_int !hits /. float_of_int total)
  in
  let cold_s, cold_hit_rate =
    time_to_target (fun () -> Ssg_engine.Engine.create ~workers ())
  in
  let replayed = ref 0 in
  let warm_s, warm_hit_rate =
    time_to_target (fun () ->
        let store = Ssg_store.Store.open_ ~dir () in
        replayed := Ssg_store.Store.replayed_records store;
        Ssg_engine.Engine.create ~workers ~store ())
  in
  (* The warm boot must actually have been warm, or the comparison is
     meaningless. *)
  assert (!replayed >= total);
  assert (warm_hit_rate >= 0.9);
  let speedup = cold_s /. Stdlib.max warm_s 1e-9 in
  Printf.printf
    "== B18: warm boot vs cold boot (%d-job working set, n=%d, %d worker \
     domain(s), %d journaled record(s)) ==\n\n"
    total n workers !replayed;
  let table =
    Table.create [ "boot"; "time to 90% served"; "hit rate"; "scaling" ]
  in
  Table.add_row table
    [
      "cold (empty cache, recompute)";
      Printf.sprintf "%.1f ms" (1000. *. cold_s);
      Printf.sprintf "%.0f%%" (100. *. cold_hit_rate);
      "1.00x";
    ];
  Table.add_row table
    [
      "warm (journal replay)";
      Printf.sprintf "%.1f ms" (1000. *. warm_s);
      Printf.sprintf "%.0f%%" (100. *. warm_hit_rate);
      Printf.sprintf "%.2fx" speedup;
    ];
  Table.print table;
  Printf.printf
    "\n\
    \  {\"bench\":\"B18\",\"jobs\":%d,\"n\":%d,\"workers\":%d,\"replayed\":%d,\"cold_s\":%.4f,\"warm_s\":%.4f,\"cold_hit_rate\":%.3f,\"warm_hit_rate\":%.3f,\"speedup\":%.3f}\n"
    total n workers !replayed cold_s warm_s cold_hit_rate warm_hit_rate
    speedup;
  if Sys.getenv_opt "SSG_STORE_GATE" = Some "1" then
    if speedup < 2. then begin
      Printf.printf
        "  GATE FAILED: warm boot %.2fx < 2x faster than cold to 90%% served\n"
        speedup;
      exit 1
    end
    else
      Printf.printf "  gate: warm boot >= 2x faster to 90%% served (OK, %.2fx)\n"
        speedup;
  clean ();
  print_newline ()

(* ---------------- main ---------------- *)

let () =
  let scale = scale () in
  let scale_name =
    match scale with
    | `Quick -> "quick"
    | `Standard -> "standard"
    | `Full -> "full"
  in
  (* SSG_BENCH_ONLY=B9|B12 runs a single wall-clock section — what CI's
     bench-smoke step uses to assert the B12 overhead gate without
     paying for the full harness. *)
  (match Sys.getenv_opt "SSG_BENCH_ONLY" with
  | Some "B9" ->
      run_engine_bench scale;
      exit 0
  | Some "B12" ->
      run_tracing_bench scale;
      exit 0
  | Some "B13" ->
      run_cluster_bench scale;
      exit 0
  | Some "B14" ->
      run_net_bench scale;
      exit 0
  | Some "B15" ->
      run_sweep_bench scale;
      exit 0
  | Some "B16" ->
      run_lint_bench scale;
      exit 0
  | Some "B17" ->
      run_ctx_bench scale;
      exit 0
  | Some "B18" ->
      run_store_bench scale;
      exit 0
  | Some other ->
      Printf.eprintf
        "SSG_BENCH_ONLY=%s not recognized (B9 | B12 | B13 | B14 | B15 | B16 | \
         B17 | B18)\n"
        other;
      exit 2
  | None -> ());
  Printf.printf
    "Stable Skeleton Graphs — benchmark & reproduction harness (scale: %s)\n\n"
    scale_name;
  run_micro scale;
  run_engine_bench scale;
  run_tracing_bench scale;
  run_cluster_bench scale;
  run_net_bench scale;
  run_ctx_bench scale;
  run_sweep_bench scale;
  run_lint_bench scale;
  run_store_bench scale;
  let csv_dir = Sys.getenv_opt "SSG_BENCH_CSV_DIR" in
  (match csv_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  List.iter
    (fun e ->
      let result = e.Experiment.run scale in
      print_string (Experiment.render e result);
      (match csv_dir with
      | Some dir ->
          let path = Filename.concat dir (e.Experiment.id ^ ".csv") in
          let oc = open_out path in
          output_string oc (Experiment.csv result);
          close_out oc;
          Printf.printf "  [csv written to %s]\n" path
      | None -> ());
      print_newline ())
    Experiment.all
