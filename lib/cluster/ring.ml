(* Points are (hash, member) pairs sorted by unsigned hash, ties broken
   by member name then vnode index at build time so the ring is a pure
   function of (members, vnodes). *)

let default_vnodes = 128

(* FNV-1a 64 over the bytes, then a splitmix64 finalizer: FNV alone
   clusters on short common-prefix inputs (socket paths differing in one
   digit), the finalizer spreads them over the whole circle. *)
let hash64 s =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := mul (logxor !h (of_int (Char.code c))) 0x100000001b3L)
    s;
  let h = !h in
  let h = logxor h (shift_right_logical h 30) in
  let h = mul h 0xbf58476d1ce4e5b9L in
  let h = logxor h (shift_right_logical h 27) in
  let h = mul h 0x94d049bb133111ebL in
  logxor h (shift_right_logical h 31)

type t = {
  vnodes : int;
  members : string array;  (* sorted, distinct *)
  points : (int64 * string) array;  (* sorted by unsigned hash *)
}

let create ?(vnodes = default_vnodes) members =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let members =
    Array.of_list (List.sort_uniq String.compare members)
  in
  let points =
    Array.init
      (Array.length members * vnodes)
      (fun i ->
        let m = members.(i / vnodes) in
        (hash64 (Printf.sprintf "%s#%d" m (i mod vnodes)), m))
  in
  Array.sort
    (fun (ha, ma) (hb, mb) ->
      match Int64.unsigned_compare ha hb with
      | 0 -> String.compare ma mb
      | c -> c)
    points;
  { vnodes; members; points }

let members t = Array.to_list t.members
let vnodes t = t.vnodes
let is_empty t = Array.length t.members = 0

(* Index of the first point at or clockwise after [h] (wrapping). *)
let locate t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  if !lo = n then 0 else !lo

let owner t key =
  if is_empty t then None
  else Some (snd t.points.(locate t (hash64 key)))

let successors t key =
  if is_empty t then []
  else begin
    let n = Array.length t.points in
    let want = Array.length t.members in
    let seen = Hashtbl.create want in
    let order = ref [] in
    let i = ref (locate t (hash64 key)) in
    while Hashtbl.length seen < want do
      let m = snd t.points.(!i) in
      if not (Hashtbl.mem seen m) then begin
        Hashtbl.add seen m ();
        order := m :: !order
      end;
      i := (!i + 1) mod n
    done;
    List.rev !order
  end

let add t m =
  if Array.exists (String.equal m) t.members then t
  else create ~vnodes:t.vnodes (m :: Array.to_list t.members)

let remove t m =
  if not (Array.exists (String.equal m) t.members) then t
  else
    create ~vnodes:t.vnodes
      (List.filter (fun x -> not (String.equal x m)) (Array.to_list t.members))
