let log_src = Logs.Src.create "ssg.cluster.router" ~doc:"cluster front end"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Metrics = Ssg_obs.Metrics
module Tracer = Ssg_obs.Tracer
module Transport = Ssg_net.Transport
module Frame = Ssg_net.Frame
open Ssg_engine

(* Per-shard metric slot.  Members come and go at runtime (Join/Leave),
   so slots live in a table keyed by canonical address; each gets a
   stable, monotonically assigned index for its metric names.  A slot
   is never unregistered — a departed member's counters keep their last
   value in the exposition, which is how Prometheus expects counters to
   behave across membership churn. *)
type shard = {
  idx : int;
  s_routed : Metrics.counter;
  s_up : Metrics.gauge;
  s_reporting : Metrics.gauge;
}

type t = {
  registry : Registry.t;
  request_timeout_s : float;
  metrics : Metrics.t;
  routed : Metrics.counter;
  failovers : Metrics.counter;
  exhausted : Metrics.counter;
  markdowns : Metrics.counter;
  readmissions : Metrics.counter;
  joins : Metrics.counter;
  leaves : Metrics.counter;
  handoff_keys : Metrics.counter;
  shard_lock : Mutex.t;
  shards : (string, shard) Hashtbl.t;
  mutable next_shard : int;
  mutable self_addr : string option;  (* set once serving, for Join guard *)
  hop_worker : Metrics.histogram;  (* router→worker exchange latency *)
}

let shard_for t addr =
  Mutex.lock t.shard_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.shard_lock)
    (fun () ->
      match Hashtbl.find_opt t.shards addr with
      | Some s -> s
      | None ->
          let i = t.next_shard in
          t.next_shard <- i + 1;
          let s =
            {
              idx = i;
              s_routed =
                Metrics.counter t.metrics ~help:"Jobs routed to this shard"
                  (Printf.sprintf "ssg_router_shard%d_routed_total" i);
              s_up =
                Metrics.gauge t.metrics
                  ~help:"1 when this shard is in the ring"
                  (Printf.sprintf "ssg_router_shard%d_up" i);
              s_reporting =
                Metrics.gauge t.metrics
                  ~help:"1 when this shard answered the last stats fan-out"
                  (Printf.sprintf "ssg_router_shard%d_reporting" i);
            }
          in
          Hashtbl.add t.shards addr s;
          s)

let backends t = Registry.backends t.registry

(* One forwarded exchange: fresh connection (Unix-domain connects are
   cheap and a per-request descriptor keeps failover semantics exact —
   no poisoned pooled connection can leak between jobs), no connect
   retries (the router does its own failover instead), reply deadline
   armed so a mute backend costs [request_timeout_s], not forever.
   Job-bearing exchanges feed the router→worker hop histogram; control
   exchanges (stats, metrics, trace pulls) do not — the hop family
   decomposes request latency, not management traffic. *)
let forward ?ctx t addr request =
  let c =
    Client.connect ~retries:0 ~deadline_s:t.request_timeout_s ~socket:addr ()
  in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      match request with
      | Protocol.Submit _ | Protocol.Batch _ ->
          let t0 = Unix.gettimeofday () in
          let reply = Client.rpc ?ctx c request in
          Metrics.observe t.hop_worker (1000. *. (Unix.gettimeofday () -. t0));
          reply
      | _ -> Client.rpc ?ctx c request)

let record_routed t addr =
  Registry.mark_success t.registry addr;
  Metrics.incr t.routed;
  Metrics.incr (shard_for t addr).s_routed

(* Route one job to its ring owner, failing over along the successor
   list.  A protocol [Error] reply is relayed without failover: it is
   deterministic (the lint front door), not a shard failure.  [ctx]
   parents the [router.route] span under the caller's (the gateway's)
   span and hands the route span's own identity to the backend, making
   the worker's spans grandchildren of the edge request. *)
let route_job ?ctx t job =
  let key = Job.key job in
  let key_hex = Printf.sprintf "%Lx" (Ring.hash64 key) in
  let rec go fwd_ctx attempts = function
    | [] ->
        Metrics.incr t.exhausted;
        Protocol.Error "cluster: no live backend could serve the job"
    | addr :: rest -> (
        let outcome =
          match forward ?ctx:fwd_ctx t addr (Protocol.Submit job) with
          | (Protocol.Completed _ | Protocol.Error _) as reply -> Ok reply
          | _unexpected -> Error "unexpected reply kind"
          | exception Unix.Unix_error (e, _, _) ->
              Error (Unix.error_message e)
          | exception Failure msg -> Error msg
          | exception End_of_file -> Error "backend closed mid-exchange"
          | exception Sys_error msg -> Error msg
        in
        match outcome with
        | Ok reply ->
            record_routed t addr;
            reply
        | Error reason ->
            Registry.mark_failure t.registry addr;
            Log.info (fun m ->
                m "forward to %s failed (%s), %s" addr reason
                  (if rest = [] then "no shard left"
                   else "failing over to the successor shard"));
            if rest <> [] then begin
              Metrics.incr t.failovers;
              if Tracer.enabled () then
                Tracer.instant "router.failover"
                  ~args:
                    [ ("key", Tracer.Str key_hex); ("from", Tracer.Str addr) ]
            end;
            go fwd_ctx (attempts + 1) rest)
  in
  let run fwd_ctx = go fwd_ctx 0 (Registry.candidates t.registry key) in
  if Tracer.enabled () then
    let args = [ ("key", Tracer.Str key_hex) ] in
    match ctx with
    | Some c ->
        Tracer.with_span_ctx ~args ~ctx:c "router.route" (fun child ->
            run (Some child))
    | None -> Tracer.with_span ~args "router.route" (fun () -> run None)
  else
    (* Tracing off here: pass the caller's context through untouched so
       a tracing backend still parents under the edge span. *)
    run ctx

let error_completion msg =
  { Job.result = Error msg; cached = false; latency_ms = 0. }

let completion_of_reply = function
  | Protocol.Completed c -> c
  | Protocol.Error msg -> error_completion msg
  | _ -> error_completion "cluster: unexpected reply kind"

(* A batch splits by ring owner into per-backend sub-batches forwarded
   concurrently (that concurrency is where the cluster's throughput
   comes from: one client connection's batch fans out over every
   shard's worker pool at once).  A sub-batch whose backend fails falls
   back to job-by-job routing, which brings failover with it. *)
let route_batch ?ctx t jobs =
  let arr = Array.of_list jobs in
  let results = Array.map (fun _ -> error_completion "unrouted") arr in
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i job ->
      let owner =
        match Registry.candidates t.registry (Job.key job) with
        | addr :: _ -> addr
        | [] -> ""
      in
      Hashtbl.replace groups owner
        (i :: (try Hashtbl.find groups owner with Not_found -> [])))
    arr;
  let run_group owner indices =
    let indices = List.rev indices in
    let sub = List.map (fun i -> arr.(i)) indices in
    let fallback () =
      List.iter
        (fun i -> results.(i) <- completion_of_reply (route_job ?ctx t arr.(i)))
        indices
    in
    if owner = "" then fallback ()
    else
      match forward ?ctx t owner (Protocol.Batch sub) with
      | Protocol.Batch_completed cs when List.length cs = List.length indices
        ->
          Registry.mark_success t.registry owner;
          Metrics.add t.routed (List.length indices);
          Metrics.add (shard_for t owner).s_routed (List.length indices);
          List.iter2 (fun i c -> results.(i) <- c) indices cs
      | _ | (exception _) ->
          Registry.mark_failure t.registry owner;
          fallback ()
  in
  let threads =
    Hashtbl.fold
      (fun owner indices acc ->
        Thread.create (fun () -> run_group owner indices) () :: acc)
      groups []
  in
  List.iter Thread.join threads;
  Protocol.Batch_completed (Array.to_list results)

(* Fan [Stats] out to every configured backend (down ones included — a
   healed backend that the prober has not revisited yet still reports,
   and the success re-admits it). *)
let fan_stats t =
  backends t
  |> List.filter_map (fun addr ->
         match forward t addr Protocol.Stats with
         | Protocol.Stats_snapshot s ->
             Registry.mark_success t.registry addr;
             Some (addr, s)
         | _ ->
             Registry.mark_failure t.registry addr;
             None
         | exception _ ->
             Registry.mark_failure t.registry addr;
             None)

let merged_stats t =
  match fan_stats t with
  | [] -> Protocol.Error "cluster: no backend reachable for stats"
  | reports ->
      Protocol.Stats_snapshot (Telemetry.merge (List.map snd reports))

(* Fleet trace pull: relay [Trace_pull] to every backend and prepend
   the router's own report.  A pre-context backend answers the unknown
   tag with a protocol [Error] (and drops the connection) — fall back
   to the legacy [Trace] op for it, wrapped in an anchor-less report
   ([epoch_s = 0]: the stitcher leaves it unshifted). *)
let fleet_reports t =
  let legacy addr =
    match forward t addr Protocol.Trace with
    | Protocol.Trace_events events ->
        [
          {
            Tracer.role = "worker";
            pid = 0;
            epoch_s = 0.;
            dropped_events = 0;
            events;
          };
        ]
    | _ -> []
    | exception _ -> []
  in
  let backend_reports =
    backends t
    |> List.concat_map (fun addr ->
           match forward t addr Protocol.Trace_pull with
           | Protocol.Trace_reports reports -> reports
           | _ -> legacy addr
           | exception _ -> legacy addr)
  in
  Tracer.report_here ~role:"router" () :: backend_reports

(* The cluster exposition: router registry (global and per-shard
   counters), shard index -> address mapping as comments, then the
   merged backend snapshot under ssg_cluster_*. *)
let metrics_text t =
  let members = backends t in
  let reports = fan_stats t in
  let reported addr = List.mem_assoc addr reports in
  List.iter
    (fun addr ->
      let shard = shard_for t addr in
      Metrics.set_gauge shard.s_up
        (if Registry.is_up t.registry addr then 1. else 0.);
      Metrics.set_gauge shard.s_reporting (if reported addr then 1. else 0.))
    members;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# ssg cluster: %d backend(s), %d up, %d reporting\n"
       (List.length members)
       (List.length (Registry.up t.registry))
       (List.length reports));
  List.iter
    (fun addr ->
      Buffer.add_string buf
        (Printf.sprintf "# shard %d = %s\n" (shard_for t addr).idx addr))
    members;
  Buffer.add_string buf (Metrics.to_prometheus t.metrics);
  (match reports with
  | [] -> ()
  | _ ->
      Buffer.add_string buf
        (Telemetry.prometheus_of_snapshot ~prefix:"ssg_cluster_"
           (Telemetry.merge (List.map snd reports))));
  Buffer.contents buf

let create ?vnodes ?down_after ?probe_interval_s ?probe_timeout_s
    ?(request_timeout_s = 30.) backends =
  if request_timeout_s <= 0. then
    invalid_arg "Router: request_timeout_s must be > 0";
  (* Canonicalize addresses before registering: [/tmp/w.sock] and
     [unix:/tmp/w.sock] name the same worker, but Registry's
     string-level dedup cannot see that.  A duplicate surviving here
     would double the worker's vnodes (double load share) and
     double-count it in every Stats/Metrics fan-out. *)
  let seen = Hashtbl.create 8 in
  let backends =
    List.filter
      (fun canonical ->
        if Hashtbl.mem seen canonical then begin
          Log.warn (fun m ->
              m "duplicate backend %s dropped (listed more than once)"
                canonical);
          false
        end
        else begin
          Hashtbl.add seen canonical ();
          true
        end)
      (List.map
         (fun b -> Transport.to_string (Transport.of_string_exn b))
         backends)
  in
  let metrics = Metrics.create () in
  let counter name help = Metrics.counter metrics ~help name in
  let markdowns =
    counter "ssg_router_markdowns_total"
      "Backends taken out of the ring after consecutive failures"
  in
  let readmissions =
    counter "ssg_router_readmissions_total"
      "Down backends re-admitted after a healthy exchange"
  in
  let on_transition _addr up =
    Metrics.incr (if up then readmissions else markdowns)
  in
  let registry =
    Registry.create ?vnodes ?down_after ?probe_interval_s ?probe_timeout_s
      ~on_transition backends
  in
  let t =
    {
      registry;
      request_timeout_s;
      metrics;
      routed =
        counter "ssg_router_jobs_routed_total"
          "Jobs forwarded to a backend and answered";
      failovers =
        counter "ssg_router_failovers_total"
          "Jobs retried on a successor shard after their owner failed";
      exhausted =
        counter "ssg_router_jobs_failed_total"
          "Jobs answered with an error after every candidate shard failed";
      markdowns;
      readmissions;
      joins =
        counter "ssg_router_joins_total"
          "Members admitted via a Join announcement";
      leaves =
        counter "ssg_router_leaves_total" "Members retired via a Leave";
      handoff_keys =
        counter "ssg_router_handoff_keys_total"
          "Cache entries streamed to their new owner on ring changes";
      shard_lock = Mutex.create ();
      shards = Hashtbl.create 8;
      next_shard = 0;
      self_addr = None;
      hop_worker = Telemetry.hop_router_worker metrics;
    }
  in
  (* Pre-assign shard indices in sorted order so a statically configured
     fleet numbers its shards exactly as before elastic membership. *)
  List.iter (fun addr -> ignore (shard_for t addr)) (Registry.backends registry);
  t

(* ---------------- elastic membership & warm handoff ---------------- *)

(* Bounds for one handoff: how many hot entries a donor is asked for,
   and how many ride in one Transfer frame. *)
let handoff_export_limit = 1024
let handoff_batch = 64

let rec chunks n = function
  | [] -> []
  | l ->
      let rec take k acc rest =
        match rest with
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | _ -> (List.rev acc, rest)
      in
      let batch, rest = take n [] l in
      batch :: chunks n rest

(* Push entries to their (new) owners, batched; returns keys landed. *)
let push_entries t entries =
  let by_owner = Hashtbl.create 4 in
  let ring = Registry.ring t.registry in
  List.iter
    (fun ((key, _) as entry) ->
      match Ring.owner ring key with
      | Some owner ->
          Hashtbl.replace by_owner owner
            (entry :: (try Hashtbl.find by_owner owner with Not_found -> []))
      | None -> ())
    entries;
  Hashtbl.fold
    (fun owner entries landed ->
      List.fold_left
        (fun landed batch ->
          match forward t owner (Protocol.Transfer batch) with
          | Protocol.Transferred n ->
              Registry.mark_success t.registry owner;
              landed + n
          | _ -> landed
          | exception _ ->
              Registry.mark_failure t.registry owner;
              landed)
        landed
        (chunks handoff_batch (List.rev entries)))
    by_owner 0

let export_from t donor =
  match forward t donor (Protocol.Export handoff_export_limit) with
  | Protocol.Entries entries -> entries
  | _ -> []
  | exception _ ->
      Registry.mark_failure t.registry donor;
      []

(* A new member owns ring ranges that existing members served until
   now: ask each donor for its hottest entries and stream the ones the
   new ring assigns to the joiner.  Best-effort by design — a failed
   handoff costs cache misses, never correctness. *)
let handoff_to t joiner =
  let ring = Registry.ring t.registry in
  let donors =
    List.filter (fun a -> not (String.equal a joiner)) (Registry.up t.registry)
  in
  let moved =
    List.concat_map
      (fun donor ->
        export_from t donor
        |> List.filter (fun (key, _) ->
               match Ring.owner ring key with
               | Some owner -> String.equal owner joiner
               | None -> false))
      donors
  in
  let landed = push_entries t moved in
  if landed > 0 then begin
    Metrics.add t.handoff_keys landed;
    Log.info (fun m ->
        m "warm handoff: %d hot key(s) streamed to joiner %s" landed joiner)
  end

let admit t addr =
  Metrics.incr t.joins;
  if Registry.add_member t.registry addr then handoff_to t addr

(* Retirement pulls the leaver's hot entries while it is still
   reachable, drops it from the ring, then pushes what it held to the
   ranges' new owners. *)
let retire t addr =
  let rescued = export_from t addr in
  if Registry.remove_member t.registry addr then begin
    Metrics.incr t.leaves;
    let landed = push_entries t rescued in
    if landed > 0 then begin
      Metrics.add t.handoff_keys landed;
      Log.info (fun m ->
          m "warm handoff: %d hot key(s) rescued from leaver %s" landed addr)
    end
  end

let fan_compact t =
  List.fold_left
    (fun total addr ->
      match forward t addr Protocol.Compact with
      | Protocol.Compacted n -> total + n
      | _ -> total
      | exception _ -> total)
    0 (Registry.up t.registry)

(* ---------------- the front-end socket server ---------------- *)

(* The front end speaks the same two dialects as [Server]: plain frames
   answered strictly in order, id-framed requests dispatched to their
   own thread (bounded per connection by [max_inflight]) so one slow
   shard does not head-of-line-block an entire client connection. *)
let handle_connection t ~stop ~wake ~active ~max_inflight fd =
  let wlock = Mutex.create () in
  let inflight = Atomic.make 0 in
  let broken = Atomic.make false in
  let send ?id reply =
    let payload = Protocol.reply_to_bytes (reply : Protocol.reply) in
    let payload =
      match id with Some id -> Frame.with_id ~id payload | None -> payload
    in
    Mutex.lock wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wlock)
      (fun () -> Protocol.write_frame_fd fd payload)
  in
  let reject ?id msg =
    Log.warn (fun m -> m "dropping connection: %s" msg);
    try send ?id (Protocol.Error msg) with _ -> ()
  in
  let serve_request ?ctx ?id request =
    try
      match request with
      | Protocol.Submit job ->
          send ?id (route_job ?ctx t job);
          true
      | Protocol.Batch jobs ->
          send ?id (route_batch ?ctx t jobs);
          true
      | Protocol.Stats ->
          send ?id (merged_stats t);
          true
      | Protocol.Metrics ->
          send ?id (Protocol.Metrics_text (metrics_text t));
          true
      | Protocol.Trace ->
          send ?id (Protocol.Trace_events (Tracer.events ()));
          true
      | Protocol.Trace_pull ->
          send ?id (Protocol.Trace_reports (fleet_reports t));
          true
      | Protocol.Join addr -> (
          match Transport.of_string_exn addr with
          | exception (Invalid_argument msg | Failure msg) ->
              send ?id (Protocol.Error ("join: bad address: " ^ msg));
              true
          | a ->
              let canonical = Transport.to_string a in
              if t.self_addr = Some canonical then begin
                send ?id (Protocol.Error "join: the router cannot be its own backend");
                true
              end
              else begin
                (* The Ack is sent only after any warm handoff ran, so a
                   joiner knows its cache is seeded once admitted. *)
                admit t canonical;
                send ?id Protocol.Ack;
                true
              end)
      | Protocol.Leave addr -> (
          match Transport.of_string_exn addr with
          | exception (Invalid_argument msg | Failure msg) ->
              send ?id (Protocol.Error ("leave: bad address: " ^ msg));
              true
          | a ->
              retire t (Transport.to_string a);
              send ?id Protocol.Ack;
              true)
      | Protocol.Compact ->
          send ?id (Protocol.Compacted (fan_compact t));
          true
      | Protocol.Export _ | Protocol.Transfer _ ->
          (* Handoff ops terminate at workers; the router only issues
             them. *)
          send ?id (Protocol.Error "handoff ops are worker-facing");
          true
      | Protocol.Shutdown ->
          Log.info (fun m -> m "router shutdown requested");
          Atomic.set stop true;
          wake ();
          send ?id Protocol.Shutting_down;
          false
    with
    | Sys_error _ | Unix.Unix_error _ -> false
    | e ->
        let msg = Printexc.to_string e in
        Log.warn (fun m -> m "router handler error: %s" msg);
        (try send ?id (Protocol.Error msg) with _ -> ());
        false
  in
  let rec loop () =
    if Atomic.get broken then ()
    else
      match Protocol.read_frame_fd fd with
      | exception End_of_file -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Log.info (fun m -> m "reaping stalled connection")
      | exception Unix.Unix_error _ -> ()
      | exception Failure msg -> reject msg
      | frame -> (
          match Frame.classify frame with
          | exception Failure msg -> reject msg
          | Frame.Plain frame -> (
              match Frame.split_ctx frame with
              | exception Failure msg -> reject msg
              | ctx_wire, frame -> (
                  let ctx = Option.bind ctx_wire Ssg_obs.Context.of_wire in
                  match Protocol.request_of_bytes frame with
                  | exception Failure msg -> reject msg
                  | request -> if serve_request ?ctx request then loop ()))
          | Frame.Id (id, inner) -> (
              match Frame.split_ctx inner with
              | exception Failure msg -> reject ~id msg
              | ctx_wire, inner -> (
                  let ctx = Option.bind ctx_wire Ssg_obs.Context.of_wire in
                  match Protocol.request_of_bytes inner with
                  | exception Failure msg -> reject ~id msg
                  | Protocol.Shutdown ->
                      ignore (serve_request ~id Protocol.Shutdown)
                  | request ->
                      if Atomic.get inflight >= max_inflight then begin
                        if serve_request ?ctx ~id request then loop ()
                      end
                      else begin
                        Atomic.incr inflight;
                        ignore
                          (Thread.create
                             (fun () ->
                               Fun.protect
                                 ~finally:(fun () -> Atomic.decr inflight)
                                 (fun () ->
                                   if not (serve_request ?ctx ~id request)
                                   then begin
                                     Atomic.set broken true;
                                     try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
                                     with Unix.Unix_error _ -> ()
                                   end))
                             ())
                      end;
                      loop ())))
  in
  Fun.protect
    ~finally:(fun () ->
      while Atomic.get inflight > 0 do
        Thread.delay 0.002
      done;
      Atomic.decr active;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop ()
      with e ->
        Log.err (fun m ->
            m "router connection thread escaped: %s" (Printexc.to_string e)))

let serve ?vnodes ?down_after ?probe_interval_s ?probe_timeout_s
    ?request_timeout_s ?(max_connections = 256) ?(max_inflight = 32)
    ?(read_timeout_s = 30.) ?(drain_timeout_s = 5.) ?(trace = false)
    ~backends ~socket () =
  if max_connections < 1 then
    invalid_arg "Router.serve: max_connections must be >= 1";
  if max_inflight < 1 then
    invalid_arg "Router.serve: max_inflight must be >= 1";
  let addr = Transport.of_string_exn socket in
  if
    List.exists
      (fun b -> Transport.equal addr (Transport.of_string_exn b))
      backends
  then invalid_arg "Router.serve: the router socket cannot be its own backend";
  if trace then begin
    Tracer.reset ();
    Tracer.set_enabled true
  end;
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let t =
    create ?vnodes ?down_after ?probe_interval_s ?probe_timeout_s
      ?request_timeout_s backends
  in
  let listen_fd = Transport.listen addr in
  let addr = Transport.bound_addr listen_fd addr in
  t.self_addr <- Some (Transport.to_string addr);
  Registry.start t.registry;
  let stop = Atomic.make false in
  let active = Atomic.make 0 in
  let wake () = Transport.poke addr in
  let members = Registry.backends t.registry in
  Log.app (fun m ->
      m "ssg router listening on %s, fronting %d backend(s)%s"
        (Transport.to_string addr) (List.length members)
        (if members = [] then " (waiting for Join announcements)" else ""));
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.accept listen_fd with
      | client_fd, _ ->
          if Atomic.get stop then (try Unix.close client_fd with _ -> ())
          else if Atomic.get active >= max_connections then begin
            (try
               Protocol.write_reply_fd client_fd
                 (Protocol.Error "router at connection limit")
             with _ -> ());
            try Unix.close client_fd with _ -> ()
          end
          else begin
            Atomic.incr active;
            (try Unix.setsockopt client_fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            if read_timeout_s > 0. then
              (try
                 Unix.setsockopt_float client_fd Unix.SO_RCVTIMEO
                   read_timeout_s
               with Unix.Unix_error _ -> ());
            ignore
              (Thread.create
                 (handle_connection t ~stop ~wake ~active ~max_inflight)
                 client_fd)
          end
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. drain_timeout_s in
  while Atomic.get active > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if Atomic.get active > 0 then
    Log.warn (fun m ->
        m "drain timeout: abandoning %d connection(s)" (Atomic.get active));
  Registry.stop t.registry;
  Transport.cleanup addr;
  Log.app (fun m -> m "ssg router stopped")
