(** Backend membership and health for the cluster router.

    One [t] per router: the static backend list, a per-backend health
    state, and the {!Ring.t} rebuilt (deterministically) from the
    currently-up subset whenever that subset changes.

    Health moves on two inputs sharing one accounting:
    - {e active probes} — {!start} spawns a prober thread that, every
      [probe_interval_s], connects to each backend and exchanges a
      [Stats] request over the ordinary {!Ssg_engine.Protocol} (bounded
      by [probe_timeout_s]);
    - {e passive reports} — the router calls {!mark_failure} /
      {!mark_success} with what it observed while forwarding, so a dead
      backend stops receiving traffic after [down_after] consecutive
      failures even between probe ticks.

    A backend is {e up} until [down_after] consecutive failures mark it
    down; any success (probe or forward) re-admits it immediately and
    resets the count — mark-down needs consecutive evidence, healing
    needs one healthy exchange. *)

type health =
  | Up
  | Probation of int  (** consecutive failures so far, still routed *)
  | Down of int  (** consecutive failures, out of the ring *)

type t

(** [create backends] — [backends] are socket addresses, deduplicated;
    all start [Up].  An {e empty} list is legal since elastic
    membership: the router starts memberless and admits workers as
    their [Join] announcements arrive ({!add_member}).
    [on_transition addr up] (default: nothing) fires under no lock
    whenever a backend crosses the up/down edge — the router hangs its
    mark-down/re-admission counters and log lines on it.
    @raise Invalid_argument on [vnodes < 1], [down_after < 1], or
    non-positive intervals. *)
val create :
  ?vnodes:int ->
  ?down_after:int ->
  ?probe_interval_s:float ->
  ?probe_timeout_s:float ->
  ?on_transition:(string -> bool -> unit) ->
  string list ->
  t

(** All configured backends, sorted (the ring's member universe). *)
val backends : t -> string list

val health : t -> (string * health) list
val up : t -> string list
val is_up : t -> string -> bool

(** The current ring over the up subset.  Rings are immutable, so the
    returned value stays consistent while the registry moves on. *)
val ring : t -> Ring.t

(** [candidates t key] — the failover order for [key] over the up
    subset ({!Ring.successors} of the current ring); when every backend
    is down, the full backend list (better to try a possibly-healed
    backend than to fail without trying). *)
val candidates : t -> string -> string list

(** Monotone count of ring rebuilds (up-set changes) — cheap staleness
    check for callers caching routing decisions. *)
val generation : t -> int

val mark_failure : t -> string -> unit
val mark_success : t -> string -> unit

(** Elastic membership.  Both return whether the up-set changed (the
    ring was rebuilt and the generation bumped) — the router's cue to
    run a warm handoff. *)

(** [add_member t addr] admits a new member as [Up] (keeping every
    existing member's health), or re-admits a known-down one; [false]
    when [addr] was already an up member. *)
val add_member : t -> string -> bool

(** [remove_member t addr] retires a member entirely — out of the ring
    {e and} out of the probe rotation (unlike mark-down, which keeps
    probing for recovery).  [false] if unknown; also [false] when the
    member was already down (the up-set did not change). *)
val remove_member : t -> string -> bool

(** [probe t addr] — one synchronous health probe: connect (no
    retries), exchange [Stats], feed the verdict into
    {!mark_success} / {!mark_failure}.  Returns the verdict. *)
val probe : t -> string -> bool

(** [start t] spawns the periodic prober (idempotent); [stop t] stops
    and joins it (idempotent). *)
val start : t -> unit

val stop : t -> unit
