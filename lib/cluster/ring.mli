(** Consistent hash ring over job cache keys.

    The cluster's placement function: each backend address is hashed
    onto a 64-bit circle at [vnodes] points (virtual nodes, so the
    keyspace splits evenly even with a handful of backends), and a job
    key is owned by the first backend point at or clockwise after the
    key's own hash.  Placement therefore depends only on the member set
    and [vnodes] — two routers configured with the same backends agree
    on every key without talking to each other, and a rebuild after a
    membership change is deterministic.

    The monotonicity property the failover design leans on: removing a
    member remaps {e only} the keys that member owned (they fall to
    their successors); every other key keeps its owner.  Adding a member
    only steals keys for the new member.  Both are property-tested.

    Values are immutable; {!add} and {!remove} return new rings. *)

type t

(** [create ?vnodes members] — duplicates in [members] are collapsed;
    the empty list is a valid (empty) ring.
    @raise Invalid_argument if [vnodes < 1]. *)
val create : ?vnodes:int -> string list -> t

val default_vnodes : int

(** The distinct member set, sorted. *)
val members : t -> string list

val vnodes : t -> int
val is_empty : t -> bool

(** [owner t key] — the member owning [key]; [None] on an empty ring. *)
val owner : t -> string -> string option

(** [successors t key] — every member, deduplicated, in ring order
    starting at [key]'s owner: the failover order for [key].  Its head
    is [owner t key]; its length is the member count. *)
val successors : t -> string -> string list

(** [add t m] / [remove t m] rebuild deterministically; adding a present
    member or removing an absent one is the identity. *)
val add : t -> string -> t

val remove : t -> string -> t

(** The ring's key hash (FNV-1a 64 with a splitmix64 finalizer),
    exposed so tests can check balance claims against the same
    function the ring uses. *)
val hash64 : string -> int64
