let log_src = Logs.Src.create "ssg.cluster.registry" ~doc:"backend health"

module Log = (val Logs.src_log log_src : Logs.LOG)

type health = Up | Probation of int | Down of int

type t = {
  mutex : Mutex.t;
  vnodes : int;
  down_after : int;
  probe_interval_s : float;
  probe_timeout_s : float;
  on_transition : string -> bool -> unit;
  mutable addrs : string array;  (* sorted, distinct *)
  mutable states : health array;  (* parallel to [addrs] *)
  mutable ring : Ring.t;
  mutable generation : int;
  stop_flag : bool Atomic.t;
  mutable prober : Thread.t option;
}

let create ?(vnodes = Ring.default_vnodes) ?(down_after = 3)
    ?(probe_interval_s = 1.0) ?(probe_timeout_s = 1.0)
    ?(on_transition = fun _ _ -> ()) backends =
  (* An empty backend list is legal since elastic membership: the
     router starts with nobody and waits for [Join] announcements. *)
  if down_after < 1 then
    invalid_arg "Registry.create: down_after must be >= 1";
  if probe_interval_s <= 0. then
    invalid_arg "Registry.create: probe_interval_s must be > 0";
  if probe_timeout_s <= 0. then
    invalid_arg "Registry.create: probe_timeout_s must be > 0";
  let addrs = Array.of_list (List.sort_uniq String.compare backends) in
  {
    mutex = Mutex.create ();
    vnodes;
    down_after;
    probe_interval_s;
    probe_timeout_s;
    on_transition;
    addrs;
    states = Array.make (Array.length addrs) Up;
    ring = Ring.create ~vnodes (Array.to_list addrs);
    generation = 0;
    stop_flag = Atomic.make false;
    prober = None;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let index t addr =
  let rec go i =
    if i >= Array.length t.addrs then None
    else if String.equal t.addrs.(i) addr then Some i
    else go (i + 1)
  in
  go 0

let is_up_state = function Up | Probation _ -> true | Down _ -> false

let up_unlocked t =
  Array.to_list t.addrs
  |> List.filteri (fun i _ -> is_up_state t.states.(i))

let rebuild_unlocked t =
  t.ring <- Ring.create ~vnodes:t.vnodes (up_unlocked t);
  t.generation <- t.generation + 1

let backends t = locked t (fun () -> Array.to_list t.addrs)

let health t =
  locked t (fun () ->
      List.combine (Array.to_list t.addrs) (Array.to_list t.states))

let up t = locked t (fun () -> up_unlocked t)

let is_up t addr =
  locked t (fun () ->
      match index t addr with
      | Some i -> is_up_state t.states.(i)
      | None -> false)

let ring t = locked t (fun () -> t.ring)
let generation t = locked t (fun () -> t.generation)

let candidates t key =
  let r = ring t in
  if Ring.is_empty r then backends t else Ring.successors r key

(* Returns the transition edge crossed, if any, so the callback can run
   outside the lock. *)
let record_unlocked t addr ok =
  match index t addr with
  | None -> None
  | Some i -> (
      match (t.states.(i), ok) with
      | (Up | Probation _), true ->
          t.states.(i) <- Up;
          None
      | Down _, true ->
          t.states.(i) <- Up;
          rebuild_unlocked t;
          Some true
      | Up, false ->
          t.states.(i) <-
            (if t.down_after = 1 then Down 1 else Probation 1);
          if t.down_after = 1 then begin
            rebuild_unlocked t;
            Some false
          end
          else None
      | Probation k, false ->
          let k = k + 1 in
          if k >= t.down_after then begin
            t.states.(i) <- Down k;
            rebuild_unlocked t;
            Some false
          end
          else begin
            t.states.(i) <- Probation k;
            None
          end
      | Down k, false ->
          t.states.(i) <- Down (k + 1);
          None)

let record t addr ok =
  match locked t (fun () -> record_unlocked t addr ok) with
  | None -> ()
  | Some up ->
      Log.info (fun m ->
          m "backend %s %s" addr (if up then "re-admitted" else "marked down"));
      t.on_transition addr up

let mark_failure t addr = record t addr false
let mark_success t addr = record t addr true

(* Elastic membership: admit or retire a member at runtime.  Both
   return whether the up-set changed (and hence the ring was rebuilt),
   so the router knows when a warm handoff is due. *)

let add_member t addr =
  let changed =
    locked t (fun () ->
        match index t addr with
        | Some i ->
            (* Re-joining a known member is a health report: a down
               backend announcing itself is back. *)
            if is_up_state t.states.(i) then false
            else begin
              t.states.(i) <- Up;
              rebuild_unlocked t;
              true
            end
        | None ->
            (* Splice the newcomer in while keeping every existing
               member's health untouched. *)
            let old =
              List.combine (Array.to_list t.addrs) (Array.to_list t.states)
            in
            let merged =
              List.sort
                (fun (a, _) (b, _) -> String.compare a b)
                ((addr, Up) :: old)
            in
            t.addrs <- Array.of_list (List.map fst merged);
            t.states <- Array.of_list (List.map snd merged);
            rebuild_unlocked t;
            true)
  in
  if changed then Log.info (fun m -> m "member %s joined" addr);
  changed

let remove_member t addr =
  let changed =
    locked t (fun () ->
        match index t addr with
        | None -> false
        | Some i ->
            let was_up = is_up_state t.states.(i) in
            let n = Array.length t.addrs in
            t.addrs <-
              Array.init (n - 1) (fun j ->
                  if j < i then t.addrs.(j) else t.addrs.(j + 1));
            t.states <-
              Array.init (n - 1) (fun j ->
                  if j < i then t.states.(j) else t.states.(j + 1));
            rebuild_unlocked t;
            was_up)
  in
  if changed then Log.info (fun m -> m "member %s left" addr);
  changed

let probe t addr =
  let ok =
    match
      Ssg_engine.Client.connect ~retries:0 ~deadline_s:t.probe_timeout_s
        ~socket:addr ()
    with
    | exception (Unix.Unix_error _ | Failure _ | Invalid_argument _) -> false
    | c ->
        Fun.protect
          ~finally:(fun () -> Ssg_engine.Client.close c)
          (fun () ->
            match Ssg_engine.Client.stats c with
            | _ -> true
            | exception _ -> false)
  in
  record t addr ok;
  ok

let start t =
  locked t (fun () ->
      if t.prober = None then begin
        Atomic.set t.stop_flag false;
        t.prober <-
          Some
            (Thread.create
               (fun () ->
                 while not (Atomic.get t.stop_flag) do
                   (* Snapshot the member list: Join/Leave may replace
                      the arrays mid-round. *)
                   let addrs = locked t (fun () -> Array.copy t.addrs) in
                   Array.iter
                     (fun addr ->
                       if not (Atomic.get t.stop_flag) then
                         ignore (probe t addr))
                     addrs;
                   (* Sleep in short slices so [stop] is prompt. *)
                   let slept = ref 0. in
                   while
                     (not (Atomic.get t.stop_flag))
                     && !slept < t.probe_interval_s
                   do
                     let d = Float.min 0.02 (t.probe_interval_s -. !slept) in
                     Thread.delay d;
                     slept := !slept +. d
                   done
                 done)
               ())
      end)

let stop t =
  let prober =
    locked t (fun () ->
        let p = t.prober in
        t.prober <- None;
        Atomic.set t.stop_flag true;
        p)
  in
  match prober with None -> () | Some th -> Thread.join th
