let log_src = Logs.Src.create "ssg.cluster.registry" ~doc:"backend health"

module Log = (val Logs.src_log log_src : Logs.LOG)

type health = Up | Probation of int | Down of int

type t = {
  mutex : Mutex.t;
  vnodes : int;
  down_after : int;
  probe_interval_s : float;
  probe_timeout_s : float;
  on_transition : string -> bool -> unit;
  addrs : string array;  (* sorted, distinct *)
  states : health array;
  mutable ring : Ring.t;
  mutable generation : int;
  stop_flag : bool Atomic.t;
  mutable prober : Thread.t option;
}

let create ?(vnodes = Ring.default_vnodes) ?(down_after = 3)
    ?(probe_interval_s = 1.0) ?(probe_timeout_s = 1.0)
    ?(on_transition = fun _ _ -> ()) backends =
  if backends = [] then invalid_arg "Registry.create: no backends";
  if down_after < 1 then
    invalid_arg "Registry.create: down_after must be >= 1";
  if probe_interval_s <= 0. then
    invalid_arg "Registry.create: probe_interval_s must be > 0";
  if probe_timeout_s <= 0. then
    invalid_arg "Registry.create: probe_timeout_s must be > 0";
  let addrs = Array.of_list (List.sort_uniq String.compare backends) in
  {
    mutex = Mutex.create ();
    vnodes;
    down_after;
    probe_interval_s;
    probe_timeout_s;
    on_transition;
    addrs;
    states = Array.make (Array.length addrs) Up;
    ring = Ring.create ~vnodes (Array.to_list addrs);
    generation = 0;
    stop_flag = Atomic.make false;
    prober = None;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let index t addr =
  let rec go i =
    if i >= Array.length t.addrs then None
    else if String.equal t.addrs.(i) addr then Some i
    else go (i + 1)
  in
  go 0

let is_up_state = function Up | Probation _ -> true | Down _ -> false

let up_unlocked t =
  Array.to_list t.addrs
  |> List.filteri (fun i _ -> is_up_state t.states.(i))

let rebuild_unlocked t =
  t.ring <- Ring.create ~vnodes:t.vnodes (up_unlocked t);
  t.generation <- t.generation + 1

let backends t = Array.to_list t.addrs
let health t = locked t (fun () -> Array.to_list t.states) |> List.combine (backends t)

let up t = locked t (fun () -> up_unlocked t)

let is_up t addr =
  locked t (fun () ->
      match index t addr with
      | Some i -> is_up_state t.states.(i)
      | None -> false)

let ring t = locked t (fun () -> t.ring)
let generation t = locked t (fun () -> t.generation)

let candidates t key =
  let r = ring t in
  if Ring.is_empty r then backends t else Ring.successors r key

(* Returns the transition edge crossed, if any, so the callback can run
   outside the lock. *)
let record_unlocked t addr ok =
  match index t addr with
  | None -> None
  | Some i -> (
      match (t.states.(i), ok) with
      | (Up | Probation _), true ->
          t.states.(i) <- Up;
          None
      | Down _, true ->
          t.states.(i) <- Up;
          rebuild_unlocked t;
          Some true
      | Up, false ->
          t.states.(i) <-
            (if t.down_after = 1 then Down 1 else Probation 1);
          if t.down_after = 1 then begin
            rebuild_unlocked t;
            Some false
          end
          else None
      | Probation k, false ->
          let k = k + 1 in
          if k >= t.down_after then begin
            t.states.(i) <- Down k;
            rebuild_unlocked t;
            Some false
          end
          else begin
            t.states.(i) <- Probation k;
            None
          end
      | Down k, false ->
          t.states.(i) <- Down (k + 1);
          None)

let record t addr ok =
  match locked t (fun () -> record_unlocked t addr ok) with
  | None -> ()
  | Some up ->
      Log.info (fun m ->
          m "backend %s %s" addr (if up then "re-admitted" else "marked down"));
      t.on_transition addr up

let mark_failure t addr = record t addr false
let mark_success t addr = record t addr true

let probe t addr =
  let ok =
    match
      Ssg_engine.Client.connect ~retries:0 ~deadline_s:t.probe_timeout_s
        ~socket:addr ()
    with
    | exception (Unix.Unix_error _ | Failure _ | Invalid_argument _) -> false
    | c ->
        Fun.protect
          ~finally:(fun () -> Ssg_engine.Client.close c)
          (fun () ->
            match Ssg_engine.Client.stats c with
            | _ -> true
            | exception _ -> false)
  in
  record t addr ok;
  ok

let start t =
  locked t (fun () ->
      if t.prober = None then begin
        Atomic.set t.stop_flag false;
        t.prober <-
          Some
            (Thread.create
               (fun () ->
                 while not (Atomic.get t.stop_flag) do
                   Array.iter
                     (fun addr ->
                       if not (Atomic.get t.stop_flag) then
                         ignore (probe t addr))
                     t.addrs;
                   (* Sleep in short slices so [stop] is prompt. *)
                   let slept = ref 0. in
                   while
                     (not (Atomic.get t.stop_flag))
                     && !slept < t.probe_interval_s
                   do
                     let d = Float.min 0.02 (t.probe_interval_s -. !slept) in
                     Thread.delay d;
                     slept := !slept +. d
                   done
                 done)
               ())
      end)

let stop t =
  let prober =
    locked t (fun () ->
        let p = t.prober in
        t.prober <- None;
        Atomic.set t.stop_flag true;
        p)
  in
  match prober with None -> () | Some th -> Thread.join th
