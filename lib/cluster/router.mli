(** The cluster front end: one socket speaking the unmodified
    {!Ssg_engine.Protocol}, fronting N independent [ssgd] workers.

    Placement: every [Submit] is routed to the {!Ring} owner of its
    job's canonical cache key, so a given simulation always lands on
    the same worker and that worker's LRU cache and in-flight dedup
    keep their hit rates — the cluster behaves like one big cache
    sharded by key.  A [Batch] is split by owner, forwarded to each
    backend as a sub-batch concurrently, and reassembled in submission
    order.

    Failover: when the owner cannot serve — connect refused, reply
    deadline exceeded, undecodable reply, died mid-exchange — the job
    is retried on the next shard in ring order ({!Ring.successors}),
    the failure is reported to the {!Registry} (so [down_after]
    consecutive failures take the shard out of the ring until a probe
    or forward succeeds again), and the router's failover counter
    moves.  A backend's {e protocol-level} [Error] reply (a lint
    rejection, say) is relayed verbatim with no failover: it is the
    job's fault and would fail identically on every shard.

    Fan-out ops: [Stats] queries every reachable backend and replies
    with the {!Ssg_engine.Telemetry.merge} of their snapshots;
    [Metrics] replies with a cluster exposition — the router's own
    registry (routed / failed-over / markdown counters, per-shard
    [ssg_router_shard<i>_*] series) followed by the merged snapshot
    under [ssg_cluster_*]; [Trace] drains the router's own tracer
    rings ([router.route] spans, [router.failover] instants);
    [Compact] is relayed to every up backend and answered with the sum
    of their snapshot sizes; [Shutdown] stops the router (never the
    workers).

    {b Elastic membership.}  Workers need not be pre-listed in
    [backends]: a worker started with [--announce ROUTER] sends [Join]
    with its canonical address; the router admits it into the
    {!Registry}, rebuilds the ring, and — before acknowledging — runs a
    {e warm handoff}: each existing member is asked to [Export] its
    hottest cache entries and those whose ring ranges moved to the
    joiner are streamed to it in bounded [Transfer] batches, so the
    newcomer starts serving hits, not misses.  [Leave] is the reverse:
    the leaver's hot entries are pulled while it is still reachable,
    it drops out of the ring {e and the probe rotation}, and the
    rescued entries are pushed to the ranges' new owners.  Handoff is
    best-effort by design — a failed transfer costs cache misses,
    never correctness.  Membership churn moves the
    [ssg_router_joins_total] / [ssg_router_leaves_total] /
    [ssg_router_handoff_keys_total] counters.

    Chaos contract (tested): with 3 workers and one being killed and
    healed mid-burst, a 200-job burst completes with zero
    client-visible errors and a positive failover count. *)

(** [serve ~backends ~socket ()] binds [socket], starts the
    {!Registry} prober over [backends], and blocks until a client
    sends [Shutdown].  The socket file is removed on exit.  An empty
    [backends] list starts a memberless router that waits for [Join]
    announcements.

    [socket] and every backend are {!Ssg_net.Transport} address strings
    ([unix:PATH], [tcp:HOST:PORT], or a bare path); the front socket
    speaks both frame dialects — plain request/reply and id-framed
    pipelining (up to [max_inflight] concurrent per connection) —
    exactly like {!Ssg_engine.Server.serve}.

    - [vnodes], [down_after], [probe_interval_s], [probe_timeout_s]
      are handed to {!Registry.create};
    - [request_timeout_s] (default 30) bounds one forwarded exchange
      — it is the reply deadline on the backend connection, so a mute
      (blackholed) backend turns into a failover, not a hang;
    - [max_connections], [max_inflight], [read_timeout_s],
      [drain_timeout_s] guard the front socket exactly like
      {!Ssg_engine.Server.serve};
    - [trace] enables the process tracer and resets it first.
    @raise Invalid_argument on a malformed address or non-positive
    limits, [Unix.Unix_error EADDRINUSE] when a live router already
    owns [socket]. *)
val serve :
  ?vnodes:int ->
  ?down_after:int ->
  ?probe_interval_s:float ->
  ?probe_timeout_s:float ->
  ?request_timeout_s:float ->
  ?max_connections:int ->
  ?max_inflight:int ->
  ?read_timeout_s:float ->
  ?drain_timeout_s:float ->
  ?trace:bool ->
  backends:string list ->
  socket:string ->
  unit ->
  unit
