type outcome = (Bytes.t, string) result

type ticket = {
  cmutex : Mutex.t;
  ccond : Condition.t;
  mutable state : outcome option;
}

type t = {
  fd : Unix.file_descr;
  wlock : Mutex.t;  (* serializes frame writes *)
  lock : Mutex.t;  (* guards [table], [next_id], [dead], [closed] *)
  table : (int, ticket) Hashtbl.t;
  mutable next_id : int;
  mutable dead : string option;
  mutable closed : bool;
  mutable reader : Thread.t option;
}

let fill ticket outcome =
  Mutex.lock ticket.cmutex;
  if ticket.state = None then begin
    ticket.state <- Some outcome;
    Condition.broadcast ticket.ccond
  end;
  Mutex.unlock ticket.cmutex

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Fail every outstanding ticket and refuse future sends. *)
let fail_all t reason =
  let orphans =
    locked t (fun () ->
        if t.dead = None then t.dead <- Some reason;
        let cells = Hashtbl.fold (fun _ c acc -> c :: acc) t.table [] in
        Hashtbl.reset t.table;
        cells)
  in
  List.iter (fun c -> fill c (Error reason)) orphans

let reader_loop t =
  let rec loop () =
    match Frame.read_fd t.fd with
    | exception End_of_file -> fail_all t "Mux: connection closed by peer"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        fail_all t "Mux: reply deadline exceeded (connection silent)"
    | exception Unix.Unix_error (e, _, _) ->
        fail_all t ("Mux: " ^ Unix.error_message e)
    | exception Failure msg -> fail_all t msg
    | payload -> (
        match Frame.classify payload with
        | exception Failure msg -> fail_all t msg
        | Frame.Plain _ ->
            (* A peer that answers outside the envelope cannot be
               correlated; the connection is unusable for pipelining. *)
            fail_all t "Mux: peer answered outside the id envelope"
        | Frame.Id (id, inner) ->
            let cell =
              locked t (fun () ->
                  match Hashtbl.find_opt t.table id with
                  | Some c ->
                      Hashtbl.remove t.table id;
                      Some c
                  | None -> None)
            in
            (* An unknown id is tolerated: a deadline-abandoned request
               may still be answered late. *)
            (match cell with Some c -> fill c (Ok inner) | None -> ());
            loop ())
  in
  loop ()

let create ?deadline_s fd =
  (match deadline_s with
  | Some d when d > 0. -> (
      try Unix.setsockopt_float fd Unix.SO_RCVTIMEO d
      with Unix.Unix_error _ -> ())
  | _ -> ());
  let t =
    {
      fd;
      wlock = Mutex.create ();
      lock = Mutex.create ();
      table = Hashtbl.create 32;
      next_id = 0;
      dead = None;
      closed = false;
      reader = None;
    }
  in
  t.reader <- Some (Thread.create reader_loop t);
  t

let send ?ctx t payload =
  let ticket =
    { cmutex = Mutex.create (); ccond = Condition.create (); state = None }
  in
  let id =
    locked t (fun () ->
        (match t.dead with
        | Some reason -> failwith reason
        | None -> if t.closed then failwith "Mux: connection closed");
        let id = t.next_id in
        t.next_id <- id + 1;
        Hashtbl.add t.table id ticket;
        id)
  in
  (* Context envelope innermost, id envelope outermost: the server
     correlates first, then strips the context. *)
  let payload =
    match ctx with None -> payload | Some c -> Frame.with_ctx ~ctx:c payload
  in
  (try
     Mutex.lock t.wlock;
     Fun.protect
       ~finally:(fun () -> Mutex.unlock t.wlock)
       (fun () -> Frame.write_fd t.fd (Frame.with_id ~id payload))
   with e ->
     let msg =
       match e with
       | Unix.Unix_error (err, _, _) -> "Mux: " ^ Unix.error_message err
       | Failure msg -> msg
       | e -> "Mux: " ^ Printexc.to_string e
     in
     fail_all t msg);
  ticket

let await ticket =
  Mutex.lock ticket.cmutex;
  let rec wait () =
    match ticket.state with
    | Some outcome -> outcome
    | None ->
        Condition.wait ticket.ccond ticket.cmutex;
        wait ()
  in
  Fun.protect ~finally:(fun () -> Mutex.unlock ticket.cmutex) wait

let call ?ctx t payload = await (send ?ctx t payload)
let inflight t = locked t (fun () -> Hashtbl.length t.table)
let alive t = locked t (fun () -> t.dead = None && not t.closed)

let close t =
  let already = locked t (fun () ->
      let was = t.closed in
      t.closed <- true;
      was)
  in
  if not already then begin
    (* Unstick the reader, which then fails whatever is outstanding. *)
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.reader with Some th -> Thread.join th | None -> ());
    fail_all t "Mux: connection closed";
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
