type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

exception Bad_request of string

let max_header_bytes = 16 * 1024
let max_body_bytes = 16 * 1024 * 1024

(* ---------------- buffered reads ---------------- *)

type conn = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let conn_of_fd fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

let rec refill c =
  if c.pos >= c.len then begin
    let n =
      try Unix.read c.fd c.buf 0 (Bytes.length c.buf)
      with Unix.Unix_error (Unix.EINTR, _, _) -> -1
    in
    if n = 0 then raise End_of_file;
    if n > 0 then begin
      c.pos <- 0;
      c.len <- n
    end
    else refill c
  end

let read_byte c =
  refill c;
  let b = Bytes.get c.buf c.pos in
  c.pos <- c.pos + 1;
  b

(* One header line, CRLF (or bare LF) stripped, with a running budget
   against absurd header blocks. *)
let read_line c budget =
  let line = Buffer.create 64 in
  let rec go () =
    if Buffer.length line > !budget then
      raise (Bad_request "header block too large");
    match read_byte c with
    | '\n' -> ()
    | '\r' -> (
        match read_byte c with
        | '\n' -> ()
        | _ -> raise (Bad_request "bare CR in header line"))
    | ch ->
        Buffer.add_char line ch;
        go ()
  in
  go ();
  budget := !budget - Buffer.length line;
  Buffer.contents line

let read_exact c n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    refill c;
    let take = min (n - !filled) (c.len - c.pos) in
    Bytes.blit c.buf c.pos out !filled take;
    c.pos <- c.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

(* ---------------- parsing ---------------- *)

let hex_value ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> raise (Bad_request "bad percent escape")

let percent_decode ?(plus_is_space = false) s =
  let out = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '%' ->
          if i + 2 >= n then raise (Bad_request "truncated percent escape");
          Buffer.add_char out
            (Char.chr ((hex_value s.[i + 1] * 16) + hex_value s.[i + 2]))
      | '+' when plus_is_space -> Buffer.add_char out ' '
      | ch -> Buffer.add_char out ch);
      go (if s.[i] = '%' then i + 3 else i + 1)
    end
  in
  go 0;
  Buffer.contents out

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             match String.index_opt pair '=' with
             | None -> Some (percent_decode ~plus_is_space:true pair, "")
             | Some i ->
                 Some
                   ( percent_decode ~plus_is_space:true (String.sub pair 0 i),
                     percent_decode ~plus_is_space:true
                       (String.sub pair (i + 1) (String.length pair - i - 1))
                   ))

let parse_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
      ( percent_decode (String.sub target 0 i),
        parse_query (String.sub target (i + 1) (String.length target - i - 1))
      )

let split_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] -> (meth, target, version)
  | _ -> raise (Bad_request (Printf.sprintf "malformed request line %S" line))

let parse_header line =
  match String.index_opt line ':' with
  | None -> raise (Bad_request (Printf.sprintf "malformed header %S" line))
  | Some i ->
      ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let query_param req name = List.assoc_opt name req.query

let read_request c =
  match read_line c (ref max_header_bytes) with
  | exception End_of_file -> None
  | "" -> None  (* tolerate a stray blank line before the request *)
  | line ->
      let meth, target, version = split_request_line line in
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        raise (Bad_request (Printf.sprintf "unsupported version %S" version));
      let budget = ref max_header_bytes in
      let rec headers acc =
        match read_line c budget with
        | "" -> List.rev acc
        | line -> headers (parse_header line :: acc)
      in
      let headers = headers [] in
      let assoc name = List.assoc_opt name headers in
      (match assoc "transfer-encoding" with
      | Some te when String.lowercase_ascii te <> "identity" ->
          raise (Bad_request "chunked request bodies are not supported")
      | _ -> ());
      let body =
        match assoc "content-length" with
        | None -> ""
        | Some l -> (
            match int_of_string_opt (String.trim l) with
            | Some n when n >= 0 && n <= max_body_bytes -> read_exact c n
            | Some _ -> raise (Bad_request "content-length out of range")
            | None -> raise (Bad_request "malformed content-length"))
      in
      let path, query = parse_target target in
      let version_headers =
        ("x-http-version", version) :: headers
        (* stashed so [keep_alive] can apply the 1.0/1.1 defaults
           without widening the record *)
      in
      Some
        { meth = String.uppercase_ascii meth; path; query;
          headers = version_headers; body }

let keep_alive req =
  let connection =
    Option.map String.lowercase_ascii (header req "connection")
  in
  match (header req "x-http-version", connection) with
  | _, Some "close" -> false
  | Some "HTTP/1.0", Some "keep-alive" -> true
  | Some "HTTP/1.0", _ -> false
  | _, _ -> true

(* ---------------- responses ---------------- *)

let reason_phrase = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 500 -> "Internal Server Error"
  | 502 -> "Bad Gateway"
  | 503 -> "Service Unavailable"
  | code -> if code < 400 then "OK" else "Error"

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n =
        try Unix.write fd buf off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n) (len - n)
    end
  in
  go off len

let write_response ?(content_type = "application/json")
    ?(extra_headers = []) ?(keep_alive = true) ~status fd body =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_phrase status));
  Buffer.add_string buf (Printf.sprintf "content-type: %s\r\n" content_type);
  Buffer.add_string buf
    (Printf.sprintf "content-length: %d\r\n" (String.length body));
  Buffer.add_string buf
    (if keep_alive then "connection: keep-alive\r\n"
     else "connection: close\r\n");
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    extra_headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  let bytes = Buffer.to_bytes buf in
  really_write fd bytes 0 (Bytes.length bytes)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf
