(** Length-prefixed frames and the request-id envelope.

    The wire unit everywhere is a {e frame}: a 4-byte big-endian payload
    length, then the payload.  This module adds the {e multiplexing
    envelope} on top: a payload whose first byte is {!id_magic} carries
    an 8-byte big-endian request id before the inner payload, and a
    connection carrying id-framed requests may answer them {b out of
    order} — each reply repeats the id of the request it answers.

    Compatibility: the magic byte is not a valid first byte of any plain
    protocol payload (request and reply tags are distinct constants),
    so a server can classify each frame independently — old clients
    that never send the envelope keep the strict in-order request/reply
    pipeline they always had. *)

(** Frames larger than this (16 MiB) are refused by both sides. *)
val max_frame_bytes : int

(** First byte of an id-framed payload. *)
val id_magic : char

(** [with_id ~id payload] wraps [payload] in the envelope.
    @raise Invalid_argument if [id < 0]. *)
val with_id : id:int -> Bytes.t -> Bytes.t

type classified =
  | Plain of Bytes.t  (** not id-framed: the payload itself *)
  | Id of int * Bytes.t  (** id-framed: request id and inner payload *)

(** [classify payload] — {!Id} when the payload starts with {!id_magic}
    (and is long enough to carry the id), {!Plain} otherwise.
    @raise Failure on a payload that starts with the magic byte but is
    too short to carry an id — a truncated envelope, not a plain
    payload. *)
val classify : Bytes.t -> classified

(** {1 Trace-context envelope}

    Same additive-compatibility trick as the id envelope, one layer
    further in: a payload whose first byte is {!ctx_magic} carries a
    fixed {!ctx_len}-byte trace context
    ({!Ssg_obs.Context.to_wire}) before the inner payload.  Pre-context
    peers never send it and are classified exactly as before; when both
    envelopes are present the id envelope is outermost
    ([with_id ~id (with_ctx ~ctx p)]) so reply correlation never
    depends on context awareness.  Replies never carry a context.  The
    blob is opaque to this module — [ssg_net] does not depend on the
    tracer. *)

(** First byte of a context-framed payload. *)
val ctx_magic : char

(** Byte length of the context blob (24). *)
val ctx_len : int

(** [with_ctx ~ctx payload] wraps [payload] in the context envelope.
    @raise Invalid_argument unless [String.length ctx = ctx_len]. *)
val with_ctx : ctx:string -> Bytes.t -> Bytes.t

(** [split_ctx payload] — [(Some ctx, inner)] when the payload starts
    with {!ctx_magic}, [(None, payload)] otherwise.
    @raise Failure on a payload that starts with the magic byte but is
    too short to carry the context. *)
val split_ctx : Bytes.t -> string option * Bytes.t

(** Descriptor framing, shared by every transport (Unix or TCP).
    Readers
    @raise End_of_file on a peer closed at a frame boundary,
    @raise Failure on oversized frames or a peer dying mid-frame,
    @raise Unix.Unix_error as the syscalls do (notably
    [EAGAIN]/[EWOULDBLOCK] when [SO_RCVTIMEO] fires). *)

val read_fd : Unix.file_descr -> Bytes.t

val write_fd : Unix.file_descr -> Bytes.t -> unit
