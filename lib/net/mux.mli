(** Pipelined connection multiplexing, client side, over opaque payloads.

    One {!t} owns one connection and lets {e many} requests be in flight
    at once: {!send} assigns a fresh request id, wraps the payload in the
    {!Frame} envelope and returns a ticket; a single background reader
    thread correlates every id-framed reply back to its ticket, so
    replies may arrive in {b any order} — a slow request does not
    head-of-line-block a fast one sent after it.

    Values of this type are thread-safe: any number of threads may
    {!send} and {!await} concurrently (the write path is serialized by a
    mutex, the correlation table by another).

    Failure semantics: when the connection dies — peer closed, frame
    error, or the liveness deadline ([deadline_s]) elapsing with no
    reply arriving at all — every outstanding and future ticket resolves
    to [Error reason] rather than blocking forever. *)

type t

type ticket

(** [create ?deadline_s fd] takes ownership of [fd] and starts the
    reader.  [deadline_s] arms [SO_RCVTIMEO]: it bounds the silence on
    the {e connection} (no frame at all for that long fails everything
    outstanding), not each request individually. *)
val create : ?deadline_s:float -> Unix.file_descr -> t

(** [send ?ctx t payload] — write one id-framed request.  [ctx], when
    given, is a {!Frame.ctx_len}-byte trace context carried in the
    context envelope inside the id envelope (replies never carry one).
    @raise Failure when the connection is already dead or closed. *)
val send : ?ctx:string -> t -> Bytes.t -> ticket

(** [await ticket] blocks until the reply correlates back (or the
    connection dies); repeated awaits return the same result. *)
val await : ticket -> (Bytes.t, string) result

(** [call ?ctx t payload] = [await (send ?ctx t payload)]. *)
val call : ?ctx:string -> t -> Bytes.t -> (Bytes.t, string) result

(** [inflight t] — requests sent and not yet answered. *)
val inflight : t -> int

(** [alive t] — false once the connection has failed or was closed. *)
val alive : t -> bool

(** [close t] shuts the socket down, fails whatever is still
    outstanding, joins the reader and closes the descriptor.
    Idempotent. *)
val close : t -> unit
