type addr = Unix_sock of string | Tcp of string * int

(* ---------------- parsing ---------------- *)

let strip_brackets host =
  let n = String.length host in
  if n >= 2 && host.[0] = '[' && host.[n - 1] = ']' then String.sub host 1 (n - 2)
  else host

let parse_tcp rest =
  (* The port is everything after the RIGHTMOST colon, so IPv6 hosts
     (with or without brackets) parse without escaping. *)
  match String.rindex_opt rest ':' with
  | None ->
      Error
        (Printf.sprintf "tcp:%s: missing port (expected tcp:HOST:PORT)" rest)
  | Some i -> (
      let host = String.sub rest 0 i in
      let port_s = String.sub rest (i + 1) (String.length rest - i - 1) in
      if host = "" then
        Error
          (Printf.sprintf "tcp:%s: missing host (expected tcp:HOST:PORT)" rest)
      else
        match int_of_string_opt port_s with
        | None ->
            Error
              (Printf.sprintf "tcp:%s: port %S is not a number" rest port_s)
        | Some p when p < 0 || p > 65535 ->
            Error
              (Printf.sprintf "tcp:%s: port %d out of range 0-65535" rest p)
        | Some p -> Ok (Tcp (strip_brackets host, p)))

let of_string s =
  let starts_with prefix =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let after prefix =
    String.sub s (String.length prefix) (String.length s - String.length prefix)
  in
  if s = "" then Error "empty address (expected unix:PATH or tcp:HOST:PORT)"
  else if starts_with "unix:" then
    let path = after "unix:" in
    if path = "" then Error "unix: missing socket path (expected unix:PATH)"
    else Ok (Unix_sock path)
  else if starts_with "tcp:" then parse_tcp (after "tcp:")
  else if String.contains s ':' && not (Filename.is_implicit s) then
    (* An absolute path containing ':' is still a path; anything else
       with a scheme-looking prefix is probably a typo worth naming. *)
    Ok (Unix_sock s)
  else if String.contains s ':' then
    Error
      (Printf.sprintf
         "%s: unknown address scheme %S (expected unix:PATH or tcp:HOST:PORT)"
         s
         (String.sub s 0 (String.index s ':')))
  else Ok (Unix_sock s)

let of_string_exn s =
  match of_string s with Ok a -> a | Error msg -> invalid_arg msg

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) ->
      if String.contains host ':' then Printf.sprintf "tcp:[%s]:%d" host port
      else Printf.sprintf "tcp:%s:%d" host port

let pp fmt a = Format.pp_print_string fmt (to_string a)
let equal (a : addr) b = a = b
let is_tcp = function Tcp _ -> true | Unix_sock _ -> false

(* ---------------- resolution ---------------- *)

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Unix.ADDR_INET (ip, port)
      | exception Failure _ -> (
          match
            Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
          with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ ->
              Unix.ADDR_INET (ip, port)
          | _ -> failwith (Printf.sprintf "Transport: cannot resolve %S" host)))

let domain_of = function
  | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
  | Unix.ADDR_INET (ip, _) ->
      if Unix.is_inet6_addr ip then Unix.PF_INET6 else Unix.PF_INET

let set_nodelay fd = function
  | Tcp _ -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | Unix_sock _ -> ()

(* ---------------- server side ---------------- *)

(* [Unix.connect] interrupted by a signal raises [EINTR] with the
   connection possibly still in progress; retrying on the same fd races
   EALREADY/EISCONN, so the portable recovery is to drop the
   half-connected socket and redo the whole attempt.  Signals are
   routine here (shutdown handlers, test harnesses firing mid-accept),
   so a transient EINTR must never be read as a verdict on the peer. *)
let rec connect_probe sa =
  let fd = Unix.socket (domain_of sa) Unix.SOCK_STREAM 0 in
  match Unix.connect fd sa with
  | () -> Ok fd
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      connect_probe sa
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e

(* A dead server leaves its socket file behind; a live one answers
   [connect].  Replace the former, refuse to double-bind the latter.
   The probe must restart on EINTR: mistaking a signal for a dead
   server would unlink a {e live} socket out from under its owner. *)
let prepare = function
  | Tcp _ -> ()
  | Unix_sock path ->
      if Sys.file_exists path then begin
        let alive =
          match connect_probe (Unix.ADDR_UNIX path) with
          | Ok probe ->
              (try Unix.close probe with Unix.Unix_error _ -> ());
              true
          | Error _ -> false
        in
        if alive then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
        else Unix.unlink path
      end

let listen ?(backlog = 512) a =
  prepare a;
  let sa = sockaddr a in
  let fd = Unix.socket (domain_of sa) Unix.SOCK_STREAM 0 in
  (match a with
  | Tcp _ -> ( try Unix.setsockopt fd Unix.SO_REUSEADDR true with _ -> ())
  | Unix_sock _ -> ());
  (try
     Unix.bind fd sa;
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let bound_addr fd = function
  | Unix_sock _ as a -> a
  | Tcp (host, _) as a -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp (host, port)
      | _ | (exception Unix.Unix_error _) -> a)

(* ---------------- client side ---------------- *)

let connect a =
  let sa = sockaddr a in
  match connect_probe sa with
  | Ok fd ->
      set_nodelay fd a;
      fd
  | Error e -> raise e

let poke a =
  match connect a with
  | fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | exception (Unix.Unix_error _ | Failure _) -> ()

let cleanup = function
  | Tcp _ -> ()
  | Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
