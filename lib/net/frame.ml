let max_frame_bytes = 16 * 1024 * 1024

(* 'I' is not a constructor tag of any protocol request ('S' 'B' 'T'
   'C' 'M' 'Q') or reply ('R' 'L' 'T' 'V' 'M' 'D' 'E'), so the two
   dialects coexist on one connection, classified frame by frame. *)
let id_magic = 'I'

let with_id ~id payload =
  if id < 0 then invalid_arg "Frame.with_id: id must be >= 0";
  let n = Bytes.length payload in
  let out = Bytes.create (9 + n) in
  Bytes.set out 0 id_magic;
  Bytes.set_int64_be out 1 (Int64.of_int id);
  Bytes.blit payload 0 out 9 n;
  out

type classified = Plain of Bytes.t | Id of int * Bytes.t

let classify payload =
  let n = Bytes.length payload in
  if n = 0 || Bytes.get payload 0 <> id_magic then Plain payload
  else if n < 9 then failwith "Frame: truncated id envelope"
  else
    let id = Int64.to_int (Bytes.get_int64_be payload 1) in
    if id < 0 then failwith "Frame: negative request id"
    else Id (id, Bytes.sub payload 9 (n - 9))

(* Trace-context envelope: same additive trick as the id envelope.
   'X' is likewise not a first byte of any protocol payload, so peers
   that never send it are untouched and servers that do not understand
   it would reject it like any unknown tag.  The context rides {e
   inside} the id envelope ([with_id ~id (with_ctx ~ctx p)]): the mux
   correlates replies without caring whether a context is present. *)
let ctx_magic = 'X'
let ctx_len = 24

let with_ctx ~ctx payload =
  if String.length ctx <> ctx_len then
    invalid_arg "Frame.with_ctx: context must be 24 bytes";
  let n = Bytes.length payload in
  let out = Bytes.create (1 + ctx_len + n) in
  Bytes.set out 0 ctx_magic;
  Bytes.blit_string ctx 0 out 1 ctx_len;
  Bytes.blit payload 0 out (1 + ctx_len) n;
  out

let split_ctx payload =
  let n = Bytes.length payload in
  if n = 0 || Bytes.get payload 0 <> ctx_magic then (None, payload)
  else if n < 1 + ctx_len then failwith "Frame: truncated context envelope"
  else
    ( Some (Bytes.sub_string payload 1 ctx_len),
      Bytes.sub payload (1 + ctx_len) (n - 1 - ctx_len) )

(* ---------------- descriptor framing ---------------- *)

(* Same discipline as the engine protocol: frame directly over the
   descriptor so a read timeout (SO_RCVTIMEO) surfaces as
   [Unix_error (EAGAIN | EWOULDBLOCK)] exactly at the stalled syscall. *)

let rec read_some fd buf off len =
  try Unix.read fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd buf off len

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = read_some fd buf off len in
      if n = 0 then raise End_of_file;
      go (off + n) (len - n)
    end
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n =
        try Unix.write fd buf off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n) (len - n)
    end
  in
  go off len

let read_fd fd =
  let header = Bytes.create 4 in
  let first = read_some fd header 0 4 in
  if first = 0 then raise End_of_file;
  (try really_read fd header first (4 - first)
   with End_of_file -> failwith "Frame: connection died mid-frame");
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 || len > max_frame_bytes then
    failwith (Printf.sprintf "Frame: refused frame of %d bytes" len);
  let payload = Bytes.create len in
  (try really_read fd payload 0 len
   with End_of_file -> failwith "Frame: connection died mid-frame");
  payload

let write_fd fd payload =
  let len = Bytes.length payload in
  if len > max_frame_bytes then failwith "Frame: frame too large";
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  really_write fd header 0 4;
  really_write fd payload 0 len
