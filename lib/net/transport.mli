(** Transport addresses: the one parser every surface shares.

    An address is either a Unix-domain socket path or a TCP host:port
    endpoint.  Every CLI flag that names a service ([serve --socket],
    [submit -s], [route -b], [gateway --listen], ...) and every
    library-level dialer goes through {!of_string}, so the two written
    forms — [unix:PATH] and [tcp:HOST:PORT] — mean the same thing
    everywhere, and a bare path keeps its historical meaning as a
    Unix-domain socket.

    {!to_string} round-trips: [of_string (to_string a) = Ok a] for every
    address value (property-tested). *)

type addr =
  | Unix_sock of string  (** [unix:PATH] — a Unix-domain socket path *)
  | Tcp of string * int  (** [tcp:HOST:PORT] — a TCP endpoint *)

(** [of_string s] parses [unix:PATH], [tcp:HOST:PORT], or a bare PATH
    (implicitly Unix-domain, for backward compatibility).  Errors are
    specific: they name the offending form and what was expected, e.g.
    ["tcp:localhost: missing port (expected tcp:HOST:PORT)"].  IPv6
    hosts may be written in brackets: [tcp:[::1]:8080]. *)
val of_string : string -> (addr, string) result

(** [of_string_exn s] — {!of_string} or
    @raise Invalid_argument with the same message. *)
val of_string_exn : string -> addr

(** [to_string a] — the canonical written form ([unix:PATH] or
    [tcp:HOST:PORT]); brackets are restored around IPv6 hosts. *)
val to_string : addr -> string

(** [pp] prints {!to_string}. *)
val pp : Format.formatter -> addr -> unit

val equal : addr -> addr -> bool

(** [is_tcp a] — true for {!Tcp} addresses. *)
val is_tcp : addr -> bool

(** [sockaddr a] resolves the address: a Unix path verbatim, a TCP host
    through [getaddrinfo] (numeric forms short-circuit).
    @raise Failure when a TCP host does not resolve. *)
val sockaddr : addr -> Unix.sockaddr

(** [prepare a] makes the address bindable: a stale Unix socket file left
    by a dead server is unlinked, a live one raises; TCP needs nothing
    (the listener sets [SO_REUSEADDR]).
    @raise Unix.Unix_error [EADDRINUSE] when a live server already
    answers on a Unix path. *)
val prepare : addr -> unit

(** [listen ?backlog a] — {!prepare}, bind, listen.  TCP listeners set
    [SO_REUSEADDR]; accepted TCP connections should set [TCP_NODELAY]
    themselves (the frame writer already batches a frame per write).
    [backlog] defaults to 512 (the kernel clamps to its own limit):
    thousands of load-generator connections dialing at once must queue
    in the kernel, not bounce off ECONNREFUSED.
    @raise Unix.Unix_error when the address cannot be bound. *)
val listen : ?backlog:int -> addr -> Unix.file_descr

(** [bound_addr fd a] — [a] with the actual bound endpoint filled in:
    for [tcp:HOST:0] the kernel-chosen port is read back with
    [getsockname].  Unix addresses are returned unchanged. *)
val bound_addr : Unix.file_descr -> addr -> addr

(** [connect a] — a fresh connected descriptor.  TCP connections set
    [TCP_NODELAY] (request/reply frames must not sit in Nagle buffers).
    @raise Unix.Unix_error on refusal / unreachability,
    @raise Failure when a TCP host does not resolve. *)
val connect : addr -> Unix.file_descr

(** [poke a] completes one throwaway connection — what wakes a blocked
    [accept] during shutdown.  Never raises. *)
val poke : addr -> unit

(** [cleanup a] removes what {!listen} left behind (the Unix socket
    file); nothing for TCP.  Never raises. *)
val cleanup : addr -> unit
