(** Minimal HTTP/1.1 server primitives for the gateway.

    Enough of RFC 9112 for a JSON front door: request-line + headers +
    [Content-Length] bodies, percent-decoded query strings, keep-alive,
    and response writing with exact [Content-Length] framing.  Not
    implemented (answered with an error, never mis-framed): chunked
    request bodies, upgrades, continuations. *)

type request = {
  meth : string;  (** uppercased: GET, POST, ... *)
  path : string;  (** percent-decoded path, query stripped *)
  query : (string * string) list;  (** decoded, in order of appearance *)
  headers : (string * string) list;  (** names lowercased, in order *)
  body : string;
}

(** Raised by {!read_request} on a syntactically broken or unsupported
    request; the argument is a human-readable reason to put in a 400. *)
exception Bad_request of string

(** A buffered connection (reads may pull ahead of the current
    request). *)
type conn

val conn_of_fd : Unix.file_descr -> conn

(** [read_request c] — the next request, or [None] when the peer closed
    cleanly between requests.
    @raise Bad_request on malformed/unsupported syntax, oversized
    header blocks (> 16 KiB) or bodies (> 16 MiB),
    @raise End_of_file when the peer dies mid-request,
    @raise Unix.Unix_error as the reads do (e.g. a read timeout). *)
val read_request : conn -> request option

(** [header req name] — case-insensitive lookup. *)
val header : request -> string -> string option

(** [query_param req name] — first binding of [name]. *)
val query_param : request -> string -> string option

(** [keep_alive req] — per HTTP/1.1 defaults ([Connection: close]
    opts out; HTTP/1.0 must opt in). *)
val keep_alive : request -> bool

(** [write_response fd ~status body] writes one complete response with
    [Content-Length].  [content_type] defaults to [application/json].
    [keep_alive] (default true) controls the [Connection] header. *)
val write_response :
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  ?keep_alive:bool ->
  status:int ->
  Unix.file_descr ->
  string ->
  unit

val reason_phrase : int -> string

(** [json_escape s] — [s] with backslash, quote and control characters
    escaped for inclusion inside a JSON string literal (no quotes
    added). *)
val json_escape : string -> string
