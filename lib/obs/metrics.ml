type counter = { c_name : string; c_help : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_help : string; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;  (* strictly increasing upper bounds, no +Inf *)
  counts : int Atomic.t array;  (* one per bound, plus the +Inf bucket *)
  h_sum : float Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  lock : Mutex.t;
  mutable metrics : (string * metric) list;  (* newest first *)
}

let default_buckets =
  [| 0.05; 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000. |]

let create () = { lock = Mutex.create (); metrics = [] }

let valid_name name =
  String.length name > 0
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let register t name metric =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if List.mem_assoc name t.metrics then
        invalid_arg (Printf.sprintf "Metrics: duplicate metric %S" name);
      t.metrics <- (name, metric) :: t.metrics)

let counter t ?(help = "") name =
  let c = { c_name = name; c_help = help; c_value = Atomic.make 0 } in
  register t name (Counter c);
  c

let gauge t ?(help = "") name =
  let g = { g_name = name; g_help = help; g_value = Atomic.make 0. } in
  register t name (Gauge g);
  g

let histogram t ?(help = "") ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  let h =
    {
      h_name = name;
      h_help = help;
      bounds = Array.copy buckets;
      counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
      h_sum = Atomic.make 0.;
    }
  in
  register t name (Histogram h);
  h

let incr c = Atomic.incr c.c_value
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let counter_value c = Atomic.get c.c_value
let set_gauge g v = Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let observe h x =
  let rec bucket i =
    if i >= Array.length h.bounds || x <= h.bounds.(i) then i else bucket (i + 1)
  in
  Atomic.incr h.counts.(bucket 0);
  atomic_add_float h.h_sum x

type hist_snapshot = {
  buckets : (float * int) array;
  sum : float;
  count : int;
}

let hist_snapshot h =
  let cumulative = ref 0 in
  let buckets =
    Array.mapi
      (fun i c ->
        cumulative := !cumulative + Atomic.get c;
        let bound =
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        in
        (bound, !cumulative))
      h.counts
  in
  { buckets; sum = Atomic.get h.h_sum; count = !cumulative }

(* ---------------- Prometheus text exposition ---------------- *)

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prom_bound b = if b = infinity then "+Inf" else prom_float b

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let header buf name help kind =
  if help <> "" then
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let render_metric buf = function
  | Counter c ->
      header buf c.c_name c.c_help "counter";
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" c.c_name (Atomic.get c.c_value))
  | Gauge g ->
      header buf g.g_name g.g_help "gauge";
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n" g.g_name (prom_float (Atomic.get g.g_value)))
  | Histogram h ->
      let s = hist_snapshot h in
      header buf h.h_name h.h_help "histogram";
      Array.iter
        (fun (bound, cumulative) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name
               (prom_bound bound) cumulative))
        s.buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" h.h_name (prom_float s.sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" h.h_name s.count)

let prom_scalar buf ~kind ?(help = "") name value =
  header buf name help (match kind with `Counter -> "counter" | `Gauge -> "gauge");
  Buffer.add_string buf (Printf.sprintf "%s %s\n" name (prom_float value))

let prom_summary buf ?(help = "") name ~count ~sum ~quantiles =
  header buf name help "summary";
  List.iter
    (fun (q, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s{quantile=\"%s\"} %s\n" name (prom_float q)
           (prom_float v)))
    quantiles;
  Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (prom_float sum));
  Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name count)

let to_prometheus ?(only = fun _ -> true) t =
  let metrics =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () -> List.rev t.metrics)
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, metric) -> if only name then render_metric buf metric)
    metrics;
  Buffer.contents buf
