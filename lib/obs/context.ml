(* Trace context: a 128-bit trace id plus 64-bit span ids, the identity
   a request carries across process boundaries.  Kept dependency-free
   (no Tracer) so lower layers can use it without pulling the rings in.

   Id generation is a SplitMix64 stream off a global atomic counter:
   one [fetch_and_add] plus a few multiplies per id, lock-free across
   domains, and — the property the sweep harness needs — fully
   deterministic after [seed].  Self-seeds lazily from wall clock + pid
   when nobody called [seed]. *)

type t = {
  trace_hi : int64;
  trace_lo : int64;
  span_id : int64;
  parent_span_id : int64;  (* 0L = root span of its trace *)
}

let equal a b =
  Int64.equal a.trace_hi b.trace_hi
  && Int64.equal a.trace_lo b.trace_lo
  && Int64.equal a.span_id b.span_id
  && Int64.equal a.parent_span_id b.parent_span_id

(* SplitMix64 (Steele et al.): increment a gamma-spaced counter, then
   mix.  OCaml's [Atomic.fetch_and_add] works on [int] (63-bit), so we
   keep the counter as an int and fold the wraparound into the mix —
   uniqueness only needs distinct counter values, which a 63-bit
   counter gives us for any realistic run. *)
let state = Atomic.make 0
let seeded = Atomic.make false

let seed s =
  Atomic.set state s;
  Atomic.set seeded true

let self_seed () =
  if not (Atomic.get seeded) then begin
    let s =
      (int_of_float (Unix.gettimeofday () *. 1e6) lxor (Unix.getpid () lsl 24))
      land max_int
    in
    (* First caller wins; a racing second seed just perturbs the
       stream, never repeats it. *)
    if not (Atomic.exchange seeded true) then Atomic.set state s
  end

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_id () =
  self_seed ();
  let n = Atomic.fetch_and_add state 1 in
  let z = Int64.mul (Int64.of_int n) 0x9E3779B97F4A7C15L in
  let id = mix64 z in
  if Int64.equal id 0L then 1L else id

let root () =
  let hi = next_id () and lo = next_id () and span = next_id () in
  { trace_hi = hi; trace_lo = lo; span_id = span; parent_span_id = 0L }

let child t = { t with span_id = next_id (); parent_span_id = t.span_id }

(* --- hex helpers ------------------------------------------------- *)

let hex16 v = Printf.sprintf "%016Lx" v
let trace_id_hex t = Printf.sprintf "%016Lx%016Lx" t.trace_hi t.trace_lo
let span_id_hex t = hex16 t.span_id
let parent_span_id_hex t = hex16 t.parent_span_id

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise Exit

let parse_hex64 s off =
  let v = ref 0L in
  for i = off to off + 15 do
    v := Int64.logor (Int64.shift_left !v 4) (Int64.of_int (hex_val s.[i]))
  done;
  !v

(* --- text codec: traceparent ------------------------------------- *)

(* W3C traceparent shape: version "00", 32-hex trace id, 16-hex span
   id, flags "01" (sampled).  [of_string] accepts any version byte and
   ignores flags — we only ever act on the ids. *)
let to_string t = Printf.sprintf "00-%s-%s-01" (trace_id_hex t) (span_id_hex t)

let of_string s =
  if
    String.length s = 55
    && s.[2] = '-' && s.[35] = '-' && s.[52] = '-'
  then
    try
      let hi = parse_hex64 s 3 in
      let lo = parse_hex64 s 19 in
      let span = parse_hex64 s 36 in
      ignore (hex_val s.[0]); ignore (hex_val s.[1]);
      ignore (hex_val s.[53]); ignore (hex_val s.[54]);
      if Int64.equal hi 0L && Int64.equal lo 0L then None
      else Some { trace_hi = hi; trace_lo = lo; span_id = span; parent_span_id = 0L }
    with Exit -> None
  else None

(* --- wire codec: fixed 24-byte blob ------------------------------ *)

let wire_len = 24

let to_wire t =
  let b = Bytes.create wire_len in
  Bytes.set_int64_be b 0 t.trace_hi;
  Bytes.set_int64_be b 8 t.trace_lo;
  Bytes.set_int64_be b 16 t.span_id;
  Bytes.unsafe_to_string b

let of_wire s =
  if String.length s <> wire_len then None
  else
    let b = Bytes.unsafe_of_string s in
    let hi = Bytes.get_int64_be b 0 in
    let lo = Bytes.get_int64_be b 8 in
    let span = Bytes.get_int64_be b 16 in
    if Int64.equal hi 0L && Int64.equal lo 0L then None
    else Some { trace_hi = hi; trace_lo = lo; span_id = span; parent_span_id = 0L }
