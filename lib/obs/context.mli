(** Trace context: the identity a request carries across process
    boundaries — a 128-bit trace id shared by every span of one
    request, plus the 64-bit span id of the hop that sent it.

    A process receiving a context calls {!child} to mint its own span
    under the remote parent; the result's [parent_span_id] is the
    sender's span, which is how the stitcher ({!Stitch}) reconstructs
    the cross-process tree.

    Two codecs: {!to_string}/{!of_string} is the [traceparent]-shaped
    text form for HTTP edges, {!to_wire}/{!of_wire} a fixed
    {!wire_len}-byte binary blob for the frame envelope
    ([Frame.with_ctx]).  Both carry trace id + span id only — the
    parent of the {e sender's} span never crosses the wire (the
    receiver doesn't need it), so decoded contexts have
    [parent_span_id = 0]. *)

type t = {
  trace_hi : int64;
  trace_lo : int64;
  span_id : int64;
  parent_span_id : int64;  (** [0L] for the root span of its trace *)
}

val equal : t -> t -> bool

(** [seed s] — make the id stream deterministic: ids are a pure
    function of [s] and the number of ids drawn since.  Without it the
    generator self-seeds from wall clock and pid on first use. *)
val seed : int -> unit

(** [root ()] — fresh trace: new 128-bit trace id, new span id, no
    parent.  Originated at the edge (gateway on a request without a
    [traceparent] header, loadgen when sampling). *)
val root : unit -> t

(** [child t] — a new span in [t]'s trace whose parent is [t]'s span.
    Used both for same-process nesting of propagated spans and to
    adopt a remote parent after {!of_wire}/{!of_string}. *)
val child : t -> t

val trace_id_hex : t -> string  (** 32 lowercase hex chars *)

val span_id_hex : t -> string  (** 16 lowercase hex chars *)

val parent_span_id_hex : t -> string  (** 16 lowercase hex chars *)

(** [to_string t] — ["00-<trace 32hex>-<span 16hex>-01"], the W3C
    [traceparent] shape. *)
val to_string : t -> string

(** [of_string s] — parse the [traceparent] shape; [None] on anything
    malformed or an all-zero trace id.  Version and flag bytes are
    validated as hex but otherwise ignored. *)
val of_string : string -> t option

(** Length in bytes of the {!to_wire} encoding (24). *)
val wire_len : int

(** [to_wire t] — trace id + span id as {!wire_len} big-endian bytes. *)
val to_wire : t -> string

(** [of_wire s] — inverse of {!to_wire}; [None] unless [s] is exactly
    {!wire_len} bytes with a nonzero trace id. *)
val of_wire : string -> t option
