(** Span/event tracing core.

    A process-wide tracer with per-domain ring buffers.  Instrumentation
    sites emit {e events} — span begins, span ends, instants — tagged
    with the emitting domain's id and a timestamp that is monotone
    within each domain.  The engine, the executor and the simulation
    runner are instrumented with it; {!Ssg_obs.Export.chrome_json} turns
    a drained event list into Chrome trace-event JSON that loads in
    Perfetto.

    {b Cost model.}  Tracing is globally disabled by default.  The
    disabled fast path is a single atomic load and a branch — cheap
    enough to leave instrumentation in per-round and per-job hot paths
    unconditionally.  Call sites that would otherwise allocate argument
    lists guard on {!enabled} first:
    {[
      if Tracer.enabled () then
        Tracer.instant ~args:[ ("round", Tracer.Int r) ] "round"
    ]}
    When enabled, an emit is one [Atomic.fetch_and_add] on the emitting
    domain's ring cursor plus one array store — no locks anywhere on the
    write path, so worker domains never contend.

    {b Ring semantics.}  Each domain writes to its own fixed-size ring;
    when a ring wraps, the oldest events of that domain are overwritten
    (counted by {!dropped}).  {!events} snapshots all rings; it is meant
    to be called at quiescence (after a run, or from the daemon's
    [Trace] wire op between jobs) — a concurrent writer can race the
    snapshot, in which case a just-overwritten slot may surface as a
    slightly newer event, never as garbage. *)

(** Span/instant argument values (rendered into Chrome-trace [args]). *)
type arg = Int of int | Float of float | Str of string

type kind = Begin | End | Instant

type event = {
  kind : kind;
  name : string;
  domain : int;  (** id of the emitting domain ([Domain.self]) *)
  ts_us : float;
      (** microseconds since the tracer epoch; monotone per domain *)
  args : (string * arg) list;
}

(** [set_enabled b] flips the global switch.  Enabling does not clear
    previously recorded events; use {!reset} for a fresh capture. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [reset ()] discards all recorded events, zeroes {!dropped} and
    re-arms the timestamp epoch at now. *)
val reset : unit -> unit

(** [instant ?args name] records a point event.  No-op when disabled. *)
val instant : ?args:(string * arg) list -> string -> unit

(** [span_begin ?args name] / [span_end ?args name] delimit a span on
    the calling domain.  Callers must balance them per domain (use
    {!with_span} unless a span crosses a control-flow boundary). *)
val span_begin : ?args:(string * arg) list -> string -> unit

val span_end : ?args:(string * arg) list -> string -> unit

(** [with_span ?args name f] wraps [f ()] in a span; the end event is
    emitted even if [f] raises.  When disabled this is just [f ()]. *)
val with_span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a

(** [events ()] — every retained event, grouped by domain, in emission
    order within each domain (which is also timestamp order). *)
val events : unit -> event list

(** [dropped ()] — events lost to ring wrap-around since the last
    {!reset}. *)
val dropped : unit -> int
