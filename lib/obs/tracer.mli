(** Span/event tracing core.

    A process-wide tracer with per-domain ring buffers.  Instrumentation
    sites emit {e events} — span begins, span ends, instants — tagged
    with the emitting domain's id and a timestamp that is monotone
    within each domain.  The engine, the executor and the simulation
    runner are instrumented with it; {!Ssg_obs.Export.chrome_json} turns
    a drained event list into Chrome trace-event JSON that loads in
    Perfetto.

    {b Cost model.}  Tracing is globally disabled by default.  The
    disabled fast path is a single atomic load and a branch — cheap
    enough to leave instrumentation in per-round and per-job hot paths
    unconditionally.  Call sites that would otherwise allocate argument
    lists guard on {!enabled} first:
    {[
      if Tracer.enabled () then
        Tracer.instant ~args:[ ("round", Tracer.Int r) ] "round"
    ]}
    When enabled, an emit is one [Atomic.fetch_and_add] on the emitting
    domain's ring cursor plus one array store — no locks anywhere on the
    write path, so worker domains never contend.

    {b Ring semantics.}  Each domain writes to its own fixed-size ring;
    when a ring wraps, the oldest events of that domain are overwritten
    (counted by {!dropped}).  {!events} snapshots all rings; it is meant
    to be called at quiescence (after a run, or from the daemon's
    [Trace] wire op between jobs) — a concurrent writer can race the
    snapshot, in which case a just-overwritten slot may surface as a
    slightly newer event, never as garbage. *)

(** Span/instant argument values (rendered into Chrome-trace [args]). *)
type arg = Int of int | Float of float | Str of string

type kind = Begin | End | Instant

type event = {
  kind : kind;
  name : string;
  domain : int;  (** id of the emitting domain ([Domain.self]) *)
  ts_us : float;
      (** microseconds since the tracer epoch; monotone per domain *)
  args : (string * arg) list;
}

(** [set_enabled b] flips the global switch.  Enabling does not clear
    previously recorded events; use {!reset} for a fresh capture. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [reset ()] discards all recorded events, zeroes {!dropped} and
    re-arms the timestamp epoch at now. *)
val reset : unit -> unit

(** [instant ?args name] records a point event.  No-op when disabled. *)
val instant : ?args:(string * arg) list -> string -> unit

(** [span_begin ?args name] / [span_end ?args name] delimit a span on
    the calling domain.  Callers must balance them per domain (use
    {!with_span} unless a span crosses a control-flow boundary). *)
val span_begin : ?args:(string * arg) list -> string -> unit

val span_end : ?args:(string * arg) list -> string -> unit

(** [with_span ?args name f] wraps [f ()] in a span; the end event is
    emitted even if [f] raises.  When disabled this is just [f ()]. *)
val with_span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a

(** [events ()] — every retained event, grouped by domain, in emission
    order within each domain (which is also timestamp order). *)
val events : unit -> event list

(** [dropped ()] — events lost to ring wrap-around since the last
    {!reset}. *)
val dropped : unit -> int

(** [epoch_s ()] — the tracer epoch as absolute Unix seconds: the
    instant that event timestamp 0 µs refers to.  Exchanged in fleet
    trace pulls so {!Ssg_obs.Stitch} can place every process's events
    on one clock. *)
val epoch_s : unit -> float

(** {1 Remote parents}

    Cross-process spans carry their identity in ordinary span args
    (["trace_id"], ["span_id"], ["parent_span_id"] as hex strings) —
    the event record itself is unchanged, which is what keeps the
    trace wire codec and existing exporters compatible. *)

(** [ctx_args c] — the three identity args for a span running as
    context [c]. *)
val ctx_args : Context.t -> (string * arg) list

(** [span_begin_ctx ?args ~ctx name] — begin a span that adopts [ctx]
    as its (possibly remote) parent: mints [Context.child ctx], emits
    the begin event with identity args prepended, and returns the
    child context to propagate further.  Balance with {!span_end}.
    Emits nothing when disabled (the child is still minted so callers
    can propagate unconditionally). *)
val span_begin_ctx :
  ?args:(string * arg) list -> ctx:Context.t -> string -> Context.t

(** [with_span_ctx ?args ~ctx name f] — like {!with_span}, but the
    span adopts [ctx] as parent and [f] receives the minted child
    context. *)
val with_span_ctx :
  ?args:(string * arg) list -> ctx:Context.t -> string -> (Context.t -> 'a) -> 'a

(** {1 Pull reports}

    What one process hands over when its buffers are pulled: its role
    and pid (for [process_name] metadata), its epoch (for clock
    alignment), its drop counter, and the retained events. *)

type report = {
  role : string;
  pid : int;
  epoch_s : float;
  dropped_events : int;
  events : event list;
}

(** [report_here ~role ()] — snapshot this process's tracer state. *)
val report_here : role:string -> unit -> report
