type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | Str s -> escape_string buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          render buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          render buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  render buf j;
  Buffer.contents buf

(* ---------------- well-formedness checker ---------------- *)

exception Malformed

let json_wellformed s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if !pos < n && s.[!pos] = c then advance () else raise Malformed
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else raise Malformed
  in
  let hex_digit c =
    match c with 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> () | _ -> raise Malformed
  in
  let string_body () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> raise Malformed
      | Some '"' ->
          advance ();
          closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                (match peek () with
                | Some c -> hex_digit c
                | None -> raise Malformed);
                advance ()
              done
          | _ -> raise Malformed)
      | Some c when Char.code c < 0x20 -> raise Malformed
      | Some _ -> advance ()
    done
  in
  let digits () =
    let saw = ref false in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      saw := true;
      advance ()
    done;
    if not !saw then raise Malformed
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (* RFC 8259 int: a lone 0, or a nonzero digit then any digits —
       leading zeros are not JSON. *)
    (match peek () with
    | Some '0' -> (
        advance ();
        match peek () with Some '0' .. '9' -> raise Malformed | _ -> ())
    | Some '1' .. '9' -> digits ()
    | _ -> raise Malformed);
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let more = ref true in
          while !more do
            skip_ws ();
            string_body ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                more := false
            | _ -> raise Malformed
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let more = ref true in
          while !more do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                more := false
            | _ -> raise Malformed
          done
        end
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Malformed);
    skip_ws ()
  in
  match
    value ();
    if !pos <> n then raise Malformed
  with
  | () -> true
  | exception Malformed -> false

(* ---------------- parser ---------------- *)

(* Same grammar as [json_wellformed], but building the value.  Kept as a
   separate pass so the checker — which tests treat as an independent
   oracle for the renderer — stays byte-for-byte what it was. *)
let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if !pos < n && s.[!pos] = c then advance () else raise Malformed
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else raise Malformed
  in
  let hex_value c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise Malformed
  in
  let add_utf8 buf u =
    (* Encode one code unit.  Unpaired surrogates are encoded as-is —
       good enough for the ASCII-dominated documents this layer emits. *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> raise Malformed
      | Some '"' ->
          advance ();
          closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char buf c;
              advance ()
          | Some 'b' ->
              Buffer.add_char buf '\b';
              advance ()
          | Some 'f' ->
              Buffer.add_char buf '\012';
              advance ()
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ()
          | Some 'r' ->
              Buffer.add_char buf '\r';
              advance ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ()
          | Some 'u' ->
              advance ();
              let u = ref 0 in
              for _ = 1 to 4 do
                (match peek () with
                | Some c -> u := (!u * 16) + hex_value c
                | None -> raise Malformed);
                advance ()
              done;
              add_utf8 buf !u
          | _ -> raise Malformed)
      | Some c when Char.code c < 0x20 -> raise Malformed
      | Some c ->
          Buffer.add_char buf c;
          advance ()
    done;
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    let digits () =
      let saw = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        saw := true;
        advance ()
      done;
      if not !saw then raise Malformed
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> (
        advance ();
        match peek () with Some '0' .. '9' -> raise Malformed | _ -> ())
    | Some '1' .. '9' -> digits ()
    | _ -> raise Malformed);
    (match peek () with
    | Some '.' ->
        is_float := true;
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec value () =
    skip_ws ();
    let v =
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let fields = ref [] in
            let more = ref true in
            while !more do
              skip_ws ();
              let key = string_body () in
              skip_ws ();
              expect ':';
              let v = value () in
              fields := (key, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' -> advance ()
              | Some '}' ->
                  advance ();
                  more := false
              | _ -> raise Malformed
            done;
            Obj (List.rev !fields)
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let items = ref [] in
            let more = ref true in
            while !more do
              let v = value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' -> advance ()
              | Some ']' ->
                  advance ();
                  more := false
              | _ -> raise Malformed
            done;
            Arr (List.rev !items)
          end
      | Some '"' -> Str (string_body ())
      | Some 't' ->
          literal "true";
          Bool true
      | Some 'f' ->
          literal "false";
          Bool false
      | Some 'n' ->
          literal "null";
          Null
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> raise Malformed
    in
    skip_ws ();
    v
  in
  match
    let v = value () in
    if !pos <> n then raise Malformed else v
  with
  | v -> Some v
  | exception Malformed -> None

(* ---------------- Chrome trace-event format ---------------- *)

let arg_json = function
  | Tracer.Int i -> Int i
  | Tracer.Float f -> Float f
  | Tracer.Str s -> Str s

let event_json pid (e : Tracer.event) =
  let base =
    [
      ("name", Str e.Tracer.name);
      ("cat", Str "ssg");
      ( "ph",
        Str
          (match e.Tracer.kind with
          | Tracer.Begin -> "B"
          | Tracer.End -> "E"
          | Tracer.Instant -> "i") );
      ("ts", Float e.Tracer.ts_us);
      ("pid", Int pid);
      ("tid", Int e.Tracer.domain);
    ]
  in
  let scope =
    (* Instant events need a scope; "t" = thread-scoped, the narrow tick
       mark Perfetto draws on the emitting track. *)
    match e.Tracer.kind with Tracer.Instant -> [ ("s", Str "t") ] | _ -> []
  in
  let args =
    match e.Tracer.args with
    | [] -> []
    | kvs -> [ ("args", Obj (List.map (fun (k, v) -> (k, arg_json v)) kvs)) ]
  in
  Obj (base @ scope @ args)

let metadata_json ~pid ?tid ~meta value =
  Obj
    ([ ("name", Str meta); ("ph", Str "M"); ("pid", Int pid) ]
    @ (match tid with Some t -> [ ("tid", Int t) ] | None -> [])
    @ [ ("args", Obj [ ("name", Str value) ]) ])

(* Metadata events naming the process and its threads (domains) — what
   makes the export Perfetto-readable as labelled tracks rather than
   bare pid/tid numbers. *)
let metadata_jsons ~pid ~process events =
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Tracer.domain) events)
  in
  metadata_json ~pid ~meta:"process_name" process
  :: List.map
       (fun tid ->
         metadata_json ~pid ~tid ~meta:"thread_name"
           (Printf.sprintf "domain %d" tid))
       tids

let chrome_json ?(pid = 1) ?process events =
  let meta =
    match process with
    | None -> []
    | Some p -> metadata_jsons ~pid ~process:p events
  in
  json_to_string (Arr (meta @ List.map (event_json pid) events))
