type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | Str s -> escape_string buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          render buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          render buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  render buf j;
  Buffer.contents buf

(* ---------------- well-formedness checker ---------------- *)

exception Malformed

let json_wellformed s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if !pos < n && s.[!pos] = c then advance () else raise Malformed
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else raise Malformed
  in
  let hex_digit c =
    match c with 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> () | _ -> raise Malformed
  in
  let string_body () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> raise Malformed
      | Some '"' ->
          advance ();
          closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                (match peek () with
                | Some c -> hex_digit c
                | None -> raise Malformed);
                advance ()
              done
          | _ -> raise Malformed)
      | Some c when Char.code c < 0x20 -> raise Malformed
      | Some _ -> advance ()
    done
  in
  let digits () =
    let saw = ref false in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      saw := true;
      advance ()
    done;
    if not !saw then raise Malformed
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (* RFC 8259 int: a lone 0, or a nonzero digit then any digits —
       leading zeros are not JSON. *)
    (match peek () with
    | Some '0' -> (
        advance ();
        match peek () with Some '0' .. '9' -> raise Malformed | _ -> ())
    | Some '1' .. '9' -> digits ()
    | _ -> raise Malformed);
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let more = ref true in
          while !more do
            skip_ws ();
            string_body ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                more := false
            | _ -> raise Malformed
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let more = ref true in
          while !more do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                more := false
            | _ -> raise Malformed
          done
        end
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Malformed);
    skip_ws ()
  in
  match
    value ();
    if !pos <> n then raise Malformed
  with
  | () -> true
  | exception Malformed -> false

(* ---------------- Chrome trace-event format ---------------- *)

let arg_json = function
  | Tracer.Int i -> Int i
  | Tracer.Float f -> Float f
  | Tracer.Str s -> Str s

let event_json pid (e : Tracer.event) =
  let base =
    [
      ("name", Str e.Tracer.name);
      ("cat", Str "ssg");
      ( "ph",
        Str
          (match e.Tracer.kind with
          | Tracer.Begin -> "B"
          | Tracer.End -> "E"
          | Tracer.Instant -> "i") );
      ("ts", Float e.Tracer.ts_us);
      ("pid", Int pid);
      ("tid", Int e.Tracer.domain);
    ]
  in
  let scope =
    (* Instant events need a scope; "t" = thread-scoped, the narrow tick
       mark Perfetto draws on the emitting track. *)
    match e.Tracer.kind with Tracer.Instant -> [ ("s", Str "t") ] | _ -> []
  in
  let args =
    match e.Tracer.args with
    | [] -> []
    | kvs -> [ ("args", Obj (List.map (fun (k, v) -> (k, arg_json v)) kvs)) ]
  in
  Obj (base @ scope @ args)

let chrome_json ?(pid = 1) events =
  json_to_string (Arr (List.map (event_json pid) events))
