(* Fleet trace stitching: turn per-process tracer reports into one
   Chrome trace document.

   Clock alignment: every event timestamp is µs since its process's
   tracer epoch, and the pull reply carries that epoch as absolute
   Unix seconds.  The stitcher anchors the fleet at the earliest
   epoch and shifts every other process's events forward by the epoch
   delta — so one request's spans line up across tracks even though
   no two processes ever shared a clock.  A report with [epoch_s = 0]
   (a pre-context peer answered the legacy [Trace] op, which carries
   no anchor) is left unshifted.

   Display pids are synthesized (1, 2, …) so two reports from the
   same OS process — the in-process test fleet — still get distinct
   tracks; the real pid lives in the [process_name] metadata. *)

open Export

let arg_str e key =
  List.find_map
    (fun (k, v) ->
      if String.equal k key then
        match v with Tracer.Str s -> Some s | _ -> None
      else None)
    e.Tracer.args

let no_parent = String.make 16 '0'

let shift_of ~zero (r : Tracer.report) =
  if r.epoch_s > 0. then (r.epoch_s -. zero) *. 1e6 else 0.

let fleet_zero (reports : Tracer.report list) =
  List.fold_left
    (fun acc (r : Tracer.report) ->
      if r.epoch_s > 0. && (acc <= 0. || r.epoch_s < acc) then r.epoch_s
      else acc)
    0. reports

(* Location of a span's begin event: where flow arrows start and end. *)
type span_loc = { pid : int; tid : int; ts : float }

let flow_events reports =
  (* Index every span id that appears on a begin event. *)
  let index = Hashtbl.create 64 in
  List.iteri
    (fun i (r : Tracer.report) ->
      List.iter
        (fun (e : Tracer.event) ->
          if e.kind = Tracer.Begin then
            match arg_str e "span_id" with
            | Some sid ->
                Hashtbl.replace index sid
                  (i, { pid = i + 1; tid = e.domain; ts = e.ts_us })
            | None -> ())
        r.events)
    reports;
  (* One s→f arrow per begin event whose parent span began in a
     different process.  The flow id is the child span id — unique per
     arrow, stable across re-stitches. *)
  let flows = ref [] in
  List.iteri
    (fun i (r : Tracer.report) ->
      List.iter
        (fun (e : Tracer.event) ->
          if e.kind = Tracer.Begin then
            match (arg_str e "span_id", arg_str e "parent_span_id") with
            | Some sid, Some psid when psid <> no_parent -> (
                match Hashtbl.find_opt index psid with
                | Some (j, parent) when j <> i ->
                    let mk ph loc extra =
                      Obj
                        ([
                           ("name", Str "ctx");
                           ("cat", Str "ssg");
                           ("ph", Str ph);
                           ("id", Str sid);
                           ("ts", Float loc.ts);
                           ("pid", Int loc.pid);
                           ("tid", Int loc.tid);
                         ]
                        @ extra)
                    in
                    let child = { pid = i + 1; tid = e.domain; ts = e.ts_us } in
                    flows :=
                      mk "f" child [ ("bp", Str "e") ]
                      :: mk "s" parent []
                      :: !flows
                | _ -> ())
            | _ -> ())
        r.events)
    reports;
  List.rev !flows

let process_label (r : Tracer.report) =
  if r.pid > 0 then Printf.sprintf "%s (pid %d)" r.role r.pid else r.role

let shift_events ~zero (r : Tracer.report) =
  let d = shift_of ~zero r in
  if d = 0. then r.events
  else
    List.map (fun (e : Tracer.event) -> { e with Tracer.ts_us = e.ts_us +. d })
      r.events

let chrome_of_reports (reports : Tracer.report list) =
  let zero = fleet_zero reports in
  let shifted =
    List.map (fun (r : Tracer.report) -> { r with Tracer.events = shift_events ~zero r })
      reports
  in
  let meta =
    List.concat
      (List.mapi
         (fun i (r : Tracer.report) ->
           metadata_jsons ~pid:(i + 1) ~process:(process_label r) r.events)
         shifted)
  in
  let evs =
    List.concat
      (List.mapi
         (fun i (r : Tracer.report) -> List.map (event_json (i + 1)) r.events)
         shifted)
  in
  json_to_string (Arr (meta @ evs @ flow_events shifted))

(* ---------------- report codec (JSON) ---------------- *)

(* The gateway exposes its own buffers over HTTP as a JSON report; the
   fleet CLI parses it back with this codec.  Events round-trip through
   the same arg shapes the Chrome exporter uses. *)

let kind_str = function
  | Tracer.Begin -> "B"
  | Tracer.End -> "E"
  | Tracer.Instant -> "i"

let event_to_json (e : Tracer.event) =
  Obj
    [
      ("kind", Str (kind_str e.kind));
      ("name", Str e.name);
      ("domain", Int e.domain);
      ("ts_us", Float e.ts_us);
      ( "args",
        Obj
          (List.map
             (fun (k, v) ->
               ( k,
                 match v with
                 | Tracer.Int i -> Int i
                 | Tracer.Float f -> Float f
                 | Tracer.Str s -> Str s ))
             e.args) );
    ]

let report_to_json (r : Tracer.report) =
  Obj
    [
      ("role", Str r.role);
      ("pid", Int r.pid);
      ("epoch_s", Float r.epoch_s);
      ("dropped", Int r.dropped_events);
      ("events", Arr (List.map event_to_json r.events));
    ]

let field obj key = match obj with
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let num = function Some (Int i) -> Some (float_of_int i) | Some (Float f) -> Some f | _ -> None
let str = function Some (Str s) -> Some s | _ -> None

let event_of_json j =
  match (str (field j "kind"), str (field j "name"), num (field j "domain"), num (field j "ts_us")) with
  | Some k, Some name, Some domain, Some ts_us ->
      let kind =
        match k with
        | "B" -> Some Tracer.Begin
        | "E" -> Some Tracer.End
        | "i" -> Some Tracer.Instant
        | _ -> None
      in
      let args =
        match field j "args" with
        | Some (Obj kvs) ->
            List.map
              (fun (k, v) ->
                ( k,
                  match v with
                  | Int i -> Tracer.Int i
                  | Float f -> Tracer.Float f
                  | Str s -> Tracer.Str s
                  | _ -> Tracer.Str (json_to_string v) ))
              kvs
        | _ -> []
      in
      Option.map
        (fun kind ->
          { Tracer.kind; name; domain = int_of_float domain; ts_us; args })
        kind
  | _ -> None

let report_of_json j =
  match (str (field j "role"), num (field j "pid"), num (field j "epoch_s")) with
  | Some role, Some pid, Some epoch_s ->
      let events =
        match field j "events" with
        | Some (Arr evs) -> List.filter_map event_of_json evs
        | _ -> []
      in
      let dropped_events =
        match num (field j "dropped") with Some d -> int_of_float d | None -> 0
      in
      Some
        {
          Tracer.role;
          pid = int_of_float pid;
          epoch_s;
          dropped_events;
          events;
        }
  | _ -> None

(* ---------------- stitched-document audit ---------------- *)

type link = {
  parent_pid : int;
  parent_name : string;
  child_pid : int;
  child_name : string;
}

type audit = {
  events : int;
  processes : int;
  links : link list;
  truncated_ends : int;
  open_spans : int;
}

(* Validate a stitched document: well-formed JSON (the independent
   checker), B/E balance per (pid, tid, name) track, and extraction of
   cross-process parent links from the identity args — what the CI
   fleet step asserts on.

   Balance is counted per name, not by one LIFO stack per track: on a
   live fleet, concurrent request threads share a track (they run on
   the same domain), so differently-named spans legitimately
   interleave.  Two imbalances are expected on a busy fleet and are
   reported rather than rejected: an E whose B was evicted by the ring
   buffer ([truncated_ends]) and a span still open at pull time
   ([open_spans]). *)
let audit_string s =
  if not (json_wellformed s) then Error "malformed JSON"
  else
    match json_of_string s with
    | None -> Error "unparseable JSON"
    | Some (Arr items) -> (
        let jstr j key = str (field j key) in
        let jnum j key = num (field j key) in
        let jarg j key =
          match field j "args" with Some a -> str (field a key) | None -> None
        in
        let opens : (int * int * string, int ref) Hashtbl.t =
          Hashtbl.create 16
        in
        let pids = Hashtbl.create 8 in
        let index = Hashtbl.create 64 in
        let begins = ref [] in
        let events = ref 0 in
        let truncated = ref 0 in
        let err = ref None in
        let fail msg = if !err = None then err := Some msg in
        List.iter
          (fun item ->
            match (jstr item "ph", jstr item "name") with
            | Some ph, Some name -> (
                let pid =
                  match jnum item "pid" with Some p -> int_of_float p | None -> -1
                in
                let tid =
                  match jnum item "tid" with Some t -> int_of_float t | None -> -1
                in
                if ph <> "M" then Hashtbl.replace pids pid ();
                let counter () =
                  match Hashtbl.find_opt opens (pid, tid, name) with
                  | Some c -> c
                  | None ->
                      let c = ref 0 in
                      Hashtbl.replace opens (pid, tid, name) c;
                      c
                in
                match ph with
                | "B" ->
                    incr events;
                    incr (counter ());
                    (match jarg item "span_id" with
                    | Some sid -> Hashtbl.replace index sid (pid, name)
                    | None -> ());
                    begins := (pid, name, jarg item "parent_span_id") :: !begins
                | "E" ->
                    incr events;
                    let c = counter () in
                    if !c > 0 then decr c else incr truncated
                | "i" | "s" | "f" -> incr events
                | "M" -> ()  (* metadata labels, not trace events *)
                | _ -> fail (Printf.sprintf "unknown phase %S" ph))
            | _ -> fail "event missing ph/name")
          items;
        let open_spans =
          Hashtbl.fold (fun _ c acc -> acc + !c) opens 0
        in
        match !err with
        | Some msg -> Error msg
        | None ->
            let links =
              List.filter_map
                (fun (pid, name, parent) ->
                  match parent with
                  | Some psid when psid <> no_parent -> (
                      match Hashtbl.find_opt index psid with
                      | Some (ppid, pname) when ppid <> pid ->
                          Some
                            {
                              parent_pid = ppid;
                              parent_name = pname;
                              child_pid = pid;
                              child_name = name;
                            }
                      | _ -> None)
                  | _ -> None)
                (List.rev !begins)
            in
            Ok
              {
                events = !events;
                processes = Hashtbl.length pids;
                links;
                truncated_ends = !truncated;
                open_spans;
              })
    | Some _ -> Error "top level is not an array"
