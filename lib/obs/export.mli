(** Trace exporters: a minimal JSON layer and the Chrome trace-event
    format.

    {!chrome_json} renders a drained {!Tracer} event list as a Chrome
    trace-event JSON array — the format [chrome://tracing] and Perfetto
    ([ui.perfetto.dev]) load directly.  Mapping: each tracer domain
    becomes a [tid], span begins/ends become ["B"]/["E"] phase events,
    instants become thread-scoped ["i"] events; timestamps are the
    tracer's microseconds.

    The JSON layer is deliberately tiny (build + escape + a
    well-formedness checker) — enough for the exporters and for tests
    and CI to validate emitted documents without a JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(** [json_to_string j] — compact rendering.  Strings are escaped per RFC
    8259; non-finite floats render as [null] (JSON has no [NaN]). *)
val json_to_string : json -> string

(** [json_wellformed s] — [s] parses as a single JSON value (with
    trailing whitespace allowed).  A full structural check: balanced
    containers, legal literals, string escapes, number syntax. *)
val json_wellformed : string -> bool

(** [json_of_string s] — the parsed value, or [None] on input
    {!json_wellformed} would reject.  Same grammar as the checker;
    string escapes are decoded ([\uXXXX] as the UTF-8 encoding of the
    code unit, surrogate pairs not combined), numbers become [Int] when
    they are integral and fit, [Float] otherwise.  This is what lets
    tests and tools {e navigate} emitted documents (the SARIF exporter's
    round-trip tests) instead of merely validating them. *)
val json_of_string : string -> json option

(** [event_json pid e] — one tracer event as a Chrome trace-event
    object (phases ["B"]/["E"]/["i"], [tid] = tracer domain).  Exposed
    for {!Ssg_obs.Stitch}, which assembles multi-process documents
    event by event. *)
val event_json : int -> Tracer.event -> json

(** [metadata_json ~pid ?tid ~meta value] — a Chrome metadata event
    (phase ["M"]).  [meta] is the metadata name ([process_name],
    [thread_name], …), [value] its value. *)
val metadata_json : pid:int -> ?tid:int -> meta:string -> string -> json

(** [metadata_jsons ~pid ~process events] — a [process_name] event plus
    one [thread_name] event per distinct domain appearing in [events],
    labelling the tracks Perfetto will draw for them. *)
val metadata_jsons : pid:int -> process:string -> Tracer.event list -> json list

(** [chrome_json ?pid ?process events] — the trace as a Chrome
    trace-event JSON array.  [pid] defaults to 1.  When [process] is
    given the array is prefixed with {!metadata_jsons} naming the
    process and its threads. *)
val chrome_json : ?pid:int -> ?process:string -> Tracer.event list -> string
