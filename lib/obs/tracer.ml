type arg = Int of int | Float of float | Str of string
type kind = Begin | End | Instant

type event = {
  kind : kind;
  name : string;
  domain : int;
  ts_us : float;
  args : (string * arg) list;
}

(* Power-of-two sizes so ring indexing is a mask, not a division. *)
let slots = 128
let ring_capacity = 16384

type ring = {
  buf : event option array;
  cursor : int Atomic.t;  (* total events ever written to this ring *)
  mutable last_ts : float;  (* per-domain monotonicity clamp *)
}

let enabled_flag = Atomic.make false

(* Rings are created lazily by the first event a domain emits; the CAS
   loses only when another domain racing for the same slot (ids are
   folded mod [slots]) installed one first, in which case both share it
   — still safe, the cursor arbitrates. *)
let rings : ring option Atomic.t array =
  Array.init slots (fun _ -> Atomic.make None)

let epoch = Atomic.make (Unix.gettimeofday ())

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let reset () =
  Array.iter (fun slot -> Atomic.set slot None) rings;
  Atomic.set epoch (Unix.gettimeofday ())

let fresh_ring () =
  { buf = Array.make ring_capacity None; cursor = Atomic.make 0; last_ts = 0. }

let rec get_ring d =
  let slot = rings.(d land (slots - 1)) in
  match Atomic.get slot with
  | Some r -> r
  | None ->
      let r = fresh_ring () in
      if Atomic.compare_and_set slot None (Some r) then r else get_ring d

let emit kind name args =
  if Atomic.get enabled_flag then begin
    let domain = (Domain.self () :> int) in
    let ring = get_ring domain in
    let now = 1e6 *. (Unix.gettimeofday () -. Atomic.get epoch) in
    (* The wall clock can step backwards; per-domain event order must
       not.  Only the owning domain writes [last_ts], so the plain read/
       write pair is race-free in the intended (one domain per ring)
       regime. *)
    let ts_us = if now > ring.last_ts then now else ring.last_ts in
    ring.last_ts <- ts_us;
    let i = Atomic.fetch_and_add ring.cursor 1 in
    ring.buf.(i land (ring_capacity - 1)) <-
      Some { kind; name; domain; ts_us; args }
  end

let instant ?(args = []) name = emit Instant name args
let span_begin ?(args = []) name = emit Begin name args
let span_end ?(args = []) name = emit End name args

let with_span ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    span_begin ?args name;
    Fun.protect ~finally:(fun () -> span_end name) f
  end

let ring_events r =
  let written = Atomic.get r.cursor in
  let kept = min written ring_capacity in
  (* Oldest retained event first: when the ring has wrapped, that is the
     slot the cursor will overwrite next. *)
  let start = if written <= ring_capacity then 0 else written in
  List.filter_map
    (fun i -> r.buf.((start + i) land (ring_capacity - 1)))
    (List.init kept Fun.id)

let events () =
  Array.to_list rings
  |> List.concat_map (fun slot ->
         match Atomic.get slot with
         | None -> []
         | Some r -> ring_events r)

let dropped () =
  Array.fold_left
    (fun acc slot ->
      match Atomic.get slot with
      | None -> acc
      | Some r -> acc + max 0 (Atomic.get r.cursor - ring_capacity))
    0 rings

let epoch_s () = Atomic.get epoch

(* --- remote parents ---------------------------------------------- *)

let ctx_args (c : Context.t) =
  [
    ("trace_id", Str (Context.trace_id_hex c));
    ("span_id", Str (Context.span_id_hex c));
    ("parent_span_id", Str (Context.parent_span_id_hex c));
  ]

let span_begin_ctx ?(args = []) ~ctx name =
  let c = Context.child ctx in
  emit Begin name (ctx_args c @ args);
  c

let with_span_ctx ?args ~ctx name f =
  if not (Atomic.get enabled_flag) then f (Context.child ctx)
  else begin
    let c = span_begin_ctx ?args ~ctx name in
    Fun.protect ~finally:(fun () -> span_end name) (fun () -> f c)
  end

(* --- pull reports ------------------------------------------------- *)

type report = {
  role : string;
  pid : int;
  epoch_s : float;
  dropped_events : int;
  events : event list;
}

let report_here ~role () =
  {
    role;
    pid = Unix.getpid ();
    epoch_s = epoch_s ();
    dropped_events = dropped ();
    events = events ();
  }
