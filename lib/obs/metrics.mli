(** Metrics registry: named counters, gauges and histograms with a
    Prometheus text-exposition renderer.

    One registry per subsystem ({!Ssg_engine.Telemetry} owns the
    daemon's).  Registration is locked; the data paths are not:
    counters are atomic adds, gauges are single-word stores, histogram
    observation is an atomic bucket increment plus a CAS loop on the
    sum — safe to hammer from worker domains and connection threads
    concurrently.

    Metric names must match Prometheus's
    [[a-zA-Z_:][a-zA-Z0-9_:]*]; registering a duplicate or invalid name
    raises [Invalid_argument] (two call sites fighting over one name is
    a bug, not a merge). *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** [counter t ?help name] registers a monotone counter. *)
val counter : t -> ?help:string -> string -> counter

(** [gauge t ?help name] registers a gauge (set-to-current-value). *)
val gauge : t -> ?help:string -> string -> gauge

(** [histogram t ?help ?buckets name] registers a histogram with the
    given upper bounds (strictly increasing, [+Inf] implied; default
    {!default_buckets}, tuned for millisecond latencies). *)
val histogram : t -> ?help:string -> ?buckets:float array -> string -> histogram

val default_buckets : float array

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

(** Frozen histogram contents: cumulative bucket counts paired with
    their upper bounds (the implied [+Inf] bucket last, bound
    [infinity]), plus the sum and count of all observations. *)
type hist_snapshot = {
  buckets : (float * int) array;
  sum : float;
  count : int;
}

val hist_snapshot : histogram -> hist_snapshot

(** [to_prometheus ?only t] renders the registry in text exposition
    format, in registration order.  [only] filters by metric name. *)
val to_prometheus : ?only:(string -> bool) -> t -> string

(** Low-level exposition helpers, for rendering metrics that live
    outside a registry (the {!Ssg_engine.Telemetry} snapshot exporter
    shares these with the registry renderer above). *)

val prom_scalar :
  Buffer.t -> kind:[ `Counter | `Gauge ] -> ?help:string -> string -> float -> unit

(** [prom_summary buf name ~count ~sum ~quantiles] renders a Prometheus
    summary; [quantiles] pairs each quantile (e.g. [0.5]) with its
    value. *)
val prom_summary :
  Buffer.t ->
  ?help:string ->
  string ->
  count:int ->
  sum:float ->
  quantiles:(float * float) list ->
  unit
