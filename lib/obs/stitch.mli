(** Fleet trace stitching: one Chrome trace document from per-process
    tracer reports.

    {b Clock alignment.}  Event timestamps are µs since each process's
    own tracer epoch ({!Tracer.epoch_s}); the pull reply carries that
    epoch as absolute seconds.  {!chrome_of_reports} anchors the fleet
    at the earliest epoch and shifts every other process's events by
    its epoch delta, so spans of one request line up across tracks.
    Reports with [epoch_s = 0] (legacy peers that answered the
    anchor-less [Trace] op) are left unshifted.

    {b Identity.}  Display pids are synthesized (1, 2, … in report
    order) so reports from the same OS process still get distinct
    tracks; the real pid is in the [process_name] metadata.  Cross
    -process parent links — a span whose [parent_span_id] arg names a
    span that began in a different report — become Chrome flow events
    ([ph:"s"] at the parent, [ph:"f"] at the child), the arrows
    Perfetto draws between tracks. *)

(** [chrome_of_reports reports] — the stitched Chrome trace-event JSON
    array: per-process [process_name]/[thread_name] metadata, clock
    -shifted events, and cross-process flow events. *)
val chrome_of_reports : Tracer.report list -> string

(** [report_to_json r] / [report_of_json j] — JSON codec for one
    report, used by the gateway's [GET /trace] endpoint and the fleet
    CLI that consumes it.  Round-trips role, pid, epoch, drop count
    and events (a [Float] arg with integral value may come back as
    [Int] — JSON does not distinguish them). *)
val report_to_json : Tracer.report -> Export.json

val report_of_json : Export.json -> Tracer.report option

type link = {
  parent_pid : int;
  parent_name : string;
  child_pid : int;
  child_name : string;
}

type audit = {
  events : int;  (** non-metadata trace events seen *)
  processes : int;  (** distinct pids with at least one event *)
  links : link list;  (** cross-process parent links, document order *)
  truncated_ends : int;
      (** E events whose B was evicted by the ring buffer — expected on
          a busy fleet, zero on an idle one *)
  open_spans : int;
      (** spans still open when the buffers were pulled — in-flight
          requests, zero on a quiescent fleet *)
}

(** [audit_string s] — validate a stitched document: [s] passes
    {!Export.json_wellformed}, is a JSON array of events, and B/E
    balance per [(pid, tid, name)] track.  Balance is per name rather
    than one LIFO stack per track because concurrent request threads
    share a track; ring-buffer truncation and in-flight spans are
    counted, not rejected.  Returns the audit summary, or a message
    naming the first violation. *)
val audit_string : string -> (audit, string) result
