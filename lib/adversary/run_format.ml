open Ssg_graph

let edge_tokens g =
  Digraph.edges g
  |> List.filter (fun (a, b) -> a <> b)
  |> List.map (fun (a, b) -> Printf.sprintf "%d>%d" a b)
  |> String.concat " "

let to_string adv =
  if Adversary.is_recurrent adv then
    invalid_arg "Run_format.to_string: recurrent runs cannot be serialized";
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ssg-run v1\n";
  Buffer.add_string buf
    (Printf.sprintf "# %s\nn %d\n" (Adversary.name adv) (Adversary.n adv));
  for r = 1 to Adversary.prefix_length adv do
    Buffer.add_string buf
      (Printf.sprintf "round %d: %s\n" r (edge_tokens (Adversary.graph adv r)))
  done;
  Buffer.add_string buf
    (Printf.sprintf "stable: %s\n"
       (edge_tokens (Adversary.graph adv (Adversary.prefix_length adv + 1))));
  Buffer.contents buf

type spans = {
  n_line : int;
  round_lines : int array;
  stable_line : int;
  redundant_edges : (int * string) list;
}

let syntax_error line msg = failwith (Printf.sprintf "line %d: %s" line msg)

(* [note] is told about textually redundant edge tokens — explicit
   self-loops (implied by the model) and duplicates of an edge already
   written on the same graph line.  The graph itself is unaffected; the
   lint layer turns the notes into SSG105 diagnostics. *)
let parse_edges ~lineno ~n ~note text =
  let g = Digraph.create n in
  Digraph.add_self_loops g;
  String.split_on_char ' ' text
  |> List.filter (fun t -> t <> "")
  |> List.iter (fun token ->
         match String.split_on_char '>' token with
         | [ a; b ] -> (
             match (int_of_string_opt a, int_of_string_opt b) with
             | Some a, Some b when a >= 0 && a < n && b >= 0 && b < n ->
                 if a = b || Digraph.mem_edge g a b then note (lineno, token);
                 Digraph.add_edge g a b
             | _ ->
                 syntax_error lineno
                   (Printf.sprintf "edge %S out of range for n = %d" token n))
         | _ -> syntax_error lineno (Printf.sprintf "malformed edge %S" token));
  g

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse text =
  let lines = String.split_on_char '\n' text in
  let n = ref None in
  (* (value, declaring line) *)
  let rounds = ref [] in
  (* (declaring line, graph), reversed *)
  let stable = ref None in
  let header_seen = ref false in
  let redundant = ref [] in
  let note entry = redundant := entry :: !redundant in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        if not !header_seen then
          if line = "ssg-run v1" then header_seen := true
          else syntax_error lineno "expected header \"ssg-run v1\""
        else
          match String.index_opt line ' ' with
          | None ->
              if line = "stable:" then (
                match !n with
                | None -> syntax_error lineno "n must be declared first"
                | Some (n, _) ->
                    if !stable <> None then
                      syntax_error lineno "duplicate stable graph";
                    stable := Some (lineno, parse_edges ~lineno ~n ~note ""))
              else
                syntax_error lineno (Printf.sprintf "unknown directive %S" line)
          | Some sp -> (
              let keyword = String.sub line 0 sp in
              let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
              match keyword with
              | "n" -> (
                  if !n <> None then
                    syntax_error lineno "duplicate n declaration";
                  match int_of_string_opt (String.trim rest) with
                  | Some v when v >= 2 -> n := Some (v, lineno)
                  | Some v ->
                      (* n 0 and n 1 describe no agreement problem: the
                         edge grammar cannot even name a second process.
                         Rejecting here gives the lint front door a
                         line-anchored diagnostic instead of letting a
                         degenerate run reach the engine. *)
                      syntax_error lineno
                        (Printf.sprintf
                           "n must be at least 2 (got %d): a run needs two \
                            processes to describe communication"
                           v)
                  | None -> syntax_error lineno "n must be an integer >= 2")
              | "round" -> (
                  if !stable <> None then
                    syntax_error lineno "round after stable graph";
                  match (!n, String.index_opt rest ':') with
                  | None, _ -> syntax_error lineno "n must be declared first"
                  | _, None -> syntax_error lineno "round needs \"round R: edges\""
                  | Some (n, _), Some colon -> (
                      let idx = String.trim (String.sub rest 0 colon) in
                      let edges =
                        String.sub rest (colon + 1) (String.length rest - colon - 1)
                      in
                      match int_of_string_opt idx with
                      | Some r when r = List.length !rounds + 1 ->
                          rounds :=
                            (lineno, parse_edges ~lineno ~n ~note edges)
                            :: !rounds
                      | Some _ -> syntax_error lineno "rounds must be consecutive from 1"
                      | None -> syntax_error lineno "round index must be an integer"))
              | "stable:" | "stable" -> (
                  match !n with
                  | None -> syntax_error lineno "n must be declared first"
                  | Some (n, _) ->
                      let edges =
                        if keyword = "stable:" then rest
                        else
                          match String.index_opt rest ':' with
                          | Some c ->
                              String.sub rest (c + 1) (String.length rest - c - 1)
                          | None -> syntax_error lineno "stable needs a colon"
                      in
                      if !stable <> None then
                        syntax_error lineno "duplicate stable graph";
                      stable := Some (lineno, parse_edges ~lineno ~n ~note edges))
              | other ->
                  syntax_error lineno (Printf.sprintf "unknown directive %S" other)))
    lines;
  if not !header_seen then failwith "line 1: missing header \"ssg-run v1\"";
  match (!n, !stable) with
  | None, _ -> failwith "missing n declaration"
  | _, None -> failwith "missing stable graph"
  | Some (_, n_line), Some (stable_line, stable_graph) ->
      let rounds = List.rev !rounds in
      let adv =
        Adversary.make ~name:"loaded"
          ~prefix:(Array.of_list (List.map snd rounds))
          ~stable:stable_graph
      in
      ( adv,
        {
          n_line;
          round_lines = Array.of_list (List.map fst rounds);
          stable_line;
          redundant_edges = List.rev !redundant;
        } )

let of_string text = fst (parse text)

let save adv path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string adv))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
