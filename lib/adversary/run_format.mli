(** A plain-text file format for run descriptions.

    Lets counterexamples, regression runs and hand-crafted scenarios be
    saved, diffed, mailed around and re-loaded — the unit of exchange for
    this library's experiments (the CLI's [--save]/[--load] and the
    [ssg shrink] workflow).

    Format (line oriented; [#] starts a comment; blank lines ignored):

    {v
    ssg-run v1
    n 3
    # one line per prefix round, then the stable graph
    round 1: 1>0 0>2 1>2 2>1
    stable: 1>0 0>2 1>2
    v}

    Edges are [src>dst] with 0-based process ids; self-loops are implied
    (every graph gets all of them — the model invariant) and not written.
    Runs with a recurrent-noise component cannot be serialized (they
    contain a function); [to_string] raises [Invalid_argument] on them. *)

(** [to_string adv] serializes.  @raise Invalid_argument for recurrent
    runs. *)
val to_string : Adversary.t -> string

(** [of_string text] parses.  @raise Failure with a line-numbered message
    on malformed input — including a duplicate [n] declaration
    ("duplicate n declaration") and prefix rounds appearing after the
    stable graph ("round after stable graph"). *)
val of_string : string -> Adversary.t

(** Line anchors recorded while parsing, consumed by the lint layer to
    attach diagnostics to source positions.  [redundant_edges] lists
    textually redundant edge tokens — explicit self-loops (the model
    implies them) and duplicates within one graph line — as
    [(line, token)] pairs in source order.  Redundant tokens do not
    change the parsed graphs. *)
type spans = {
  n_line : int;
  round_lines : int array;  (** index r-1 holds the line of [round r] *)
  stable_line : int;
  redundant_edges : (int * string) list;
}

(** [parse text] is [of_string] plus the recorded {!spans}. *)
val parse : string -> Adversary.t * spans

(** [save adv path] / [load path] — file variants. *)
val save : Adversary.t -> string -> unit

val load : string -> Adversary.t
