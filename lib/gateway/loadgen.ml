module Transport = Ssg_net.Transport
module Frame = Ssg_net.Frame
module Context = Ssg_obs.Context
open Ssg_engine

type mix = { cached : int; uncached : int; lint_error : int }
type slo = { quantile : float; limit_ms : float; spec : string }

let slo_of_string s =
  let fail () =
    Error
      (Printf.sprintf "bad SLO %S (expected e.g. p99<250ms or p50<1.5ms)" s)
  in
  match String.index_opt s '<' with
  | None -> fail ()
  | Some i ->
      let q = String.sub s 0 i in
      let lim = String.sub s (i + 1) (String.length s - i - 1) in
      if String.length q < 2 || (q.[0] <> 'p' && q.[0] <> 'P') then fail ()
      else if
        String.length lim < 3
        || String.sub lim (String.length lim - 2) 2 <> "ms"
      then fail ()
      else
        let qs = String.sub q 1 (String.length q - 1) in
        let ls = String.sub lim 0 (String.length lim - 2) in
        match (float_of_string_opt qs, float_of_string_opt ls) with
        | Some qv, Some limit_ms
          when qv > 0. && qv < 100. && limit_ms > 0. ->
            Ok { quantile = qv /. 100.; limit_ms; spec = s }
        | _ -> fail ()

type report = {
  connections : int;
  sent : int;
  completed : int;
  rejected : int;
  errors : int;
  duration_s : float;
  throughput_rps : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  slo_violations : string list;
  slow_traces : (float * string) list;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

(* ---------------- synthetic jobs ---------------- *)

(* The paper's two-islands geometry: n=6, two 3-cycles.  Psrcs(2) holds
   (one source per island), so k=2 passes the lint gate and k=1 is
   rejected with SSG001 — which is exactly the job mix's lint-error
   case. *)
let run_text = "ssg-run v1\nn 6\nstable: 0>1 1>2 2>0 3>4 4>5 5>3\n"

type kind = Cached | Uncached | Lint_error

let fresh_inputs =
  let counter = Atomic.make 1 in
  fun () ->
    let c = Atomic.fetch_and_add counter 1 in
    Array.init 6 (fun i -> c + i)

let encode_job kind =
  let job =
    match kind with
    | Cached -> Job.of_run_text ~k:2 run_text
    | Uncached -> Job.of_run_text ~k:2 ~inputs:(fresh_inputs ()) run_text
    | Lint_error -> Job.of_run_text ~k:1 run_text
  in
  Protocol.request_to_bytes (Protocol.Submit job)

let kind_of_mix mix =
  let total = mix.cached + mix.uncached + mix.lint_error in
  let counter = Atomic.make 0 in
  fun () ->
    let c = Atomic.fetch_and_add counter 1 mod total in
    if c < mix.cached then Cached
    else if c < mix.cached + mix.uncached then Uncached
    else Lint_error

(* ---------------- per-driver accounting ---------------- *)

type tally = {
  mutable sent : int;
  mutable completed : int;
  mutable rejected : int;
  mutable errors : int;
  mutable latencies : float array;  (* ms *)
  mutable n_latencies : int;
  mutable slow : (float * string) list;  (* (ms, trace id hex), desc *)
}

let new_tally () =
  {
    sent = 0;
    completed = 0;
    rejected = 0;
    errors = 0;
    latencies = Array.make 4096 0.;
    n_latencies = 0;
    slow = [];
  }

let record_latency tally ms =
  if tally.n_latencies = Array.length tally.latencies then begin
    let bigger = Array.make (2 * tally.n_latencies) 0. in
    Array.blit tally.latencies 0 bigger 0 tally.n_latencies;
    tally.latencies <- bigger
  end;
  tally.latencies.(tally.n_latencies) <- ms;
  tally.n_latencies <- tally.n_latencies + 1

(* Keep the [top] slowest (latency, trace id) samples, descending.
   [top] is small (a report-sized handful), so a sorted list is fine. *)
let merge_slow top lists =
  List.concat lists
  |> List.sort (fun (a, _) (b, _) -> compare (b : float) a)
  |> List.filteri (fun i _ -> i < top)

let record_slow tally top ms trace_hex =
  if top > 0 then tally.slow <- merge_slow top [ (ms, trace_hex) :: tally.slow ]

(* ---------------- connections ---------------- *)

type conn = {
  mutable fd : Unix.file_descr option;
  mutable next_id : int;
  (* Open-loop only: when this connection's next request is due. *)
  mutable next_sched : float;
}

let dial addr deadline_s =
  let fd = Transport.connect addr in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO deadline_s
   with Unix.Unix_error _ -> ());
  fd

(* Initial connect with patience: thousands of simultaneous dials can
   outrun the server's accept loop, and a SYN dropped off a full
   backlog deserves a retry, not an error. *)
let dial_retry addr deadline_s =
  let rec go attempt =
    match dial addr deadline_s with
    | fd -> Some fd
    | exception (Unix.Unix_error _ | Failure _) when attempt < 20 ->
        Thread.delay (0.02 *. float_of_int (1 + (attempt mod 5)));
        go (attempt + 1)
    | exception (Unix.Unix_error _ | Failure _) -> None
  in
  go 0

let drop conn =
  (match conn.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  conn.fd <- None

(* One request/reply classified against what was asked for.  A
   lint-error job answered with a lint rejection is the expected
   outcome; everything else unexpected is a client-visible error. *)
let classify tally kind reply_payload =
  let rejection () =
    tally.completed <- tally.completed + 1;
    tally.rejected <- tally.rejected + 1
  in
  match Protocol.reply_of_bytes reply_payload with
  | exception Failure _ -> tally.errors <- tally.errors + 1
  | Protocol.Completed { Job.result = Ok _; _ } -> (
      match kind with
      | Cached | Uncached -> tally.completed <- tally.completed + 1
      | Lint_error -> tally.errors <- tally.errors + 1)
  | Protocol.Completed { Job.result = Error _; _ } -> (
      (* A lint job that dedup-joined an in-flight twin comes back as a
         Completed carrying the rejection, not a protocol Error — both
         shapes are the expected outcome for that kind. *)
      match kind with
      | Lint_error -> rejection ()
      | Cached | Uncached -> tally.errors <- tally.errors + 1)
  | Protocol.Error _ -> (
      match kind with
      | Lint_error -> rejection ()
      | Cached | Uncached -> tally.errors <- tally.errors + 1)
  | _ -> tally.errors <- tally.errors + 1

(* ---------------- drivers ---------------- *)

(* Closed-loop round over one connection: send [pipeline] id-framed
   requests back to back, then read the replies (any order — the ids
   correlate them).  All of a driver's connections send before any of
   them reads, so the whole slice has work in flight at once. *)

(* When sampling is on ([trace_top > 0]) each request originates a root
   trace context, carried in the context envelope inside the id
   envelope — the loadgen is the edge of those traces, exactly like a
   traceparent-bearing HTTP caller. *)
let encode_request kind trace_top =
  if trace_top > 0 then begin
    let ctx = Context.root () in
    ( Some (Context.trace_id_hex ctx),
      Frame.with_ctx ~ctx:(Context.to_wire ctx) (encode_job kind) )
  end
  else (None, encode_job kind)

let send_batch conn tally next_kind pipeline trace_top =
  let fd = Option.get conn.fd in
  let batch = Array.init pipeline (fun _ -> next_kind ()) in
  let sends =
    Array.map
      (fun kind ->
        let id = conn.next_id in
        conn.next_id <- id + 1;
        let trace_hex, payload = encode_request kind trace_top in
        (id, kind, trace_hex, Frame.with_id ~id payload))
      batch
  in
  Array.iter
    (fun (_, _, _, payload) -> Frame.write_fd fd payload)
    sends;
  let t0 = Unix.gettimeofday () in
  tally.sent <- tally.sent + pipeline;
  (t0, sends)

let read_batch conn tally trace_top (t0, sends) =
  let fd = Option.get conn.fd in
  let outstanding = Hashtbl.create 8 in
  Array.iter
    (fun (id, kind, trace_hex, _) ->
      Hashtbl.replace outstanding id (kind, trace_hex))
    sends;
  while Hashtbl.length outstanding > 0 do
    let frame = Frame.read_fd fd in
    match Frame.classify frame with
    | Frame.Plain _ -> failwith "loadgen: reply outside the id envelope"
    | Frame.Id (id, inner) -> (
        match Hashtbl.find_opt outstanding id with
        | None -> ()  (* stale reply from a previous batch: ignore *)
        | Some (kind, trace_hex) ->
            Hashtbl.remove outstanding id;
            let ms = (Unix.gettimeofday () -. t0) *. 1000. in
            record_latency tally ms;
            (match trace_hex with
            | Some hex -> record_slow tally trace_top ms hex
            | None -> ());
            classify tally kind inner)
  done

let closed_loop addr deadline_s pipeline next_kind trace_top t_end tally conns
    =
  (* Connect the whole slice up front. *)
  Array.iter
    (fun conn ->
      match dial_retry addr deadline_s with
      | Some fd -> conn.fd <- Some fd
      | None -> tally.errors <- tally.errors + 1)
    conns;
  while Unix.gettimeofday () < t_end do
    (* Phase 1: every live connection gets a batch in flight. *)
    let batches =
      Array.map
        (fun conn ->
          match conn.fd with
          | None -> None
          | Some _ -> (
              match send_batch conn tally next_kind pipeline trace_top with
              | batch -> Some (conn, batch)
              | exception _ ->
                  tally.errors <- tally.errors + pipeline;
                  drop conn;
                  None))
        conns
    in
    (* Phase 2: drain them. *)
    Array.iter
      (function
        | None -> ()
        | Some (conn, ((_, sends) as batch)) -> (
            match read_batch conn tally trace_top batch with
            | () -> ()
            | exception _ ->
                (* Deadline, hangup, or garbage: every unanswered
                   request in the batch is a client-visible failure. *)
                tally.errors <- tally.errors + Array.length sends;
                drop conn))
      batches;
    (* Re-dial what died so the load level recovers. *)
    if Unix.gettimeofday () < t_end then
      Array.iter
        (fun conn ->
          if conn.fd = None then
            match dial addr deadline_s with
            | fd -> conn.fd <- Some fd
            | exception (Unix.Unix_error _ | Failure _) -> ())
        conns
  done

(* Open-loop: each connection fires at fixed schedule times (the
   aggregate rate split evenly), one request in flight each, and the
   latency clock starts at the {e scheduled} time — a service that
   falls behind pays for its queue. *)
let open_loop addr deadline_s rate next_kind trace_top t_start t_end tally
    conns =
  let n = Array.length conns in
  let interval = float_of_int n /. rate in
  Array.iter
    (fun conn ->
      match dial_retry addr deadline_s with
      | Some fd -> conn.fd <- Some fd
      | None -> tally.errors <- tally.errors + 1)
    conns;
  (* The schedule starts once this slice is actually connected —
     charging the dial phase to the service would inflate every
     first-request latency by setup time the service never saw. *)
  let base = Float.max t_start (Unix.gettimeofday ()) in
  Array.iteri
    (fun i conn -> conn.next_sched <- base +. (float_of_int i /. rate))
    conns;
  let live = ref true in
  while !live && Unix.gettimeofday () < t_end do
    live := false;
    Array.iter
      (fun conn ->
        match conn.fd with
        | None -> ()
        | Some fd ->
            if conn.next_sched < t_end then begin
              live := true;
              let now = Unix.gettimeofday () in
              if now < conn.next_sched then
                Thread.delay (conn.next_sched -. now);
              let sched = conn.next_sched in
              conn.next_sched <- conn.next_sched +. interval;
              let kind = next_kind () in
              let id = conn.next_id in
              conn.next_id <- id + 1;
              match
                let trace_hex, payload = encode_request kind trace_top in
                Frame.write_fd fd (Frame.with_id ~id payload);
                tally.sent <- tally.sent + 1;
                let rec read_mine () =
                  match Frame.classify (Frame.read_fd fd) with
                  | Frame.Plain _ ->
                      failwith "loadgen: reply outside the id envelope"
                  | Frame.Id (rid, inner) when rid = id -> inner
                  | Frame.Id _ -> read_mine ()
                in
                let inner = read_mine () in
                let ms = (Unix.gettimeofday () -. sched) *. 1000. in
                record_latency tally ms;
                (match trace_hex with
                | Some hex -> record_slow tally trace_top ms hex
                | None -> ());
                classify tally kind inner
              with
              | () -> ()
              | exception _ ->
                  tally.errors <- tally.errors + 1;
                  drop conn;
                  (match dial addr deadline_s with
                  | fd -> conn.fd <- Some fd
                  | exception (Unix.Unix_error _ | Failure _) -> ())
            end)
      conns
  done

(* ---------------- the run ---------------- *)

let default_mix = { cached = 8; uncached = 1; lint_error = 1 }

let run ?threads ?(pipeline = 1) ?(rate = 0.) ?(mix = default_mix)
    ?(deadline_s = 30.) ?(slos = []) ?(trace_top = 0) ~connections ~duration_s
    ~target () =
  if connections < 1 then
    invalid_arg "Loadgen.run: connections must be >= 1";
  if pipeline < 1 then invalid_arg "Loadgen.run: pipeline must be >= 1";
  if duration_s <= 0. then invalid_arg "Loadgen.run: duration_s must be > 0";
  if rate < 0. then invalid_arg "Loadgen.run: rate must be >= 0";
  if trace_top < 0 then invalid_arg "Loadgen.run: trace_top must be >= 0";
  if mix.cached < 0 || mix.uncached < 0 || mix.lint_error < 0
     || mix.cached + mix.uncached + mix.lint_error = 0
  then invalid_arg "Loadgen.run: the mix needs a positive total";
  let threads =
    match threads with
    | Some t when t >= 1 -> min t connections
    | Some _ -> invalid_arg "Loadgen.run: threads must be >= 1"
    | None -> min connections 8
  in
  let addr = Transport.of_string_exn target in
  let next_kind = kind_of_mix mix in
  let tallies = Array.init threads (fun _ -> new_tally ()) in
  let t_start = Unix.gettimeofday () in
  let t_end = t_start +. duration_s in
  let slice i =
    (* Spread connections across threads, first slices one larger. *)
    let base = connections / threads and extra = connections mod threads in
    let count = base + if i < extra then 1 else 0 in
    Array.init count (fun _ -> { fd = None; next_id = 0; next_sched = 0. })
  in
  let drivers =
    Array.init threads (fun i ->
        let conns = slice i in
        let tally = tallies.(i) in
        Thread.create
          (fun () ->
            (try
               if rate > 0. then
                 open_loop addr deadline_s
                   (rate /. float_of_int threads)
                   next_kind trace_top t_start t_end tally conns
               else
                 closed_loop addr deadline_s pipeline next_kind trace_top
                   t_end tally conns
             with e ->
               Logs.err (fun m ->
                   m "loadgen driver died: %s" (Printexc.to_string e));
               tally.errors <- tally.errors + 1);
            Array.iter drop conns)
          ())
  in
  Array.iter Thread.join drivers;
  let duration = Unix.gettimeofday () -. t_start in
  let sent = Array.fold_left (fun a t -> a + t.sent) 0 tallies in
  let completed = Array.fold_left (fun a t -> a + t.completed) 0 tallies in
  let rejected = Array.fold_left (fun a t -> a + t.rejected) 0 tallies in
  let errors = Array.fold_left (fun a t -> a + t.errors) 0 tallies in
  let total_lat = Array.fold_left (fun a t -> a + t.n_latencies) 0 tallies in
  let latencies = Array.make (max total_lat 1) 0. in
  let off = ref 0 in
  Array.iter
    (fun t ->
      Array.blit t.latencies 0 latencies !off t.n_latencies;
      off := !off + t.n_latencies)
    tallies;
  let latencies = Array.sub latencies 0 (max total_lat 0) in
  Array.sort compare latencies;
  let mean =
    if total_lat = 0 then Float.nan
    else Array.fold_left ( +. ) 0. latencies /. float_of_int total_lat
  in
  let pct q = percentile latencies q in
  let p50 = pct 0.5 and p95 = pct 0.95 and p99 = pct 0.99 in
  let maxl = if total_lat = 0 then Float.nan else latencies.(total_lat - 1) in
  let violations =
    List.filter_map
      (fun slo ->
        let v = pct slo.quantile in
        if Float.is_nan v then
          Some (Printf.sprintf "%s: no latency samples" slo.spec)
        else if v > slo.limit_ms then
          Some
            (Printf.sprintf "%s violated: observed %.1fms > %.1fms" slo.spec v
               slo.limit_ms)
        else None)
      slos
  in
  let violations =
    if errors > 0 then
      violations
      @ [ Printf.sprintf "%d client-visible error(s) during the run" errors ]
    else violations
  in
  {
    connections;
    sent;
    completed;
    rejected;
    errors;
    duration_s = duration;
    throughput_rps =
      (if duration > 0. then float_of_int completed /. duration else 0.);
    mean_ms = mean;
    p50_ms = p50;
    p95_ms = p95;
    p99_ms = p99;
    max_ms = maxl;
    slo_violations = violations;
    slow_traces =
      merge_slow trace_top (Array.to_list (Array.map (fun t -> t.slow) tallies));
  }

(* ---------------- rendering ---------------- *)

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.3f" f

let to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"connections\":%d,\"sent\":%d,\"completed\":%d,\"rejected\":%d,\
        \"errors\":%d,\"duration_s\":%.3f,\"throughput_rps\":%.1f,"
       r.connections r.sent r.completed r.rejected r.errors r.duration_s
       r.throughput_rps);
  Buffer.add_string buf
    (Printf.sprintf
       "\"mean_ms\":%s,\"p50_ms\":%s,\"p95_ms\":%s,\"p99_ms\":%s,\
        \"max_ms\":%s,"
       (json_float r.mean_ms) (json_float r.p50_ms) (json_float r.p95_ms)
       (json_float r.p99_ms) (json_float r.max_ms));
  Buffer.add_string buf "\"slo_violations\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (Ssg_net.Http.json_escape v)))
    r.slo_violations;
  Buffer.add_string buf "],\"slow_traces\":[";
  List.iteri
    (fun i (ms, trace) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"latency_ms\":%.3f,\"trace_id\":\"%s\"}" ms
           (Ssg_net.Http.json_escape trace)))
    r.slow_traces;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp fmt r =
  Format.fprintf fmt
    "@[<v>connections : %d@,sent        : %d@,completed   : %d@,\
     rejected    : %d (expected lint rejections)@,errors      : %d@,\
     duration    : %.2f s@,throughput  : %.1f req/s@,latency mean: %.2f ms@,\
     latency p50 : %.2f ms@,latency p95 : %.2f ms@,latency p99 : %.2f ms@,\
     latency max : %.2f ms@]" r.connections r.sent r.completed r.rejected
    r.errors r.duration_s r.throughput_rps r.mean_ms r.p50_ms r.p95_ms
    r.p99_ms r.max_ms;
  (match r.slow_traces with
  | [] -> ()
  | slow ->
      Format.fprintf fmt "@.slowest traces (trace id, latency):";
      List.iter
        (fun (ms, trace) -> Format.fprintf fmt "@.  %s  %8.2f ms" trace ms)
        slow);
  match r.slo_violations with
  | [] -> Format.fprintf fmt "@.slo         : ok@."
  | vs ->
      List.iter (fun v -> Format.fprintf fmt "@.slo VIOLATED: %s" v) vs;
      Format.fprintf fmt "@."
