(** The HTTP/JSON front door: [ssg gateway].

    A thin HTTP/1.1 facade over the native wire protocol, for clients
    that speak curl rather than {!Ssg_engine.Protocol}.  All backend
    traffic is multiplexed over {e one} pipelined connection
    ({!Ssg_engine.Pclient}): N concurrent HTTP requests become N
    in-flight id-framed requests, so a slow submission does not
    head-of-line-block a stats scrape.  The backend connection is
    re-dialed lazily after it fails — a worker restart costs the
    requests in flight, not the gateway.

    Routes:
    - [POST /submit?k=K&algorithm=A&rounds=R&monitor=B] with the run
      description ([ssg-run v1] text) as the body.  Replies JSON:
      [200] with the completion (outcome, cached flag, latency),
      [400] on malformed parameters or run text, [422] when the job
      was rejected (lint) or failed executing, [502] when the backend
      could not be reached.
    - [GET /stats] — the backend's merged telemetry snapshot as JSON.
    - [GET /metrics] — Prometheus text: the gateway's own series
      ([ssg_gateway_*], including the [ssg_hop_gateway_router_ms]
      round-trip histogram) followed by the backend's exposition.
    - [GET /trace] — the gateway's own tracer report as JSON
      ({!Ssg_obs.Stitch.report_to_json}), for the fleet stitcher.
    - [GET /healthz] — liveness (does not touch the backend).
    - [POST /shutdown] — stops the {e gateway} (never the backend).

    {b Tracing.}  With [trace], every request runs under a
    [gateway.request] span.  An incoming [traceparent] header makes
    that span a child of the caller's; otherwise the gateway
    originates the trace.  The span's context is forwarded to the
    backend in the frame context envelope (so router and worker spans
    nest under it) and echoed back in a [traceparent] response
    header.

    Supervision mirrors {!Ssg_engine.Server}: SIGPIPE is ignored, a
    client vanishing between request and reply ([EPIPE]/[ECONNRESET])
    or sending garbage costs that connection only, stalled connections
    are reaped by [read_timeout_s], and shutdown drains live
    connections bounded by [drain_timeout_s]. *)

(** [serve ~listen ~backend ()] binds the HTTP socket at [listen] (a
    {!Ssg_net.Transport} address string) fronting the native-protocol
    service at [backend], and {b blocks} until [POST /shutdown].

    - [backend_deadline_s] (default 30): liveness deadline on the
      pipelined backend connection — total silence for that long fails
      the in-flight requests with 502s.
    - [max_connections] (default 1024), [read_timeout_s] (default 30),
      [drain_timeout_s] (default 5): front-socket guards, as in
      {!Ssg_engine.Server.serve}.
    - [trace] (default [false]): resets and enables the process-wide
      tracer; requests get [gateway.request] spans with propagated
      context, and [GET /trace] returns the buffered report.
    @raise Invalid_argument on malformed addresses or non-positive
    limits, [Unix.Unix_error] when [listen] cannot be bound. *)
val serve :
  ?backend_deadline_s:float ->
  ?max_connections:int ->
  ?read_timeout_s:float ->
  ?drain_timeout_s:float ->
  ?trace:bool ->
  listen:string ->
  backend:string ->
  unit ->
  unit
