let log_src = Logs.Src.create "ssg.gateway" ~doc:"HTTP/JSON gateway"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Transport = Ssg_net.Transport
module Http = Ssg_net.Http
module Metrics = Ssg_obs.Metrics
module Tracer = Ssg_obs.Tracer
module Context = Ssg_obs.Context
open Ssg_engine

type t = {
  backend : string;
  backend_deadline_s : float;
  block : Mutex.t;
  mutable pc : Pclient.t option;
  metrics : Metrics.t;
  requests : Metrics.counter;
  submits : Metrics.counter;
  client_errors : Metrics.counter;  (* 4xx *)
  backend_errors : Metrics.counter;  (* 502 *)
  hop_router : Metrics.histogram;  (* gateway -> backend round trip *)
}

(* The shared pipelined backend connection, re-dialed lazily after a
   failure.  Holding [block] only around the look-or-dial keeps
   concurrent HTTP handlers from racing a reconnect; the returned
   client is itself thread-safe. *)
let backend_client t =
  Mutex.lock t.block;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.block)
    (fun () ->
      match t.pc with
      | Some pc when Pclient.alive pc -> pc
      | stale ->
          (match stale with Some pc -> Pclient.close pc | None -> ());
          let pc =
            Pclient.connect ~retries:1 ~deadline_s:t.backend_deadline_s
              ~socket:t.backend ()
          in
          t.pc <- Some pc;
          pc)

(* ---------------- JSON rendering ---------------- *)

let json_of_outcome (o : Job.outcome) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"algorithm\":\"%s\",\"n\":%d,\"min_k\":%d,\"rounds_run\":%d,"
       (Http.json_escape o.algorithm) o.n o.min_k o.rounds_run);
  Buffer.add_string buf "\"decisions\":[";
  Array.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      match d with
      | None -> Buffer.add_string buf "null"
      | Some (round, value) ->
          Buffer.add_string buf (Printf.sprintf "[%d,%d]" round value))
    o.decisions;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"distinct_decisions\":%d,\"messages_sent\":%d,\
        \"messages_delivered\":%d,\"bits_sent\":%d,"
       o.distinct_decisions o.messages_sent o.messages_delivered o.bits_sent);
  Buffer.add_string buf "\"violations\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (Http.json_escape v)))
    o.violations;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let json_error msg = Printf.sprintf "{\"error\":\"%s\"}" (Http.json_escape msg)

(* ---------------- route handlers ---------------- *)

(* Each handler returns (status, content_type, body). *)

let parse_submit_params req =
  let bad what = Error (Printf.sprintf "bad %s parameter" what) in
  let int_param name default =
    match Http.query_param req name with
    | None -> Ok default
    | Some s -> (
        match int_of_string_opt s with Some v -> Ok (Some v) | None -> bad name)
  in
  let bool_param name =
    match Http.query_param req name with
    | None | Some "0" | Some "false" -> Ok false
    | Some "1" | Some "true" -> Ok true
    | Some _ -> bad name
  in
  let algorithm =
    match Http.query_param req "algorithm" with
    | None | Some "kset" -> Ok Job.Kset
    | Some "floodmin" -> Ok Job.Floodmin
    | Some "flood-consensus" -> Ok Job.Flood_consensus
    | Some "naive-min" -> Ok Job.Naive_min
    | Some other ->
        Error
          (Printf.sprintf
             "unknown algorithm %S (expected kset | floodmin | \
              flood-consensus | naive-min)"
             other)
  in
  match (int_param "k" None, int_param "rounds" None, bool_param "monitor",
         algorithm)
  with
  | Ok k, Ok rounds, Ok monitor, Ok algorithm ->
      Ok (Option.value k ~default:1, rounds, monitor, algorithm)
  | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e
    ->
      Error e

(* Await the backend reply, recording the full gateway->router round
   trip (send to correlated reply) in the hop histogram.  The hop is
   observed on every outcome — a 502's latency is exactly the number a
   latency decomposition needs to see. *)
let awaited_hop t ticket =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      Metrics.observe t.hop_router (1000. *. (Unix.gettimeofday () -. t0)))
    (fun () -> Pclient.await ticket)

let handle_submit ?ctx t req =
  Metrics.incr t.submits;
  match parse_submit_params req with
  | Error msg -> (400, "application/json", json_error msg)
  | Ok (k, rounds, monitor, algorithm) -> (
      match Job.of_run_text ~algorithm ~k ?rounds ~monitor req.Http.body with
      | exception (Failure msg | Invalid_argument msg) ->
          (400, "application/json", json_error msg)
      | job -> (
          match awaited_hop t (Pclient.submit ?ctx (backend_client t) job) with
          | exception Failure msg -> (502, "application/json", json_error msg)
          | exception Unix.Unix_error (e, _, _) ->
              (502, "application/json", json_error (Unix.error_message e))
          | Ok { Job.result = Ok outcome; cached; latency_ms } ->
              ( 200,
                "application/json",
                Printf.sprintf
                  "{\"cached\":%b,\"latency_ms\":%.3f,\"outcome\":%s}" cached
                  latency_ms (json_of_outcome outcome) )
          | Ok { Job.result = Error msg; cached; latency_ms } ->
              ( 422,
                "application/json",
                Printf.sprintf
                  "{\"cached\":%b,\"latency_ms\":%.3f,\"error\":\"%s\"}"
                  cached latency_ms (Http.json_escape msg) )
          | Error msg ->
              (* A protocol-level Error reply: deterministic rejections
                 (the lint front door) are the request's fault; anything
                 else means the backend path failed. *)
              let status =
                if
                  String.length msg >= 16
                  && String.sub msg 0 16 = "job rejected by "
                then 422
                else 502
              in
              (status, "application/json", json_error msg)))

let handle_stats t =
  match Pclient.await (Pclient.stats (backend_client t)) with
  | Ok snapshot -> (200, "application/json", Telemetry.json_of_snapshot snapshot)
  | Error msg -> (502, "application/json", json_error msg)
  | exception (Failure msg | Invalid_argument msg) ->
      (502, "application/json", json_error msg)
  | exception Unix.Unix_error (e, _, _) ->
      (502, "application/json", json_error (Unix.error_message e))

let handle_metrics t =
  let own = Metrics.to_prometheus t.metrics in
  match Pclient.await (Pclient.metrics_text (backend_client t)) with
  | Ok text -> (200, "text/plain; version=0.0.4", own ^ text)
  | Error msg -> (200, "text/plain; version=0.0.4", own ^ "# backend unreachable: " ^ msg ^ "\n")
  | exception (Failure msg | Invalid_argument msg) ->
      (200, "text/plain; version=0.0.4", own ^ "# backend unreachable: " ^ msg ^ "\n")
  | exception Unix.Unix_error (e, _, _) ->
      ( 200,
        "text/plain; version=0.0.4",
        own ^ "# backend unreachable: " ^ Unix.error_message e ^ "\n" )

(* The gateway's own tracer report, for the fleet stitcher: the CLI
   fetches [GET /trace] and merges it with the reports pulled over the
   native protocol. *)
let handle_trace () =
  let report = Tracer.report_here ~role:"gateway" () in
  ( 200,
    "application/json",
    Ssg_obs.Export.json_to_string (Ssg_obs.Stitch.report_to_json report) )

let dispatch ?ctx t ~stop ~wake req =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/submit" -> handle_submit ?ctx t req
  | "GET", "/stats" -> handle_stats t
  | "GET", "/metrics" -> handle_metrics t
  | "GET", "/trace" -> handle_trace ()
  | "GET", "/healthz" -> (200, "application/json", "{\"status\":\"ok\"}")
  | "POST", "/shutdown" ->
      Log.info (fun m -> m "gateway shutdown requested");
      Atomic.set stop true;
      wake ();
      (200, "application/json", "{\"status\":\"shutting down\"}")
  | ( meth,
      (( "/submit" | "/stats" | "/metrics" | "/trace" | "/healthz"
       | "/shutdown" ) as path) ) ->
      ( 405,
        "application/json",
        json_error (Printf.sprintf "method %s not allowed for %s" meth path) )
  | ("GET" | "POST"), _ ->
      (404, "application/json", json_error ("no route for " ^ req.Http.path))
  | meth, _ ->
      (405, "application/json", json_error ("method not allowed: " ^ meth))

let handle_connection t ~stop ~wake ~active fd =
  let conn = Http.conn_of_fd fd in
  let rec loop () =
    match Http.read_request conn with
    | None -> ()  (* clean close between requests *)
    | exception End_of_file -> ()  (* peer died mid-request *)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Log.info (fun m -> m "reaping stalled connection")
    | exception Unix.Unix_error _ -> ()
    | exception Http.Bad_request msg ->
        (* The request could not be framed, so neither can the rest of
           the stream: answer and drop the connection. *)
        (try
           Http.write_response ~status:400 ~keep_alive:false fd
             (json_error msg)
         with _ -> ())
    | Some req ->
        Metrics.incr t.requests;
        let span_ctx = ref None in
        let status, content_type, body =
          let run ctx () =
            try dispatch ?ctx t ~stop ~wake req
            with e ->
              (500, "application/json", json_error (Printexc.to_string e))
          in
          if Tracer.enabled () then begin
            (* The caller's [traceparent] header makes this request's
               span a child of the caller's; without one the gateway
               originates a fresh trace. *)
            let parent =
              match
                Option.bind (Http.header req "traceparent") Context.of_string
              with
              | Some remote -> remote
              | None -> Context.root ()
            in
            Tracer.with_span_ctx "gateway.request" ~ctx:parent
              ~args:
                [
                  ("method", Tracer.Str req.Http.meth);
                  ("path", Tracer.Str req.Http.path);
                ]
              (fun child ->
                span_ctx := Some child;
                run (Some child) ())
          end
          else run None ()
        in
        if status >= 400 && status < 500 then Metrics.incr t.client_errors;
        if status = 502 then Metrics.incr t.backend_errors;
        let keep = Http.keep_alive req && not (Atomic.get stop) in
        let extra_headers =
          (* Echo the request span's context so HTTP callers can
             correlate their side with the fleet trace. *)
          match !span_ctx with
          | Some c -> [ ("traceparent", Context.to_string c) ]
          | None -> []
        in
        (match
           Http.write_response ~status ~content_type ~extra_headers
             ~keep_alive:keep fd body
         with
        | () -> if keep then loop ()
        | exception (Sys_error _ | Unix.Unix_error _) ->
            (* EPIPE / ECONNRESET: the client vanished between request
               and reply; reclaim the connection quietly. *)
            ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop ()
      with e ->
        Log.err (fun m ->
            m "gateway connection thread escaped: %s" (Printexc.to_string e)))

let serve ?(backend_deadline_s = 30.) ?(max_connections = 1024)
    ?(read_timeout_s = 30.) ?(drain_timeout_s = 5.) ?(trace = false) ~listen
    ~backend () =
  if max_connections < 1 then
    invalid_arg "Gateway.serve: max_connections must be >= 1";
  if backend_deadline_s <= 0. then
    invalid_arg "Gateway.serve: backend_deadline_s must be > 0";
  let addr = Transport.of_string_exn listen in
  ignore (Transport.of_string_exn backend);
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  if trace then begin
    Tracer.reset ();
    Tracer.set_enabled true
  end;
  let metrics = Metrics.create () in
  let counter name help = Metrics.counter metrics ~help name in
  let t =
    {
      backend;
      backend_deadline_s;
      block = Mutex.create ();
      pc = None;
      metrics;
      requests = counter "ssg_gateway_requests_total" "HTTP requests received";
      submits = counter "ssg_gateway_submits_total" "POST /submit requests";
      client_errors =
        counter "ssg_gateway_client_errors_total" "Responses with a 4xx status";
      backend_errors =
        counter "ssg_gateway_backend_errors_total"
          "Responses with a 502 status (backend unreachable or failed)";
      hop_router = Telemetry.hop_gateway_router metrics;
    }
  in
  let listen_fd = Transport.listen addr in
  let addr = Transport.bound_addr listen_fd addr in
  let stop = Atomic.make false in
  let active = Atomic.make 0 in
  let wake () = Transport.poke addr in
  Log.app (fun m ->
      m "ssg gateway listening on %s, backend %s" (Transport.to_string addr)
        backend);
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.accept listen_fd with
      | client_fd, _ ->
          if Atomic.get stop then (try Unix.close client_fd with _ -> ())
          else if Atomic.get active >= max_connections then begin
            (try
               Http.write_response ~status:503 ~keep_alive:false client_fd
                 (json_error "gateway at connection limit")
             with _ -> ());
            try Unix.close client_fd with _ -> ()
          end
          else begin
            Atomic.incr active;
            (try Unix.setsockopt client_fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            if read_timeout_s > 0. then
              (try
                 Unix.setsockopt_float client_fd Unix.SO_RCVTIMEO
                   read_timeout_s
               with Unix.Unix_error _ -> ());
            ignore
              (Thread.create
                 (handle_connection t ~stop ~wake ~active)
                 client_fd)
          end
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. drain_timeout_s in
  while Atomic.get active > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if Atomic.get active > 0 then
    Log.warn (fun m ->
        m "drain timeout: abandoning %d connection(s)" (Atomic.get active));
  (match t.pc with Some pc -> Pclient.close pc | None -> ());
  Transport.cleanup addr;
  Log.app (fun m -> m "ssg gateway stopped")
