(** Synthetic load against a native-protocol endpoint: [ssg loadgen].

    Drives [connections] concurrent connections (10k+ works — each
    driver {e thread} owns a slice of the connections, so descriptor
    count, not thread count, is the scaling limit) against a worker or
    router address, measures per-request latency, and grades the run
    against SLO specs like [p99<250ms].

    Two arrival models:
    - {e closed-loop} (default): each connection keeps exactly
      [pipeline] requests in flight — send a batch, read the replies,
      repeat.  Throughput is whatever the service sustains.
    - {e open-loop} ([rate] > 0): requests are {e scheduled} at a fixed
      aggregate rate, split evenly across connections, and latency is
      measured from the {e scheduled} send time — queueing delay from a
      service that cannot keep up counts against it (no coordinated
      omission).

    The job mix is [cached:uncached:lint-error] weights.  Cached jobs
    repeat one key (the server's LRU hit path), uncached jobs get a
    fresh key each (full simulation), lint-error jobs are {e expected}
    to be rejected by the server's lint front door — a rejection reply
    to one counts as [rejected], not as an error; {e any} other
    deviation (connect failure, deadline, unexpected reply, transport
    death) is a client-visible [error]. *)

type mix = { cached : int; uncached : int; lint_error : int }

(** One SLO gate: [quantile] in (0,1), [limit_ms] the bound. *)
type slo = { quantile : float; limit_ms : float; spec : string }

(** [slo_of_string "p99<250ms"] — also [p50], [p95], any [pNN] /
    [pNN.N]; the unit suffix [ms] is required. *)
val slo_of_string : string -> (slo, string) result

type report = {
  connections : int;
  sent : int;
  completed : int;  (** replies with the expected shape, lint included *)
  rejected : int;  (** expected lint rejections *)
  errors : int;  (** client-visible failures of any kind *)
  duration_s : float;
  throughput_rps : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  slo_violations : string list;  (** empty iff every SLO held *)
  slow_traces : (float * string) list;
      (** the [trace_top] slowest requests as [(latency_ms, trace id
          hex)], slowest first; empty unless trace sampling was on *)
}

(** [percentile sorted q] — linear-interpolated [q]-quantile of a
    sorted array (exposed for tests; [nan] on empty input). *)
val percentile : float array -> float -> float

(** [run ~connections ~duration_s ~target ()] — drive load, block until
    done, report.

    - [threads] (default [min connections 8]): driver threads; each
      owns [connections / threads] connections.
    - [pipeline] (default 1): in-flight requests per connection
      (closed-loop only).
    - [rate] (default 0. = closed-loop): open-loop aggregate
      requests/second across all connections.
    - [mix] (default [{cached = 8; uncached = 1; lint_error = 1}]).
    - [deadline_s] (default 30): per-connection reply deadline; a miss
      is an error and the connection is re-dialed.
    - [slos] (default none): gates evaluated into [slo_violations].
    - [trace_top] (default 0 = off): originate a root trace context on
      {e every} request (carried in the frame context envelope, so a
      tracing fleet records each request's spans under it) and report
      the trace ids of the [trace_top] slowest — the ids to grep for
      in a stitched fleet trace when chasing a latency tail.
    @raise Invalid_argument on nonsensical parameters. *)
val run :
  ?threads:int ->
  ?pipeline:int ->
  ?rate:float ->
  ?mix:mix ->
  ?deadline_s:float ->
  ?slos:slo list ->
  ?trace_top:int ->
  connections:int ->
  duration_s:float ->
  target:string ->
  unit ->
  report

(** [to_json r] — the report as a compact JSON object (what the bench
    baseline and CI artifacts store). *)
val to_json : report -> string

(** [pp] — a human-readable multi-line rendering. *)
val pp : Format.formatter -> report -> unit
