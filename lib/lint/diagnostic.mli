(** Structured lint diagnostics.

    A diagnostic carries a stable code (["SSG001"], ...), a severity, an
    optional source span (line anchors from {!Ssg_adversary.Run_format}'s
    span-tracking parse), a message, and an optional hint.  Codes are a
    public contract: tools grep for them, tests lock them, and they never
    change meaning across releases (retired codes are not reused).

    {b Code registry}

    - [SSG000] error — the run description does not parse
    - [SSG001] error — [Psrcs(k)] is unsatisfiable ([min_k > k])
    - [SSG002] info — [Psrcs(k)] satisfiability profile ([min_k] / tight)
    - [SSG003] info — stabilization round [r_ST] and decision horizon
    - [SSG101] warning — prefix round subsumed by the stable graph
    - [SSG102] warning — near-miss skeleton edge (in every prefix round,
      absent from [stable:])
    - [SSG103] warning — empty round (self-loops only)
    - [SSG104] warning — process isolated in the stable skeleton
    - [SSG105] warning — redundant edge token (duplicate / explicit
      self-loop)
    - [SSG201] error/info — achievable-k certificate: the [min_k]
      trajectory along the skeleton chain; an error (with the round
      where achievability is lost) when [k] is below it
    - [SSG202] info/warning — stabilization window ([r_ST], Lemma 11
      horizon, the paper's [3n+4] bound); a warning when the declared
      prefix overshoots stabilization
    - [SSG203] warning — dead round: removes no skeleton edge at its
      chain position, so deleting it provably changes nothing *)

type severity = Error | Warning | Info

(** Inclusive 1-based line range in the run-description source. *)
type span = { line : int; end_line : int }

type t = {
  code : string;
  severity : severity;
  span : span option;
  message : string;
  hint : string option;
}

(** [line l] is the single-line span [{line = l; end_line = l}]. *)
val line : int -> span

(** [range l e] is [{line = l; end_line = max l e}]. *)
val range : int -> int -> span

val error : ?span:span -> ?hint:string -> code:string -> string -> t
val warning : ?span:span -> ?hint:string -> code:string -> string -> t
val info : ?span:span -> ?hint:string -> code:string -> string -> t

(** ["error"] / ["warning"] / ["info"]. *)
val severity_label : severity -> string

val is_error : t -> bool

(** Source order: by span line (span-less diagnostics sort last), then by
    severity (errors first), then by code. *)
val compare : t -> t -> int

(** The code registry as data — [(code, default severity, title)] in
    code order.  Single source for the SARIF rule table and docs; the
    default severity is the rule's usual level (SSG201/202 also emit at
    other levels depending on context). *)
val registry : (string * severity * string) list

(** One-line rendering: [error SSG001: message (line 4)]. *)
val pp : Format.formatter -> t -> unit
