(** SARIF 2.1.0 exporter.

    Renders lint results as one SARIF run — the interchange format that
    code-scanning UIs (GitHub, VS Code SARIF viewers) ingest directly.
    Built on {!Ssg_obs.Export.json} and emitted with its renderer, so
    tests can validate the document with the same library's
    well-formedness checker and navigate it with [json_of_string].

    Mapping: every code in {!Diagnostic.registry} becomes a
    [tool.driver.rules] entry; severities map [Error]→["error"],
    [Warning]→["warning"], [Info]→["note"]; hints are appended to the
    message text; suppressed diagnostics are exported with
    [suppressions: [{kind: "inSource"}]] (SARIF consumers hide them but
    keep the record); a file's {!Fix.plan} is attached to each of its
    fixable results as a complete [fixes] entry (whole-line deleted
    regions, replacements with [insertedContent]). *)

(** [export ?fixes results] — [results] is one
    [(file, active, suppressed)] triple per linted file; [fixes] maps
    files to their autofix plans. *)
val export :
  ?fixes:(string * Fix.plan) list ->
  (string * Diagnostic.t list * Diagnostic.t list) list ->
  string
