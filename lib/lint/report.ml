let human ?file ?src diags =
  let buf = Buffer.create 256 in
  let src_lines = Option.map (fun s -> String.split_on_char '\n' s) src in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (d : Diagnostic.t) ->
      (match (file, d.span) with
      | Some f, Some s -> add "%s:%d: " f s.line
      | Some f, None -> add "%s: " f
      | None, Some s -> add "line %d: " s.line
      | None, None -> ());
      add "%s %s: %s\n" (Diagnostic.severity_label d.severity) d.code d.message;
      (match (src_lines, d.span) with
      | Some lines, Some s when s.line >= 1 && s.line <= List.length lines ->
          add "  %4d | %s\n" s.line (List.nth lines (s.line - 1))
      | _ -> ());
      match d.hint with Some h -> add "  hint: %s\n" h | None -> ())
    (List.sort Diagnostic.compare diags);
  Buffer.contents buf

(* Hand-rolled JSON: the diagnostics are flat records, not worth a
   dependency. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_diagnostic (d : Diagnostic.t) =
  let fields = Buffer.create 64 in
  let add fmt = Printf.ksprintf (Buffer.add_string fields) fmt in
  add "{ \"code\": \"%s\", \"severity\": \"%s\"" (escape d.code)
    (Diagnostic.severity_label d.severity);
  (match d.span with
  | Some s -> add ", \"line\": %d, \"end_line\": %d" s.line s.end_line
  | None -> ());
  add ", \"message\": \"%s\"" (escape d.message);
  (match d.hint with
  | Some h -> add ", \"hint\": \"%s\"" (escape h)
  | None -> ());
  add " }";
  Buffer.contents fields

let json results =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (file, diags) ->
      if i > 0 then Buffer.add_string buf ",\n";
      let diags = List.sort Diagnostic.compare diags in
      let count sev =
        List.length
          (List.filter (fun (d : Diagnostic.t) -> d.severity = sev) diags)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  { \"file\": \"%s\",\n    \"errors\": %d, \"warnings\": %d, \
            \"infos\": %d,\n    \"diagnostics\": ["
           (escape file) (count Diagnostic.Error) (count Diagnostic.Warning)
           (count Diagnostic.Info));
      List.iteri
        (fun j d ->
          if j > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf "\n      ";
          Buffer.add_string buf (json_diagnostic d))
        diags;
      if diags <> [] then Buffer.add_string buf "\n    ";
      Buffer.add_string buf "] }")
    results;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
