(* How many span lines a human excerpt shows before eliding the rest. *)
let excerpt_max = 4

let human ?file ?src diags =
  let buf = Buffer.create 256 in
  (* Split once per render, not once per diagnostic: O(lines + diags)
     instead of the old List.nth's O(lines × diags). *)
  let src_lines =
    Option.map (fun s -> Array.of_list (String.split_on_char '\n' s)) src
  in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let excerpt lines (s : Diagnostic.span) =
    let last = min s.end_line (Array.length lines) in
    let shown = min last (s.line + excerpt_max - 1) in
    for l = s.line to shown do
      add "  %4d | %s\n" l lines.(l - 1)
    done;
    if last > shown then add "   ... | (%d more line(s))\n" (last - shown)
  in
  List.iter
    (fun (d : Diagnostic.t) ->
      (match (file, d.span) with
      | Some f, Some s -> add "%s:%d: " f s.line
      | Some f, None -> add "%s: " f
      | None, Some s -> add "line %d: " s.line
      | None, None -> ());
      add "%s %s: %s\n" (Diagnostic.severity_label d.severity) d.code d.message;
      (match (src_lines, d.span) with
      | Some lines, Some s when s.line >= 1 && s.line <= Array.length lines ->
          excerpt lines s
      | _ -> ());
      match d.hint with Some h -> add "  hint: %s\n" h | None -> ())
    (List.sort Diagnostic.compare diags);
  Buffer.contents buf

(* Hand-rolled JSON: the diagnostics are flat records, not worth a
   dependency. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_diagnostic ~suppressed (d : Diagnostic.t) =
  let fields = Buffer.create 64 in
  let add fmt = Printf.ksprintf (Buffer.add_string fields) fmt in
  add "{ \"code\": \"%s\", \"severity\": \"%s\"" (escape d.code)
    (Diagnostic.severity_label d.severity);
  (match d.span with
  | Some s -> add ", \"line\": %d, \"end_line\": %d" s.line s.end_line
  | None -> ());
  add ", \"message\": \"%s\"" (escape d.message);
  (match d.hint with
  | Some h -> add ", \"hint\": \"%s\"" (escape h)
  | None -> ());
  if suppressed then add ", \"suppressed\": true";
  add " }";
  Buffer.contents fields

let json results =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (file, active, suppressed) ->
      if i > 0 then Buffer.add_string buf ",\n";
      let active = List.sort Diagnostic.compare active in
      let suppressed = List.sort Diagnostic.compare suppressed in
      let count sev =
        List.length
          (List.filter (fun (d : Diagnostic.t) -> d.severity = sev) active)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  { \"file\": \"%s\",\n    \"errors\": %d, \"warnings\": %d, \
            \"infos\": %d, \"suppressed\": %d,\n    \"diagnostics\": ["
           (escape file) (count Diagnostic.Error) (count Diagnostic.Warning)
           (count Diagnostic.Info)
           (List.length suppressed));
      let entries =
        List.map (json_diagnostic ~suppressed:false) active
        @ List.map (json_diagnostic ~suppressed:true) suppressed
      in
      List.iteri
        (fun j entry ->
          if j > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf "\n      ";
          Buffer.add_string buf entry)
        entries;
      if entries <> [] then Buffer.add_string buf "\n    ";
      Buffer.add_string buf "] }")
    results;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
