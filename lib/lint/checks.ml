open Ssg_util
open Ssg_graph
open Ssg_adversary
module Analysis = Ssg_skeleton.Analysis
module Skeleton = Ssg_skeleton.Skeleton

let spf = Printf.sprintf

(* Line anchors are optional: [Lint.check] on an in-memory adversary has
   no source text, so every span here is threaded through [Option.map]. *)
let stable_span (ctx : Pass.ctx) =
  Option.map (fun s -> Diagnostic.line s.Run_format.stable_line) ctx.spans

let round_span (ctx : Pass.ctx) r =
  Option.map
    (fun s -> Diagnostic.line s.Run_format.round_lines.(r - 1))
    ctx.spans

let roots_string analysis =
  Analysis.roots analysis |> List.map Bitset.to_string |> String.concat ", "

(* SSG001: Psrcs(k) unsatisfiable — the run can never let Algorithm 1
   solve k-set agreement because the stable skeleton has too many
   pairwise source-disjoint processes (α(H) = min_k > k). *)
let psrcs_unsat (ctx : Pass.ctx) =
  match ctx.k with
  | Some k when ctx.min_k > k ->
      let witness =
        match Ssg_predicates.Predicate.psrcs_violation ctx.pts ~k with
        | Some s -> Bitset.to_string s
        | None -> "(no witness)"
      in
      [
        Diagnostic.error ?span:(stable_span ctx) ~code:"SSG001"
          ~hint:
            (spf
               "processes %s are pairwise source-disjoint; raise k to %d or \
                connect the source components"
               witness ctx.min_k)
          (spf
             "Psrcs(%d) is unsatisfiable: the stable skeleton needs k >= %d \
              (source components: %s)"
             k ctx.min_k
             (roots_string ctx.analysis));
      ]
  | _ -> []

(* SSG002: satisfiability profile — how much slack the run has. *)
let psrcs_profile (ctx : Pass.ctx) =
  let span = stable_span ctx in
  match ctx.k with
  | None ->
      [
        Diagnostic.info ?span ~code:"SSG002"
          (spf "Psrcs(k) holds iff k >= %d (min_k = α(H) = %d)" ctx.min_k
             ctx.min_k);
      ]
  | Some k when k = ctx.min_k ->
      [
        Diagnostic.info ?span ~code:"SSG002"
          (spf
             "Psrcs(%d) is tight: min_k = %d, so k - 1 = %d would be \
              unsatisfiable"
             k ctx.min_k (k - 1));
      ]
  | Some k when k > ctx.min_k ->
      [
        Diagnostic.info ?span ~code:"SSG002"
          (spf "Psrcs(%d) holds with slack: min_k = %d" k ctx.min_k);
      ]
  | Some _ -> []

(* SSG003: stabilization estimate — when the skeleton stops shrinking and
   by when Algorithm 1 decides (Lemma 11's horizon). *)
let stabilization (ctx : Pass.ctx) =
  let adv = ctx.adv in
  let rounds = Adversary.prefix_length adv + 2 in
  let trace = Adversary.trace adv ~rounds in
  let rst = Skeleton.stabilization_round trace in
  let qualifier = if Adversary.is_recurrent adv then " (estimate: recurrent noise)" else "" in
  [
    Diagnostic.info ~code:"SSG003"
      (spf
         "skeleton stabilizes at round %d (r_ST)%s; Algorithm 1 decides by \
          round %d"
         rst qualifier
         (Adversary.decision_horizon adv));
  ]

(* Text-level structure checks below only make sense for serializable
   (non-recurrent) runs; recurrent rounds are a function, not lines. *)
let stable_graph (ctx : Pass.ctx) =
  Adversary.graph ctx.adv (Adversary.prefix_length ctx.adv + 1)

(* SSG101: a prefix round that is a supergraph of the stable graph cannot
   remove any edge from the skeleton — declaring it is a no-op. *)
let subsumed_rounds (ctx : Pass.ctx) =
  if Adversary.is_recurrent ctx.adv then []
  else
    let stable = stable_graph ctx in
    let out = ref [] in
    for r = Adversary.prefix_length ctx.adv downto 1 do
      if Digraph.subgraph_of stable (Adversary.graph ctx.adv r) then
        out :=
          Diagnostic.warning
            ?span:(round_span ctx r)
            ~code:"SSG101"
            ~hint:"drop the round or remove an edge so it constrains G^∩∞"
            (spf
               "round %d is a supergraph of the stable graph: it cannot \
                shrink the stable skeleton"
               r)
          :: !out
    done;
    !out

(* SSG102: an edge timely in every prefix round but missing from
   [stable:] — one declaration short of joining the skeleton, often a
   sign the stable graph was under-transcribed. *)
let near_miss_edges (ctx : Pass.ctx) =
  let prefix = Adversary.prefix_length ctx.adv in
  if Adversary.is_recurrent ctx.adv || prefix = 0 then []
  else begin
    let common = Digraph.copy (Adversary.graph ctx.adv 1) in
    for r = 2 to prefix do
      Digraph.inter_into ~into:common (Adversary.graph ctx.adv r)
    done;
    let stable = stable_graph ctx in
    let out = ref [] in
    Digraph.iter_edges common (fun p q ->
        if p <> q && not (Digraph.mem_edge stable p q) then
          out :=
            Diagnostic.warning
              ?span:(stable_span ctx)
              ~code:"SSG102"
              ~hint:"add it to stable: if the link is meant to be timely forever"
              (spf
                 "edge %d>%d is timely in every prefix round but absent from \
                  the stable graph — a near-miss skeleton edge"
                 p q)
            :: !out);
    List.rev !out
  end

(* SSG103: a round with no edges beyond self-loops collapses the skeleton
   to isolated processes from that round on. *)
let empty_rounds (ctx : Pass.ctx) =
  if Adversary.is_recurrent ctx.adv then []
  else begin
    let n = Adversary.n ctx.adv in
    let out = ref [] in
    for r = Adversary.prefix_length ctx.adv downto 1 do
      if Digraph.edge_count (Adversary.graph ctx.adv r) = n then
        out :=
          Diagnostic.warning
            ?span:(round_span ctx r)
            ~code:"SSG103"
            (spf
               "round %d has no edges beyond self-loops: it collapses the \
                skeleton to isolated processes"
               r)
          :: !out
    done;
    !out
  end

(* SSG104: a process nobody hears and who hears nobody (in the skeleton)
   is its own source component — each one forces min_k up by one. *)
let isolated_processes (ctx : Pass.ctx) =
  let n = Adversary.n ctx.adv in
  let skel = ctx.skeleton in
  let isolated = ref [] in
  for p = n - 1 downto 0 do
    if Digraph.in_degree skel p = 1 && Digraph.out_degree skel p = 1 then
      isolated := p :: !isolated
  done;
  let span = stable_span ctx in
  match !isolated with
  | [] -> []
  | ps when List.length ps = n ->
      [
        Diagnostic.warning ?span ~code:"SSG104"
          (spf
             "all %d processes are isolated in the stable skeleton: no \
              inter-process edge survives every round"
             n);
      ]
  | ps ->
      List.map
        (fun p ->
          Diagnostic.warning ?span ~code:"SSG104"
            (spf
               "process %d is isolated in the stable skeleton: it is its own \
                source component"
               p))
        ps

(* SSG105: textually redundant edge tokens, straight from the
   span-tracking parse. *)
let redundant_tokens (ctx : Pass.ctx) =
  match ctx.spans with
  | None -> []
  | Some spans ->
      List.map
        (fun (lineno, token) ->
          let is_self_loop =
            match String.split_on_char '>' token with
            | [ a; b ] -> a = b
            | _ -> false
          in
          let message =
            if is_self_loop then
              spf "self-loop token %S is redundant: self-loops are implied in every graph" token
            else spf "duplicate edge token %S on this line" token
          in
          Diagnostic.warning ~span:(Diagnostic.line lineno) ~code:"SSG105"
            message)
        spans.Run_format.redundant_edges

(* ---- SSG2xx: the fixpoint passes.  All three read [ctx.chain], so the
   incremental traversal of [Semantic.analyze] runs at most once per
   lint no matter how many of them fire. *)

(* A chain round's anchor: its own line while it is in the prefix, the
   stable line for the limit step. *)
let chain_round_span (ctx : Pass.ctx) chain r =
  if r <= chain.Semantic.prefix then round_span ctx r else stable_span ctx

(* SSG201: the achievable-k certificate.  The chain gives min_k at every
   prefix position, so a k below the final value is rejected with the
   exact round where achievability is lost and the whole trajectory as a
   proof trail — not just "unsatisfiable" (that is SSG001's one-liner). *)
let achievable_k (ctx : Pass.ctx) =
  let chain = Lazy.force ctx.chain in
  let trail = Semantic.trajectory chain in
  match ctx.k with
  | Some k when k < chain.Semantic.final_min_k ->
      let lost =
        match Semantic.lost_at chain ~k with
        | Some r -> r
        | None -> chain.Semantic.prefix + 1 (* unreachable: final_min_k > k *)
      in
      let where =
        if lost > chain.Semantic.prefix then "the stable graph"
        else spf "round %d" lost
      in
      [
        Diagnostic.error
          ?span:(chain_round_span ctx chain lost)
          ~code:"SSG201"
          ~hint:(spf "raise k to %d or reconnect the components merged before %s"
                   chain.Semantic.final_min_k where)
          (spf
             "k = %d becomes unachievable at %s: min_k trajectory %s (final \
              min_k = %d)"
             k where trail chain.Semantic.final_min_k);
      ]
  | _ ->
      [
        Diagnostic.info ?span:(stable_span ctx) ~code:"SSG201"
          (spf "achievable-k certificate: min_k trajectory %s (final min_k = %d)"
             trail chain.Semantic.final_min_k);
      ]

(* SSG202: the stabilization window.  Always states the run's r_ST and
   both decision bounds (Lemma 11's r_ST + 2n and the paper's
   conservative r_ST + 3n + 4); warns — with a multi-line span over the
   offending rounds — when the declared prefix outlives stabilization. *)
let stabilization_window (ctx : Pass.ctx) =
  let chain = Lazy.force ctx.chain in
  let rst = chain.Semantic.r_st and prefix = chain.Semantic.prefix in
  let info =
    Diagnostic.info ?span:(stable_span ctx) ~code:"SSG202"
      (spf
         "stabilization window: r_ST = %d, Algorithm 1 decides by round %d \
          (Lemma 11), within the paper's bound of round %d (3n + 4 after \
          stabilization)"
         rst
         (rst + (2 * chain.Semantic.n))
         (Semantic.decision_bound chain))
  in
  if Adversary.is_recurrent ctx.adv || rst >= prefix then [ info ]
  else
    let span =
      Option.map
        (fun s ->
          Diagnostic.range
            s.Run_format.round_lines.(rst)
            s.Run_format.round_lines.(prefix - 1))
        ctx.spans
    in
    [
      info;
      Diagnostic.warning ?span ~code:"SSG202"
        ~hint:"drop the trailing rounds or end the prefix at r_ST"
        (spf
           "rounds %d-%d leave the skeleton unchanged: the declared prefix \
            overshoots stabilization (r_ST = %d)"
           (rst + 1) prefix rst);
    ]

(* SSG203: dead rounds.  A prefix round whose absorb removed no skeleton
   edge is subsumed by the intersection of the rounds before it —
   deleting it provably changes no G^∩r, hence neither G^∩∞, min_k, nor
   any decision of Algorithm 1.  Generalizes SSG101 (one-step
   subsumption by the stable graph) through the whole chain: neither
   implies the other. *)
let dead_rounds (ctx : Pass.ctx) =
  let chain = Lazy.force ctx.chain in
  List.map
    (fun r ->
      Diagnostic.warning
        ?span:(round_span ctx r)
        ~code:"SSG203"
        ~hint:"delete the round (ssg lint --fix does this mechanically)"
        (spf
           "round %d is dead: it removes no edge from the skeleton chain at \
            its position"
           r))
    chain.Semantic.dead

let all =
  [
    Pass.v ~code:"SSG001" ~title:"Psrcs(k) satisfiability" psrcs_unsat;
    Pass.v ~code:"SSG002" ~title:"Psrcs(k) profile" psrcs_profile;
    Pass.v ~code:"SSG003" ~title:"stabilization estimate" stabilization;
    Pass.v ~code:"SSG101" ~title:"subsumed prefix rounds" subsumed_rounds;
    Pass.v ~code:"SSG102" ~title:"near-miss skeleton edges" near_miss_edges;
    Pass.v ~code:"SSG103" ~title:"empty rounds" empty_rounds;
    Pass.v ~code:"SSG104" ~title:"isolated processes" isolated_processes;
    Pass.v ~code:"SSG105" ~title:"redundant edge tokens" redundant_tokens;
    Pass.v ~code:"SSG201" ~title:"achievable-k certificate" achievable_k;
    Pass.v ~code:"SSG202" ~title:"stabilization window" stabilization_window;
    Pass.v ~code:"SSG203" ~title:"dead rounds" dead_rounds;
  ]
