open Ssg_graph
open Ssg_adversary

type edit = Delete of int | Replace of int * string

type plan = {
  edits : edit list;
  dropped_rounds : int list;
  cleaned_lines : int list;
}

let fixed_codes = [ "SSG101"; "SSG103"; "SSG105"; "SSG203" ]
let is_empty p = p.edits = []

(* Rebuild a graph line as [label tok1 tok2 ...], dropping explicit
   self-loops and duplicate edge tokens, preserving any comment suffix.
   Deterministic, so rebuilding a rebuilt line is the identity — the
   root of the fix-twice-is-a-no-op property. *)
let rebuild ~label line =
  let content, comment =
    match String.index_opt line '#' with
    | Some h ->
        (String.sub line 0 h, String.sub line h (String.length line - h))
    | None -> (line, "")
  in
  let tokens =
    match String.index_opt content ':' with
    | None -> []
    | Some c ->
        String.sub content (c + 1) (String.length content - c - 1)
        |> String.split_on_char ' '
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "")
  in
  let seen = Hashtbl.create 8 in
  let keep tok =
    match Scanf.sscanf_opt tok " %d>%d %!" (fun a b -> (a, b)) with
    | Some (a, b) when a = b -> false
    | Some e when Hashtbl.mem seen e -> false
    | Some e ->
        Hashtbl.add seen e ();
        true
    | None -> true
  in
  let kept = List.filter keep tokens in
  let body = match kept with [] -> "" | _ -> " " ^ String.concat " " kept in
  let comment = if comment = "" then "" else "  " ^ comment in
  label ^ body ^ comment

let plan text =
  match Run_format.parse text with
  | exception Failure _ -> None
  | adv, spans ->
      let n = Adversary.n adv in
      let prefix = Adversary.prefix_length adv in
      let stable = Adversary.graph adv (prefix + 1) in
      let original_skel = Adversary.stable_skeleton adv in
      let chain = Semantic.analyze adv in
      let deleted = Array.make (prefix + 1) false in
      (* SSG101 (subsumed by stable) and SSG203 (dead in the chain):
         jointly safe to delete, see the .mli. *)
      for r = 1 to prefix do
        if Digraph.subgraph_of stable (Adversary.graph adv r) then
          deleted.(r) <- true
      done;
      List.iter (fun r -> deleted.(r) <- true) chain.Semantic.dead;
      (* SSG103: an empty round is deleted only when the skeleton of the
         surviving rounds is provably unchanged.  Greedy, in round
         order, each check against the current survivor set. *)
      let skel_without excluded =
        let g = Digraph.complete ~self_loops:true n in
        for r = 1 to prefix do
          if (not deleted.(r)) && r <> excluded then
            Digraph.inter_into ~into:g (Adversary.graph adv r)
        done;
        Digraph.inter_into ~into:g stable;
        g
      in
      for r = 1 to prefix do
        if
          (not deleted.(r))
          && Digraph.edge_count (Adversary.graph adv r) = n
          && Digraph.equal (skel_without r) original_skel
        then deleted.(r) <- true
      done;
      let lines = Array.of_list (String.split_on_char '\n' text) in
      let redundant_lines =
        List.sort_uniq compare
          (List.map fst spans.Run_format.redundant_edges)
      in
      let edits = ref [] and dropped = ref [] and cleaned = ref [] in
      let emit lineno ~label =
        let rebuilt = rebuild ~label lines.(lineno - 1) in
        if rebuilt <> lines.(lineno - 1) then begin
          edits := Replace (lineno, rebuilt) :: !edits;
          if List.mem lineno redundant_lines then cleaned := lineno :: !cleaned
        end
      in
      let survivors = ref 0 in
      for r = 1 to prefix do
        let lineno = spans.Run_format.round_lines.(r - 1) in
        if deleted.(r) then begin
          edits := Delete lineno :: !edits;
          dropped := r :: !dropped
        end
        else begin
          incr survivors;
          emit lineno ~label:(Printf.sprintf "round %d:" !survivors)
        end
      done;
      if List.mem spans.Run_format.stable_line redundant_lines then
        emit spans.Run_format.stable_line ~label:"stable:";
      let by_line a b =
        let l = function Delete l | Replace (l, _) -> l in
        Int.compare (l a) (l b)
      in
      Some
        {
          edits = List.sort by_line !edits;
          dropped_rounds = List.rev !dropped;
          cleaned_lines = List.sort_uniq compare !cleaned;
        }

let apply p text =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Delete l -> Hashtbl.replace tbl l None
      | Replace (l, s) -> Hashtbl.replace tbl l (Some s))
    p.edits;
  String.split_on_char '\n' text
  |> List.mapi (fun i line ->
         match Hashtbl.find_opt tbl (i + 1) with
         | None -> Some line
         | Some replacement -> replacement)
  |> List.filter_map Fun.id
  |> String.concat "\n"

let fix text =
  match plan text with
  | None -> None
  | Some p when is_empty p -> Some (text, p)
  | Some p ->
      let fixed = apply p text in
      (match (Run_format.of_string text, Run_format.of_string fixed) with
      | a, b ->
          if
            (not
               (Digraph.equal
                  (Adversary.stable_skeleton a)
                  (Adversary.stable_skeleton b)))
            || Adversary.min_k a <> Adversary.min_k b
          then
            invalid_arg "Fix.fix: skeleton or min_k changed by the fix (bug)"
      | exception Failure msg ->
          invalid_arg ("Fix.fix: fixed text does not parse (bug): " ^ msg));
      Some (fixed, p)
