type scope = File | Line of int
type directive = { scope : scope; codes : string list; at : int }

let prefix = "ssg-lint:"

(* "disable=SSG104, SSG105" -> ["SSG104"; "SSG105"]; anything else -> []. *)
let parse_body body =
  let body = String.trim body in
  match String.index_opt body '=' with
  | Some eq when String.trim (String.sub body 0 eq) = "disable" ->
      String.sub body (eq + 1) (String.length body - eq - 1)
      |> String.split_on_char ','
      |> List.map String.trim
      |> List.filter (fun c -> c <> "")
  | _ -> []

let parse text =
  let directives = ref [] in
  List.iteri
    (fun i line ->
      match String.index_opt line '#' with
      | None -> ()
      | Some hash -> (
          let comment =
            String.trim (String.sub line (hash + 1) (String.length line - hash - 1))
          in
          let plen = String.length prefix in
          if String.length comment >= plen && String.sub comment 0 plen = prefix
          then
            match
              parse_body (String.sub comment plen (String.length comment - plen))
            with
            | [] -> ()
            | codes ->
                let content_only =
                  String.trim (String.sub line 0 hash) = ""
                in
                let at = i + 1 in
                let scope = if content_only then File else Line at in
                directives := { scope; codes; at } :: !directives))
    (String.split_on_char '\n' text);
  List.rev !directives

let covers directive (d : Diagnostic.t) =
  List.mem d.code directive.codes
  &&
  match (directive.scope, d.span) with
  | File, _ -> true
  | Line l, Some s -> s.line <= l && l <= s.end_line
  | Line _, None -> false

let partition directives diags =
  List.partition
    (fun d -> not (List.exists (fun dir -> covers dir d) directives))
    diags
