(** Fixpoint analysis over the skeleton chain — the semantic layer of
    lint v2.

    The paper's central object is the antitone chain
    [G^∩1 ⊇ G^∩2 ⊇ … ⊇ G^∩∞] (eq. (1)): a monotone descent through a
    finite lattice of subgraphs that reaches its fixpoint — the stable
    skeleton — after finitely many rounds.  That is exactly the shape an
    abstract interpretation wants, so this module {e is} one: the
    abstract state is the running skeleton plus its derivations (SCC
    analysis, PT rows, [min_k]), the transfer function is one round's
    graph intersected in, and termination is the chain's own
    stabilization.  The traversal rides {!Ssg_skeleton.Incremental}, so
    zero-delta rounds cost one O(n²/w) intersection and re-serve every
    cached derivation; [min_k] is re-proved only on revisions, with the
    MIS warm-started from the previous witness.

    {!fold} is the extension point: a pass is a fold over per-round
    {!obs}ervations.  {!analyze} is the built-in instance producing the
    {!chain} summary that the SSG2xx checks consume — all of them from
    {e one} traversal. *)

open Ssg_util
open Ssg_graph
open Ssg_adversary

(** What a pass observes after one transfer step (round absorbed into
    the chain).  [skeleton], [analysis] and [pts] are borrowed from the
    incremental accumulator: valid only until the next step, do not
    mutate, equal across zero-delta steps. *)
type obs = {
  round : int;  (** 1-based; [prefix + 1] is the limit step *)
  is_limit : bool;
      (** the final step: the stable graph (or, for recurrent runs, the
          exact [G^∩∞]) absorbed *)
  delta : int;  (** skeleton edges this step removed *)
  revision : int;  (** {!Ssg_skeleton.Incremental.revision} after it *)
  skeleton : Digraph.t;  (** the running [G^∩r], borrowed *)
  analysis : Ssg_skeleton.Analysis.t;  (** cached per revision *)
  pts : Bitset.t array;  (** timely rows of [G^∩r], cached per revision *)
  min_k : int;  (** α of [G^∩r]'s source-sharing graph, warm-started *)
}

(** [fold adv ~init ~f] runs the chain to its fixpoint: absorbs rounds
    [1 .. prefix] and then the limit (the stable graph; for recurrent
    runs the exact [G^∩∞], so the last observation is always the true
    fixpoint), calling [f] after every step. *)
val fold : Adversary.t -> init:'a -> f:('a -> obs -> 'a) -> 'a

(** One chain step's facts, retained (plain data, no borrowing). *)
type fact = {
  round : int;
  delta : int;
  revision : int;
  edge_count : int;  (** of [G^∩r], self-loops included *)
  root_count : int;  (** source components of [G^∩r] *)
  min_k : int;  (** α(H) of [G^∩r] *)
}

(** The whole chain, summarized — what the SSG2xx passes consume. *)
type chain = {
  n : int;
  prefix : int;
  facts : fact array;  (** [prefix + 1] entries; the last is the limit *)
  r_st : int;
      (** stabilization round: earliest [r] with [G^∩r = G^∩∞] within
          the description ([1 <= r_st <= prefix + 1]) *)
  final_min_k : int;
  final_root_count : int;
  steps : (int * int * int) list;
      (** [min_k] changes as [(round, before, after)], in round order —
          the proof trail of the achievable-k certificate *)
  dead : int list;
      (** prefix rounds with [delta = 0], ascending: rounds that
          provably never change the skeleton chain (deleting one leaves
          every subsequent [G^∩r] — and therefore [G^∩∞], [min_k],
          every decision of Algorithm 1 on the limit — unchanged) *)
}

(** [analyze adv] — one traversal, every summary. *)
val analyze : Adversary.t -> chain

(** [lost_at chain ~k] is the earliest round [r] with
    [min_k(G^∩r) > k] — the exact step where achievability of [k]-set
    agreement is lost — or [None] when [Psrcs(k)] holds on the limit. *)
val lost_at : chain -> k:int -> int option

(** [trajectory chain] renders the certificate trail, e.g.
    ["1 (complete) -> 2 @ round 3 -> 3 @ stable"]. *)
val trajectory : chain -> string

(** [decision_bound chain] is [r_st + 3n + 4]: the paper's conservative
    Θ(n) decision window measured from the {e semantic} stabilization
    round (the repo's Lemma 11 horizon [r_st + 2n] is sharper; both are
    reported by SSG202). *)
val decision_bound : chain -> int
