(** Front door of the lint subsystem.

    Three consumers share these entry points: the [ssg lint] CLI
    ({!check_text} + the {!Report} renderers), the [ssgd] engine front
    door ({!gate}, which turns lint errors into a rejection payload
    before a job ever reaches the worker pool), and in-memory advisory
    checks on [--load]/[shrink] paths ({!check}). *)

open Ssg_adversary

(** [check ?k adv] lints an in-memory adversary (no source spans).  With
    [k], unsatisfiable [Psrcs(k)] is reported as an [SSG001] error;
    without it, satisfiability is reported as info only. *)
val check : ?k:int -> Adversary.t -> Diagnostic.t list

(** [check_text ?k text] lints a run description, with line-span anchors
    from the span-tracking parse.  Never raises: text rejected by
    {!Run_format.parse} yields a single [SSG000] error diagnostic. *)
val check_text : ?k:int -> string -> Diagnostic.t list

(** [gate ~k run] is the engine front door: [Some rendered] when [run]
    has lint errors at agreement parameter [k] (the string is the
    human-rendered diagnostics, with source excerpts), [None] when the
    job may execute. *)
val gate : k:int -> string -> string option

type summary = { errors : int; warnings : int; infos : int }

val summarize : Diagnostic.t list -> summary
val has_errors : Diagnostic.t list -> bool

(** [ok ?strict diags] — no errors; with [strict], no warnings either. *)
val ok : ?strict:bool -> Diagnostic.t list -> bool
