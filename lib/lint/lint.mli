(** Front door of the lint subsystem.

    Three consumers share these entry points: the [ssg lint] CLI
    ({!check_text} + the {!Report} renderers), the [ssgd] engine front
    door ({!gate}, which turns lint errors into a rejection payload
    before a job ever reaches the worker pool), and in-memory advisory
    checks on [--load]/[shrink] paths ({!check}). *)

open Ssg_adversary

(** [check ?k adv] lints an in-memory adversary (no source spans).  With
    [k], unsatisfiable [Psrcs(k)] is reported as an [SSG001] error;
    without it, satisfiability is reported as info only. *)
val check : ?k:int -> Adversary.t -> Diagnostic.t list

(** Text-lint result, split by {!Suppress} directives.  [active] drives
    exit codes and the engine gate; [suppressed] is retained so
    reporters and summaries can still show (and count) what was muted. *)
type outcome = { active : Diagnostic.t list; suppressed : Diagnostic.t list }

(** [lint_text ?k text] lints a run description, with line-span anchors
    from the span-tracking parse, honoring inline
    [# ssg-lint: disable=...] directives.  Never raises: text rejected
    by {!Run_format.parse} yields a single active [SSG000] error. *)
val lint_text : ?k:int -> string -> outcome

(** [check_text ?k text] is [(lint_text ?k text).active] — suppressed
    diagnostics (an explicit in-source opt-out) are not reported. *)
val check_text : ?k:int -> string -> Diagnostic.t list

(** [gate ~k run] is the engine front door: [Some rendered] when [run]
    has lint errors at agreement parameter [k] (the string is the
    human-rendered diagnostics, with source excerpts), [None] when the
    job may execute. *)
val gate : k:int -> string -> string option

type summary = {
  errors : int;
  warnings : int;
  infos : int;
  suppressed : int;  (** directive-muted diagnostics, any severity *)
}

(** [summarize ?suppressed diags] counts by severity; [suppressed]
    (default 0) is carried through for display. *)
val summarize : ?suppressed:int -> Diagnostic.t list -> summary
val has_errors : Diagnostic.t list -> bool

(** [ok ?strict diags] — no errors; with [strict], no warnings either. *)
val ok : ?strict:bool -> Diagnostic.t list -> bool
