(** Machine-applicable autofixes: span-anchored text edits for the
    mechanically repairable diagnostics.

    Fixed codes and their edits:

    - [SSG101] (round subsumed by the stable graph) — delete the round
      line.  Sound because a supergraph of the stable graph intersects
      to a no-op against {e any} chain position that already includes
      the stable graph's limit.
    - [SSG203] (dead round) — delete the round line.  Sound because a
      zero-delta round is subsumed by the intersection of the rounds
      before it; deleting any subset of subsumed/dead rounds leaves
      every subsequent [G^∩r] — hence [G^∩∞] and [min_k] — unchanged
      (induction over the chain: skeletons only {e grow} when rounds are
      removed, and each deleted round was a no-op against a graph its
      survivors still intersect below).
    - [SSG103] (empty round) — delete {e only when provably safe}: the
      plan recomputes the stable skeleton without the round and keeps
      the round (warning intact) unless the result is bit-for-bit
      identical.  A run whose skeleton the empty round genuinely
      collapsed keeps exactly the rounds needed to stay faithful.
    - [SSG105] (redundant edge token) — rewrite the line without
      explicit self-loops and duplicate tokens.

    Deleting rounds renumbers the survivors (the format requires
    consecutive [round 1..P]); comment suffixes on rewritten lines are
    preserved.

    {b Soundness invariant} (checked by {!fix}, property-tested in the
    suite): the fixed text parses, has the same stable skeleton and the
    same [min_k] as the original, re-lints clean for the fixed codes
    (except unfixable SSG103), and fixing it again is a no-op. *)

type edit =
  | Delete of int  (** remove this 1-based line *)
  | Replace of int * string  (** replace this line's text *)

type plan = {
  edits : edit list;  (** in line order; at most one edit per line *)
  dropped_rounds : int list;  (** original round numbers deleted *)
  cleaned_lines : int list;  (** lines rewritten to drop redundant tokens *)
}

(** The codes [--fix] repairs, in code order. *)
val fixed_codes : string list

(** [plan text] computes the edit plan, or [None] when [text] does not
    parse (nothing mechanical to do — fix the SSG000 first). *)
val plan : string -> plan option

val is_empty : plan -> bool

(** [apply plan text] performs the edits. *)
val apply : plan -> string -> string

(** [plan] + [apply] + the soundness check: parses the fixed text and
    verifies stable skeleton and [min_k] are preserved.
    @raise Invalid_argument if the invariant is violated (a bug, not a
    user error). *)
val fix : string -> (string * plan) option
