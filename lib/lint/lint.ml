open Ssg_adversary

let check ?k adv = Pass.run_all Checks.all (Pass.ctx ?k adv)

(* "line N: ..." parse failures anchor SSG000 to line N. *)
let parse_error_span msg =
  match Scanf.sscanf_opt msg "line %d:" (fun l -> l) with
  | Some l -> Some (Diagnostic.line l)
  | None -> None

type outcome = { active : Diagnostic.t list; suppressed : Diagnostic.t list }

let lint_text ?k text =
  let diags =
    match Run_format.parse text with
    | adv, spans -> Pass.run_all Checks.all (Pass.ctx ?k ~spans adv)
    | exception Failure msg ->
        [
          Diagnostic.error
            ?span:(parse_error_span msg)
            ~code:"SSG000"
            (Printf.sprintf "run description does not parse: %s" msg);
        ]
  in
  let active, suppressed = Suppress.partition (Suppress.parse text) diags in
  { active; suppressed }

let check_text ?k text = (lint_text ?k text).active

type summary = {
  errors : int;
  warnings : int;
  infos : int;
  suppressed : int;
}

let summarize ?(suppressed = 0) diags =
  List.fold_left
    (fun acc (d : Diagnostic.t) ->
      match d.severity with
      | Diagnostic.Error -> { acc with errors = acc.errors + 1 }
      | Diagnostic.Warning -> { acc with warnings = acc.warnings + 1 }
      | Diagnostic.Info -> { acc with infos = acc.infos + 1 })
    { errors = 0; warnings = 0; infos = 0; suppressed }
    diags

let has_errors diags = List.exists Diagnostic.is_error diags

let ok ?(strict = false) diags =
  let s = summarize diags in
  s.errors = 0 && ((not strict) || s.warnings = 0)

let gate ~k run =
  let diags = check_text ~k run in
  if has_errors diags then
    Some (Report.human ~src:run (List.filter Diagnostic.is_error diags))
  else None
