module E = Ssg_obs.Export

let level = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let rule_index code =
  let rec go i = function
    | [] -> None
    | (c, _, _) :: _ when c = code -> Some i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 Diagnostic.registry

let rules =
  E.Arr
    (List.map
       (fun (code, sev, title) ->
         E.Obj
           [
             ("id", E.Str code);
             ("shortDescription", E.Obj [ ("text", E.Str title) ]);
             ("defaultConfiguration", E.Obj [ ("level", E.Str (level sev)) ]);
           ])
       Diagnostic.registry)

let location file (d : Diagnostic.t) =
  let physical =
    ("artifactLocation", E.Obj [ ("uri", E.Str file) ])
    ::
    (match d.span with
    | Some s ->
        [
          ( "region",
            E.Obj
              [ ("startLine", E.Int s.line); ("endLine", E.Int s.end_line) ] );
        ]
    | None -> [])
  in
  E.Obj [ ("physicalLocation", E.Obj physical) ]

(* The file's whole autofix plan as one SARIF fix: applying it resolves
   every fixable result at once, which is exactly what [--fix] does. *)
let fix_json file (p : Fix.plan) =
  let replacement = function
    | Fix.Delete l ->
        E.Obj
          [
            ( "deletedRegion",
              E.Obj [ ("startLine", E.Int l); ("endLine", E.Int l) ] );
          ]
    | Fix.Replace (l, text) ->
        E.Obj
          [
            ( "deletedRegion",
              E.Obj [ ("startLine", E.Int l); ("endLine", E.Int l) ] );
            ("insertedContent", E.Obj [ ("text", E.Str text) ]);
          ]
  in
  E.Obj
    [
      ( "description",
        E.Obj
          [
            ( "text",
              E.Str
                "delete dead/subsumed rounds and redundant tokens (ssg lint \
                 --fix)" );
          ] );
      ( "artifactChanges",
        E.Arr
          [
            E.Obj
              [
                ("artifactLocation", E.Obj [ ("uri", E.Str file) ]);
                ("replacements", E.Arr (List.map replacement p.Fix.edits));
              ];
          ] );
    ]

let result ?fix ~file ~suppressed (d : Diagnostic.t) =
  let message =
    match d.hint with
    | None -> d.message
    | Some h -> d.message ^ " (hint: " ^ h ^ ")"
  in
  let fields =
    ("ruleId", E.Str d.code)
    ::
    (match rule_index d.code with
    | Some i -> [ ("ruleIndex", E.Int i) ]
    | None -> [])
    @ [
        ("level", E.Str (level d.severity));
        ("message", E.Obj [ ("text", E.Str message) ]);
        ("locations", E.Arr [ location file d ]);
      ]
  in
  let fields =
    if suppressed then
      fields
      @ [ ("suppressions", E.Arr [ E.Obj [ ("kind", E.Str "inSource") ] ]) ]
    else fields
  in
  let fields =
    match fix with
    | Some f when List.mem d.code Fix.fixed_codes ->
        fields @ [ ("fixes", E.Arr [ f ]) ]
    | _ -> fields
  in
  E.Obj fields

let export ?(fixes = []) results =
  let results_json =
    List.concat_map
      (fun (file, active, suppressed) ->
        let fix =
          match List.assoc_opt file fixes with
          | Some p when not (Fix.is_empty p) -> Some (fix_json file p)
          | _ -> None
        in
        List.map (result ?fix ~file ~suppressed:false) active
        @ List.map (result ?fix ~file ~suppressed:true) suppressed)
      results
  in
  E.json_to_string
    (E.Obj
       [
         ("$schema", E.Str "https://json.schemastore.org/sarif-2.1.0.json");
         ("version", E.Str "2.1.0");
         ( "runs",
           E.Arr
             [
               E.Obj
                 [
                   ( "tool",
                     E.Obj
                       [
                         ( "driver",
                           E.Obj
                             [ ("name", E.Str "ssg-lint"); ("rules", rules) ]
                         );
                       ] );
                   ("results", E.Arr results_json);
                 ];
             ] );
       ])
