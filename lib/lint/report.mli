(** Diagnostic reporters.

    Two renderings of the same diagnostics: a human one (compiler-style
    [file:line: severity CODE: message] lines, plus the offending source
    line when the text is available) and a JSON one for tooling and CI.

    {b JSON schema} (one object per linted file):

    {v
    [
      {
        "file": "examples/foo.run",
        "errors": 1, "warnings": 2, "infos": 1,
        "diagnostics": [
          { "code": "SSG001", "severity": "error",
            "line": 5, "end_line": 5,
            "message": "...", "hint": "..." }
        ]
      }
    ]
    v}

    [line]/[end_line] are omitted for span-less diagnostics, [hint] when
    there is none. *)

(** [human ?file ?src diags] renders diagnostics in source order.  With
    [src] (the run-description text), each anchored diagnostic is
    followed by an excerpt of its source line. *)
val human : ?file:string -> ?src:string -> Diagnostic.t list -> string

(** [json results] renders a JSON array with one object per
    [(file, diagnostics)] pair. *)
val json : (string * Diagnostic.t list) list -> string
