(** Diagnostic reporters.

    Two renderings of the same diagnostics: a human one (compiler-style
    [file:line: severity CODE: message] lines, plus the offending source
    line when the text is available) and a JSON one for tooling and CI.

    {b JSON schema} (one object per linted file):

    {v
    [
      {
        "file": "examples/foo.run",
        "errors": 1, "warnings": 2, "infos": 1, "suppressed": 1,
        "diagnostics": [
          { "code": "SSG001", "severity": "error",
            "line": 5, "end_line": 5,
            "message": "...", "hint": "..." },
          { "code": "SSG104", "severity": "warning",
            "message": "...", "suppressed": true }
        ]
      }
    ]
    v}

    The per-file counts cover active diagnostics; suppressed ones follow
    them in the array, marked [suppressed: true] and counted in the
    [suppressed] field.  [line]/[end_line] are omitted for span-less
    diagnostics, [hint] when there is none. *)

(** [human ?file ?src diags] renders diagnostics in source order.  With
    [src] (the run-description text), each anchored diagnostic is
    followed by an excerpt of its span — up to 4 lines, longer spans
    elided with a [... | (N more line(s))] marker. *)
val human : ?file:string -> ?src:string -> Diagnostic.t list -> string

(** [json results] renders a JSON array with one object per
    [(file, active, suppressed)] triple. *)
val json :
  (string * Diagnostic.t list * Diagnostic.t list) list -> string
