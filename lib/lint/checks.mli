(** The built-in semantic passes, in registration order.

    Each pass owns one diagnostic code (see {!Diagnostic} for the
    registry).  To add a check: write a [Pass.ctx -> Diagnostic.t list]
    function, wrap it with {!Pass.v} under a fresh code, and append it
    here — the CLI, the engine front door and the library API all run
    {!all} through {!Pass.run_all}. *)

val all : Pass.t list
