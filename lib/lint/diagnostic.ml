type severity = Error | Warning | Info
type span = { line : int; end_line : int }

type t = {
  code : string;
  severity : severity;
  span : span option;
  message : string;
  hint : string option;
}

let line l = { line = l; end_line = l }
let range l e = { line = l; end_line = max l e }
let make severity ?span ?hint ~code message = { code; severity; span; message; hint }
let error ?span ?hint ~code message = make Error ?span ?hint ~code message
let warning ?span ?hint ~code message = make Warning ?span ?hint ~code message
let info ?span ?hint ~code message = make Info ?span ?hint ~code message

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let is_error d = d.severity = Error

let compare a b =
  let line_of d = match d.span with Some s -> s.line | None -> max_int in
  match Int.compare (line_of a) (line_of b) with
  | 0 -> (
      match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> String.compare a.code b.code
      | c -> c)
  | c -> c

let registry =
  [
    ("SSG000", Error, "run description does not parse");
    ("SSG001", Error, "Psrcs(k) is unsatisfiable (min_k > k)");
    ("SSG002", Info, "Psrcs(k) satisfiability profile");
    ("SSG003", Info, "stabilization round and decision horizon");
    ("SSG101", Warning, "prefix round subsumed by the stable graph");
    ("SSG102", Warning, "near-miss skeleton edge");
    ("SSG103", Warning, "empty round (self-loops only)");
    ("SSG104", Warning, "process isolated in the stable skeleton");
    ("SSG105", Warning, "redundant edge token");
    ("SSG201", Error, "achievable-k certificate violated (k below min_k)");
    ("SSG202", Info, "stabilization window vs the paper's 3n+4 bound");
    ("SSG203", Warning, "dead round: provably never changes the skeleton chain");
  ]

let pp fmt d =
  Format.fprintf fmt "%s %s: %s" (severity_label d.severity) d.code d.message;
  match d.span with
  | Some { line; end_line } when line = end_line ->
      Format.fprintf fmt " (line %d)" line
  | Some { line; end_line } -> Format.fprintf fmt " (lines %d-%d)" line end_line
  | None -> ()
