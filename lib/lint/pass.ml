open Ssg_util
open Ssg_graph
open Ssg_adversary

type ctx = {
  adv : Adversary.t;
  k : int option;
  spans : Run_format.spans option;
  skeleton : Digraph.t;
  analysis : Ssg_skeleton.Analysis.t;
  pts : Bitset.t array;
  min_k : int;
  chain : Semantic.chain Lazy.t;
}

let ctx ?k ?spans adv =
  let skeleton = Adversary.stable_skeleton adv in
  {
    adv;
    k;
    spans;
    skeleton;
    analysis = Ssg_skeleton.Analysis.analyze skeleton;
    pts = Adversary.pts adv;
    min_k = Adversary.min_k adv;
    chain = lazy (Semantic.analyze adv);
  }

type t = { code : string; title : string; check : ctx -> Diagnostic.t list }

let v ~code ~title check = { code; title; check }

let run_all passes ctx =
  List.concat_map (fun pass -> pass.check ctx) passes
  |> List.sort Diagnostic.compare
