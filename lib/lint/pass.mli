(** The pass pipeline: shared analysis context + named checks.

    Every check receives one pre-computed {!ctx} — the parsed adversary,
    its stable skeleton, the SCC {!Ssg_skeleton.Analysis}, the timely
    neighbourhoods and [min_k] — so expensive graph work happens exactly
    once per lint run no matter how many passes inspect it.  A pass is a
    pure function [ctx -> Diagnostic.t list]; registering a new check
    means appending a {!t} to {!Checks.all}. *)

open Ssg_util
open Ssg_graph
open Ssg_adversary

type ctx = {
  adv : Adversary.t;
  k : int option;  (** agreement parameter to check against, if any *)
  spans : Run_format.spans option;  (** line anchors when linting text *)
  skeleton : Digraph.t;  (** the stable skeleton [G^∩∞] *)
  analysis : Ssg_skeleton.Analysis.t;  (** SCCs / roots of the skeleton *)
  pts : Bitset.t array;  (** [pts.(q) = PT(q)] *)
  min_k : int;  (** α(H): least [k] with [Psrcs(k)] *)
  chain : Semantic.chain Lazy.t;
      (** per-round fixpoint facts; forced only by the SSG2xx passes *)
}

(** [ctx ?k ?spans adv] runs the shared analysis once. *)
val ctx : ?k:int -> ?spans:Run_format.spans -> Adversary.t -> ctx

type t = {
  code : string;  (** primary diagnostic code the pass emits *)
  title : string;
  check : ctx -> Diagnostic.t list;
}

val v : code:string -> title:string -> (ctx -> Diagnostic.t list) -> t

(** [run_all passes ctx] concatenates every pass's diagnostics in source
    order ({!Diagnostic.compare}). *)
val run_all : t list -> ctx -> Diagnostic.t list
