(** Inline suppression directives.

    A comment of the form [# ssg-lint: disable=SSG104] (codes
    comma-separated) turns matching diagnostics from {e active} into
    {e suppressed}.  Scope follows the comment's placement:

    - trailing a content line — suppresses diagnostics anchored to that
      line (any line of a multi-line span counts);
    - on a comment-only line — suppresses matching diagnostics in the
      whole file, span-less ones included.

    Suppressed diagnostics are not dropped: every reporter still sees
    them (the JSON and SARIF outputs mark them, summaries count them) —
    only exit codes and the engine's front-door gate ignore them. *)

type scope = File | Line of int

type directive = {
  scope : scope;
  codes : string list;  (** e.g. [["SSG104"; "SSG105"]] *)
  at : int;  (** 1-based line carrying the directive *)
}

(** [parse text] extracts directives in source order.  Comments that do
    not match the [ssg-lint: disable=...] shape are ignored; so are
    directives with an empty code list. *)
val parse : string -> directive list

(** [partition directives diags] splits into [(active, suppressed)],
    both in the original order.  A diagnostic is suppressed when some
    directive lists its code and its scope covers the diagnostic's
    span. *)
val partition :
  directive list -> Diagnostic.t list -> Diagnostic.t list * Diagnostic.t list
