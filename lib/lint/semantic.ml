open Ssg_util
open Ssg_graph
open Ssg_adversary
module Incremental = Ssg_skeleton.Incremental
module Analysis = Ssg_skeleton.Analysis
module Min_k_tracker = Ssg_predicates.Min_k_tracker

type obs = {
  round : int;
  is_limit : bool;
  delta : int;
  revision : int;
  skeleton : Digraph.t;
  analysis : Analysis.t;
  pts : Bitset.t array;
  min_k : int;
}

let fold adv ~init ~f =
  let n = Adversary.n adv in
  let prefix = Adversary.prefix_length adv in
  let inc = Incremental.start ~n in
  let tracker = Min_k_tracker.create () in
  let observe acc ~round ~is_limit ~delta =
    let revision = Incremental.revision inc in
    let pts = Incremental.pts inc in
    f acc
      {
        round;
        is_limit;
        delta;
        revision;
        skeleton = Incremental.view inc;
        analysis = Incremental.analysis inc;
        pts;
        min_k = Min_k_tracker.min_k ~revision tracker pts;
      }
  in
  let acc = ref init in
  for r = 1 to prefix do
    let delta = Incremental.absorb inc (Adversary.graph adv r) in
    acc := observe !acc ~round:r ~is_limit:false ~delta
  done;
  (* The limit step.  [G^∩∞ = (∩ prefix) ∩ stable], and the accumulator
     already holds [∩ prefix], so absorbing the exact [stable_skeleton]
     lands on the true fixpoint in one step — for recurrent runs too,
     where no single post-prefix round graph would. *)
  let delta = Incremental.absorb inc (Adversary.stable_skeleton adv) in
  observe !acc ~round:(prefix + 1) ~is_limit:true ~delta

type fact = {
  round : int;
  delta : int;
  revision : int;
  edge_count : int;
  root_count : int;
  min_k : int;
}

type chain = {
  n : int;
  prefix : int;
  facts : fact array;
  r_st : int;
  final_min_k : int;
  final_root_count : int;
  steps : (int * int * int) list;
  dead : int list;
}

let analyze adv =
  let rev_facts =
    fold adv ~init:[] ~f:(fun acc o ->
        {
          round = o.round;
          delta = o.delta;
          revision = o.revision;
          edge_count = Digraph.edge_count o.skeleton;
          root_count = Analysis.root_count o.analysis;
          min_k = o.min_k;
        }
        :: acc)
  in
  let facts = Array.of_list (List.rev rev_facts) in
  let prefix = Array.length facts - 1 in
  let r_st =
    Array.fold_left (fun r f -> if f.delta > 0 then f.round else r) 1 facts
  in
  let final = facts.(prefix) in
  let steps =
    let prev = ref 1 (* the complete graph: one source component, α = 1 *) in
    Array.fold_left
      (fun acc f ->
        if f.min_k <> !prev then (
          let step = (f.round, !prev, f.min_k) in
          prev := f.min_k;
          step :: acc)
        else acc)
      [] facts
    |> List.rev
  in
  let dead =
    Array.fold_left
      (fun acc f -> if f.round <= prefix && f.delta = 0 then f.round :: acc else acc)
      [] facts
    |> List.rev
  in
  {
    n = Adversary.n adv;
    prefix;
    facts;
    r_st;
    final_min_k = final.min_k;
    final_root_count = final.root_count;
    steps;
    dead;
  }

let lost_at chain ~k =
  let found = ref None in
  Array.iter
    (fun f -> if f.min_k > k && !found = None then found := Some f.round)
    chain.facts;
  !found

let trajectory chain =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "1 (complete)";
  List.iter
    (fun (round, _before, after) ->
      if round > chain.prefix then
        Buffer.add_string buf (Printf.sprintf " -> %d @ stable" after)
      else Buffer.add_string buf (Printf.sprintf " -> %d @ round %d" after round))
    chain.steps;
  Buffer.contents buf

let decision_bound chain = chain.r_st + (3 * chain.n) + 4
