open Ssg_util
open Ssg_graph

type t = {
  order : int;
  owner : int;
  enable_purge : bool;
  enable_prune : bool;
  mutable round : int;
  pt : Bitset.t;
  graph : Lgraph.t;
  scratch : Lgraph.t; (* reused accumulator for the per-round rebuild *)
  mutable sc_cache : bool option;
      (* memoized strong-connectivity certificate of [graph]; valid
         because labels refresh every round but the support goes stable
         once the skeleton does, and SC is label-blind *)
}

let create ?(enable_purge = true) ?(enable_prune = true) ~n ~self () =
  if n <= 0 then invalid_arg "Approx.create: empty system";
  if self < 0 || self >= n then invalid_arg "Approx.create: bad self";
  {
    order = n;
    owner = self;
    enable_purge;
    enable_prune;
    round = 0;
    pt = Bitset.full n;
    graph = Lgraph.create n ~self;
    scratch = Lgraph.create n ~self;
    sc_cache = None;
  }

let n t = t.order
let self t = t.owner
let rounds_done t = t.round
let message t = Lgraph.copy t.graph

let step t ~round ~received =
  if round <> t.round + 1 then
    invalid_arg
      (Printf.sprintf "Approx.step: expected round %d, got %d" (t.round + 1)
         round);
  t.round <- round;
  (* Line 9: PT_p <- PT_p ∩ {q | heard q this round}. *)
  let heard = Bitset.create t.order in
  let inboxes = Array.make t.order None in
  for q = 0 to t.order - 1 do
    match received q with
    | Some g ->
        if Lgraph.capacity g <> t.order then
          invalid_arg "Approx.step: received graph capacity mismatch";
        Bitset.add heard q;
        inboxes.(q) <- Some g
    | None -> ()
  done;
  Bitset.inter_into ~into:t.pt heard;
  (* Lines 15–23: rebuild G_p.  We fold the received graphs of timely
     senders with per-edge max (Lines 19–23), then overwrite the fresh
     timely edges (q --round--> p) (Line 17) — [round] exceeds every label
     in any received graph, so overwriting preserves the max semantics. *)
  Lgraph.reset t.scratch ~self:t.owner;
  Bitset.iter
    (fun q ->
      match inboxes.(q) with
      | Some g -> Lgraph.merge_max_into ~into:t.scratch g
      | None -> ())
    t.pt;
  Bitset.iter
    (fun q -> Lgraph.set_edge t.scratch q t.owner ~label:round)
    t.pt;
  (* Line 24: drop labels <= round - n. *)
  if t.enable_purge then Lgraph.purge t.scratch ~upto:(round - t.order);
  (* Line 25: drop nodes that cannot reach p. *)
  if t.enable_prune then Lgraph.prune_unreachable t.scratch ~self:t.owner;
  (* Strong connectivity only reads the support (nodes + edge presence),
     which the rebuild usually reproduces exactly once the run settles —
     only the labels keep rotating.  Keep the memoized certificate alive
     across support-stable rounds. *)
  if not (Lgraph.same_support t.graph t.scratch) then t.sc_cache <- None;
  (* Install the rebuilt graph by O(1) double-buffer swap. *)
  Lgraph.swap t.graph t.scratch

let pt t = Bitset.copy t.pt
let pt_mem t q = Bitset.mem t.pt q
let graph t = Lgraph.copy t.graph
let graph_view t = t.graph
let is_strongly_connected t =
  match t.sc_cache with
  | Some sc -> sc
  | None ->
      let sc = Lgraph.is_strongly_connected t.graph in
      t.sc_cache <- Some sc;
      sc
