open Ssg_util
open Ssg_graph

type view = { pt : Bitset.t; approx : Lgraph.t }

let view_of_kset s =
  { pt = Kset_agreement.pt_of s; approx = Kset_agreement.approx_of s }

type snapshot = {
  owner : int;
  at_round : int;
  nodes : Bitset.t;
  edges : Digraph.t;
}

type t = {
  order : int;
  skel : Ssg_skeleton.Incremental.t;
  mutable skeletons : Digraph.t list; (* newest first; skeleton of round r at position (round - r) *)
  mutable round : int;
  mutable base_analysis : (Digraph.t * Ssg_skeleton.Analysis.t) option;
      (* SCC view of one historical skeleton, keyed by physical identity
         — hits whenever the incremental accumulator shared the copy *)
  mutable faults : string list; (* newest first *)
  mutable fault_count : int;
  mutable snapshots : snapshot list;
  mutable snapshotted : Bitset.t; (* processes with a recorded snapshot *)
}

let max_recorded_faults = 200

let create ~n =
  {
    order = n;
    skel = Ssg_skeleton.Incremental.start ~n;
    skeletons = [];
    round = 0;
    base_analysis = None;
    faults = [];
    fault_count = 0;
    snapshots = [];
    snapshotted = Bitset.create n;
  }

let report t fmt =
  Printf.ksprintf
    (fun msg ->
      t.fault_count <- t.fault_count + 1;
      if t.fault_count <= max_recorded_faults then t.faults <- msg :: t.faults)
    fmt

let skeleton_at t r =
  (* skeletons is newest-first: G^∩round at head.  From the stabilization
     round on, consecutive entries are the {e same} shared copy (the
     incremental accumulator re-issues its snapshot while the skeleton is
     unchanged), so retaining one per round costs O(1) per stable round. *)
  List.nth t.skeletons (t.round - r)

(* SCC component of [p] in a retained skeleton.  Physical keying makes
   this a cache hit for every post-stabilization round — exactly the
   rounds in which the per-round Lemma 5/7 checks would otherwise pay a
   fresh reachability pass per process. *)
let component_in t skel p =
  let analysis =
    match t.base_analysis with
    | Some (g, a) when g == skel -> a
    | _ ->
        let a = Ssg_skeleton.Analysis.analyze skel in
        t.base_analysis <- Some (skel, a);
        a
  in
  Ssg_skeleton.Analysis.component_of analysis p

(* Subgraph check: every node and labelled edge of [g] appears in the node
   set [c] with its edge present in [skel]. *)
let lgraph_inside t ~what ~round ~owner g c skel =
  Bitset.iter
    (fun v ->
      if not (Bitset.mem c v) then
        report t "round %d p%d: %s: node %d outside component %s" round
          (owner + 1) what v (Bitset.to_string c))
    (Lgraph.nodes g);
  Lgraph.iter_edges g (fun q' q _ ->
      if not (Digraph.mem_edge skel q' q) then
        report t "round %d p%d: %s: edge %d->%d not in skeleton" round
          (owner + 1) what q' q)

(* Component (nodes and skeleton edges) contained in the approximation. *)
let component_inside t ~what ~round ~owner comp skel g =
  let nodes = Lgraph.nodes g in
  Bitset.iter
    (fun v ->
      if not (Bitset.mem nodes v) then
        report t "round %d p%d: %s: component node %d missing from G_p" round
          (owner + 1) what v)
    comp;
  Bitset.iter
    (fun q ->
      Digraph.iter_preds skel q (fun q' ->
          if Bitset.mem comp q' && not (Lgraph.mem_edge g q' q) then
            report t "round %d p%d: %s: component edge %d->%d missing from G_p"
              round (owner + 1) what q' q))
    comp

let observe t ~round ~graph views =
  if round <> t.round + 1 then
    invalid_arg
      (Printf.sprintf "Monitor.observe: expected round %d, got %d"
         (t.round + 1) round);
  if Array.length views <> t.order then
    invalid_arg "Monitor.observe: wrong number of views";
  ignore (Ssg_skeleton.Incremental.absorb t.skel graph);
  t.round <- round;
  let skel_now = Ssg_skeleton.Incremental.snapshot t.skel in
  t.skeletons <- skel_now :: t.skeletons;
  let analysis_now = Ssg_skeleton.Incremental.analysis t.skel in
  let pts_now = Ssg_skeleton.Incremental.pts t.skel in
  let n = t.order in
  Array.iteri
    (fun p view ->
      let g = view.approx in
      (* Observation 1: p ∈ G^r_p, labels > r - n. *)
      if not (Lgraph.mem_node g p) then
        report t "round %d p%d: Obs1: owner not in its own graph" round (p + 1);
      Lgraph.iter_edges g (fun q' q l ->
          if l <= round - n then
            report t "round %d p%d: Obs1: stale label %d on %d->%d" round
              (p + 1) l q' q);
      (* Lemma 3: PT_p = PT(p, r); fresh labels match timeliness. *)
      let pt_true = pts_now.(p) in
      if not (Bitset.equal view.pt pt_true) then
        report t "round %d p%d: Lemma3: PT_p = %s but PT(p,r) = %s" round
          (p + 1)
          (Bitset.to_string view.pt)
          (Bitset.to_string pt_true);
      for q = 0 to n - 1 do
        let fresh = Lgraph.label g q p = round in
        let timely = Bitset.mem pt_true q in
        if fresh && not timely then
          report t "round %d p%d: Lemma3: fresh edge from untimely %d" round
            (p + 1) q;
        if timely && not fresh then
          report t "round %d p%d: Lemma3: timely %d lacks fresh edge" round
            (p + 1) q
      done;
      (* Lemma 6: every labelled edge was a timely edge at its label
         round. *)
      Lgraph.iter_edges g (fun q' q s ->
          if s >= 1 && s <= round then begin
            let skel_s = skeleton_at t s in
            if not (Digraph.mem_edge skel_s q' q) then
              report t
                "round %d p%d: Lemma6: edge %d-[%d]->%d not timely at its \
                 label round"
                round (p + 1) q' s q
          end
          else
            report t "round %d p%d: Lemma6: label %d out of range" round
              (p + 1) s);
      (* Lemma 5: from round n on, G_p contains C^r_p. *)
      if round >= n then begin
        let comp = Ssg_skeleton.Analysis.component_of analysis_now p in
        component_inside t ~what:"Lemma5" ~round ~owner:p comp skel_now g
      end;
      (* Lemma 7 and Theorem 8 snapshots: strongly connected graphs. *)
      if Lgraph.is_strongly_connected g then begin
        let base = round - n + 1 in
        if base >= 1 then begin
          let skel_base = skeleton_at t base in
          let comp = component_in t skel_base p in
          lgraph_inside t ~what:"Lemma7" ~round ~owner:p g comp skel_base
        end;
        if round >= n then begin
          let keep_all = n <= 16 in
          if keep_all || not (Bitset.mem t.snapshotted p) then begin
            Bitset.add t.snapshotted p;
            t.snapshots <-
              {
                owner = p;
                at_round = round;
                nodes = Lgraph.nodes g;
                edges = Lgraph.to_digraph g;
              }
              :: t.snapshots
          end
        end
      end)
    views

let violations t = List.rev t.faults
let ok t = t.faults = []

let finalize ?(final_skeleton_exact = true) t =
  if final_skeleton_exact && t.round > 0 then begin
    (* Theorem 8: a strongly connected G^R_p (R >= n) is closed under
       stable-skeleton components: C^∞_q ⊆ G^R_p for all q ∈ G^R_p. *)
    let final_skel = Ssg_skeleton.Incremental.snapshot t.skel in
    let final_analysis = Ssg_skeleton.Incremental.analysis t.skel in
    List.iter
      (fun snap ->
        Bitset.iter
          (fun q ->
            let comp = Ssg_skeleton.Analysis.component_of final_analysis q in
            Bitset.iter
              (fun v ->
                if not (Bitset.mem snap.nodes v) then
                  report t
                    "round %d p%d: Thm8: node %d of C∞(%d) missing from \
                     snapshot"
                    snap.at_round (snap.owner + 1) v q)
              comp;
            Bitset.iter
              (fun v ->
                Digraph.iter_preds final_skel v (fun u ->
                    if
                      Bitset.mem comp u
                      && not (Digraph.mem_edge snap.edges u v)
                    then
                      report t
                        "round %d p%d: Thm8: edge %d->%d of C∞(%d) missing"
                        snap.at_round (snap.owner + 1) u v q))
              comp)
          snap.nodes)
      t.snapshots
  end;
  if t.fault_count > max_recorded_faults then
    t.faults <-
      Printf.sprintf "(%d further violations suppressed)"
        (t.fault_count - max_recorded_faults)
      :: t.faults;
  violations t
