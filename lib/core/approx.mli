(** The generic stable-skeleton approximation — Lines 9 and 14–25 of
    Algorithm 1, decoupled from the agreement logic.

    Every process maintains its timely neighbourhood [PT_p] and a
    round-labelled digraph [G_p] approximating the stable skeleton
    [G^∩∞].  Each round it (i) shrinks [PT_p] to the senders it heard
    from, (ii) rebuilds [G_p] from the fresh timely edges [(q --r--> p)]
    and the per-edge maxima of the graphs received from timely senders,
    (iii) purges edges older than [n] rounds, and (iv) prunes nodes that
    cannot reach [p].

    The paper proves this approximation correct in {e all} runs,
    regardless of the communication predicate (Lemmas 3–7, Theorem 8);
    the agreement layer merely adds a decision rule on top.  This module
    is usable stand-alone as a local synchrony-observation service.

    The [purge]/[prune] switches exist for the ablation experiments: both
    mechanisms are load-bearing for Lemma 7 / Theorem 8 (disabling them
    makes the corresponding monitors fire), not optimizations. *)

open Ssg_util
open Ssg_graph

type t

(** [create ~n ~self] — state before round 1: [PT_p = Π],
    [G_p = ⟨{p}, ∅⟩].  The switches default to [true] (the paper's
    algorithm). *)
val create :
  ?enable_purge:bool -> ?enable_prune:bool -> n:int -> self:int -> unit -> t

val n : t -> int
val self : t -> int

(** [rounds_done t] — how many rounds have been absorbed. *)
val rounds_done : t -> int

(** [message t] is the graph to broadcast this round: a copy of [G_p]. *)
val message : t -> Lgraph.t

(** [step t ~round ~received] performs the round-[round] update.
    [received q] must be [Some g] exactly when a round-[round] message
    carrying graph [g] arrived from [q] (in particular [received self]
    must be the graph [t] broadcast — a process always hears itself in
    this library's model).  Rounds must be consecutive starting at 1.
    @raise Invalid_argument on out-of-order rounds. *)
val step : t -> round:int -> received:(int -> Lgraph.t option) -> unit

(** [pt t] is a copy of the current [PT_p]. *)
val pt : t -> Bitset.t

(** [pt_mem t q] avoids the copy. *)
val pt_mem : t -> int -> bool

(** [graph t] is a copy of the current approximation [G_p]. *)
val graph : t -> Lgraph.t

(** [graph_view t] is the internal graph, {e borrowed}: do not mutate;
    invalidated by the next [step]. *)
val graph_view : t -> Lgraph.t

(** [is_strongly_connected t] — the decision test of Line 28.  Memoized
    across rounds whose rebuild reproduces the same support (node set and
    edge presence): once the run settles, only the labels of [G_p] keep
    rotating, and strong connectivity is label-blind, so the steady-state
    per-round cost is one allocation-free support comparison instead of a
    full SCC pass. *)
val is_strongly_connected : t -> bool
