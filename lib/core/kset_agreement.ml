open Ssg_graph
open Ssg_rounds

type via = [ `Certificate | `Adopted ]

type state = {
  order : int;
  id : int;
  approx : Approx.t;
  estimate_from_all : bool;
  confirm_rounds : int;
  mutable sc_streak : int;
      (* consecutive rounds (ending now) in which the decision test held *)
  mutable x : int;
  mutable dec : int option;
  mutable via : via option;
  mutable dec_round : int option;
}

type msg = { decide : bool; x : int; graph : Lgraph.t }

let self_of s = s.id
let estimate (s : state) = s.x
let decided s = s.dec
let decided_via s = s.via
let decision_round s = s.dec_round
let pt_of s = Approx.pt s.approx
let approx_of s = Approx.graph s.approx
let pt_cardinal s = Ssg_util.Bitset.cardinal (Approx.pt s.approx)
let approx_edge_count s = Lgraph.edge_count (Approx.graph_view s.approx)

(* Bits needed to write a round number (at least 1). *)
let round_bits round =
  let rec go b v = if v >= round + 1 then b else go (b + 1) (v * 2) in
  go 1 2

let value_bits = 32

module type CONFIG = sig
  val enable_purge : bool
  val enable_prune : bool
  val estimate_from_all : bool
  val decide_early : bool
  val strict_guard : bool
  val confirm_rounds : int
  val name : string
end

module Of_config (C : CONFIG) :
  Round_model.ALGORITHM with type state = state and type message = msg =
struct
  type nonrec state = state
  type message = msg

  let name = C.name

  let init ~n ~self ~input =
    {
      order = n;
      id = self;
      approx =
        Approx.create ~enable_purge:C.enable_purge
          ~enable_prune:C.enable_prune ~n ~self ();
      estimate_from_all = C.estimate_from_all;
      confirm_rounds = C.confirm_rounds;
      sc_streak = 0;
      x = input;
      dec = None;
      via = None;
      dec_round = None;
    }

  (* Lines 5–8: broadcast (decide|prop, x_p, G_p). *)
  let send ~round:_ s =
    { decide = s.dec <> None; x = s.x; graph = Approx.message s.approx }

  let transition ~round s inbox =
    (* Lines 9, 14–25: PT update and skeleton approximation. *)
    Approx.step s.approx ~round ~received:(fun q ->
        Option.map (fun m -> m.graph) inbox.(q));
    (match s.dec with
    | Some _ -> ()
    | None -> (
        (* Lines 10–13: adopt a decision received from a timely sender
           (deterministically the smallest such value). *)
        let adopted = ref None in
        Array.iteri
          (fun q m ->
            match m with
            | Some m when m.decide && Approx.pt_mem s.approx q -> (
                match !adopted with
                | None -> adopted := Some m.x
                | Some x -> if m.x < x then adopted := Some m.x)
            | _ -> ())
          inbox;
        match !adopted with
        | Some x ->
            s.x <- x;
            s.dec <- Some x;
            s.via <- Some `Adopted;
            s.dec_round <- Some round
        | None ->
            (* Line 27: x_p <- min of the values sent by timely senders
               (the ablated variant drops the timeliness filter). *)
            let mn = ref s.x in
            Array.iteri
              (fun q m ->
                match m with
                | Some m
                  when s.estimate_from_all || Approx.pt_mem s.approx q ->
                    if m.x < !mn then mn := m.x
                | _ -> ())
              inbox;
            s.x <- !mn;
            (* Lines 28–30: decide when the approximation is strongly
               connected from round n on.  [confirm_rounds] > 1 is the
               repaired rule (see Monitor/EXPERIMENTS): the certificate
               must persist, so it cannot consist of stale labels only. *)
            let guard =
              if C.decide_early then true
              else if C.strict_guard then round > s.order
              else round >= s.order
            in
            if guard && Approx.is_strongly_connected s.approx then begin
              s.sc_streak <- s.sc_streak + 1;
              if s.sc_streak >= C.confirm_rounds then begin
                s.dec <- Some s.x;
                s.via <- Some `Certificate;
                s.dec_round <- Some round
              end
            end
            else s.sc_streak <- 0));
    s

  let decision s = s.dec

  (* Actual wire size: tag bit + value + the graph at its exact codec
     length (Ssg_graph.Codec realizes this encoding bit-for-bit). *)
  let message_bits ~n:_ ~round m =
    1 + value_bits
    + Codec.encoded_bit_length m.graph ~label_bits:(round_bits round)
end

module Alg = Of_config (struct
  let enable_purge = true
  let enable_prune = true
  let estimate_from_all = false
  let decide_early = false
  let strict_guard = false
  let confirm_rounds = 1
  let name = "skeleton-kset"
end)

let packed = Round_model.Packed (module Alg)

let make_alg ?(enable_purge = true) ?(enable_prune = true)
    ?(estimate_from_all = false) ?(decide_early = false)
    ?(strict_guard = false) ?(confirm_rounds = 1) ?name () =
  if confirm_rounds < 1 then
    invalid_arg "Kset_agreement.make_alg: confirm_rounds must be >= 1";
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf
          "skeleton-kset(purge=%b,prune=%b,est_all=%b,early=%b,strict=%b,confirm=%d)"
          enable_purge enable_prune estimate_from_all decide_early strict_guard
          confirm_rounds
  in
  let module C = struct
    let enable_purge = enable_purge
    let enable_prune = enable_prune
    let estimate_from_all = estimate_from_all
    let decide_early = decide_early
    let strict_guard = strict_guard
    let confirm_rounds = confirm_rounds
    let name = name
  end in
  (module Of_config (C) : Round_model.ALGORITHM with type state = state)

let make ?enable_purge ?enable_prune ?estimate_from_all ?decide_early
    ?strict_guard ?confirm_rounds ?name () =
  let (module A) =
    make_alg ?enable_purge ?enable_prune ?estimate_from_all ?decide_early
      ?strict_guard ?confirm_rounds ?name ()
  in
  Round_model.Packed (module A)
