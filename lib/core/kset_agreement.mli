(** Algorithm 1 — solving k-set agreement with stable skeleton graphs.

    The algorithm is anonymous in [k]: it never mentions the parameter.
    Its guarantee is relative to the run — in every run satisfying
    [Psrcs(k)] the processes decide on at most [k] distinct values
    (Theorem 16), and in every run whatsoever it terminates (by
    [r_ST + 2n − 1]) with validity.  The decision rule is purely
    graph-theoretic: once the local approximation [G_p] is strongly
    connected at a round [>= n], the estimate is decided; decisions also
    propagate through [(decide, x, G)] messages from timely senders.

    Implements {!Ssg_rounds.Round_model.ALGORITHM}, so it runs on the
    generic executor.  [make] exposes the ablation switches of
    {!Approx} plus [estimate_from_all] (Line 27 taken over {e all}
    received values instead of only timely senders — breaks k-agreement;
    used by the ablation benches). *)

open Ssg_util
open Ssg_graph
open Ssg_rounds

type state

(** Views into the state, for monitors, traces and the Figure 1
    reproduction. *)

val self_of : state -> int
val estimate : state -> int  (** the current [x_p] *)

val decided : state -> int option

(** How the decision was taken: [`Certificate] = Line 29 (own strongly
    connected approximation), [`Adopted] = Line 12 (a decide message from
    a timely sender). *)
val decided_via : state -> [ `Certificate | `Adopted ] option

(** The round the decision was taken in. *)
val decision_round : state -> int option

val pt_of : state -> Bitset.t  (** current [PT_p] (copy) *)

val approx_of : state -> Lgraph.t  (** current [G_p] (copy) *)

(** Cheap scalar views (no graph copy) — what per-round trace events
    record. *)

val pt_cardinal : state -> int  (** [|PT_p|] *)

val approx_edge_count : state -> int  (** edges of the current [G_p] *)

(** The algorithm with the paper's exact semantics. *)
module Alg : Round_model.ALGORITHM with type state = state

(** [packed] is [Alg] ready for the generic harness. *)
val packed : Round_model.packed

(** [make ()] builds a (possibly ablated) variant.  All switches default
    to the paper's algorithm; [name] defaults to a string describing the
    switches. *)
val make :
  ?enable_purge:bool ->
  ?enable_prune:bool ->
  ?estimate_from_all:bool ->
  ?decide_early:bool ->
  ?strict_guard:bool ->
  ?confirm_rounds:int ->
  ?name:string ->
  unit ->
  Round_model.packed

(** [make_alg] is [make] returning the typed module (state observable). *)
val make_alg :
  ?enable_purge:bool ->
  ?enable_prune:bool ->
  ?estimate_from_all:bool ->
  ?decide_early:bool ->
  ?strict_guard:bool ->
  ?confirm_rounds:int ->
  ?name:string ->
  unit ->
  (module Round_model.ALGORITHM with type state = state)
