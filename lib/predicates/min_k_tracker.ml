open Ssg_util

type t = {
  mutable cached : (int * int) option; (* revision, min_k *)
  mutable witness : Bitset.t option; (* last maximum independent set *)
}

let create () = { cached = None; witness = None }

let compute t pts =
  let witness, alpha =
    Mis.max_independent_set_warm ?warm:t.witness (Predicate.sharing_graph pts)
  in
  t.witness <- Some witness;
  max alpha 1

let min_k ?revision t pts =
  match (revision, t.cached) with
  | Some stamp, Some (r, k) when r = stamp -> k
  | Some stamp, _ ->
      let k = compute t pts in
      t.cached <- Some (stamp, k);
      k
  | None, _ ->
      t.cached <- None;
      compute t pts
