(** Round-over-round [min_k] with a warm-started MIS.

    [min_k pts] is α of the source-sharing graph — the one genuinely
    expensive derivation on the per-round path (branch and bound, worst
    case exponential).  Across the rounds of one run the timely sets only
    shrink, so the sharing graph only loses edges and α is monotone
    nondecreasing: the previous round's maximum independent set is still
    independent and is the best possible incumbent for the next search
    ({!Mis.max_independent_set_warm}).  A tracker carries that witness
    from call to call, and optionally short-circuits entirely when the
    caller can certify that nothing changed (a skeleton revision stamp
    from {!Ssg_skeleton.Incremental}).

    One tracker per run; feeding it unrelated [pts] arrays is safe (the
    warm seed is defensively filtered) but forfeits the speedup. *)

open Ssg_util

type t

val create : unit -> t

(** [min_k ?revision t pts] is [Predicate.min_k pts], warm-started.
    When [revision] is given and equals the stamp of the previous call,
    the cached value is returned without touching [pts] at all — the
    caller asserts (e.g. via {!Ssg_skeleton.Incremental.revision}) that
    [pts] is unchanged since then.  Without [revision] the value is
    recomputed every call, still reusing the previous witness as the
    search incumbent. *)
val min_k : ?revision:int -> t -> Bitset.t array -> int
