(** Exact maximum independent sets on small undirected graphs.

    Deciding [Psrcs(k)] reduces to bounding the independence number of the
    {e source-sharing graph} (see {!Predicate}), so we need an exact MIS
    procedure.  This is a bitset branch-and-bound: worst case exponential,
    but the instances here are dense and small (n ≤ 128 in practice), where
    it answers in microseconds.

    A graph on [n] vertices is given as an adjacency array [adj] with
    [adj.(v)] the neighbour set of [v].  The relation is symmetrized
    defensively; self-loops are ignored (a vertex is never its own
    neighbour for independence purposes). *)

open Ssg_util

(** [independence_number adj] is α(G), the size of a maximum independent
    set.  α of the empty graph (n = 0) is 0. *)
val independence_number : Bitset.t array -> int

(** [max_independent_set adj] is a witness of size [α(G)]. *)
val max_independent_set : Bitset.t array -> Bitset.t

(** [max_independent_set_warm ?warm adj] is [(witness, α(G))], with the
    branch-and-bound incumbent {e warm-started} from [warm]: the seed is
    filtered down to an independent subset of [adj] (so any seed — stale,
    wrong-capacity, garbage — is sound) and becomes the initial lower
    bound.  When the seed is a previous round's maximum independent set
    and the graph has only lost edges since (the skeleton chain's
    sharing graphs), the filter keeps it whole and the search starts at
    the answer, only proving optimality.  The result is exact regardless
    of the seed. *)
val max_independent_set_warm : ?warm:Bitset.t -> Bitset.t array -> Bitset.t * int

(** [find_independent_set adj ~size] searches for an independent set of
    exactly [size] vertices, stopping as soon as one is found — the
    early-exit used by predicate checking ([Psrcs(k)] fails iff an
    independent set of size [k+1] exists).  Returns a witness or [None]. *)
val find_independent_set : Bitset.t array -> size:int -> Bitset.t option

(** [is_independent adj s] — no two members of [s] are adjacent. *)
val is_independent : Bitset.t array -> Bitset.t -> bool
