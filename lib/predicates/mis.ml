open Ssg_util

(* Normalize: symmetric adjacency without self-loops, over capacity n. *)
let normalize adj =
  let n = Array.length adj in
  let sym = Array.init n (fun v -> Bitset.copy adj.(v)) in
  Array.iteri
    (fun v row -> Bitset.iter (fun u -> Bitset.add sym.(u) v) row)
    adj;
  Array.iteri (fun v row -> Bitset.remove row v) sym;
  sym

let is_independent adj s =
  let sym = normalize adj in
  Bitset.for_all (fun v -> Bitset.disjoint sym.(v) s) s

(* Greedy clique cover of the candidate set: an independent set contains
   at most one vertex per clique, so |cover| is an upper bound on the
   independent set inside [candidates].  This is what makes the search
   fast on source-sharing graphs, which are unions of near-cliques (one
   per 2-source block): the cover is near-exact there. *)
let clique_cover_bound sym candidates =
  let rest = Bitset.copy candidates in
  let cliques = ref 0 in
  while not (Bitset.is_empty rest) do
    incr cliques;
    let v = Bitset.min_elt rest in
    Bitset.remove rest v;
    (* grow a clique: keep a set of common neighbours, absorb greedily *)
    let common = Bitset.inter sym.(v) rest in
    while not (Bitset.is_empty common) do
      let u = Bitset.min_elt common in
      Bitset.remove rest u;
      Bitset.remove common u;
      Bitset.inter_into ~into:common sym.(u)
    done
  done;
  !cliques

(* Seed the incumbent from a caller-supplied witness (typically the
   previous round's maximum independent set).  The seed is filtered down
   to an independent subset, so an arbitrary — even stale or garbage —
   seed is always a sound lower bound.  Along the antitone skeleton
   chain the sharing graph only loses edges, so a previous witness stays
   independent, survives the filter whole, and the warm incumbent starts
   at the previous α: the search opens with its strongest possible
   pruning bound and, in the common no-change round, only has to prove
   optimality rather than rediscover the set. *)
let seed_incumbent sym warm =
  let n = Array.length sym in
  let chosen = Bitset.create n in
  (match warm with
  | Some w when Bitset.capacity w = n ->
      Bitset.iter
        (fun v -> if Bitset.disjoint sym.(v) chosen then Bitset.add chosen v)
        w
  | _ -> ());
  chosen

(* Branch and bound.  State: [chosen] (members so far), [candidates]
   (vertices still allowed).  Bound: |chosen| + clique-cover(candidates)
   must beat the incumbent.  Branch on a max-degree candidate v (degree
   within the candidate set): either v joins (drop v and its neighbours)
   or v is excluded.  [target]: stop as soon as an IS of that size is
   found. *)
let search ?warm sym ~target =
  let n = Array.length sym in
  let seed = seed_incumbent sym warm in
  let best = ref seed in
  let best_size = ref (Bitset.cardinal seed) in
  let done_ =
    ref (match target with Some t -> !best_size >= t | None -> false)
  in
  let rec go chosen chosen_size candidates =
    if not !done_ then begin
      if chosen_size > !best_size then begin
        best := Bitset.copy chosen;
        best_size := chosen_size;
        match target with
        | Some t when !best_size >= t -> done_ := true
        | _ -> ()
      end;
      if not !done_ then begin
        let upper = chosen_size + clique_cover_bound sym candidates in
        let beats_target =
          match target with Some t -> upper >= t | None -> true
        in
        if upper > !best_size && beats_target then begin
          (* Pick the candidate with the highest degree inside candidates. *)
          match Bitset.min_elt_opt candidates with
          | None -> ()
          | Some first ->
              let pivot = ref first in
              let pivot_deg = ref (-1) in
              Bitset.iter
                (fun v ->
                  let d = Bitset.cardinal (Bitset.inter sym.(v) candidates) in
                  if d > !pivot_deg then begin
                    pivot := v;
                    pivot_deg := d
                  end)
                candidates;
              let v = !pivot in
              (* Branch 1: v in the set. *)
              let with_v = Bitset.copy candidates in
              Bitset.remove with_v v;
              Bitset.diff_into ~into:with_v sym.(v);
              Bitset.add chosen v;
              go chosen (chosen_size + 1) with_v;
              Bitset.remove chosen v;
              (* Branch 2: v excluded. *)
              if not !done_ then begin
                let without_v = Bitset.copy candidates in
                Bitset.remove without_v v;
                go chosen chosen_size without_v
              end
        end
      end
    end
  in
  if not !done_ then go (Bitset.create n) 0 (Bitset.full n);
  (!best, !best_size)

let independence_number adj =
  if Array.length adj = 0 then 0
  else snd (search (normalize adj) ~target:None)

let max_independent_set adj =
  if Array.length adj = 0 then Bitset.create 0
  else fst (search (normalize adj) ~target:None)

let max_independent_set_warm ?warm adj =
  if Array.length adj = 0 then (Bitset.create 0, 0)
  else search ?warm (normalize adj) ~target:None

let find_independent_set adj ~size =
  if size < 0 then invalid_arg "Mis.find_independent_set: negative size";
  let n = Array.length adj in
  if size = 0 then Some (Bitset.create n)
  else if size > n then None
  else begin
    let witness, found = search (normalize adj) ~target:(Some size) in
    if found >= size then Some witness else None
  end
