(** Round skeletons [G^∩r] and their limit, the stable skeleton [G^∩∞].

    [G^∩r] is the subgraph of edges that were timely in {e every} round up
    to [r]: [E^∩r = ∩_{0 < r' <= r} E^r'].  It is antitone in [r]
    (eq. (1)); over an infinite run it reaches a fixpoint [G^∩∞] after
    finitely many rounds (the stabilization round [r_ST]).

    This module computes skeletons incrementally (an accumulator absorbing
    one round graph at a time, O(n²/w) per round) and offline from a
    {!Ssg_rounds.Trace}. *)

open Ssg_graph
open Ssg_rounds

type t

(** [start ~n] is the accumulator before round 1; its value is the
    complete graph with self-loops (the intersection over zero rounds). *)
val start : n:int -> t

(** [absorb acc g] intersects the next round's communication graph into
    the accumulator and returns the round number just absorbed. *)
val absorb : t -> Digraph.t -> int

(** [absorb_delta acc g] is {!absorb}, returning the number of skeleton
    edges the round {e removed} instead of the round number.  Because the
    chain (1) is antitone, a zero delta means [G^∩r = G^∩(r-1)] exactly —
    every derivation of the skeleton (SCC partition, PT sets, the
    source-sharing graph and its independence number) is still valid.
    From the stabilization round on, every delta is zero, so incremental
    consumers do O(n²/w) intersection work per round and nothing else. *)
val absorb_delta : t -> Digraph.t -> int

(** [rounds_absorbed acc]. *)
val rounds_absorbed : t -> int

(** [current acc] is a copy of [G^∩r] for [r = rounds_absorbed acc]. *)
val current : t -> Digraph.t

(** [view acc] is the internal skeleton graph, {e borrowed}: valid only
    until the next [absorb], and must not be mutated.  Zero-copy variant
    of [current] for per-round monitors. *)
val view : t -> Digraph.t

(** [at trace r] is [G^∩r] computed from the first [r] rounds of the
    trace.  @raise Invalid_argument if [r] is out of range. *)
val at : Trace.t -> int -> Digraph.t

(** [all trace] is [[| G^∩1; ...; G^∩R |]]. *)
val all : Trace.t -> Digraph.t array

(** [final trace] is [G^∩R] for [R = Trace.rounds trace] — the best
    available approximation of [G^∩∞] from a finite prefix (exact once the
    trace extends past the run's stabilization round). *)
val final : Trace.t -> Digraph.t

(** [stabilization_round trace] is the earliest round [r] with
    [G^∩r = final trace].  By antitonicity this is exactly the round from
    which the skeleton stopped shrinking within the trace. *)
val stabilization_round : Trace.t -> int
