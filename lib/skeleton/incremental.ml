open Ssg_util
open Ssg_graph

(* The cache keys on a revision counter that bumps only when an absorbed
   round actually removed skeleton edges.  Everything derived from the
   skeleton graph (the Analysis, the PT rows, the shared snapshot) is
   stamped with the revision it was computed at and rebuilt lazily on
   the first access after a change.  Soundness rests on the antitone
   chain (1): absorbing a round either leaves the skeleton bit-for-bit
   equal (delta 0) or strictly shrinks it (delta > 0, revision bump) —
   there is no third case, so a stamp match proves graph equality. *)
type t = {
  skel : Skeleton.t;
  mutable revision : int;
  mutable last_delta : int;
  mutable stable_rounds : int; (* consecutive zero-delta rounds, ending now *)
  mutable analysis : (int * Analysis.t) option;
  mutable pts : (int * Bitset.t array) option;
  mutable snapshot : (int * Digraph.t) option;
}

let start ~n =
  {
    skel = Skeleton.start ~n;
    revision = 0;
    last_delta = 0;
    stable_rounds = 0;
    analysis = None;
    pts = None;
    snapshot = None;
  }

let absorb t g =
  let removed = Skeleton.absorb_delta t.skel g in
  t.last_delta <- removed;
  if removed > 0 then begin
    t.revision <- t.revision + 1;
    t.stable_rounds <- 0
  end
  else t.stable_rounds <- t.stable_rounds + 1;
  removed

let rounds t = Skeleton.rounds_absorbed t.skel
let revision t = t.revision
let last_delta t = t.last_delta
let stable_rounds t = t.stable_rounds
let view t = Skeleton.view t.skel

let cached cell stamp build install =
  match cell with
  | Some (r, v) when r = stamp -> v
  | _ ->
      let v = build () in
      install (Some (stamp, v));
      v

let analysis t =
  cached t.analysis t.revision
    (fun () -> Analysis.analyze (Skeleton.view t.skel))
    (fun c -> t.analysis <- c)

let pts t =
  cached t.pts t.revision
    (fun () -> Timely.sources_of (Skeleton.view t.skel))
    (fun c -> t.pts <- c)

let snapshot t =
  cached t.snapshot t.revision
    (fun () -> Skeleton.current t.skel)
    (fun c -> t.snapshot <- c)
