(** Delta-maintained round skeletons: [G^∩r] plus every derivation the
    hot path needs, recomputed only on rounds that change the skeleton.

    A plain {!Skeleton} accumulator already makes the intersection itself
    cheap (O(n²/w) per round), but its consumers — per-round structural
    {!Analysis}, the timely sets [PT(·)], the [Psrcs] machinery — used to
    rebuild their objects every round from the current graph.  The chain
    [G^∩1 ⊇ G^∩2 ⊇ …] (eq. (1)) only ever {e loses} edges, and in an
    eventually-stable run it loses none at all from the stabilization
    round on; on long runs almost every round is a no-op.  This wrapper
    counts the edges each absorb removes ({!Ssg_graph.Digraph.inter_into_count})
    and keys a {e revision}: zero delta ⇒ the skeleton is bit-for-bit
    unchanged ⇒ the cached SCC view, PT rows and snapshot stay valid.

    Borrowing contract: values returned by {!analysis}, {!pts},
    {!snapshot} and {!view} are owned by the accumulator.  They must not
    be mutated, and they are guaranteed stable only until the next
    edge-removing {!absorb} (equal across calls while {!revision} is
    unchanged — that sharing is the point). *)

open Ssg_util
open Ssg_graph

type t

(** [start ~n] — the accumulator before round 1 (complete graph). *)
val start : n:int -> t

(** [absorb t g] intersects round graph [g] into the skeleton and
    returns the number of edges removed.  [0] means the cached
    derivations survived the round untouched. *)
val absorb : t -> Digraph.t -> int

(** [rounds t] — rounds absorbed so far. *)
val rounds : t -> int

(** [revision t] — how many absorbed rounds changed the skeleton.
    Cached derivations are valid exactly while this is unchanged. *)
val revision : t -> int

(** [last_delta t] — edges removed by the most recent {!absorb}. *)
val last_delta : t -> int

(** [stable_rounds t] — consecutive zero-delta rounds ending now; within
    a trace this reaches [rounds t - r_ST + 1] after stabilization. *)
val stable_rounds : t -> int

(** [view t] — the live skeleton graph, borrowed (do not mutate). *)
val view : t -> Digraph.t

(** [analysis t] — the {!Analysis} of the current skeleton, cached per
    revision. *)
val analysis : t -> Analysis.t

(** [pts t] — the timely rows [[| PT(0); …; PT(n-1) |]] of the current
    skeleton, cached per revision (rows borrowed). *)
val pts : t -> Bitset.t array

(** [snapshot t] — an immutable copy of the current skeleton, {e shared}
    across calls while the revision is unchanged.  Monitors that retain
    one skeleton per round pay one O(n²) copy per revision instead of
    one per round. *)
val snapshot : t -> Digraph.t
