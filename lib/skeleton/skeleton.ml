open Ssg_graph
open Ssg_rounds

type t = { acc : Digraph.t; mutable rounds : int }

let start ~n =
  if n <= 0 then invalid_arg "Skeleton.start: empty system";
  { acc = Digraph.complete ~self_loops:true n; rounds = 0 }

let absorb s g =
  if Digraph.order g <> Digraph.order s.acc then
    invalid_arg "Skeleton.absorb: graph order mismatch";
  Digraph.inter_into ~into:s.acc g;
  s.rounds <- s.rounds + 1;
  s.rounds

let absorb_delta s g =
  if Digraph.order g <> Digraph.order s.acc then
    invalid_arg "Skeleton.absorb_delta: graph order mismatch";
  let removed = Digraph.inter_into_count ~into:s.acc g in
  s.rounds <- s.rounds + 1;
  removed

let rounds_absorbed s = s.rounds
let current s = Digraph.copy s.acc
let view s = s.acc

let at trace r =
  if r < 1 || r > Trace.rounds trace then
    invalid_arg (Printf.sprintf "Skeleton.at: round %d out of range" r);
  let s = start ~n:(Trace.n trace) in
  for r' = 1 to r do
    ignore (absorb s (Trace.graph trace r'))
  done;
  current s

let all trace =
  let s = start ~n:(Trace.n trace) in
  Array.init (Trace.rounds trace) (fun i ->
      ignore (absorb s (Trace.graph trace (i + 1)));
      current s)

let final trace = at trace (Trace.rounds trace)

let stabilization_round trace =
  let skeletons = all trace in
  let last = skeletons.(Array.length skeletons - 1) in
  (* Antitone chain: find the first index equal to the final value. *)
  let rec go r =
    if Digraph.equal skeletons.(r - 1) last then r else go (r + 1)
  in
  go 1
