open Ssg_util

(* Invariant: succ.(p) contains q  <=>  pred.(q) contains p.  Both are kept
   in sync by every mutation; the redundancy buys O(n/w) predecessor
   queries, which dominate the skeleton computations. *)
type t = { n : int; succ : Bitset.t array; pred : Bitset.t array }

let create n =
  {
    n;
    succ = Array.init n (fun _ -> Bitset.create n);
    pred = Array.init n (fun _ -> Bitset.create n);
  }

let complete ?(self_loops = true) n =
  let g =
    {
      n;
      succ = Array.init n (fun _ -> Bitset.full n);
      pred = Array.init n (fun _ -> Bitset.full n);
    }
  in
  if not self_loops then
    for p = 0 to n - 1 do
      Bitset.remove g.succ.(p) p;
      Bitset.remove g.pred.(p) p
    done;
  g

let order g = g.n

let copy g =
  {
    n = g.n;
    succ = Array.map Bitset.copy g.succ;
    pred = Array.map Bitset.copy g.pred;
  }

let equal a b =
  a.n = b.n && Array.for_all2 Bitset.equal a.succ b.succ

let check_node g i =
  if i < 0 || i >= g.n then
    invalid_arg (Printf.sprintf "Digraph: node %d out of range [0, %d)" i g.n)

let add_edge g p q =
  check_node g p;
  check_node g q;
  Bitset.add g.succ.(p) q;
  Bitset.add g.pred.(q) p

let remove_edge g p q =
  check_node g p;
  check_node g q;
  Bitset.remove g.succ.(p) q;
  Bitset.remove g.pred.(q) p

let mem_edge g p q =
  check_node g p;
  check_node g q;
  Bitset.mem g.succ.(p) q

let add_self_loops g =
  for p = 0 to g.n - 1 do
    add_edge g p p
  done

let has_all_self_loops g =
  let rec go p = p >= g.n || (Bitset.mem g.succ.(p) p && go (p + 1)) in
  go 0

let edge_count g =
  Array.fold_left (fun acc row -> acc + Bitset.cardinal row) 0 g.succ

let succs g p =
  check_node g p;
  Bitset.copy g.succ.(p)

let preds g q =
  check_node g q;
  Bitset.copy g.pred.(q)

let inter_preds_into g q ~into =
  check_node g q;
  Bitset.inter_into ~into g.pred.(q)

let iter_succs g p f =
  check_node g p;
  Bitset.iter f g.succ.(p)

let iter_preds g q f =
  check_node g q;
  Bitset.iter f g.pred.(q)

let out_degree g p =
  check_node g p;
  Bitset.cardinal g.succ.(p)

let in_degree g q =
  check_node g q;
  Bitset.cardinal g.pred.(q)

let iter_edges g f =
  for p = 0 to g.n - 1 do
    Bitset.iter (fun q -> f p q) g.succ.(p)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun p q -> acc := (p, q) :: !acc);
  List.rev !acc

let of_edges n es =
  let g = create n in
  List.iter (fun (p, q) -> add_edge g p q) es;
  g

let check_same a b =
  if a.n <> b.n then
    invalid_arg
      (Printf.sprintf "Digraph: order mismatch (%d vs %d)" a.n b.n)

let inter_into ~into g =
  check_same into g;
  for p = 0 to g.n - 1 do
    Bitset.inter_into ~into:into.succ.(p) g.succ.(p);
    Bitset.inter_into ~into:into.pred.(p) g.pred.(p)
  done

let inter_into_count ~into g =
  check_same into g;
  let removed = ref 0 in
  for p = 0 to g.n - 1 do
    let before = Bitset.cardinal into.succ.(p) in
    Bitset.inter_into ~into:into.succ.(p) g.succ.(p);
    removed := !removed + before - Bitset.cardinal into.succ.(p);
    Bitset.inter_into ~into:into.pred.(p) g.pred.(p)
  done;
  !removed

let inter a b =
  let r = copy a in
  inter_into ~into:r b;
  r

let union_into ~into g =
  check_same into g;
  for p = 0 to g.n - 1 do
    Bitset.union_into ~into:into.succ.(p) g.succ.(p);
    Bitset.union_into ~into:into.pred.(p) g.pred.(p)
  done

let union a b =
  let r = copy a in
  union_into ~into:r b;
  r

let subgraph_of a b =
  check_same a b;
  let rec go p = p >= a.n || (Bitset.subset a.succ.(p) b.succ.(p) && go (p + 1)) in
  go 0

let induced g nodes =
  if Bitset.capacity nodes <> g.n then
    invalid_arg "Digraph.induced: node set capacity mismatch";
  let r = create g.n in
  Bitset.iter
    (fun p ->
      Bitset.blit ~src:g.succ.(p) ~dst:r.succ.(p);
      Bitset.inter_into ~into:r.succ.(p) nodes)
    nodes;
  (* Rebuild predecessor rows from the filtered successor rows. *)
  for p = 0 to g.n - 1 do
    Bitset.iter (fun q -> Bitset.add r.pred.(q) p) r.succ.(p)
  done;
  r

let transpose g = { n = g.n; succ = Array.map Bitset.copy g.pred; pred = Array.map Bitset.copy g.succ }

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph on %d nodes:@," g.n;
  iter_edges g (fun p q -> Format.fprintf fmt "  %d -> %d@," p q);
  Format.fprintf fmt "@]"
