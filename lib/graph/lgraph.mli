(** Round-labelled directed graphs — the local approximation [G_p].

    Algorithm 1 has every process maintain a {e weighted} digraph whose
    edge labels are round numbers: [(q --s--> p)] records that [q] was in
    [p]'s timely neighbourhood at round [s] (Lemma 3).  This module is that
    data structure, with exactly the operations the algorithm needs:

    - re-initialization to [⟨{p}, ∅⟩] each round (Line 15),
    - recording fresh timely edges with the current round label (Line 17),
    - node-set union with received graphs (Line 18),
    - per-edge maximum of labels over received graphs (Lines 19–23),
    - purging of stale labels (Line 24),
    - pruning of nodes that cannot reach the owner (Line 25),
    - the strong-connectivity decision test (Line 28).

    Labels are strictly positive round numbers; absence is represented by
    0.  Invariant: a positive label implies both endpoints are in the node
    set. *)

open Ssg_util

type t

(** [create n ~self] is [⟨{self}, ∅⟩] over the universe [0..n-1]. *)
val create : int -> self:int -> t

(** [capacity g] is the universe size [n]. *)
val capacity : t -> int

(** [reset g ~self] re-initializes in place to [⟨{self}, ∅⟩]. *)
val reset : t -> self:int -> unit

val copy : t -> t

(** [equal a b] — same universe, node set, edges and labels. *)
val equal : t -> t -> bool

(** [same_support a b] — same universe, node set and edge {e presence},
    labels ignored.  Label-blind properties (reachability, strong
    connectivity) agree on support-equal graphs, so a caller that
    refreshes labels every round can memoize them across support-stable
    rounds.  O(n²) word compares, allocation-free. *)
val same_support : t -> t -> bool

(** [mem_node g p] tests node membership. *)
val mem_node : t -> int -> bool

(** [add_node g p] inserts a node. *)
val add_node : t -> int -> unit

(** [nodes g] is a fresh bitset of the nodes. *)
val nodes : t -> Bitset.t

val node_count : t -> int

(** [label g q p] is the label of edge [q -> p], or [0] when absent. *)
val label : t -> int -> int -> int

val mem_edge : t -> int -> int -> bool

(** [set_edge g q p ~label] inserts/overwrites edge [q -> p]; adds both
    endpoints to the node set.  @raise Invalid_argument if [label <= 0]. *)
val set_edge : t -> int -> int -> label:int -> unit

(** [remove_edge g q p] deletes the edge (keeps the endpoints). *)
val remove_edge : t -> int -> int -> unit

(** [edge_count g] is the number of labelled edges. *)
val edge_count : t -> int

(** [iter_edges g f] calls [f q p label] for every edge [q -> p]. *)
val iter_edges : t -> (int -> int -> int -> unit) -> unit

(** [edges g] lists [(q, p, label)] triples in lexicographic order. *)
val edges : t -> (int * int * int) list

(** [union_nodes_into ~into src] adds [src]'s nodes to [into] — Line 18. *)
val union_nodes_into : into:t -> t -> unit

(** [merge_max_into ~into src] sets each edge of [into] to the maximum of
    its label and [src]'s label for that edge (treating absent as 0), and
    unions the node sets — the [R_{i,j}]/[r_max] computation of
    Lines 19–23 when folded over all received graphs. *)
val merge_max_into : into:t -> t -> unit

(** [purge g ~upto] removes every edge with label [<= upto] — Line 24 with
    [upto = r - n]. *)
val purge : t -> upto:int -> unit

(** [prune_unreachable g ~self] removes every node (and its incident
    edges) from which [self] is not reachable via labelled edges —
    Line 25.  [self] itself is always kept. *)
val prune_unreachable : t -> self:int -> unit

(** [is_strongly_connected g] — the labelled subgraph on [nodes g] is
    strongly connected (true when the node set is the singleton owner) —
    the decision test of Line 28. *)
val is_strongly_connected : t -> bool

(** [swap a b] exchanges the contents of [a] and [b] in O(1) — the
    double-buffering primitive for the per-round rebuild of Algorithm 1
    (Line 15 re-initializes [G_p] every round; swapping avoids copying the
    whole label matrix back).  @raise Invalid_argument on universe
    mismatch. *)
val swap : t -> t -> unit

(** [to_digraph g] forgets labels, yielding the unlabelled edge set on the
    same universe. *)
val to_digraph : t -> Digraph.t

(** [min_label g] / [max_label g] over present edges; [None] if edgeless. *)
val min_label : t -> int option

val max_label : t -> int option

(** [encoded_bits g ~label_bits] is the size of a wire encoding of the
    graph: each node id costs [⌈log₂ n⌉] bits, each edge two ids plus
    [label_bits] for the round label.  Used for the message-bit-complexity
    experiment (Section V's "polynomial in n" claim). *)
val encoded_bits : t -> label_bits:int -> int

val pp : Format.formatter -> t -> unit
