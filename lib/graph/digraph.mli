(** Dense mutable directed graphs over a fixed universe of nodes.

    Nodes are the integers [0 .. n-1] — in this library, process
    identifiers.  Both successor and predecessor adjacency are maintained as
    bitset rows, so edge insertion/deletion is O(1) and row-wise set algebra
    (the heart of skeleton intersection and timely-neighbourhood updates) is
    O(n / word_size).

    The communication graph [G^r] of a round (an edge [p -> q] means "q
    received p's round-r message") and the round skeletons [G^∩r] are both
    values of this type. *)

open Ssg_util

type t

(** [create n] is the edgeless graph on [n] nodes. *)
val create : int -> t

(** [complete ?self_loops n] has every edge between distinct nodes, plus
    all self-loops when [self_loops] (default [true]). *)
val complete : ?self_loops:bool -> int -> t

(** [order g] is the number [n] of nodes. *)
val order : t -> int

val copy : t -> t

(** [equal a b] — same node count and same edge set. *)
val equal : t -> t -> bool

(** [add_edge g p q] inserts the edge [p -> q].  Idempotent. *)
val add_edge : t -> int -> int -> unit

(** [remove_edge g p q] deletes the edge [p -> q].  Idempotent. *)
val remove_edge : t -> int -> int -> unit

(** [mem_edge g p q] tests for the edge [p -> q]. *)
val mem_edge : t -> int -> int -> bool

(** [add_self_loops g] inserts [p -> p] for every node. *)
val add_self_loops : t -> unit

(** [has_all_self_loops g] checks [∀p. (p -> p) ∈ g]. *)
val has_all_self_loops : t -> bool

(** [edge_count g] is the number of edges, self-loops included.  O(n²/w). *)
val edge_count : t -> int

(** [succs g p] is a fresh bitset of successors of [p] ([q] with
    [p -> q]). *)
val succs : t -> int -> Bitset.t

(** [preds g q] is a fresh bitset of predecessors of [q] ([p] with
    [p -> q]).  In round-model terms: the set of processes [q] heard of. *)
val preds : t -> int -> Bitset.t

(** [inter_preds_into g q ~into] computes [into ← into ∩ preds g q] without
    allocating — the timely-neighbourhood update [PT_p ← PT_p ∩ HO(p, r)]. *)
val inter_preds_into : t -> int -> into:Bitset.t -> unit

val iter_succs : t -> int -> (int -> unit) -> unit
val iter_preds : t -> int -> (int -> unit) -> unit
val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** [iter_edges g f] calls [f p q] for every edge [p -> q], in lexicographic
    order. *)
val iter_edges : t -> (int -> int -> unit) -> unit

(** [edges g] lists all edges in lexicographic order. *)
val edges : t -> (int * int) list

(** [of_edges n es] builds a graph on [n] nodes from an edge list. *)
val of_edges : int -> (int * int) list -> t

(** [inter_into ~into g] intersects edge sets: [into ← into ∩ g] — one step
    of the skeleton computation [E^∩r = E^∩(r-1) ∩ E^r].
    @raise Invalid_argument on order mismatch. *)
val inter_into : into:t -> t -> unit

(** [inter_into_count ~into g] is {!inter_into} and additionally reports
    how many edges the step removed from [into].  A zero return means
    [into] was already a subgraph of [g] — the signal incremental skeleton
    consumers use to keep cached per-round derivations (SCC view, timely
    sets, MIS bounds) alive instead of recomputing them. *)
val inter_into_count : into:t -> t -> int

(** [inter a b] is the edge intersection as a fresh graph. *)
val inter : t -> t -> t

(** [union_into ~into g] unions edge sets. *)
val union_into : into:t -> t -> unit

val union : t -> t -> t

(** [subgraph_of a b] is [true] iff [a]'s edges are a subset of [b]'s. *)
val subgraph_of : t -> t -> bool

(** [induced g nodes] keeps only edges with both endpoints in [nodes].
    The node universe stays [0..n-1]; nodes outside [nodes] become
    isolated. *)
val induced : t -> Bitset.t -> t

(** [transpose g] reverses every edge. *)
val transpose : t -> t

val pp : Format.formatter -> t -> unit
