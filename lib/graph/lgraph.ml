open Ssg_util

(* Dense n×n label matrix; labels.(q*n + p) is the label of edge q -> p,
   0 when absent.  The node set is tracked separately because Algorithm 1
   distinguishes isolated nodes (members of V_p without edges) from absent
   ones. *)
type t = { n : int; mutable nodes : Bitset.t; mutable labels : int array }

let check_node g i =
  if i < 0 || i >= g.n then
    invalid_arg (Printf.sprintf "Lgraph: node %d out of range [0, %d)" i g.n)

let create n ~self =
  if n <= 0 then invalid_arg "Lgraph.create: empty universe";
  let g = { n; nodes = Bitset.create n; labels = Array.make (n * n) 0 } in
  check_node g self;
  Bitset.add g.nodes self;
  g

let capacity g = g.n

let reset g ~self =
  check_node g self;
  Bitset.clear g.nodes;
  Bitset.add g.nodes self;
  Array.fill g.labels 0 (Array.length g.labels) 0

let copy g =
  { n = g.n; nodes = Bitset.copy g.nodes; labels = Array.copy g.labels }

let equal a b =
  a.n = b.n && Bitset.equal a.nodes b.nodes && a.labels = b.labels

(* Same node set and same edge-presence pattern, labels ignored.  One
   linear pass over the label matrix, no allocation — cheaper than any
   traversal, and the key to memoizing label-blind derivations (strong
   connectivity) across rounds that only refresh labels. *)
let same_support a b =
  a.n = b.n
  && Bitset.equal a.nodes b.nodes
  &&
  let len = Array.length a.labels in
  let rec go i =
    i >= len || (a.labels.(i) > 0 == (b.labels.(i) > 0) && go (i + 1))
  in
  go 0

let mem_node g p =
  check_node g p;
  Bitset.mem g.nodes p

let add_node g p =
  check_node g p;
  Bitset.add g.nodes p

let nodes g = Bitset.copy g.nodes
let node_count g = Bitset.cardinal g.nodes

let label g q p =
  check_node g q;
  check_node g p;
  g.labels.((q * g.n) + p)

let mem_edge g q p = label g q p > 0

let set_edge g q p ~label =
  check_node g q;
  check_node g p;
  if label <= 0 then invalid_arg "Lgraph.set_edge: label must be positive";
  Bitset.add g.nodes q;
  Bitset.add g.nodes p;
  g.labels.((q * g.n) + p) <- label

let remove_edge g q p =
  check_node g q;
  check_node g p;
  g.labels.((q * g.n) + p) <- 0

let iter_edges g f =
  for q = 0 to g.n - 1 do
    let base = q * g.n in
    for p = 0 to g.n - 1 do
      let l = g.labels.(base + p) in
      if l > 0 then f q p l
    done
  done

let edge_count g =
  let c = ref 0 in
  iter_edges g (fun _ _ _ -> incr c);
  !c

let edges g =
  let acc = ref [] in
  iter_edges g (fun q p l -> acc := (q, p, l) :: !acc);
  List.rev !acc

let check_same a b =
  if a.n <> b.n then
    invalid_arg (Printf.sprintf "Lgraph: universe mismatch (%d vs %d)" a.n b.n)

let union_nodes_into ~into src =
  check_same into src;
  Bitset.union_into ~into:into.nodes src.nodes

let merge_max_into ~into src =
  check_same into src;
  Bitset.union_into ~into:into.nodes src.nodes;
  for i = 0 to Array.length src.labels - 1 do
    if src.labels.(i) > into.labels.(i) then into.labels.(i) <- src.labels.(i)
  done

let purge g ~upto =
  for i = 0 to Array.length g.labels - 1 do
    if g.labels.(i) > 0 && g.labels.(i) <= upto then g.labels.(i) <- 0
  done

(* Backward BFS from [self] along labelled edges: a node survives iff it
   can reach [self].  Frontier expansion scans the label matrix rows of
   candidate predecessors — O(n²) per call, dominated elsewhere. *)
let prune_unreachable g ~self =
  check_node g self;
  let keep = Bitset.create g.n in
  Bitset.add keep self;
  let frontier = ref [ self ] in
  while !frontier <> [] do
    let current = !frontier in
    frontier := [];
    List.iter
      (fun p ->
        for q = 0 to g.n - 1 do
          if
            (not (Bitset.mem keep q))
            && Bitset.mem g.nodes q
            && g.labels.((q * g.n) + p) > 0
          then begin
            Bitset.add keep q;
            frontier := q :: !frontier
          end
        done)
      current
  done;
  (* Drop nodes not kept, and all their incident edges. *)
  Bitset.iter
    (fun v ->
      if not (Bitset.mem keep v) then begin
        for p = 0 to g.n - 1 do
          g.labels.((v * g.n) + p) <- 0;
          g.labels.((p * g.n) + v) <- 0
        done
      end)
    g.nodes;
  Bitset.inter_into ~into:g.nodes keep

let swap a b =
  check_same a b;
  let nodes = a.nodes and labels = a.labels in
  a.nodes <- b.nodes;
  a.labels <- b.labels;
  b.nodes <- nodes;
  b.labels <- labels

let to_digraph g =
  let d = Digraph.create g.n in
  iter_edges g (fun q p _ -> Digraph.add_edge d q p);
  d

let is_strongly_connected g =
  if Bitset.cardinal g.nodes <= 1 then true
  else Scc.is_strongly_connected ~nodes:g.nodes (to_digraph g)

let fold_labels f g init =
  let acc = ref init in
  iter_edges g (fun _ _ l -> acc := f !acc l);
  !acc

let min_label g =
  fold_labels (fun acc l -> match acc with None -> Some l | Some m -> Some (min m l)) g None

let max_label g =
  fold_labels (fun acc l -> match acc with None -> Some l | Some m -> Some (max m l)) g None

let bits_for n =
  let rec go b v = if v >= n then b else go (b + 1) (v * 2) in
  go 1 2

let encoded_bits g ~label_bits =
  if label_bits < 0 then invalid_arg "Lgraph.encoded_bits: negative label_bits";
  let id_bits = bits_for g.n in
  (node_count g * id_bits) + (edge_count g * ((2 * id_bits) + label_bits))

let pp fmt g =
  Format.fprintf fmt "@[<v>nodes %a@," Bitset.pp g.nodes;
  iter_edges g (fun q p l -> Format.fprintf fmt "  %d -[%d]-> %d@," q l p);
  Format.fprintf fmt "@]"
