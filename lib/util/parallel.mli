(** Parallel map over OCaml 5 domains.

    The experiment harness runs thousands of independent simulations; this
    module spreads them across cores.  Work items are claimed dynamically
    from a shared atomic counter, so uneven run lengths balance
    automatically.  Results are written into disjoint slots, so no locking
    is needed on the output.

    Exceptions raised by [f] are caught per item, and the first one is
    re-raised in the calling domain after all workers join.  A recorded
    failure makes every worker stop claiming further items, so a failing
    batch aborts early instead of draining the whole array. *)

(** [map ?domains f xs] applies [f] to every element of [xs], using up to
    [domains] additional domains (default: [Domain.recommended_domain_count
    - 1], at least 0).  With [domains = 0], runs sequentially.  Order of
    results matches the input. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init ?domains n f] is [map ?domains f [|0; ...; n-1|]] without
    materializing the index array semantics difference. *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a array

(** [default_domains ()] is the worker count [map] uses when [?domains] is
    omitted. *)
val default_domains : unit -> int
