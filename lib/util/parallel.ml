(* Dynamic work claiming: each worker repeatedly takes the next unclaimed
   index from an atomic counter.  Output slots are disjoint, so plain
   writes are safe; publication happens-before the join of the domains. *)

let default_domains () = max 0 (Domain.recommended_domain_count () - 1)

let map ?domains f xs =
  let n = Array.length xs in
  let workers = match domains with Some d -> max 0 d | None -> default_domains () in
  if n = 0 then [||]
  else if workers = 0 || n = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        (* Early abort: once any worker records a failure, the remaining
           workers stop claiming items instead of draining the array. *)
        if Atomic.get failure <> None then continue := false
        else
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match f xs.(i) with
          | y -> results.(i) <- Some y
          | exception e ->
              (* Record the first failure; later ones are dropped. *)
              ignore (Atomic.compare_and_set failure None (Some e));
              continue := false
      done
    in
    let handles =
      Array.init (min workers (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join handles;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some y -> y
        | None -> failwith "Parallel.map: missing result (worker aborted)")
      results
  end

let init ?domains n f = map ?domains f (Array.init n (fun i -> i))
