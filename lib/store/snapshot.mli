(** Compaction snapshots: one generation's full cache image, written
    atomically.

    A snapshot is the same {!Record} framing as the journal — just
    every live entry at compaction time, in LRU-to-MRU order so a
    replay that inserts in file order reconstructs the cache's recency
    as well as its contents.  {!write} goes through a temp file,
    fsyncs, then renames into place: a crash mid-compaction leaves the
    previous generation untouched, never a half snapshot under the
    final name. *)

(** [write path entries] — entries are written in list order; returns
    the count.  Atomic: [path] either keeps its old content or carries
    the complete new image.
    @raise Unix.Unix_error if the directory is unusable. *)
val write : string -> (string * string) list -> int

(** [read path ~f] delivers every leading valid record in file order.
    A torn tail (possible only if the host died mid-rename dance on a
    filesystem without atomic rename) ends the walk; the file is left
    untouched — the next compaction replaces it wholesale.  A missing
    file is an empty snapshot. *)
val read : string -> f:(key:string -> value:string -> unit) -> Record.recovery
