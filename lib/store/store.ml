let log_src = Logs.Src.create "ssg.store" ~doc:"durable result store"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Metrics = Ssg_obs.Metrics
module Tracer = Ssg_obs.Tracer

type sync_policy = Always | Group of int | Never

let sync_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s -> (
      match String.split_on_char ':' s with
      | [ "group"; n ] -> (
          match int_of_string_opt (String.trim n) with
          | Some n when n >= 1 -> Ok (Group n)
          | _ -> Error (Printf.sprintf "bad group commit size %S" n))
      | _ ->
          Error
            (Printf.sprintf "bad sync policy %S (always | never | group:N)" s))

let sync_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Group n -> Printf.sprintf "group:%d" n

let fsync_every_of = function
  | Always -> 1
  | Never -> 0
  | Group n ->
      if n < 1 then invalid_arg "Store: group commit size must be >= 1";
      n

type t = {
  dir : string;
  fsync_every : int;
  compact_bytes : int;
  lock : Mutex.t;
  mutable gen : int;
  mutable journal : Journal.t;
  mutable recovered : (string * string) list;  (* file order; consumed once *)
  mutable replayed : int;
  mutable torn : int;
  mutable fsyncs_seen : int;
  metrics : Metrics.t;
  m_replayed : Metrics.counter;
  m_appends : Metrics.counter;
  m_fsyncs : Metrics.counter;
  m_compactions : Metrics.counter;
  m_torn : Metrics.counter;
  m_journal_bytes : Metrics.gauge;
  m_generation : Metrics.gauge;
}

let journal_path dir gen =
  Filename.concat dir (Printf.sprintf "journal-%06d.log" gen)

let snapshot_path dir gen =
  Filename.concat dir (Printf.sprintf "snapshot-%06d.ssg" gen)

let current_path dir = Filename.concat dir "CURRENT"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* CURRENT is published the same way snapshots are: temp, fsync,
   rename — a reader never sees a half-written generation number. *)
let write_current dir gen =
  let tmp = current_path dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (string_of_int gen);
      output_char oc '\n';
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
  Unix.rename tmp (current_path dir)

(* The generation to boot from: CURRENT when it parses, else the
   highest generation any file on disk names (a crash can die between
   writing files and publishing CURRENT), else 0. *)
let read_generation dir =
  let from_current =
    match open_in_bin (current_path dir) with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match input_line ic with
            | exception End_of_file -> None
            | line -> (
                match int_of_string_opt (String.trim line) with
                | Some g when g >= 0 -> Some g
                | _ -> None))
  in
  match from_current with
  | Some g -> g
  | None ->
      Sys.readdir dir |> Array.to_list
      |> List.filter_map (fun name ->
             let parse prefix suffix =
               if
                 String.length name > String.length prefix + String.length suffix
                 && String.starts_with ~prefix name
                 && String.ends_with ~suffix name
               then
                 int_of_string_opt
                   (String.sub name (String.length prefix)
                      (String.length name - String.length prefix
                     - String.length suffix))
               else None
             in
             match parse "journal-" ".log" with
             | Some g -> Some g
             | None -> parse "snapshot-" ".ssg")
      |> List.fold_left max 0

let open_ ?(sync = Group 8) ?(compact_bytes = 4 * 1024 * 1024) ~dir () =
  if compact_bytes < 1 then invalid_arg "Store.open_: compact_bytes must be >= 1";
  let fsync_every = fsync_every_of sync in
  mkdir_p dir;
  let gen = read_generation dir in
  let recovered = ref [] in
  let replayed = ref 0 in
  let torn = ref 0 in
  let recover () =
    let f ~key ~value =
      recovered := (key, value) :: !recovered;
      incr replayed
    in
    let snap = Snapshot.read (snapshot_path dir gen) ~f in
    if snap.Record.torn then incr torn;
    let jnl = Journal.recover (journal_path dir gen) ~f in
    if jnl.Record.torn then incr torn
  in
  if Tracer.enabled () then Tracer.with_span "store.replay" recover
  else recover ();
  let journal = Journal.open_append ~fsync_every (journal_path dir gen) in
  let metrics = Metrics.create () in
  let counter name help = Metrics.counter metrics ~help name in
  let t =
    {
      dir;
      fsync_every;
      compact_bytes;
      lock = Mutex.create ();
      gen;
      journal;
      recovered = List.rev !recovered;
      replayed = !replayed;
      torn = !torn;
      fsyncs_seen = 0;
      metrics;
      m_replayed =
        counter "ssg_store_replayed_total"
          "Records recovered from the snapshot and journal at boot";
      m_appends =
        counter "ssg_store_appends_total" "Records appended to the journal";
      m_fsyncs = counter "ssg_store_fsyncs_total" "Journal fsync calls";
      m_compactions =
        counter "ssg_store_compactions_total"
          "Snapshot compactions (generation rolls)";
      m_torn =
        counter "ssg_store_torn_tail_recoveries_total"
          "Torn tails recovered (longest valid prefix kept)";
      m_journal_bytes =
        Metrics.gauge metrics ~help:"Current journal size in bytes"
          "ssg_store_journal_bytes";
      m_generation =
        Metrics.gauge metrics ~help:"Current store generation"
          "ssg_store_generation";
    }
  in
  Metrics.add t.m_replayed t.replayed;
  Metrics.add t.m_torn t.torn;
  Metrics.set_gauge t.m_journal_bytes (float_of_int (Journal.bytes journal));
  Metrics.set_gauge t.m_generation (float_of_int gen);
  Log.info (fun m ->
      m "store %s: generation %d, %d record(s) recovered%s" dir gen t.replayed
        (if t.torn > 0 then
           Printf.sprintf ", %d torn tail(s) truncated" t.torn
         else ""));
  t

let dir t = t.dir
let generation t = t.gen
let replayed_records t = t.replayed
let torn_recoveries t = t.torn
let journal_bytes t = Journal.bytes t.journal
let wedged t = Journal.wedged t.journal
let metrics t = t.metrics

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let replay t f =
  let entries = locked t (fun () ->
      let e = t.recovered in
      t.recovered <- [];
      e)
  in
  List.iter (fun (key, value) -> f ~key ~value) entries;
  List.length entries

(* Mirror the journal's fsync count into the registry as a delta —
   appends may group-commit, so one append is zero or one fsync. *)
let sync_metrics_unlocked t =
  let fs = Journal.fsyncs t.journal in
  if fs > t.fsyncs_seen then begin
    Metrics.add t.m_fsyncs (fs - t.fsyncs_seen);
    t.fsyncs_seen <- fs
  end;
  Metrics.set_gauge t.m_journal_bytes (float_of_int (Journal.bytes t.journal))

let append ?(torn = false) t ~key ~value =
  let go () =
    locked t (fun () ->
        let ok = Journal.append ~torn t.journal ~key ~value in
        if ok then Metrics.incr t.m_appends;
        sync_metrics_unlocked t;
        ok)
  in
  if Tracer.enabled () then
    Tracer.with_span
      ~args:[ ("bytes", Tracer.Int (String.length key + String.length value)) ]
      "store.append" go
  else go ()

let should_compact t =
  (not (wedged t)) && Journal.bytes t.journal > t.compact_bytes

let compact t ~entries =
  let go () =
    locked t (fun () ->
        if Journal.wedged t.journal then 0
        else begin
          let gen' = t.gen + 1 in
          let n = Snapshot.write (snapshot_path t.dir gen') entries in
          Journal.close t.journal;
          (* O_TRUNC: a journal file left over from a compaction that
             crashed before publishing CURRENT must not leak stale
             records into the new generation. *)
          let fd =
            Unix.openfile (journal_path t.dir gen')
              [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
              0o644
          in
          (try Unix.close fd with Unix.Unix_error _ -> ());
          write_current t.dir gen';
          List.iter
            (fun path -> try Sys.remove path with Sys_error _ -> ())
            [ snapshot_path t.dir t.gen; journal_path t.dir t.gen ];
          t.journal <-
            Journal.open_append ~fsync_every:t.fsync_every
              (journal_path t.dir gen');
          t.fsyncs_seen <- 0;
          t.gen <- gen';
          Metrics.incr t.m_compactions;
          Metrics.set_gauge t.m_generation (float_of_int gen');
          Metrics.set_gauge t.m_journal_bytes 0.;
          Log.info (fun m ->
              m "compacted to generation %d: %d record(s) in the snapshot" gen'
                n);
          n
        end)
  in
  if Tracer.enabled () then
    Tracer.with_span
      ~args:[ ("entries", Tracer.Int (List.length entries)) ]
      "store.compact" go
  else go ()

let close t = locked t (fun () -> Journal.close t.journal)
