(** The on-disk framing of one [(key, value)] store record — the unit
    both the journal and snapshot files are a concatenation of.

    Layout (all integers 4-byte big-endian):
    {v
    +----------+----------+---------+-----+---------+-------+
    | body_len |  crc32   | key_len | key | val_len | value |
    +----------+----------+---------+-----+---------+-------+
         4          4          4      ...      4       ...
    v}
    [body_len] counts everything after the crc field; [crc32] is
    {!Crc32.digest} of exactly those bytes.  No escaping, no
    delimiters: framing is exact under any partial write, which is what
    makes the longest-valid-prefix recovery of a torn tail well
    defined.

    {b Decoder contract.}  {!unframe} and {!scan} raise [Failure] — and
    {e only} [Failure] — on malformed input, matching the
    [Ssg_engine.Protocol] decoder contract; the one-byte-mutation fuzz
    property asserts that every single-byte corruption of a framed
    record is rejected (the CRC guarantees it). *)

(** Fixed bytes before the body: the length and crc fields. *)
val header_bytes : int

(** Hard cap on one record's body ([16 MiB]); both the encoder and the
    decoder refuse larger records rather than attempting unbounded
    allocation on a garbage length field. *)
val max_record_bytes : int

(** [frame ~key ~value] — the complete on-disk encoding.
    @raise Failure if the record would exceed {!max_record_bytes}. *)
val frame : key:string -> value:string -> string

(** [unframe s] decodes exactly one record occupying all of [s].
    @raise Failure on anything else: short input, a length field that
    disagrees with [String.length s], a CRC mismatch, or body fields
    that do not tile the body exactly. *)
val unframe : string -> string * string

(** The result of walking a file image record by record:
    [records] valid records were delivered, occupying the first
    [valid_bytes] bytes; [torn] means the walk stopped at a partial or
    corrupt record before the end of the image (the torn tail starts at
    offset [valid_bytes]). *)
type recovery = { records : int; valid_bytes : int; torn : bool }

(** [scan contents ~f] delivers every leading valid record to [f] in
    file order and reports how far it got.  Never raises on malformed
    input — corruption ends the walk instead (longest valid prefix). *)
val scan : string -> f:(key:string -> value:string -> unit) -> recovery
