(* Standard reflected CRC-32: one 256-entry table, built lazily on
   first use.  [update] pre- and post-complements, so chaining calls
   composes the way incremental users expect. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let digest ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  update 0l s pos len
