(** The durability facade the engine wires in: one directory holding
    one {e generation} — a {!Snapshot} image plus the {!Journal} of
    appends since it — and the bookkeeping to roll generations forward.

    Directory layout (generation [g]):
    {v
    DIR/CURRENT            "g\n" — the live generation, updated by rename
    DIR/snapshot-<g>.ssg   full cache image at the last compaction
    DIR/journal-<g>.log    appends since that snapshot
    v}

    {b Boot.}  [open_] reads [CURRENT] (falling back to a directory
    scan when it is missing or garbled), replays snapshot then journal
    — tolerating a torn tail in each: the longest valid prefix is
    recovered, a warning logged, and the journal's tail truncated — and
    opens the journal for appending.  The recovered records are handed
    out once via {!replay}, which the engine uses to pre-warm its LRU.

    {b Compaction.}  [compact] writes the caller's current entries as
    generation [g+1]'s snapshot (atomically), starts a fresh empty
    journal, publishes [CURRENT = g+1] by rename, then deletes
    generation [g]'s files.  A crash between any two steps leaves at
    least one complete generation recoverable.

    {b Observability.}  Every store owns an {!Ssg_obs.Metrics} registry
    ([ssg_store_*]: replayed records, appended records, journal bytes,
    fsyncs, compactions, torn-tail recoveries, generation) that the
    engine splices into its Prometheus exposition, and emits
    [store.append] / [store.replay] / [store.compact] spans on the
    process tracer when enabled.

    Single-writer: one store per directory per process.  Appends and
    compactions are serialized by an internal lock and are safe to call
    from worker domains and connection threads concurrently. *)

type t

(** When appends reach the platter:
    - [Always] — fsync after every record;
    - [Group n] — group commit, one fsync per [n] records;
    - [Never] — leave it to the OS (a host crash may cost the tail,
      recovered at next boot as torn). *)
type sync_policy = Always | Group of int | Never

(** CLI syntax: ["always"], ["never"], ["group:N"]. *)
val sync_of_string : string -> (sync_policy, string) result

val sync_to_string : sync_policy -> string

(** [open_ ~dir ()] — creates [dir] (and parents) if missing, recovers
    the current generation, opens the journal.  [sync] defaults to
    [Group 8]; [compact_bytes] (default 4 MiB) is the journal size at
    which {!should_compact} turns true.
    @raise Invalid_argument on [Group n] with [n < 1] or
    [compact_bytes < 1].
    @raise Unix.Unix_error if the directory is unusable. *)
val open_ : ?sync:sync_policy -> ?compact_bytes:int -> dir:string -> unit -> t

val dir : t -> string
val generation : t -> int

(** Records recovered at [open_] (snapshot + journal). *)
val replayed_records : t -> int

(** Torn tails found at [open_] (0, 1 or 2 — snapshot and journal each
    count at most once). *)
val torn_recoveries : t -> int

(** Current journal size in bytes. *)
val journal_bytes : t -> int

(** True once a torn write wedged the journal (appends are dropped and
    compaction refuses to run — the store is simulating a crashed
    writer). *)
val wedged : t -> bool

(** [replay t f] delivers the records recovered at [open_], file order
    (snapshot first, then journal — later records overwrite earlier
    ones on replay into a cache), then drops the in-memory copy.
    Returns the count.  Second call: 0. *)
val replay : t -> (key:string -> value:string -> unit) -> int

(** [append t ~key ~value] journals one record, honoring the sync
    policy; returns [false] when dropped (wedged journal) or torn.
    [~torn:true] injects a deterministic torn write (see
    {!Journal.append}). *)
val append : ?torn:bool -> t -> key:string -> value:string -> bool

(** True when the journal has outgrown [compact_bytes] (and the store
    is not wedged). *)
val should_compact : t -> bool

(** [compact t ~entries] rolls the generation forward with [entries] as
    the new snapshot (callers pass the live cache, LRU-first so replay
    reconstructs recency).  Returns the snapshot size in records; 0 on
    a wedged store (nothing is changed). *)
val compact : t -> entries:(string * string) list -> int

(** The store's metric registry ([ssg_store_*]), for splicing into a
    larger exposition. *)
val metrics : t -> Ssg_obs.Metrics.t

(** Sync and close the journal.  Idempotent; later appends are
    dropped. *)
val close : t -> unit
