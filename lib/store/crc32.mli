(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]), the checksum guarding
    every journal and snapshot record on disk.

    Table-driven, allocation-free per byte.  The single-byte error
    detection guarantee of CRC-32 is what the store's fuzz property
    leans on: flipping any one byte of a framed record always changes
    the digest, so the decoder can promise to reject every one-byte
    mutation. *)

(** [digest ?pos ?len s] — the CRC-32 of [s.[pos .. pos+len-1]]
    (default: all of [s]).
    @raise Invalid_argument if the range is out of bounds. *)
val digest : ?pos:int -> ?len:int -> string -> int32

(** [update crc s pos len] folds more bytes into a running digest, so
    large payloads can be checked without concatenation:
    [digest s = update (digest a) b 0 (String.length b)] when
    [s = a ^ b]. *)
val update : int32 -> string -> int -> int -> int32
