let log_src = Logs.Src.create "ssg.store.journal" ~doc:"durable result log"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync_every : int;
  mutable bytes : int;
  mutable unsynced : int;
  mutable fsyncs : int;
  mutable wedged : bool;
  mutable closed : bool;
}

let open_append ~fsync_every path =
  if fsync_every < 0 then
    invalid_arg "Journal.open_append: fsync_every must be >= 0";
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let bytes = (Unix.fstat fd).Unix.st_size in
  {
    path;
    fd;
    fsync_every;
    bytes;
    unsynced = 0;
    fsyncs = 0;
    wedged = false;
    closed = false;
  }

let path t = t.path
let bytes t = t.bytes
let fsyncs t = t.fsyncs
let wedged t = t.wedged

let really_write fd s pos len =
  let b = Bytes.unsafe_of_string s in
  let rec go pos len =
    if len > 0 then begin
      let n =
        try Unix.write fd b pos len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (pos + n) (len - n)
    end
  in
  go pos len

let sync t =
  if (not t.wedged) && not t.closed then begin
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    t.fsyncs <- t.fsyncs + 1;
    t.unsynced <- 0
  end

let append ?(torn = false) t ~key ~value =
  if t.wedged || t.closed then false
  else begin
    let framed = Record.frame ~key ~value in
    if torn then begin
      (* Simulated kill mid-write: half the record lands (at least one
         byte, never all of it), then the handle is dead — exactly the
         file image a crashed single writer leaves behind. *)
      let half = max 1 (String.length framed / 2) in
      really_write t.fd framed 0 half;
      t.bytes <- t.bytes + half;
      (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
      t.wedged <- true;
      Log.warn (fun m ->
          m "injected torn write: %d of %d bytes, journal wedged" half
            (String.length framed));
      false
    end
    else begin
      really_write t.fd framed 0 (String.length framed);
      t.bytes <- t.bytes + String.length framed;
      t.unsynced <- t.unsynced + 1;
      if t.fsync_every > 0 && t.unsynced >= t.fsync_every then sync t;
      true
    end
  end

let close t =
  if not t.closed then begin
    sync t;
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let recover ?(truncate = true) path ~f =
  if not (Sys.file_exists path) then
    { Record.records = 0; valid_bytes = 0; torn = false }
  else begin
    let contents = read_all path in
    let r = Record.scan contents ~f in
    if r.Record.torn then begin
      Log.warn (fun m ->
          m "torn tail in %s: %d valid record(s) in %d bytes, truncating %d \
             trailing byte(s)"
            path r.Record.records r.Record.valid_bytes
            (String.length contents - r.Record.valid_bytes));
      if truncate then
        try Unix.truncate path r.Record.valid_bytes
        with Unix.Unix_error _ -> ()
    end;
    r
  end
