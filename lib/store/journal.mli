(** The append-only result log: one {!Record}-framed [(key, value)] per
    completed job, written by exactly one process (the owning worker).

    Appends go straight to the descriptor with [O_APPEND]; durability
    is governed by [fsync_every] — the group-commit knob:
    - [1] — fsync after every record (safest, slowest);
    - [n > 1] — group commit: fsync once per [n] records;
    - [0] — never fsync (the OS decides; a host crash may lose the
      page-cache tail, which replay then recovers as a torn tail).

    {b Torn writes.}  [append ~torn:true] deliberately writes only a
    prefix of the framed record and {e wedges} the journal — every
    later append is silently dropped — simulating a process killed
    mid-write at a deterministic point.  Replay of the resulting file
    exercises the longest-valid-prefix recovery for real. *)

type t

(** [open_append ~fsync_every path] opens (creating if missing) for
    append-only writes.
    @raise Invalid_argument if [fsync_every < 0].
    @raise Unix.Unix_error if the path is unusable. *)
val open_append : fsync_every:int -> string -> t

val path : t -> string

(** Current file size in bytes (including any torn tail written through
    this handle). *)
val bytes : t -> int

(** fsync calls issued so far through this handle. *)
val fsyncs : t -> int

(** True once a torn write wedged the handle; later appends are
    dropped. *)
val wedged : t -> bool

(** [append t ~key ~value] writes one framed record; returns [false]
    when the record was dropped (wedged handle) or deliberately torn.
    [~torn:true] writes half the record, fsyncs, and wedges the
    handle. *)
val append : ?torn:bool -> t -> key:string -> value:string -> bool

(** Force an fsync now (no-op on a wedged handle). *)
val sync : t -> unit

(** Sync (unless wedged) and close.  Idempotent. *)
val close : t -> unit

(** [recover ?truncate path ~f] replays the log at [path]: every
    leading valid record is delivered to [f] in append order; a torn
    tail ends the walk and — with [truncate] (the default) — is cut off
    the file, so the next boot sees a clean log.  A missing file is an
    empty log, not an error. *)
val recover :
  ?truncate:bool ->
  string ->
  f:(key:string -> value:string -> unit) ->
  Record.recovery
