let header_bytes = 8
let max_record_bytes = 16 * 1024 * 1024

(* Big-endian 32-bit helpers over strings; a negative [Int32.to_int] of
   a length field is rejected by the range checks at every use site. *)
let get_u32 s pos = Int32.to_int (String.get_int32_be s pos)

let frame ~key ~value =
  let klen = String.length key and vlen = String.length value in
  let body_len = 8 + klen + vlen in
  if body_len > max_record_bytes then failwith "Record: record too large";
  let b = Bytes.create (header_bytes + body_len) in
  Bytes.set_int32_be b 0 (Int32.of_int body_len);
  Bytes.set_int32_be b 8 (Int32.of_int klen);
  Bytes.blit_string key 0 b 12 klen;
  Bytes.set_int32_be b (12 + klen) (Int32.of_int vlen);
  Bytes.blit_string value 0 b (16 + klen) vlen;
  let s = Bytes.unsafe_to_string b in
  let crc = Crc32.digest ~pos:header_bytes ~len:body_len s in
  Bytes.set_int32_be b 4 crc;
  Bytes.unsafe_to_string b

(* Explicit bounds checks before every [String.sub]: nothing but
   [Failure] may escape, per the decoder contract. *)
let unframe s =
  let fail msg = failwith ("Record: " ^ msg) in
  let len = String.length s in
  if len < header_bytes + 8 then fail "short record";
  let body_len = get_u32 s 0 in
  if body_len < 8 || body_len > max_record_bytes then fail "bad body length";
  if body_len <> len - header_bytes then fail "body length mismatch";
  let crc = String.get_int32_be s 4 in
  if not (Int32.equal (Crc32.digest ~pos:header_bytes ~len:body_len s) crc)
  then fail "crc mismatch";
  let klen = get_u32 s header_bytes in
  if klen < 0 || 16 + klen > len then fail "bad key length";
  let key = String.sub s 12 klen in
  let vlen = get_u32 s (12 + klen) in
  if vlen < 0 || 16 + klen + vlen <> len then fail "bad value length";
  let value = String.sub s (16 + klen) vlen in
  (key, value)

type recovery = { records : int; valid_bytes : int; torn : bool }

let scan contents ~f =
  let len = String.length contents in
  let rec go pos records =
    if pos + header_bytes > len then
      { records; valid_bytes = pos; torn = pos <> len }
    else
      let body_len = get_u32 contents pos in
      if
        body_len < 8 || body_len > max_record_bytes
        || pos + header_bytes + body_len > len
      then { records; valid_bytes = pos; torn = true }
      else
        let chunk = String.sub contents pos (header_bytes + body_len) in
        match unframe chunk with
        | key, value ->
            f ~key ~value;
            go (pos + header_bytes + body_len) (records + 1)
        | exception Failure _ -> { records; valid_bytes = pos; torn = true }
  in
  go 0 0
