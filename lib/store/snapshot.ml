let write path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let n =
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        let n =
          List.fold_left
            (fun n (key, value) ->
              output_string oc (Record.frame ~key ~value);
              n + 1)
            0 entries
        in
        flush oc;
        (* Flush reaches the kernel; fsync reaches the platter — only
           then may the rename publish the new generation. *)
        (try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ());
        n)
  in
  Unix.rename tmp path;
  n

let read path ~f = Journal.recover ~truncate:false path ~f
