(** Per-round time series of a run — the data behind convergence figures.

    Collects, per executed round, the ground-truth skeleton statistics and
    the aggregate state of all local approximations, so the dynamics of
    Figure 1 (labels refreshing, components crystallizing, certificates
    opening, decisions firing) can be plotted at any scale.  Output as CSV
    (for external plotting) or unicode sparklines (for terminals). *)

open Ssg_adversary

type sample = {
  round : int;
  skeleton_edges : int;  (** edges of [G^∩r] (self-loops included) *)
  components : int;  (** SCCs of [G^∩r] *)
  roots : int;  (** root components of [G^∩r] *)
  min_k : int;
      (** smallest achievable [k] so far: max independent set of the
          round-[r] sharing graph (warm-started across rounds) *)
  mean_pt : float;  (** mean [|PT_p|] over processes *)
  mean_approx_nodes : float;  (** mean [|V(G_p)|] *)
  mean_approx_edges : float;  (** mean [|E(G_p)|] *)
  certificates : int;  (** processes whose [G_p] is strongly connected *)
  decided : int;  (** processes decided so far *)
}

(** [collect ?rounds adv] runs Algorithm 1 on [adv] (default horizon:
    {!Ssg_adversary.Adversary.decision_horizon}) and samples every
    round. *)
val collect : ?rounds:int -> Adversary.t -> sample list

(** [to_csv samples] — one row per round, with a header. *)
val to_csv : sample list -> string

(** [sparkline proj samples] — the projected series as unicode blocks
    (▁▂▃▄▅▆▇█), linearly scaled between the series min and max.  A
    constant series renders as all-▄. *)
val sparkline : (sample -> float) -> sample list -> string

(** [summary samples] — a small multi-line dashboard: one labelled
    sparkline per tracked quantity. *)
val summary : sample list -> string
