(** Parameter sweeps: an (n, k, adversary-family) grid as a batch of
    engine jobs, with per-cell JSON results.

    This module owns the {e shape} of a sweep — grid validation, cell
    enumeration, per-cell adversary construction and the JSON report —
    while staying engine-agnostic: the caller (the [ssg sweep] command,
    or a test) turns each cell into an {!Ssg_engine.Job.t} via
    {!adversary} / {!effective_k}, fans the batch across the engine's
    worker pool, and folds the completions back into {!result} values
    for {!to_json}. *)

open Ssg_adversary

type family = Block_sources | Partitioned | Single_root | Arbitrary

val all_families : family list

(** [family_name f] — the stable external name ([block-sources], ...),
    used in JSON output and accepted back by {!family_of_string}. *)
val family_name : family -> string

(** [family_of_string s] — case-insensitive; accepts dashed and
    underscored spellings. *)
val family_of_string : string -> (family, string) Stdlib.result

(** One grid point, with its derived deterministic seed. *)
type cell = { n : int; k : int; family : family; seed : int }

type t

(** [create ~ns ~ks ~families ~seed] — axes are deduplicated ([ns] and
    [ks] also sorted).  @raise Invalid_argument on an empty axis, any
    [n < 2] or any [k < 1]. *)
val create :
  ns:int list -> ks:int list -> families:family list -> seed:int -> t

(** [cells grid] — row-major ([n] outer, [k], then family).  Grid points
    with [k >= n] describe no run and are omitted; {!skipped} counts
    them.  Cell seeds mix the grid seed with the cell position, so equal
    grids enumerate identical cells. *)
val cells : t -> cell list

(** [skipped grid] — how many grid points were dropped for [k >= n]. *)
val skipped : t -> int

(** [adversary cell] — the cell's run description: its family's
    generator at [(n, k)], seeded from the cell, with a 2-round noisy
    prefix so the incremental skeleton path sees a real stabilization. *)
val adversary : cell -> Adversary.t

(** [effective_k cell adv] is [max cell.k (min_k adv)]: the [k] to
    submit.  Families without a by-construction [Psrcs(k)] guarantee
    (partitioned, arbitrary) can generate runs whose [min_k] exceeds the
    requested [k]; submitting the requested [k] verbatim would bounce
    off the engine's lint front door.  Clamping up keeps every cell
    informative — the outcome reports the run's true [min_k] anyway, and
    the JSON carries both the requested [k] and [k_submitted]. *)
val effective_k : cell -> Adversary.t -> int

(** The engine-agnostic projection of a completed cell. *)
type outcome = {
  min_k : int;
  rounds_run : int;
  decided : int;  (** processes that decided *)
  distinct_decisions : int;
  messages_sent : int;
  bits_sent : int;
  violations : int;  (** monitor violations (0 when monitors are off) *)
}

type result = {
  cell : cell;
  k_submitted : int;
  outcome : (outcome, string) Stdlib.result;
  cached : bool;
  latency_ms : float;
}

(** [domains_used events] — distinct domains that began an
    [engine.execute] span in a drained {!Ssg_obs.Tracer} event list: how
    many pool workers the sweep actually exercised. *)
val domains_used : Ssg_obs.Tracer.event list -> int

(** [to_json ?elapsed_ms ~workers ~domains_used grid results] — the
    sweep report as one JSON object: the grid (axes, seed, cell and
    skipped counts), pool utilization, and a per-cell result array in
    {!cells} order. *)
val to_json :
  ?elapsed_ms:float ->
  workers:int ->
  domains_used:int ->
  t ->
  result list ->
  string
