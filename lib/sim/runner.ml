open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_adversary
open Ssg_core

type report = {
  adversary : string;
  algorithm : string;
  n : int;
  inputs : int array;
  outcome : Executor.outcome;
  skeleton : Digraph.t;
  analysis : Analysis.t;
  min_k : int;
  violations : string list;
}

let distinct_inputs n = Array.init n (fun p -> p)
let shuffled_inputs rng n = Rng.permutation rng n
let default_rounds adv = Adversary.decision_horizon adv

let describe adv name inputs outcome violations =
  let skeleton = Adversary.stable_skeleton adv in
  {
    adversary = Adversary.name adv;
    algorithm = name;
    n = Adversary.n adv;
    inputs;
    outcome;
    skeleton;
    analysis = Analysis.analyze skeleton;
    min_k = Adversary.min_k adv;
    violations;
  }

let run_kset ?variant ?inputs ?rounds ?(monitor = false) adv =
  let (module A : Round_model.ALGORITHM
        with type state = Kset_agreement.state) =
    match variant with
    | Some m -> m
    | None -> (module Kset_agreement.Alg)
  in
  let n = Adversary.n adv in
  let inputs = match inputs with Some i -> i | None -> distinct_inputs n in
  let rounds = match rounds with Some r -> r | None -> default_rounds adv in
  let module E = Executor.Make (A) in
  let mon = if monitor then Some (Monitor.create ~n) else None in
  let monitor_round =
    Option.map
      (fun m ~round ~graph states ->
        Monitor.observe m ~round ~graph (Array.map Monitor.view_of_kset states))
      mon
  in
  (* Per-round trace instant: the skeleton-approximation and PT(p)
     progress measures of Algorithm 1, summarized across processes.
     Composed with the monitor hook (the executor takes only one), and
     installed unconditionally — it reduces to one atomic load per round
     while tracing is off. *)
  let trace_round ~round ~graph:_ states =
    if Ssg_obs.Tracer.enabled () then begin
      let fold f init = Array.fold_left f init states in
      let min_max measure =
        fold
          (fun (lo, hi) s ->
            let v = measure s in
            (min lo v, max hi v))
          (max_int, min_int)
      in
      let e_lo, e_hi = min_max Kset_agreement.approx_edge_count in
      let pt_lo, pt_hi = min_max Kset_agreement.pt_cardinal in
      let decided =
        fold
          (fun acc s ->
            if Kset_agreement.decided s <> None then acc + 1 else acc)
          0
      in
      let open Ssg_obs.Tracer in
      instant
        ~args:
          [
            ("round", Int round);
            ("approx_edges_min", Int e_lo);
            ("approx_edges_max", Int e_hi);
            ("pt_min", Int pt_lo);
            ("pt_max", Int pt_hi);
            ("decided", Int decided);
          ]
        "kset.round"
    end
  in
  let on_round =
    match monitor_round with
    | None -> Some trace_round
    | Some f ->
        Some
          (fun ~round ~graph states ->
            f ~round ~graph states;
            trace_round ~round ~graph states)
  in
  let cfg =
    E.config ?on_round
      ~stop_when_all_decided:(not monitor)
      ~inputs ~graphs:(Adversary.graph adv) ~max_rounds:rounds ()
  in
  let outcome, _states = E.run cfg in
  let violations =
    match mon with
    | None -> []
    | Some m ->
        let exact = outcome.Executor.rounds_run > Adversary.prefix_length adv in
        Monitor.finalize ~final_skeleton_exact:exact m
  in
  describe adv A.name inputs outcome violations

let run_packed alg ?inputs ?rounds adv =
  let n = Adversary.n adv in
  let inputs = match inputs with Some i -> i | None -> distinct_inputs n in
  let rounds = match rounds with Some r -> r | None -> default_rounds adv in
  let outcome =
    Executor.run_packed alg ~inputs ~graphs:(Adversary.graph adv)
      ~max_rounds:rounds
  in
  describe adv (Round_model.name_of alg) inputs outcome []
