open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_predicates
open Ssg_adversary
open Ssg_core

type sample = {
  round : int;
  skeleton_edges : int;
  components : int;
  roots : int;
  min_k : int;
  mean_pt : float;
  mean_approx_nodes : float;
  mean_approx_edges : float;
  certificates : int;
  decided : int;
}

let collect ?rounds adv =
  let n = Adversary.n adv in
  let rounds =
    match rounds with Some r -> r | None -> Adversary.decision_horizon adv
  in
  let module E = Executor.Make (Kset_agreement.Alg) in
  (* Incremental skeleton: the ⊇-chain is absorbed as deltas, and the
     SCC analysis / PT rows / min-k witness are only recomputed on rounds
     that actually removed edges.  Once the run stabilizes, per-round cost
     collapses to the intersection pass itself. *)
  let skel = Incremental.start ~n in
  let tracker = Min_k_tracker.create () in
  let samples = ref [] in
  let capture ~round ~graph states =
    ignore (Incremental.absorb skel graph);
    let skeleton = Incremental.view skel in
    let analysis = Incremental.analysis skel in
    let min_k =
      Min_k_tracker.min_k ~revision:(Incremental.revision skel) tracker
        (Incremental.pts skel)
    in
    let sum f = Array.fold_left (fun acc s -> acc + f s) 0 states in
    let meanf f = float_of_int (sum f) /. float_of_int n in
    samples :=
      {
        round;
        skeleton_edges = Digraph.edge_count skeleton;
        components = (Analysis.partition analysis).Scc.count;
        roots = Analysis.root_count analysis;
        min_k;
        mean_pt =
          meanf (fun s -> Ssg_util.Bitset.cardinal (Kset_agreement.pt_of s));
        mean_approx_nodes =
          meanf (fun s -> Lgraph.node_count (Kset_agreement.approx_of s));
        mean_approx_edges =
          meanf (fun s -> Lgraph.edge_count (Kset_agreement.approx_of s));
        certificates =
          sum (fun s ->
              if Lgraph.is_strongly_connected (Kset_agreement.approx_of s)
              then 1
              else 0);
        decided =
          sum (fun s -> if Kset_agreement.decided s <> None then 1 else 0);
      }
      :: !samples
  in
  let cfg =
    E.config ~stop_when_all_decided:false ~on_round:capture
      ~inputs:(Array.init n (fun i -> i))
      ~graphs:(Adversary.graph adv) ~max_rounds:rounds ()
  in
  let _ = E.run cfg in
  List.rev !samples

let to_csv samples =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "round,skeleton_edges,components,roots,min_k,mean_pt,mean_approx_nodes,mean_approx_edges,certificates,decided\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%d,%d\n" s.round
           s.skeleton_edges s.components s.roots s.min_k s.mean_pt
           s.mean_approx_nodes s.mean_approx_edges s.certificates s.decided))
    samples;
  Buffer.contents buf

let blocks = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline proj samples =
  match samples with
  | [] -> ""
  | _ ->
      let values = List.map proj samples in
      let lo = List.fold_left min (List.hd values) values in
      let hi = List.fold_left max (List.hd values) values in
      let pick v =
        if hi = lo then blocks.(3)
        else
          let idx =
            int_of_float ((v -. lo) /. (hi -. lo) *. 7.0 +. 0.5)
          in
          blocks.(max 0 (min 7 idx))
      in
      String.concat "" (List.map pick values)

let summary samples =
  let line label proj =
    Printf.sprintf "%-18s %s" label (sparkline proj samples)
  in
  String.concat "\n"
    [
      line "skeleton edges" (fun s -> float_of_int s.skeleton_edges);
      line "components" (fun s -> float_of_int s.components);
      line "roots" (fun s -> float_of_int s.roots);
      line "min k" (fun s -> float_of_int s.min_k);
      line "mean |PT|" (fun s -> s.mean_pt);
      line "mean |V(G_p)|" (fun s -> s.mean_approx_nodes);
      line "mean |E(G_p)|" (fun s -> s.mean_approx_edges);
      line "certificates" (fun s -> float_of_int s.certificates);
      line "decided" (fun s -> float_of_int s.decided);
    ]
