open Ssg_util
open Ssg_adversary

type family = Block_sources | Partitioned | Single_root | Arbitrary

let all_families = [ Block_sources; Partitioned; Single_root; Arbitrary ]

let family_name = function
  | Block_sources -> "block-sources"
  | Partitioned -> "partitioned"
  | Single_root -> "single-root"
  | Arbitrary -> "arbitrary"

let family_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "block-sources" | "block_sources" | "block" -> Ok Block_sources
  | "partitioned" -> Ok Partitioned
  | "single-root" | "single_root" | "single" -> Ok Single_root
  | "arbitrary" -> Ok Arbitrary
  | _ ->
      Error
        (Printf.sprintf
           "unknown adversary family %S (expected block-sources | partitioned \
            | single-root | arbitrary)"
           s)

type cell = { n : int; k : int; family : family; seed : int }

type t = {
  ns : int list;
  ks : int list;
  families : family list;
  seed : int;
}

let dedup_keep_order xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let create ~ns ~ks ~families ~seed =
  if ns = [] then invalid_arg "Sweep.create: empty n axis";
  if ks = [] then invalid_arg "Sweep.create: empty k axis";
  if families = [] then invalid_arg "Sweep.create: empty family axis";
  List.iter
    (fun n ->
      if n < 2 then
        invalid_arg (Printf.sprintf "Sweep.create: n = %d (need n >= 2)" n))
    ns;
  List.iter
    (fun k ->
      if k < 1 then
        invalid_arg (Printf.sprintf "Sweep.create: k = %d (need k >= 1)" k))
    ks;
  {
    ns = List.sort_uniq compare ns;
    ks = List.sort_uniq compare ks;
    families = dedup_keep_order families;
    seed;
  }

(* Row-major enumeration (n outer, then k, then family); a combination
   with [k >= n] describes no run and is dropped — count them with
   {!skipped} so callers can report rather than silently shrink the
   grid.  Cell seeds derive from the grid seed and the cell's position,
   so a sweep is reproducible and distinct cells get distinct streams. *)
let fold_combos grid ~emit ~skip init =
  let acc = ref init in
  let idx = ref 0 in
  List.iter
    (fun n ->
      List.iter
        (fun k ->
          List.iter
            (fun family ->
              if k >= n then acc := skip !acc
              else begin
                acc :=
                  emit !acc { n; k; family; seed = grid.seed + (7919 * !idx) };
                incr idx
              end)
            grid.families)
        grid.ks)
    grid.ns;
  !acc

let cells grid =
  List.rev (fold_combos grid ~emit:(fun acc c -> c :: acc) ~skip:Fun.id [])

let skipped grid = fold_combos grid ~emit:(fun acc _ -> acc) ~skip:succ 0

let adversary (cell : cell) =
  let rng = Rng.of_int cell.seed in
  let n = cell.n and k = cell.k in
  match cell.family with
  | Block_sources -> Build.block_sources rng ~n ~k ~prefix_len:2 ()
  | Partitioned -> Build.partitioned rng ~n ~blocks:k ~prefix_len:2 ()
  | Single_root -> Build.single_root rng ~n ~prefix_len:2 ()
  | Arbitrary -> Build.arbitrary rng ~n ~density:0.3 ~prefix_len:2 ()

let effective_k (cell : cell) adv = max cell.k (Adversary.min_k adv)

type outcome = {
  min_k : int;
  rounds_run : int;
  decided : int;
  distinct_decisions : int;
  messages_sent : int;
  bits_sent : int;
  violations : int;
}

type result = {
  cell : cell;
  k_submitted : int;
  outcome : (outcome, string) Stdlib.result;
  cached : bool;
  latency_ms : float;
}

let domains_used events =
  let domains = Hashtbl.create 8 in
  List.iter
    (fun (e : Ssg_obs.Tracer.event) ->
      if e.kind = Ssg_obs.Tracer.Begin && e.name = "engine.execute" then
        Hashtbl.replace domains e.domain ())
    events;
  Hashtbl.length domains

let json_of_result r =
  let open Ssg_obs.Export in
  let base =
    [
      ("n", Int r.cell.n);
      ("k", Int r.cell.k);
      ("family", Str (family_name r.cell.family));
      ("seed", Int r.cell.seed);
      ("k_submitted", Int r.k_submitted);
      ("cached", Bool r.cached);
      ("latency_ms", Float r.latency_ms);
    ]
  in
  match r.outcome with
  | Ok o ->
      Obj
        (base
        @ [
            ("ok", Bool true);
            ("min_k", Int o.min_k);
            ("rounds_run", Int o.rounds_run);
            ("decided", Int o.decided);
            ("distinct_decisions", Int o.distinct_decisions);
            ("messages_sent", Int o.messages_sent);
            ("bits_sent", Int o.bits_sent);
            ("violations", Int o.violations);
          ])
  | Error msg -> Obj (base @ [ ("ok", Bool false); ("error", Str msg) ])

let to_json ?(elapsed_ms = 0.) ~workers ~domains_used grid results =
  let open Ssg_obs.Export in
  json_to_string
    (Obj
       [
         ( "grid",
           Obj
             [
               ("ns", Arr (List.map (fun n -> Int n) grid.ns));
               ("ks", Arr (List.map (fun k -> Int k) grid.ks));
               ( "families",
                 Arr (List.map (fun f -> Str (family_name f)) grid.families) );
               ("seed", Int grid.seed);
               ("cells", Int (List.length results));
               ("skipped", Int (skipped grid));
             ] );
         ("workers", Int workers);
         ("domains_used", Int domains_used);
         ("elapsed_ms", Float elapsed_ms);
         ("results", Arr (List.map json_of_result results));
       ])
