open Ssg_graph

let log_src = Logs.Src.create "ssg.executor" ~doc:"Round-by-round execution"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Tracer = Ssg_obs.Tracer

type decision = { round : int; value : int }

type outcome = {
  n : int;
  rounds_run : int;
  decisions : decision option array;
  messages_sent : int;
  messages_delivered : int;
  bits_sent : int;
  max_message_bits : int;
}

let all_decided o = Array.for_all Option.is_some o.decisions

let decision_values o =
  Array.to_list o.decisions
  |> List.filter_map (Option.map (fun d -> d.value))
  |> List.sort_uniq Stdlib.compare

let last_decision_round o =
  Array.fold_left
    (fun acc d ->
      match (acc, d) with
      | None, Some d -> Some d.round
      | Some r, Some d -> Some (max r d.round)
      | acc, None -> acc)
    None o.decisions

module Make (A : Round_model.ALGORITHM) = struct
  type config = {
    inputs : int array;
    graphs : int -> Digraph.t;
    max_rounds : int;
    stop_when_all_decided : bool;
    on_round : (round:int -> graph:Digraph.t -> A.state array -> unit) option;
    domains : int;
  }

  let config ?(stop_when_all_decided = true) ?on_round ?(domains = 0) ~inputs
      ~graphs ~max_rounds () =
    { inputs; graphs; max_rounds; stop_when_all_decided; on_round; domains }

  let run cfg =
    let n = Array.length cfg.inputs in
    if n = 0 then invalid_arg "Executor.run: empty system";
    if cfg.max_rounds < 0 then invalid_arg "Executor.run: negative max_rounds";
    let states =
      Array.init n (fun p -> A.init ~n ~self:p ~input:cfg.inputs.(p))
    in
    let decisions = Array.make n None in
    let messages_sent = ref 0 in
    let messages_delivered = ref 0 in
    let bits_sent = ref 0 in
    let max_bits = ref 0 in
    let record_decisions round =
      Array.iteri
        (fun p s ->
          match (decisions.(p), A.decision s) with
          | None, Some value ->
              decisions.(p) <- Some { round; value };
              if Tracer.enabled () then
                Tracer.instant
                  ~args:
                    [
                      ("algorithm", Tracer.Str A.name);
                      ("process", Tracer.Int p);
                      ("value", Tracer.Int value);
                      ("round", Tracer.Int round);
                    ]
                  "decide"
          | Some d, Some value when d.value <> value ->
              failwith
                (Printf.sprintf
                   "Executor: process %d changed its decision (%d -> %d)" p
                   d.value value)
          | Some _, None ->
              failwith
                (Printf.sprintf "Executor: process %d revoked its decision" p)
          | _ -> ())
        states
    in
    record_decisions 0;
    let round = ref 0 in
    let running = ref true in
    while !running && !round < cfg.max_rounds do
      incr round;
      let r = !round in
      let graph = cfg.graphs r in
      if Digraph.order graph <> n then
        invalid_arg
          (Printf.sprintf
             "Executor: round %d graph has order %d, expected %d" r
             (Digraph.order graph) n);
      (* The span opens only after the round graph validated: every
         exception past this point aborts the whole run, so a track can
         never be left with a dangling [B]. *)
      if Tracer.enabled () then
        Tracer.span_begin
          ~args:[ ("algorithm", Tracer.Str A.name); ("round", Tracer.Int r) ]
          "round";
      let payloads = Array.map (fun s -> A.send ~round:r s) states in
      Array.iter
        (fun m ->
          messages_sent := !messages_sent + n;
          let bits = A.message_bits ~n ~round:r m in
          bits_sent := !bits_sent + (bits * n);
          if bits > !max_bits then max_bits := bits)
        payloads;
      (* A delivered message is exactly an edge of the round graph. *)
      messages_delivered := !messages_delivered + Digraph.edge_count graph;
      let transition_one q =
        let inbox =
          Array.init n (fun p ->
              if Digraph.mem_edge graph p q then Some payloads.(p) else None)
        in
        A.transition ~round:r states.(q) inbox
      in
      (* Per-process transitions are independent: q's transition touches
         only states.(q) and reads the immutable payloads, so the round
         parallelizes over processes. *)
      let next =
        if cfg.domains > 0 then
          Ssg_util.Parallel.init ~domains:cfg.domains n transition_one
        else Array.init n transition_one
      in
      Array.blit next 0 states 0 n;
      record_decisions r;
      Log.debug (fun m ->
          let decided =
            Array.fold_left
              (fun acc d -> if d <> None then acc + 1 else acc)
              0 decisions
          in
          m "%s: round %d: %d/%d edges delivered, %d/%d decided" A.name r
            (Digraph.edge_count graph) (n * n) decided n);
      (match cfg.on_round with
      | Some f -> f ~round:r ~graph states
      | None -> ());
      if Tracer.enabled () then
        Tracer.span_end
          ~args:
            [
              ("delivered", Tracer.Int (Digraph.edge_count graph));
              ( "decided",
                Tracer.Int
                  (Array.fold_left
                     (fun acc d -> if d <> None then acc + 1 else acc)
                     0 decisions) );
            ]
          "round";
      if cfg.stop_when_all_decided && Array.for_all Option.is_some decisions
      then running := false
    done;
    ( {
        n;
        rounds_run = !round;
        decisions;
        messages_sent = !messages_sent;
        messages_delivered = !messages_delivered;
        bits_sent = !bits_sent;
        max_message_bits = !max_bits;
      },
      states )
end

let run_packed ?(stop_when_all_decided = true)
    (Round_model.Packed (module A)) ~inputs ~graphs ~max_rounds =
  let module E = Make (A) in
  let cfg = E.config ~stop_when_all_decided ~inputs ~graphs ~max_rounds () in
  fst (E.run cfg)
