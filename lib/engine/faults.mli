(** Deterministic fault injection for the [ssgd] request path.

    The theory layers test Algorithm 1 by handing it adversarial
    communication graphs and letting {!Ssg_core.Monitor} record what
    breaks; this module is the same idea aimed at the service layer.  A
    {e plan} names the faults to inject and how often, the engine and
    the server consult it at fixed sites (before executing a job, before
    writing a reply frame), and the chaos tests assert that supervision
    — error replies, connection reaping, telemetry counters — catches
    every one.

    Injection is {e deterministic}: each fault kind carries a period
    [every] and fires on exactly every [every]-th visit to its site
    (thread-safe, counted atomically), so a failing chaos run replays
    byte-for-byte.  The disabled plan {!off} is the default everywhere
    and is zero-cost: sites check {!is_off} first and skip all
    bookkeeping. *)

type t

(** The plan that injects nothing.  [Engine.create] / [Server.serve]
    default to it. *)
val off : t

val is_off : t -> bool

(** [create ()] builds a plan; every knob defaults to "never".
    - [crash_every]: every n-th job execution raises instead of running.
    - [slow_every] / [slow_s]: every n-th job execution sleeps [slow_s]
      seconds (default 0.05) before running.
    - [corrupt_every]: every n-th reply frame has its payload's first
      byte flipped before it is sent (the client's decoder must reject
      it).
    - [truncate_every]: every n-th reply frame is cut off mid-payload
      and the connection closed (the client must detect the mid-frame
      death, not hang).
    - [blackhole_every]: every n-th reply frame is silently swallowed
      — nothing is written, the connection stays open.  From outside
      this is a network partition: the server looks reachable but goes
      mute, so it exercises the client's reply deadline and the cluster
      router's over-deadline failover rather than its connect-failure
      path.
    - [torn_write_every]: every n-th journal append is torn — half the
      record reaches the platter and the journal wedges, simulating a
      writer that died mid-append (the job itself still completes; only
      durability is lost, to be recovered as a torn tail at next boot).
    @raise Invalid_argument if any period is [< 1] or [slow_s < 0.]. *)
val create :
  ?crash_every:int ->
  ?slow_every:int ->
  ?slow_s:float ->
  ?corrupt_every:int ->
  ?truncate_every:int ->
  ?blackhole_every:int ->
  ?torn_write_every:int ->
  unit ->
  t

(** [of_spec s] parses the CLI syntax: a comma-separated list of
    [crash:N], [slow:N] or [slow:N@MS] (MS milliseconds), [corrupt:N],
    [truncate:N], [blackhole:N] (alias [partition:N]), [torn-write:N];
    ["off"] or the empty string is {!off}.
    Example: ["crash:10,slow:5@20,truncate:13"]. *)
val of_spec : string -> (t, string) result

(** Canonical round-trippable rendering of the plan (["off"] for {!off}). *)
val spec : t -> string

(** What a fault site is told to do.  Sites report every non-[Run] /
    non-[Deliver] fate to {!Telemetry} so [ssg stats] shows the injected
    count. *)

type execute_fate = Run | Delay of float  (** seconds *) | Crash

type reply_fate = Deliver | Corrupt | Truncate | Blackhole

type append_fate = Write | Torn

(** [on_execute t] — consulted by the engine immediately before
    [Job.execute]. *)
val on_execute : t -> execute_fate

(** [on_reply t] — consulted by the server immediately before writing a
    reply frame. *)
val on_reply : t -> reply_fate

(** [on_append t] — consulted by the engine immediately before
    journaling a freshly computed outcome. *)
val on_append : t -> append_fate
