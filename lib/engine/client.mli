(** Client side of the [ssgd] wire protocol.

    One value per connection; each call is one request/reply exchange
    (the protocol is a strict pipeline per connection, so a [t] must not
    be shared between threads without external serialization — open one
    connection per thread instead, which is also what exercises the
    server's concurrency). *)

type t

(** [connect ~socket ()] — with bounded exponential-backoff retry:
    [retries] (default 3) extra attempts, sleeping [retry_backoff_s]
    (default 0.05 s, doubling) between them, retried only on transient
    errors ([ECONNREFUSED], [ENOENT], [EAGAIN], [EINTR]).

    [deadline_s] arms a per-reply deadline ([SO_RCVTIMEO]): an rpc whose
    reply does not arrive in time raises [Failure] instead of blocking
    forever on a wedged or malicious server.  Default: no deadline.
    @raise Unix.Unix_error when nothing is listening on [socket] after
    all retries.
    @raise Invalid_argument if [retries < 0] or [deadline_s <= 0]. *)
val connect :
  ?retries:int ->
  ?retry_backoff_s:float ->
  ?deadline_s:float ->
  socket:string ->
  unit ->
  t

val close : t -> unit

(** [submit c job] — the job's completion (cache-hit flag, latency, and
    the outcome or the execution error).
    @raise Failure on a protocol-level [Error] reply, a corrupt or
    truncated reply frame, an exceeded deadline, or an unexpected reply
    kind. *)
val submit : t -> Job.t -> Job.completion

(** [submit_batch c jobs] — completions in submission order. *)
val submit_batch : t -> Job.t list -> Job.completion list

val stats : t -> Telemetry.snapshot

(** [trace c] — drain the server's trace buffers (empty unless the
    daemon runs with tracing enabled, e.g. [ssgd --trace]). *)
val trace : t -> Ssg_obs.Tracer.event list

(** [metrics_text c] — the server's stats as Prometheus text
    exposition, rendered server-side. *)
val metrics_text : t -> string

(** [shutdown c] asks the server to drain and exit; returns once the
    server acknowledged. *)
val shutdown : t -> unit
