(** Client side of the [ssgd] wire protocol.

    One value per connection; each call is one request/reply exchange
    (the protocol is a strict pipeline per connection, so a [t] must not
    be shared between threads without external serialization — open one
    connection per thread instead, which is also what exercises the
    server's concurrency). *)

type t

(** @raise Unix.Unix_error when nothing is listening on [socket]. *)
val connect : socket:string -> t

val close : t -> unit

(** [submit c job] — the job's completion (cache-hit flag, latency, and
    the outcome or the execution error).
    @raise Failure on a protocol-level [Error] reply or an unexpected
    reply kind. *)
val submit : t -> Job.t -> Job.completion

(** [submit_batch c jobs] — completions in submission order. *)
val submit_batch : t -> Job.t list -> Job.completion list

val stats : t -> Telemetry.snapshot

(** [shutdown c] asks the server to drain and exit; returns once the
    server acknowledged. *)
val shutdown : t -> unit
