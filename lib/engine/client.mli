(** Client side of the [ssgd] wire protocol.

    One value per connection; each call is one request/reply exchange
    (the protocol is a strict pipeline per connection, so a [t] must not
    be shared between threads without external serialization — open one
    connection per thread instead, which is also what exercises the
    server's concurrency). *)

type t

(** [connect ~socket ()] — [socket] is a {!Ssg_net.Transport} address
    string ([unix:PATH], [tcp:HOST:PORT], or a bare Unix-socket path) —
    with bounded exponential-backoff retry:
    [retries] (default 3) extra attempts, with {e full jitter} — each
    retry sleeps a uniform draw from (0, backoff] where backoff starts
    at [retry_backoff_s] (default 0.05 s) and doubles — retried only on
    transient errors ([ECONNREFUSED], [ENOENT], [EAGAIN], [EINTR]).
    The jitter de-correlates the reconnect times of clients that all
    lost the same server at once, so a restarted worker is not greeted
    by a thundering herd.

    [deadline_s] arms a per-reply deadline ([SO_RCVTIMEO]): an rpc whose
    reply does not arrive in time raises [Failure] instead of blocking
    forever on a wedged or malicious server.  Default: no deadline.
    @raise Unix.Unix_error when nothing is listening on [socket] after
    all retries.
    @raise Invalid_argument if [socket] does not parse as an address,
    [retries < 0], or [deadline_s <= 0]. *)
val connect :
  ?retries:int ->
  ?retry_backoff_s:float ->
  ?deadline_s:float ->
  socket:string ->
  unit ->
  t

(** [connect_any ~sockets ()] — multi-address failover: one pass tries
    every address in order, and up to [retries] further passes follow,
    separated by the same jittered doubling backoff as {!connect}.  The
    first address that accepts wins, so listing a cluster's router
    first and its workers after it degrades gracefully when the router
    is down.
    @raise Unix.Unix_error (the last attempt's) when no address
    accepted, [Invalid_argument] on an empty list or bad parameters. *)
val connect_any :
  ?retries:int ->
  ?retry_backoff_s:float ->
  ?deadline_s:float ->
  sockets:string list ->
  unit ->
  t

val close : t -> unit

(** [rpc ?ctx c request] — one raw request/reply exchange, no
    reply-shape checking: what the cluster router uses to forward a
    client's request verbatim and relay whatever the backend answered.
    [ctx], when given, travels in the additive context envelope
    ({!Ssg_net.Frame.with_ctx}) so the server's spans for this request
    adopt it as their remote parent; omit it and the wire bytes are
    exactly the pre-context protocol.
    @raise Failure on an exceeded deadline or an undecodable reply,
    [End_of_file] / [Unix.Unix_error] when the peer dies mid-exchange. *)
val rpc : ?ctx:Ssg_obs.Context.t -> t -> Protocol.request -> Protocol.reply

(** [submit ?ctx c job] — the job's completion (cache-hit flag, latency,
    and the outcome or the execution error).
    @raise Failure on a protocol-level [Error] reply, a corrupt or
    truncated reply frame, an exceeded deadline, or an unexpected reply
    kind. *)
val submit : ?ctx:Ssg_obs.Context.t -> t -> Job.t -> Job.completion

(** [submit_batch c jobs] — completions in submission order. *)
val submit_batch : t -> Job.t list -> Job.completion list

val stats : t -> Telemetry.snapshot

(** [trace c] — drain the server's trace buffers (empty unless the
    daemon runs with tracing enabled, e.g. [ssgd --trace]). *)
val trace : t -> Ssg_obs.Tracer.event list

(** [trace_pull c] — the fleet pull: one {!Ssg_obs.Tracer.report} per
    process reached (a worker answers with its own; a router relays the
    pull to every backend and prepends itself).  A pre-[Trace_pull]
    server answers with a protocol [Error], surfacing here as
    [Failure] — callers that want graceful degradation catch it and
    fall back to {!trace}. *)
val trace_pull : t -> Ssg_obs.Tracer.report list

(** [metrics_text c] — the server's stats as Prometheus text
    exposition, rendered server-side. *)
val metrics_text : t -> string

(** [shutdown c] asks the server to drain and exit; returns once the
    server acknowledged. *)
val shutdown : t -> unit

(** Elastic membership and warm handoff (router-facing unless noted). *)

(** [join c addr] announces [addr] as a new cluster member to the
    router behind [c]; returns once it is admitted (and any warm
    handoff toward it has run). *)
val join : t -> string -> unit

(** [leave c addr] retires member [addr]; the router pulls its hot
    keys first. *)
val leave : t -> string -> unit

(** [export c n] — up to [n] of the peer worker's hottest cache
    entries, most-recently-used first. *)
val export : t -> int -> (string * string) list

(** [transfer c entries] seeds entries into the peer worker's cache;
    returns the count imported. *)
val transfer : t -> (string * string) list -> int

(** [compact c] rolls the peer's store generation (snapshot + journal
    truncate); a router fans it out and answers with the sum.  0 when
    no store is attached. *)
val compact : t -> int
