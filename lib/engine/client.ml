module Transport = Ssg_net.Transport

type t = { fd : Unix.file_descr; deadline_s : float option }

let retriable = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR -> true
  | _ -> false

(* Full jitter on the bounded exponential backoff: each retry sleeps a
   uniform draw from (0, backoff] rather than backoff itself.  With a
   deterministic schedule, every client that lost its server at the same
   instant retries at the same instants too, and a worker restart is
   greeted by a thundering herd of synchronized reconnects; the jitter
   de-correlates them.  The state is per call (created lazily, only if a
   retry actually happens), so concurrent connects never share it. *)
let jittered rng backoff =
  let rng =
    match !rng with
    | Some r -> r
    | None ->
        let r = Random.State.make_self_init () in
        rng := Some r;
        r
  in
  Float.max 1e-4 (Random.State.float rng backoff)

(* [Transport.connect] already closes its descriptor on failure; an
   unresolvable TCP host raises [Failure] and is not retriable. *)
let attempt_connect addr = Transport.connect addr

let arm_deadline fd deadline_s =
  match deadline_s with
  | Some d -> (
      try Unix.setsockopt_float fd Unix.SO_RCVTIMEO d
      with Unix.Unix_error _ -> ())
  | None -> ()

let check_params ~who retries deadline_s =
  if retries < 0 then invalid_arg ("Client." ^ who ^ ": retries must be >= 0");
  match deadline_s with
  | Some d when d <= 0. ->
      invalid_arg ("Client." ^ who ^ ": deadline_s must be > 0")
  | _ -> ()

let connect ?(retries = 3) ?(retry_backoff_s = 0.05) ?deadline_s ~socket () =
  check_params ~who:"connect" retries deadline_s;
  let addr = Transport.of_string_exn socket in
  (* Bounded exponential backoff: a daemon that is still binding (or
     briefly over its connection limit) costs a few retries, not a
     client-side crash. *)
  let rng = ref None in
  let rec go left backoff =
    match attempt_connect addr with
    | fd -> fd
    | exception Unix.Unix_error (err, _, _) when left > 0 && retriable err ->
        Thread.delay (jittered rng backoff);
        go (left - 1) (backoff *. 2.)
  in
  let fd = go retries retry_backoff_s in
  arm_deadline fd deadline_s;
  { fd; deadline_s }

let connect_any ?(retries = 3) ?(retry_backoff_s = 0.05) ?deadline_s ~sockets
    () =
  if sockets = [] then invalid_arg "Client.connect_any: no sockets";
  check_params ~who:"connect_any" retries deadline_s;
  let addrs = List.map Transport.of_string_exn sockets in
  let rng = ref None in
  (* Each pass tries every address once, in the order given; passes are
     separated by the same jittered exponential backoff as [connect]. *)
  let rec pass left backoff =
    let rec try_addrs last = function
      | [] -> Error last
      | addr :: rest -> (
          match attempt_connect addr with
          | fd -> Ok fd
          | exception (Unix.Unix_error (err, _, _) as e) when retriable err ->
              try_addrs e rest)
    in
    match try_addrs Stdlib.Exit addrs with
    | Ok fd -> fd
    | Error last ->
        if left = 0 then raise last
        else begin
          Thread.delay (jittered rng backoff);
          pass (left - 1) (backoff *. 2.)
        end
  in
  let fd = pass retries retry_backoff_s in
  arm_deadline fd deadline_s;
  { fd; deadline_s }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let rpc ?ctx c request =
  (match ctx with
  | None -> Protocol.write_request_fd c.fd request
  | Some context ->
      (* The context envelope rides outside the plain request payload —
         a pre-context server never receives one because pre-context
         callers never pass [ctx]. *)
      Protocol.write_frame_fd c.fd
        (Ssg_net.Frame.with_ctx
           ~ctx:(Ssg_obs.Context.to_wire context)
           (Protocol.request_to_bytes request)));
  try Protocol.read_reply_fd c.fd
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    failwith
      (Printf.sprintf "Client: rpc deadline (%.3f s) exceeded"
         (Option.value c.deadline_s ~default:0.))

let unexpected what = failwith ("Client: unexpected reply to " ^ what)

let submit ?ctx c job =
  match rpc ?ctx c (Protocol.Submit job) with
  | Protocol.Completed completion -> completion
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "submit"

let submit_batch c jobs =
  match rpc c (Protocol.Batch jobs) with
  | Protocol.Batch_completed completions -> completions
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "batch"

let stats c =
  match rpc c Protocol.Stats with
  | Protocol.Stats_snapshot snapshot -> snapshot
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "stats"

let trace c =
  match rpc c Protocol.Trace with
  | Protocol.Trace_events events -> events
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "trace"

let trace_pull c =
  match rpc c Protocol.Trace_pull with
  | Protocol.Trace_reports reports -> reports
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "trace_pull"

let metrics_text c =
  match rpc c Protocol.Metrics with
  | Protocol.Metrics_text text -> text
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "metrics"

let shutdown c =
  match rpc c Protocol.Shutdown with
  | Protocol.Shutting_down -> ()
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "shutdown"

let join c addr =
  match rpc c (Protocol.Join addr) with
  | Protocol.Ack -> ()
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "join"

let leave c addr =
  match rpc c (Protocol.Leave addr) with
  | Protocol.Ack -> ()
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "leave"

let export c n =
  match rpc c (Protocol.Export n) with
  | Protocol.Entries entries -> entries
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "export"

let transfer c entries =
  match rpc c (Protocol.Transfer entries) with
  | Protocol.Transferred n -> n
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "transfer"

let compact c =
  match rpc c Protocol.Compact with
  | Protocol.Compacted n -> n
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "compact"
