type t = { fd : Unix.file_descr; deadline_s : float option }

let retriable = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR -> true
  | _ -> false

let connect ?(retries = 3) ?(retry_backoff_s = 0.05) ?deadline_s ~socket () =
  if retries < 0 then invalid_arg "Client.connect: retries must be >= 0";
  (match deadline_s with
  | Some d when d <= 0. ->
      invalid_arg "Client.connect: deadline_s must be > 0"
  | _ -> ());
  let attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_UNIX socket);
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  (* Bounded exponential backoff: a daemon that is still binding (or
     briefly over its connection limit) costs a few retries, not a
     client-side crash. *)
  let rec go left backoff =
    match attempt () with
    | fd -> fd
    | exception Unix.Unix_error (err, _, _) when left > 0 && retriable err ->
        Thread.delay backoff;
        go (left - 1) (backoff *. 2.)
  in
  let fd = go retries retry_backoff_s in
  (match deadline_s with
  | Some d -> (
      try Unix.setsockopt_float fd Unix.SO_RCVTIMEO d
      with Unix.Unix_error _ -> ())
  | None -> ());
  { fd; deadline_s }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let rpc c request =
  Protocol.write_request_fd c.fd request;
  try Protocol.read_reply_fd c.fd
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    failwith
      (Printf.sprintf "Client: rpc deadline (%.3f s) exceeded"
         (Option.value c.deadline_s ~default:0.))

let unexpected what = failwith ("Client: unexpected reply to " ^ what)

let submit c job =
  match rpc c (Protocol.Submit job) with
  | Protocol.Completed completion -> completion
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "submit"

let submit_batch c jobs =
  match rpc c (Protocol.Batch jobs) with
  | Protocol.Batch_completed completions -> completions
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "batch"

let stats c =
  match rpc c Protocol.Stats with
  | Protocol.Stats_snapshot snapshot -> snapshot
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "stats"

let trace c =
  match rpc c Protocol.Trace with
  | Protocol.Trace_events events -> events
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "trace"

let metrics_text c =
  match rpc c Protocol.Metrics with
  | Protocol.Metrics_text text -> text
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "metrics"

let shutdown c =
  match rpc c Protocol.Shutdown with
  | Protocol.Shutting_down -> ()
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "shutdown"
