type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let rpc c request =
  Protocol.write_request c.oc request;
  Protocol.read_reply c.ic

let unexpected what = failwith ("Client: unexpected reply to " ^ what)

let submit c job =
  match rpc c (Protocol.Submit job) with
  | Protocol.Completed completion -> completion
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "submit"

let submit_batch c jobs =
  match rpc c (Protocol.Batch jobs) with
  | Protocol.Batch_completed completions -> completions
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "batch"

let stats c =
  match rpc c Protocol.Stats with
  | Protocol.Stats_snapshot snapshot -> snapshot
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "stats"

let shutdown c =
  match rpc c Protocol.Shutdown with
  | Protocol.Shutting_down -> ()
  | Protocol.Error msg -> failwith ("server error: " ^ msg)
  | _ -> unexpected "shutdown"
