let log_src = Logs.Src.create "ssg.server" ~doc:"ssgd socket server"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* A dead server leaves its socket file behind; a live one answers
   [connect].  Replace the former, refuse to double-bind the latter. *)
let prepare_address path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if alive then
      raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
    else Unix.unlink path
  end

(* Wake a [Unix.accept] blocked on [path] by completing one throwaway
   connection to it. *)
let poke path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
  Unix.close fd

let handle_connection engine ~stop ~wake fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_request ic with
    | Protocol.Submit job ->
        Protocol.write_reply oc (Protocol.Completed (Engine.run engine job));
        loop ()
    | Protocol.Batch jobs ->
        Protocol.write_reply oc
          (Protocol.Batch_completed (Engine.run_batch engine jobs));
        loop ()
    | Protocol.Stats ->
        Protocol.write_reply oc (Protocol.Stats_snapshot (Engine.stats engine));
        loop ()
    | Protocol.Shutdown ->
        Log.info (fun m -> m "shutdown requested");
        Protocol.write_reply oc Protocol.Shutting_down;
        Atomic.set stop true;
        wake ()
  in
  (try loop () with
  | End_of_file -> ()  (* client hung up between frames: normal *)
  | Failure msg ->
      Log.warn (fun m -> m "dropping connection: %s" msg);
      (try Protocol.write_reply oc (Protocol.Error msg) with _ -> ())
  | Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve ?workers ?queue_capacity ?cache_capacity ~socket () =
  (* A peer closing mid-write must surface as EPIPE, not kill the
     daemon. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  prepare_address socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let engine = Engine.create ?workers ?queue_capacity ?cache_capacity () in
  let stop = Atomic.make false in
  let wake () = poke socket in
  Log.app (fun m -> m "ssgd listening on %s" socket);
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.accept listen_fd with
      | client_fd, _ ->
          if Atomic.get stop then (try Unix.close client_fd with _ -> ())
          else
            ignore
              (Thread.create (handle_connection engine ~stop ~wake) client_fd)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Engine.shutdown engine;
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  Log.app (fun m -> m "ssgd stopped")
