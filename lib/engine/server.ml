let log_src = Logs.Src.create "ssg.server" ~doc:"ssgd socket server"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* A dead server leaves its socket file behind; a live one answers
   [connect].  Replace the former, refuse to double-bind the latter. *)
let prepare_address path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if alive then
      raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
    else Unix.unlink path
  end

(* Wake a [Unix.accept] blocked on [path] by completing one throwaway
   connection to it. *)
let poke path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
  Unix.close fd

(* Raised by the reply path when the fault plan truncated the frame:
   the connection is unusable and must be dropped. *)
exception Drop_connection

(* Write one reply, letting the fault plan mangle it first. *)
let send faults telemetry fd reply =
  let payload = Protocol.reply_to_bytes reply in
  match Faults.on_reply faults with
  | Faults.Deliver -> Protocol.write_frame_fd fd payload
  | Faults.Corrupt ->
      Telemetry.record_injected telemetry;
      let mangled = Bytes.copy payload in
      if Bytes.length mangled > 0 then
        Bytes.set mangled 0
          (Char.chr (Char.code (Bytes.get mangled 0) lxor 0xFF));
      Protocol.write_frame_fd fd mangled
  | Faults.Blackhole ->
      (* The partition plan: swallow the reply, keep the connection.
         The peer sees a live socket that never answers — exactly what
         a blackholed network path looks like — and must save itself
         with its reply deadline. *)
      Telemetry.record_injected telemetry
  | Faults.Truncate ->
      Telemetry.record_injected telemetry;
      (* Header promises the full frame; deliver only half of it. *)
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (Int32.of_int (Bytes.length payload));
      (try
         ignore (Unix.write fd header 0 4);
         ignore (Unix.write fd payload 0 (Bytes.length payload / 2))
       with Unix.Unix_error _ -> ());
      raise Drop_connection

(* One thread per connection.  Everything that can go wrong — a hostile
   frame, a malformed job, a stalled peer, an exception anywhere in
   dispatch — must end here with an [Error] reply where the wire still
   allows one and with the fd closed; nothing may escape and leak the
   descriptor while the client waits forever. *)
let handle_connection engine faults ~stop ~wake ~active fd =
  let telemetry = Engine.telemetry engine in
  let send reply =
    (* [with_span] ends the span even when the fault plan raises
       [Drop_connection] mid-write, keeping the track B/E-balanced. *)
    if Ssg_obs.Tracer.enabled () then
      Ssg_obs.Tracer.with_span "server.reply_write" (fun () ->
          send faults telemetry fd reply)
    else send faults telemetry fd reply
  in
  let reject msg =
    Telemetry.record_rejected_frame telemetry;
    Log.warn (fun m -> m "dropping connection: %s" msg);
    try send (Protocol.Error msg) with _ -> ()
  in
  let rec loop () =
    match Protocol.read_frame_fd fd with
    | exception End_of_file -> ()  (* clean hangup between frames *)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* SO_RCVTIMEO fired: a half-open or stalled client is reaped. *)
        Telemetry.record_connection_timeout telemetry;
        Log.info (fun m -> m "reaping stalled connection")
    | exception Unix.Unix_error _ -> ()
    | exception Failure msg -> reject msg  (* oversized / died mid-frame *)
    | frame -> (
        match Protocol.request_of_bytes frame with
        | exception Failure msg ->
            (* The frame was well-delimited but its payload is garbage
               (unknown tag, truncated fields, malformed job, k < 1 …):
               answer, then drop the connection — a peer speaking a
               broken dialect gets no further pipeline. *)
            reject msg
        | request ->
            let continue =
              try
                match request with
                | Protocol.Submit job -> (
                    let ticket = Engine.submit engine job in
                    match Engine.rejection ticket with
                    | Some diags ->
                        (* A lint rejection is the job's fault, not the
                           connection's: answer with a protocol Error
                           carrying the diagnostics and keep serving. *)
                        send (Protocol.Error diags);
                        true
                    | None ->
                        send
                          (Protocol.Completed (Engine.await engine ticket));
                        true)
                | Protocol.Batch jobs ->
                    send
                      (Protocol.Batch_completed (Engine.run_batch engine jobs));
                    true
                | Protocol.Stats ->
                    send (Protocol.Stats_snapshot (Engine.stats engine));
                    true
                | Protocol.Trace ->
                    send (Protocol.Trace_events (Ssg_obs.Tracer.events ()));
                    true
                | Protocol.Metrics ->
                    send (Protocol.Metrics_text (Engine.prometheus engine));
                    true
                | Protocol.Shutdown ->
                    Log.info (fun m -> m "shutdown requested");
                    (* Arm the stop flag before acknowledging: if the
                       reply send fails (dead peer, injected fault) the
                       shutdown must still happen. *)
                    Atomic.set stop true;
                    wake ();
                    send Protocol.Shutting_down;
                    false
              with
              | Drop_connection -> false
              | Sys_error _ | Unix.Unix_error _ -> false  (* peer went away *)
              | e ->
                  (* Catch-all supervision boundary: reply if possible,
                     then close. *)
                  let msg = Printexc.to_string e in
                  Log.warn (fun m -> m "connection handler error: %s" msg);
                  (try send (Protocol.Error msg) with _ -> ());
                  false
            in
            if continue then loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try loop () with e ->
       Log.err (fun m ->
           m "connection thread escaped: %s" (Printexc.to_string e)))

let serve ?workers ?queue_capacity ?cache_capacity ?(max_connections = 256)
    ?(read_timeout_s = 30.) ?(drain_timeout_s = 5.) ?(faults = Faults.off)
    ?(trace = false) ~socket () =
  if max_connections < 1 then
    invalid_arg "Server.serve: max_connections must be >= 1";
  if trace then begin
    Ssg_obs.Tracer.reset ();
    Ssg_obs.Tracer.set_enabled true
  end;
  (* A peer closing mid-write must surface as EPIPE, not kill the
     daemon. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  prepare_address socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let engine = Engine.create ?workers ?queue_capacity ?cache_capacity ~faults () in
  let telemetry = Engine.telemetry engine in
  let stop = Atomic.make false in
  let active = Atomic.make 0 in
  let wake () = poke socket in
  Log.app (fun m -> m "ssgd listening on %s" socket);
  if not (Faults.is_off faults) then
    Log.app (fun m -> m "chaos mode: injecting %s" (Faults.spec faults));
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.accept listen_fd with
      | client_fd, _ ->
          if Atomic.get stop then (try Unix.close client_fd with _ -> ())
          else if Atomic.get active >= max_connections then begin
            (* Over the limit: tell the client why instead of letting it
               queue behind a connection that will never be served. *)
            Telemetry.record_connection_rejected telemetry;
            (try
               Protocol.write_reply_fd client_fd
                 (Protocol.Error "server at connection limit")
             with _ -> ());
            try Unix.close client_fd with _ -> ()
          end
          else begin
            Atomic.incr active;
            if read_timeout_s > 0. then
              (try
                 Unix.setsockopt_float client_fd Unix.SO_RCVTIMEO
                   read_timeout_s
               with Unix.Unix_error _ -> ());
            ignore
              (Thread.create
                 (handle_connection engine faults ~stop ~wake ~active)
                 client_fd)
          end
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (* Drain: let live connections finish their request/reply exchanges
     instead of abandoning them, bounded by [drain_timeout_s]. *)
  let deadline = Unix.gettimeofday () +. drain_timeout_s in
  while Atomic.get active > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if Atomic.get active > 0 then
    Log.warn (fun m ->
        m "drain timeout: abandoning %d connection(s)" (Atomic.get active));
  Engine.shutdown engine;
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  Log.app (fun m -> m "ssgd stopped")
