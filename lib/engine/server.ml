let log_src = Logs.Src.create "ssg.server" ~doc:"ssgd socket server"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Transport = Ssg_net.Transport
module Frame = Ssg_net.Frame

(* Raised by the reply path when the fault plan truncated the frame:
   the connection is unusable and must be dropped. *)
exception Drop_connection

(* Write one reply, letting the fault plan mangle it first.  [id]
   present means the request arrived in the pipelined id envelope and
   the reply must carry the same id back; [wlock] serializes reply
   frames from concurrent in-flight handlers on one connection. *)
let send ?id faults telemetry ~wlock fd reply =
  let payload = Protocol.reply_to_bytes reply in
  let payload =
    match id with Some id -> Frame.with_id ~id payload | None -> payload
  in
  let under_wlock f =
    Mutex.lock wlock;
    Fun.protect ~finally:(fun () -> Mutex.unlock wlock) f
  in
  match Faults.on_reply faults with
  | Faults.Deliver -> under_wlock (fun () -> Protocol.write_frame_fd fd payload)
  | Faults.Corrupt ->
      Telemetry.record_injected telemetry;
      let mangled = Bytes.copy payload in
      if Bytes.length mangled > 0 then
        Bytes.set mangled 0
          (Char.chr (Char.code (Bytes.get mangled 0) lxor 0xFF));
      under_wlock (fun () -> Protocol.write_frame_fd fd mangled)
  | Faults.Blackhole ->
      (* The partition plan: swallow the reply, keep the connection.
         The peer sees a live socket that never answers — exactly what
         a blackholed network path looks like — and must save itself
         with its reply deadline. *)
      Telemetry.record_injected telemetry
  | Faults.Truncate ->
      Telemetry.record_injected telemetry;
      (* Header promises the full frame; deliver only half of it. *)
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (Int32.of_int (Bytes.length payload));
      under_wlock (fun () ->
          try
            ignore (Unix.write fd header 0 4);
            ignore (Unix.write fd payload 0 (Bytes.length payload / 2))
          with Unix.Unix_error _ -> ());
      raise Drop_connection

(* One thread per connection.  Everything that can go wrong — a hostile
   frame, a malformed job, a stalled peer, an exception anywhere in
   dispatch — must end here with an [Error] reply where the wire still
   allows one and with the fd closed; nothing may escape and leak the
   descriptor while the client waits forever.

   Two dialects share the connection, classified frame by frame:
   {ul
   {- {e plain} frames (the historical format) are answered strictly
      in order, one request at a time;}
   {- {e id-framed} requests ({!Ssg_net.Frame.with_id}) are dispatched
      to their own thread so many may be in flight at once, each reply
      carrying its request's id back — out of order is fine.  At most
      [max_inflight] run concurrently; past the cap the reader handles
      the request inline, which stops it pulling further frames off the
      socket: back-pressure, not queueing.}} *)
let handle_connection engine faults ~stop ~wake ~active ~max_inflight fd =
  let telemetry = Engine.telemetry engine in
  let wlock = Mutex.create () in
  let inflight = Atomic.make 0 in
  (* Set by an in-flight handler that hit a connection-fatal condition
     (truncated reply, peer gone): the reader must stop pipelining. *)
  let broken = Atomic.make false in
  let send ?id reply =
    (* [with_span] ends the span even when the fault plan raises
       [Drop_connection] mid-write, keeping the track B/E-balanced. *)
    if Ssg_obs.Tracer.enabled () then
      Ssg_obs.Tracer.with_span "server.reply_write" (fun () ->
          send ?id faults telemetry ~wlock fd reply)
    else send ?id faults telemetry ~wlock fd reply
  in
  let reject ?id msg =
    Telemetry.record_rejected_frame telemetry;
    Log.warn (fun m -> m "dropping connection: %s" msg);
    try send ?id (Protocol.Error msg) with _ -> ()
  in
  (* Compute and send the reply for one decoded request; false means
     the connection must carry no further requests.  [ctx] is the trace
     context stripped from the request's envelope, if any — it parents
     the engine spans this request produces. *)
  let serve_request ?ctx ?id request =
    try
      match request with
      | Protocol.Submit job -> (
          let ticket = Engine.submit ?ctx engine job in
          match Engine.rejection ticket with
          | Some diags ->
              (* A lint rejection is the job's fault, not the
                 connection's: answer with a protocol Error carrying
                 the diagnostics and keep serving. *)
              send ?id (Protocol.Error diags);
              true
          | None ->
              send ?id (Protocol.Completed (Engine.await engine ticket));
              true)
      | Protocol.Batch jobs ->
          send ?id (Protocol.Batch_completed (Engine.run_batch ?ctx engine jobs));
          true
      | Protocol.Stats ->
          send ?id (Protocol.Stats_snapshot (Engine.stats engine));
          true
      | Protocol.Trace ->
          send ?id (Protocol.Trace_events (Ssg_obs.Tracer.events ()));
          true
      | Protocol.Trace_pull ->
          send ?id
            (Protocol.Trace_reports
               [ Ssg_obs.Tracer.report_here ~role:"worker" () ]);
          true
      | Protocol.Metrics ->
          send ?id (Protocol.Metrics_text (Engine.prometheus engine));
          true
      | Protocol.Join _ | Protocol.Leave _ ->
          (* Membership ops terminate at the router; a worker receiving
             one answers with an Error but keeps the connection — it is
             a misdirected request, not a hostile frame. *)
          send ?id (Protocol.Error "not a router: membership ops go to ssg route");
          true
      | Protocol.Export n ->
          send ?id (Protocol.Entries (Engine.export engine n));
          true
      | Protocol.Transfer entries ->
          send ?id (Protocol.Transferred (Engine.import engine entries));
          true
      | Protocol.Compact ->
          send ?id (Protocol.Compacted (Engine.compact engine));
          true
      | Protocol.Shutdown ->
          Log.info (fun m -> m "shutdown requested");
          (* Arm the stop flag before acknowledging: if the reply send
             fails (dead peer, injected fault) the shutdown must still
             happen. *)
          Atomic.set stop true;
          wake ();
          send ?id Protocol.Shutting_down;
          false
    with
    | Drop_connection -> false
    | Sys_error _ | Unix.Unix_error _ -> false
    (* EPIPE / ECONNRESET on the reply write: the peer vanished between
       request and reply; the supervised-close path below reclaims the
       descriptor without touching the daemon. *)
    | e ->
        (* Catch-all supervision boundary: reply if possible, then
           close. *)
        let msg = Printexc.to_string e in
        Log.warn (fun m -> m "connection handler error: %s" msg);
        (try send ?id (Protocol.Error msg) with _ -> ());
        false
  in
  let rec loop () =
    if Atomic.get broken then ()
    else
      match Protocol.read_frame_fd fd with
      | exception End_of_file -> ()  (* clean hangup between frames *)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* SO_RCVTIMEO fired: a half-open or stalled client is reaped. *)
          Telemetry.record_connection_timeout telemetry;
          Log.info (fun m -> m "reaping stalled connection")
      | exception Unix.Unix_error _ -> ()
      | exception Failure msg -> reject msg  (* oversized / died mid-frame *)
      | frame -> (
          match Frame.classify frame with
          | exception Failure msg -> reject msg
          | Frame.Plain frame -> (
              (* The context envelope (if any) sits where the plain
                 payload would start; pre-context clients simply never
                 send it and take the [(None, frame)] path. *)
              match Frame.split_ctx frame with
              | exception Failure msg -> reject msg
              | ctx_wire, frame -> (
                  let ctx = Option.bind ctx_wire Ssg_obs.Context.of_wire in
                  match Protocol.request_of_bytes frame with
                  | exception Failure msg ->
                      (* The frame was well-delimited but its payload is
                         garbage (unknown tag, truncated fields, malformed
                         job, k < 1 …): answer, then drop the connection — a
                         peer speaking a broken dialect gets no further
                         pipeline. *)
                      reject msg
                  | request -> if serve_request ?ctx request then loop ()))
          | Frame.Id (id, inner) -> (
              match Frame.split_ctx inner with
              | exception Failure msg -> reject ~id msg
              | ctx_wire, inner -> (
                  let ctx = Option.bind ctx_wire Ssg_obs.Context.of_wire in
                  match Protocol.request_of_bytes inner with
                  | exception Failure msg -> reject ~id msg
                  | Protocol.Shutdown ->
                      (* Shutdown is never pipelined past: handle inline so
                         the loop stops pulling frames. *)
                      ignore (serve_request ~id Protocol.Shutdown)
                  | request ->
                      if Atomic.get inflight >= max_inflight then begin
                        (* At the cap the reader does the work itself: the
                           socket is not read again until this request
                           completes, so a flooding client is throttled by
                           its own pipe. *)
                        if serve_request ?ctx ~id request then loop ()
                      end
                      else begin
                        Atomic.incr inflight;
                        ignore
                          (Thread.create
                             (fun () ->
                               Fun.protect
                                 ~finally:(fun () -> Atomic.decr inflight)
                                 (fun () ->
                                   if not (serve_request ?ctx ~id request)
                                   then begin
                                     Atomic.set broken true;
                                     (* Unstick the reader blocked in
                                        read. *)
                                     try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
                                     with Unix.Unix_error _ -> ()
                                   end))
                             ())
                      end;
                      loop ())))
  in
  Fun.protect
    ~finally:(fun () ->
      (* In-flight pipelined handlers still hold the fd: closing it now
         would race their reply writes onto a reused descriptor.  Wait
         them out — a dead peer fails their writes promptly. *)
      while Atomic.get inflight > 0 do
        Thread.delay 0.002
      done;
      Atomic.decr active;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try loop () with e ->
       Log.err (fun m ->
           m "connection thread escaped: %s" (Printexc.to_string e)))

let serve ?workers ?queue_capacity ?cache_capacity ?(max_connections = 256)
    ?(max_inflight = 32) ?(read_timeout_s = 30.) ?(drain_timeout_s = 5.)
    ?(faults = Faults.off) ?(trace = false) ?persist ?persist_sync
    ?persist_compact_bytes ?announce ~socket () =
  if max_connections < 1 then
    invalid_arg "Server.serve: max_connections must be >= 1";
  if max_inflight < 1 then
    invalid_arg "Server.serve: max_inflight must be >= 1";
  let addr = Transport.of_string_exn socket in
  if trace then begin
    Ssg_obs.Tracer.reset ();
    Ssg_obs.Tracer.set_enabled true
  end;
  (* A peer closing mid-write must surface as EPIPE, not kill the
     daemon. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  (* The store opens after the tracer is armed so the boot replay's
     [store.replay] span lands in the trace. *)
  let store =
    Option.map
      (fun dir ->
        Ssg_store.Store.open_ ?sync:persist_sync
          ?compact_bytes:persist_compact_bytes ~dir ())
      persist
  in
  let listen_fd = Transport.listen addr in
  let addr = Transport.bound_addr listen_fd addr in
  let engine =
    Engine.create ?workers ?queue_capacity ?cache_capacity ~faults ?store ()
  in
  let telemetry = Engine.telemetry engine in
  let stop = Atomic.make false in
  let active = Atomic.make 0 in
  let wake () = Transport.poke addr in
  Log.app (fun m -> m "ssgd listening on %s" (Transport.to_string addr));
  (match store with
  | Some s ->
      Log.app (fun m ->
          m "persisting to %s (generation %d, %d record(s) replayed)"
            (Ssg_store.Store.dir s)
            (Ssg_store.Store.generation s)
            (Ssg_store.Store.replayed_records s))
  | None -> ());
  if not (Faults.is_off faults) then
    Log.app (fun m -> m "chaos mode: injecting %s" (Faults.spec faults));
  (* Elastic membership: announce the canonical bound address to the
     router on a background thread (the router may still be binding, so
     Client.connect's backoff does the waiting), and retire on the way
     out, best-effort — a dead router must never block either path. *)
  let self_addr = Transport.to_string addr in
  (match announce with
  | None -> ()
  | Some router ->
      ignore
        (Thread.create
           (fun () ->
             try
               let c =
                 Client.connect ~retries:6 ~deadline_s:30. ~socket:router ()
               in
               Fun.protect
                 ~finally:(fun () -> Client.close c)
                 (fun () -> Client.join c self_addr);
               Log.app (fun m -> m "joined cluster via %s" router)
             with e ->
               Log.warn (fun m ->
                   m "join announcement to %s failed: %s" router
                     (Printexc.to_string e)))
           ()));
  let retire () =
    match announce with
    | None -> ()
    | Some router -> (
        try
          let c = Client.connect ~retries:0 ~deadline_s:5. ~socket:router () in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () -> Client.leave c self_addr)
        with _ -> ())
  in
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.accept listen_fd with
      | client_fd, _ ->
          if Atomic.get stop then (try Unix.close client_fd with _ -> ())
          else if Atomic.get active >= max_connections then begin
            (* Over the limit: tell the client why instead of letting it
               queue behind a connection that will never be served. *)
            Telemetry.record_connection_rejected telemetry;
            (try
               Protocol.write_reply_fd client_fd
                 (Protocol.Error "server at connection limit")
             with _ -> ());
            try Unix.close client_fd with _ -> ()
          end
          else begin
            Atomic.incr active;
            (try Unix.setsockopt client_fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            if read_timeout_s > 0. then
              (try
                 Unix.setsockopt_float client_fd Unix.SO_RCVTIMEO
                   read_timeout_s
               with Unix.Unix_error _ -> ());
            ignore
              (Thread.create
                 (handle_connection engine faults ~stop ~wake ~active
                    ~max_inflight)
                 client_fd)
          end
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (* Drain: let live connections finish their request/reply exchanges
     instead of abandoning them, bounded by [drain_timeout_s]. *)
  let deadline = Unix.gettimeofday () +. drain_timeout_s in
  while Atomic.get active > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if Atomic.get active > 0 then
    Log.warn (fun m ->
        m "drain timeout: abandoning %d connection(s)" (Atomic.get active));
  retire ();
  Engine.shutdown engine;
  Transport.cleanup addr;
  Log.app (fun m -> m "ssgd stopped")
