(** The [ssgd] daemon: {!Engine} served over a Unix-domain socket.

    One listener, one lightweight [Thread] per client connection (the
    handlers only do blocking I/O and waiting — the actual simulation
    work runs on the engine's worker {e domains}), each connection a
    strict request/reply pipeline of {!Protocol} frames.

    Shutdown is cooperative: a [Shutdown] request answers
    [Shutting_down], stops the accept loop, drains the engine's queue
    gracefully and removes the socket file.  A stale socket file from a
    dead server is replaced on startup. *)

(** [serve ~socket ()] binds, prints nothing, logs on [ssg.server], and
    {b blocks} until a client sends [Shutdown].  Engine sizing options
    are {!Engine.create}'s.
    @raise Unix.Unix_error if the address is unusable (e.g. a live
    server already listening). *)
val serve :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  socket:string ->
  unit ->
  unit
