(** The [ssgd] daemon: {!Engine} served over a Unix-domain or TCP
    socket ({!Ssg_net.Transport} addresses — [unix:PATH], [tcp:HOST:PORT],
    or a bare path).

    One listener, one lightweight [Thread] per client connection (the
    handlers only do blocking I/O and waiting — the actual simulation
    work runs on the engine's worker {e domains}).  Each connection
    carries one of two frame dialects, classified frame by frame:

    - {e plain} {!Protocol} frames — the historical strict
      request/reply pipeline, answered in order;
    - {e id-framed} requests ({!Ssg_net.Frame}) — pipelined: up to
      [max_inflight] requests per connection run concurrently and
      replies return {e in completion order}, each carrying its
      request's id.  Past the cap the reader serves requests inline,
      so a flooding client is throttled by its own socket rather than
      queueing unboundedly.

    {b Supervision.}  Every connection runs inside a catch-all boundary:
    a malformed frame or job, an oversized header, a peer dying
    mid-frame, a reply write failing with [EPIPE]/[ECONNRESET] because
    the client vanished between request and reply, or any exception
    escaping dispatch is answered with an [Error] reply where the wire
    still allows one, counted in {!Telemetry}, and the descriptor is
    {e always} closed — a hostile client can cost the server one thread
    for one exchange, never a leaked fd or a hung peer.  Half-open
    clients are reaped by a per-connection read timeout ([SO_RCVTIMEO]);
    connections beyond [max_connections] are refused with an
    explanatory [Error].

    Shutdown is cooperative: a [Shutdown] request answers
    [Shutting_down], stops the accept loop, {e drains} live connections
    (bounded by [drain_timeout_s]) and the engine's queue, and removes
    the socket file.  A stale Unix socket file from a dead server is
    replaced on startup. *)

(** [serve ~socket ()] binds, prints nothing, logs on [ssg.server], and
    {b blocks} until a client sends [Shutdown].  Engine sizing options
    are {!Engine.create}'s.
    - [socket]: a {!Ssg_net.Transport} address string ([unix:PATH],
      [tcp:HOST:PORT], or a bare Unix-socket path).
    - [max_connections] (default 256): concurrent connections beyond
      this are answered [Error "server at connection limit"] and closed.
    - [max_inflight] (default 32): pipelined requests running
      concurrently per connection before the reader applies
      back-pressure.
    - [read_timeout_s] (default 30., [<= 0.] disables): a connection
      idle or stalled mid-frame for this long is reaped.
    - [drain_timeout_s] (default 5.): how long shutdown waits for live
      connections to finish before abandoning them.
    - [faults] (default {!Faults.off}): chaos mode — the plan is
      consulted before each job execution and each reply frame.
    - [trace] (default [false]): resets and enables the process-wide
      {!Ssg_obs.Tracer} before serving, so engine phases and reply
      writes are recorded; clients pull the buffers with the [Trace]
      request ([ssg trace --remote]).
    - [persist]: a directory for the durable result store
      ({!Ssg_store.Store}) — the cache is pre-warmed from it at boot
      (warm boot) and every fresh outcome is journaled; [persist_sync]
      (default group commit of 8) and [persist_compact_bytes] (default
      4 MiB) are the store's policy knobs.  Without [persist] the
      server is exactly as before: in-memory only.
    - [announce]: a router address ([ssg route]'s socket) to send a
      [Join] carrying this server's canonical bound address once it is
      listening (on a background thread, with connect backoff — the
      router may still be starting), and a best-effort [Leave] at
      shutdown.  This replaces pre-listing the worker in the router's
      [-b] flags; the router admits it, rebuilds the ring, and streams
      hot keys for the ranges it now owns (warm handoff).
    @raise Unix.Unix_error if the address is unusable (e.g. a live
    server already listening).
    @raise Invalid_argument if the address string does not parse, or
    [max_connections < 1], or [max_inflight < 1]. *)
val serve :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?max_connections:int ->
  ?max_inflight:int ->
  ?read_timeout_s:float ->
  ?drain_timeout_s:float ->
  ?faults:Faults.t ->
  ?trace:bool ->
  ?persist:string ->
  ?persist_sync:Ssg_store.Store.sync_policy ->
  ?persist_compact_bytes:int ->
  ?announce:string ->
  socket:string ->
  unit ->
  unit
