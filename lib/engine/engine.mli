(** The simulation-service engine: bounded job queue, persistent domain
    worker pool, LRU result cache, in-flight dedup and metrics — the
    in-process core that both the [ssgd] socket server and the benchmark
    harness drive.

    Life of a submission:
    - cache hit → the stored outcome is returned immediately
      ([cached = true]);
    - an identical job already in flight → the submission shares that
      job's result cell instead of executing twice (telemetry counts it
      as a {e dedup join}, separate from cache hits);
    - otherwise → the job is enqueued ({b blocking} while the queue is
      full: backpressure reaches the submitter), executed on a worker
      domain, cached (successes only) and delivered.

    [submit] returns a {!ticket}; [await] blocks until the result is in.
    Submitting from several threads is safe — that is the server's normal
    mode. *)

type t

(** [create ()] — defaults: workers as {!Pool.create}, queue capacity 64,
    cache capacity 1024 (0 disables caching {e and} dedup accounting
    still works for in-flight twins), fault plan {!Faults.off}.  A
    non-[off] [faults] plan is consulted before every job execution
    (chaos mode); injected crashes surface as [Error] completions and
    are counted in telemetry.

    [store], when given, makes the cache durable: the store's recovered
    records are replayed into the LRU here (warm boot — records that no
    longer decode are skipped with a warning), every freshly computed
    outcome is journaled after its cache insert, and the journal is
    compacted automatically once it outgrows the store's threshold.
    The engine owns the store from here on: {!shutdown} closes it. *)
val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?faults:Faults.t ->
  ?store:Ssg_store.Store.t ->
  unit ->
  t

(** The attached store, if any. *)
val store : t -> Ssg_store.Store.t option

(** The engine's metrics sink — shared with the server so connection
    supervision (rejected frames, reaped connections) lands in the same
    snapshot as job accounting. *)
val telemetry : t -> Telemetry.t

type ticket

(** [submit t job] — may block on a full queue.  Never raises on job
    errors; they surface as [Error] completions.

    {b Lint front door.}  A fresh submission (no cache hit, no in-flight
    twin) is first checked by {!Ssg_lint.Lint.gate} against the job's own
    [k]: jobs whose run description cannot parse or can never satisfy
    [Psrcs(k)] are rejected without touching the worker pool.  The
    rejection surfaces as an [Error] completion from [await] (and via
    {!rejection} for callers that want to answer with a protocol-level
    error instead), is counted as [jobs_rejected_lint] in telemetry, and
    is never cached.

    [ctx], when given and tracing is enabled, makes the [engine.submit]
    span a child of the remote context (the router's or gateway's span
    that carried the job here) and [engine.execute] a grandchild — the
    worker end of cross-process trace propagation.  Without tracing the
    option costs one branch. *)
val submit : ?ctx:Ssg_obs.Context.t -> t -> Job.t -> ticket

(** [rejection ticket] is [Some rendered_diagnostics] iff the submission
    was refused at the lint front door. *)
val rejection : ticket -> string option

(** [await t ticket] blocks until the job's completion is available. *)
val await : t -> ticket -> Job.completion

(** [run t job] is [await t (submit t job)]. *)
val run : t -> Job.t -> Job.completion

(** [submit_batch t jobs] is [List.map (submit t) jobs] with a parallel
    front door: every distinct key of the batch that is neither cached
    nor in flight is linted on the worker pool {e first} (the batch
    pre-gate), then the jobs are submitted in order consulting those
    precomputed verdicts.  Per-job semantics — rejection behavior,
    dedup, telemetry counts, ticket order — are identical to submitting
    serially; only the lint work is fanned out.  This is what makes
    lint-bound batches (a sweep grid, [ssg lint] over many files) scale
    with the pool.  [ctx] parents every job's spans under the same
    remote context (a batch travels as one wire request, hence one
    context). *)
val submit_batch : ?ctx:Ssg_obs.Context.t -> t -> Job.t list -> ticket list

(** [run_batch ?ctx t jobs] is {!submit_batch} then [await] in order
    (so the pool pipelines the whole batch). *)
val run_batch : ?ctx:Ssg_obs.Context.t -> t -> Job.t list -> Job.completion list

val stats : t -> Telemetry.snapshot

(** [prometheus t] — the current stats as Prometheus text exposition
    (see {!Telemetry.prometheus}), with the attached store's
    [ssg_store_*] series appended when one is wired in; what the
    [Metrics] wire op serves. *)
val prometheus : t -> string

(** Warm handoff (what the [Export] / [Transfer] / [Compact] wire ops
    call into). *)

(** [export t n] — up to [n] of the hottest cache entries as
    [(key, encoded outcome)] pairs, most-recently-used first, bounded to
    ~4 MiB of payload so the result always frames. *)
val export : t -> int -> (string * string) list

(** [import t entries] seeds exported entries into the cache (and the
    journal, when a store is attached), hottest landing most-recent.
    Entries whose outcome no longer decodes are skipped with a warning;
    entries whose key is currently in flight are left to the running
    computation.  Returns the number imported. *)
val import : t -> (string * string) list -> int

(** [compact t] — snapshot the live cache into the store and truncate
    the journal (see {!Ssg_store.Store.compact}); [0] without a store or
    on a wedged one. *)
val compact : t -> int

(** Tracing: when {!Ssg_obs.Tracer} is enabled, the engine emits
    [engine.submit] / [engine.lint] / [engine.execute] spans and
    [engine.cache_hit] / [engine.dedup_join] / [engine.lint_reject]
    instants.  The [engine.execute] span begins and ends on the worker
    domain and carries the job's cross-domain queue wait as a [queue_ms]
    argument, so every domain's track stays B/E-balanced.  When tracing
    is disabled (the default) the instrumentation is a single atomic
    load per probe. *)

(** [shutdown t] — graceful: accepted jobs run to completion, workers
    join, the attached store (if any) is synced and closed.  Jobs
    submitted afterwards complete with an [Error].  Idempotent. *)
val shutdown : t -> unit
