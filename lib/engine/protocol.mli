(** The [ssgd] wire protocol: length-prefixed binary frames.

    Every message on the Unix-domain socket is one {e frame}: a 4-byte
    big-endian payload length followed by the payload; the payload's
    first byte is a constructor tag.  Integers travel as 8-byte
    big-endian two's complement, floats as their IEEE-754 bits, strings
    as a length then raw bytes — no escaping, no delimiters, so framing
    is exact under any kernel buffering and the codec round-trips
    byte-for-byte (property-tested).

    Clients send {!request}s, the server answers each with exactly one
    {!reply}, in order, on the same connection — a strict request/reply
    pipeline per connection; concurrency comes from multiple
    connections. *)

type request =
  | Submit of Job.t
  | Batch of Job.t list  (** one reply carrying one completion per job *)
  | Stats
  | Trace
      (** drain the server's trace buffers — answered with
          {!Trace_events} (empty when tracing is disabled) *)
  | Trace_pull
      (** fleet trace pull — answered with {!Trace_reports}: like
          {!Trace} but each buffer comes wrapped in a
          {!Ssg_obs.Tracer.report} carrying role, pid and the clock
          anchor stitching needs; a router answering it relays the pull
          to every backend and prepends its own report *)
  | Metrics
      (** Prometheus text exposition of the server's stats — answered
          with {!Metrics_text} *)
  | Shutdown  (** graceful: drains the queue, then the server exits *)
  | Join of string
      (** elastic membership: a worker announcing itself to the router
          by the address clients should reach it at — answered with
          {!Ack} once admitted (and once any warm handoff toward it has
          run); a worker receiving it answers {!Error} *)
  | Leave of string
      (** graceful retirement of a member; the router pulls its hot
          keys before dropping it from the ring — answered with {!Ack} *)
  | Export of int
      (** warm handoff: hand me up to n of your hottest cache entries
          (most-recently-used first) — answered with {!Entries} *)
  | Transfer of (string * string) list
      (** warm handoff: seed these (cache key, encoded outcome) entries
          into your cache — answered with {!Transferred} (the count
          actually imported; undecodable entries are skipped) *)
  | Compact
      (** roll the store generation: snapshot the live cache, truncate
          the journal — answered with {!Compacted} (snapshot size; 0
          when no store is attached); a router relays it to every
          backend and answers with the sum *)

type reply =
  | Completed of Job.completion
  | Batch_completed of Job.completion list
  | Stats_snapshot of Telemetry.snapshot
  | Trace_events of Ssg_obs.Tracer.event list
      (** the server-side trace, oldest first per domain *)
  | Trace_reports of Ssg_obs.Tracer.report list
      (** fleet pull reply: one report per process reached — a worker
          answers with exactly its own, a router with its own plus one
          per backend *)
  | Metrics_text of string
      (** Prometheus text rendered server-side, so any scraper that can
          speak the frame format gets a consistent exposition without
          reimplementing the snapshot maths *)
  | Shutting_down
  | Ack  (** {!Join} / {!Leave} accepted *)
  | Entries of (string * string) list
      (** {!Export} reply: (cache key, encoded outcome) pairs,
          most-recently-used first *)
  | Transferred of int  (** {!Transfer} reply: entries imported *)
  | Compacted of int  (** {!Compact} reply: snapshot size in records *)
  | Error of string  (** protocol-level failure (not a job failure) *)

(** {b Wire compatibility note (latency split).}  The stats snapshot
    ends with three optional {!Ssg_util.Stats.summary} values:
    [latency_ms] (the legacy submit-to-completion figure, kept with its
    original meaning and position) followed by the two phases it splits
    into, [queue_wait_ms] and [exec_ms] — appended {e after} every
    pre-existing field, so a reader of the old layout consumes a prefix
    that still parses as before.  [latency_ms ≈ queue_wait_ms + exec_ms]
    per job; the split comes from the worker-side execution span, not
    from a second clock. *)

(** Hard cap on payload size ([16 MiB]); both sides refuse larger frames
    rather than attempting unbounded allocation on garbage input. *)
val max_frame_bytes : int

(** Pure codecs (what the qcheck round-trip and decode-fuzz tests
    exercise).  Decoders
    @raise Failure — and {e only} [Failure] — on truncated or malformed
    payloads, including payloads that frame correctly but describe an
    invalid job (bad [k], bad run text): parameter validation errors are
    folded into [Failure] here so nothing else can escape a connection
    handler. *)

val request_to_bytes : request -> Bytes.t

val request_of_bytes : Bytes.t -> request
val reply_to_bytes : reply -> Bytes.t
val reply_of_bytes : Bytes.t -> reply

(** Standalone outcome codec — the exact encoding outcomes use inside
    wire frames, exposed so the durable store journals them in the same
    form.  [outcome_of_string]
    @raise Failure — and only [Failure] — on malformed or trailing
    bytes (same contract as the frame decoders; fuzz-tested the same
    way). *)

val outcome_to_string : Job.outcome -> string

val outcome_of_string : string -> Job.outcome

(** Channel framing.  Writers flush.  Readers
    @raise End_of_file on a cleanly closed peer,
    @raise Failure on oversized or malformed frames. *)

val write_frame : out_channel -> Bytes.t -> unit

val read_frame : in_channel -> Bytes.t
val write_request : out_channel -> request -> unit
val read_request : in_channel -> request
val write_reply : out_channel -> reply -> unit
val read_reply : in_channel -> reply

(** Descriptor framing — same frames, no channel buffering.  The server
    and client use these so a socket read timeout ([SO_RCVTIMEO])
    surfaces as [Unix_error (EAGAIN | EWOULDBLOCK)] at the stalled
    syscall, which supervision classifies as a reaped connection.
    Readers additionally
    @raise End_of_file on a peer closed at a frame boundary,
    @raise Failure on oversized frames or a peer dying mid-frame. *)

val read_frame_fd : Unix.file_descr -> Bytes.t

val write_frame_fd : Unix.file_descr -> Bytes.t -> unit
val write_request_fd : Unix.file_descr -> request -> unit
val read_request_fd : Unix.file_descr -> request
val write_reply_fd : Unix.file_descr -> reply -> unit
val read_reply_fd : Unix.file_descr -> reply
