(* Each rule fires on every [every]-th visit, counted atomically so
   concurrent handler threads and worker domains share one schedule. *)

type rule = { every : int; count : int Atomic.t }

let rule every = { every; count = Atomic.make 0 }

let fires = function
  | None -> false
  | Some r -> (Atomic.fetch_and_add r.count 1 + 1) mod r.every = 0

type t = {
  crash : rule option;
  slow : rule option;
  slow_s : float;
  corrupt : rule option;
  truncate : rule option;
  blackhole : rule option;
  torn_write : rule option;
}

let off =
  {
    crash = None;
    slow = None;
    slow_s = 0.;
    corrupt = None;
    truncate = None;
    blackhole = None;
    torn_write = None;
  }

let is_off t =
  t.crash = None && t.slow = None && t.corrupt = None && t.truncate = None
  && t.blackhole = None && t.torn_write = None

let create ?crash_every ?slow_every ?(slow_s = 0.05) ?corrupt_every
    ?truncate_every ?blackhole_every ?torn_write_every () =
  let period what = function
    | None -> None
    | Some n when n < 1 ->
        invalid_arg (Printf.sprintf "Faults.create: %s must be >= 1" what)
    | Some n -> Some (rule n)
  in
  if slow_s < 0. then invalid_arg "Faults.create: slow_s must be >= 0";
  {
    crash = period "crash_every" crash_every;
    slow = period "slow_every" slow_every;
    slow_s;
    corrupt = period "corrupt_every" corrupt_every;
    truncate = period "truncate_every" truncate_every;
    blackhole = period "blackhole_every" blackhole_every;
    torn_write = period "torn_write_every" torn_write_every;
  }

let of_spec s =
  let s = String.trim s in
  if s = "" || String.lowercase_ascii s = "off" then Ok off
  else
    let parse_item acc item =
      match acc with
      | Error _ as e -> e
      | Ok (crash, slow, slow_s, corrupt, truncate, blackhole, torn) -> (
          let bad () = Error (Printf.sprintf "bad fault item %S" item) in
          match String.split_on_char ':' (String.trim item) with
          | [ kind; arg ] -> (
              let period p =
                match int_of_string_opt (String.trim p) with
                | Some n when n >= 1 -> Some n
                | _ -> None
              in
              match String.lowercase_ascii (String.trim kind) with
              | "crash" -> (
                  match period arg with
                  | Some n ->
                      Ok (Some n, slow, slow_s, corrupt, truncate, blackhole, torn)
                  | None -> bad ())
              | "slow" -> (
                  match String.split_on_char '@' arg with
                  | [ p ] -> (
                      match period p with
                      | Some n ->
                          Ok
                            ( crash,
                              Some n,
                              slow_s,
                              corrupt,
                              truncate,
                              blackhole,
                              torn )
                      | None -> bad ())
                  | [ p; ms ] -> (
                      match (period p, float_of_string_opt (String.trim ms)) with
                      | Some n, Some ms when ms >= 0. ->
                          Ok
                            ( crash,
                              Some n,
                              ms /. 1000.,
                              corrupt,
                              truncate,
                              blackhole,
                              torn )
                      | _ -> bad ())
                  | _ -> bad ())
              | "corrupt" -> (
                  match period arg with
                  | Some n ->
                      Ok (crash, slow, slow_s, Some n, truncate, blackhole, torn)
                  | None -> bad ())
              | "truncate" -> (
                  match period arg with
                  | Some n ->
                      Ok (crash, slow, slow_s, corrupt, Some n, blackhole, torn)
                  | None -> bad ())
              | "blackhole" | "partition" -> (
                  match period arg with
                  | Some n ->
                      Ok (crash, slow, slow_s, corrupt, truncate, Some n, torn)
                  | None -> bad ())
              | "torn-write" -> (
                  match period arg with
                  | Some n ->
                      Ok
                        (crash, slow, slow_s, corrupt, truncate, blackhole, Some n)
                  | None -> bad ())
              | _ -> bad ())
          | _ -> bad ())
    in
    match
      List.fold_left parse_item
        (Ok (None, None, 0.05, None, None, None, None))
        (String.split_on_char ',' s)
    with
    | Error _ as e -> e
    | Ok
        ( crash_every,
          slow_every,
          slow_s,
          corrupt_every,
          truncate_every,
          blackhole_every,
          torn_write_every ) ->
        Ok
          (create ?crash_every ?slow_every ~slow_s ?corrupt_every
             ?truncate_every ?blackhole_every ?torn_write_every ())

let spec t =
  if is_off t then "off"
  else
    let item name = function
      | None -> []
      | Some r -> [ Printf.sprintf "%s:%d" name r.every ]
    in
    let slow =
      match t.slow with
      | None -> []
      | Some r -> [ Printf.sprintf "slow:%d@%g" r.every (1000. *. t.slow_s) ]
    in
    String.concat ","
      (item "crash" t.crash @ slow @ item "corrupt" t.corrupt
      @ item "truncate" t.truncate
      @ item "blackhole" t.blackhole
      @ item "torn-write" t.torn_write)

type execute_fate = Run | Delay of float | Crash
type reply_fate = Deliver | Corrupt | Truncate | Blackhole
type append_fate = Write | Torn

let on_execute t =
  if is_off t then Run
  else if fires t.crash then Crash
  else if fires t.slow then Delay t.slow_s
  else Run

let on_reply t =
  if is_off t then Deliver
  else if fires t.truncate then Truncate
  else if fires t.corrupt then Corrupt
  else if fires t.blackhole then Blackhole
  else Deliver

let on_append t = if fires t.torn_write then Torn else Write
