(** Write-once synchronization cells.

    The engine's unit of result delivery: a worker domain fills the cell
    exactly once, and any number of waiting threads or domains read it.
    Implemented with a mutex and a condition variable, so it is safe
    across both [Thread]s (connection handlers) and [Domain]s (pool
    workers). *)

type 'a t

val create : unit -> 'a t

(** [fill cell v] publishes [v] and wakes all readers.
    @raise Invalid_argument if the cell is already filled. *)
val fill : 'a t -> 'a -> unit

(** [read cell] blocks until the cell is filled, then returns the value.
    Subsequent reads return immediately. *)
val read : 'a t -> 'a

(** [peek cell] is the value if already filled, without blocking. *)
val peek : 'a t -> 'a option
