(** Server metrics: counters, latency percentiles, throughput.

    One [t] per engine.  Workers and connection handlers record events
    concurrently (internally synchronized); [snapshot] freezes everything
    into the plain record the [stats] wire reply carries.

    Per-job latency is measured submit-to-completion in milliseconds and
    kept in a fixed-size ring of the most recent [window] samples;
    percentiles come from {!Ssg_util.Stats.summarize} over that window. *)

type snapshot = {
  uptime_s : float;
  workers : int;
  queue_depth : int;
  queue_capacity : int;
  jobs_submitted : int;  (** requests accepted, including cache hits *)
  jobs_completed : int;  (** jobs actually executed to a result *)
  jobs_failed : int;  (** executions that ended in an error reply *)
  cache_hits : int;  (** served from cache or deduplicated in flight *)
  cache_misses : int;
  cache_entries : int;
  throughput_jps : float;  (** completed jobs per second of uptime *)
  latency_ms : Ssg_util.Stats.summary option;
      (** [None] until the first completion *)
}

type t

(** [create ?window ()] — [window] (default 4096) bounds the latency
    ring. *)
val create : ?window:int -> unit -> t

val record_submitted : t -> unit
val record_completed : t -> latency_ms:float -> unit
val record_failed : t -> latency_ms:float -> unit
val record_hit : t -> unit
val record_miss : t -> unit

(** [snapshot t ~workers ~queue_depth ~queue_capacity ~cache_entries] —
    the queue/cache gauges are sampled by the caller (the engine owns
    them). *)
val snapshot :
  t ->
  workers:int ->
  queue_depth:int ->
  queue_capacity:int ->
  cache_entries:int ->
  snapshot

(** Human-readable multi-line rendering (the [ssg stats] output). *)
val pp_snapshot : Format.formatter -> snapshot -> unit
