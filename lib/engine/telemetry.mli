(** Server metrics: counters, latency percentiles, throughput, fault
    accounting.

    One [t] per engine.  Workers and connection handlers record events
    concurrently; counters live on an {!Ssg_obs.Metrics} registry (one
    atomic each), the latency rings are internally synchronized, and
    [snapshot] freezes everything into the plain record the [stats] wire
    reply carries.

    Per-job latency is measured submit-to-completion in milliseconds and
    kept in a fixed-size ring of the most recent [window] samples;
    percentiles come from {!Ssg_util.Stats.summarize} over that window.
    The same ring geometry holds the two phases that make up that total:
    queue wait (submit until a worker picks the job up) and execution
    (worker pickup until the result is ready) — see [queue_wait_ms] and
    [exec_ms] below.  Completion {e times} are kept in one more ring of
    the same size, so throughput can be reported over a recent
    wall-clock window — a long-idle daemon reports the current burst's
    rate, not its lifetime average diluted by the idle time (the
    lifetime average is still carried separately).

    Each phase also feeds a bucketed registry histogram
    ([ssgd_job_queue_wait_ms], [ssgd_job_exec_ms],
    [ssgd_job_latency_ms]) for the Prometheus exposition, which wants
    cumulative buckets rather than percentiles. *)

type snapshot = {
  uptime_s : float;
  workers : int;
  queue_depth : int;
  queue_capacity : int;
  jobs_submitted : int;  (** requests accepted, including hits and joins *)
  jobs_completed : int;  (** jobs actually executed to a result *)
  jobs_failed : int;  (** executions that ended in an error reply *)
  jobs_rejected_lint : int;
      (** jobs refused at the engine front door because the lint pass
          found errors — never executed, never cached *)
  cache_hits : int;  (** served from the LRU result cache *)
  cache_misses : int;
  dedup_joins : int;
      (** submissions that joined an identical in-flight execution
          instead of hitting the cache or executing — counted apart from
          [cache_hits] so the LRU hit rate is honest *)
  cache_entries : int;
  throughput_jps : float;
      (** completions per second over the recent window (see
          [recent_window_s]); [0.] when the window saw none *)
  lifetime_jps : float;  (** completions per second since startup *)
  recent_window_s : float;  (** the window [throughput_jps] covers *)
  rejected_frames : int;
      (** wire frames refused: oversized, truncated, undecodable, or
          carrying a malformed job — each answered with an [Error] reply
          where the connection still allowed one *)
  timed_out_connections : int;
      (** connections reaped by the per-connection read timeout *)
  connections_rejected : int;
      (** connections turned away at the max-concurrent-connections
          limit *)
  faults_injected : int;
      (** faults the active {!Faults} plan injected (chaos mode) *)
  latency_ms : Ssg_util.Stats.summary option;
      (** submit-to-completion, the legacy end-to-end figure; [None]
          until the first completion *)
  queue_wait_ms : Ssg_util.Stats.summary option;
      (** the queue-wait share of [latency_ms]: submit until a worker
          picked the job up *)
  exec_ms : Ssg_util.Stats.summary option;
      (** the execution share of [latency_ms]: worker pickup until the
          result was ready *)
}

type t

(** [create ?window ?recent_window_s ()] — [window] (default 4096)
    bounds the latency and completion-time rings; [recent_window_s]
    (default 10.) is the wall-clock span of the recent throughput rate.
    @raise Invalid_argument if [window < 1] or [recent_window_s <= 0.]. *)
val create : ?window:int -> ?recent_window_s:float -> unit -> t

(** The metrics registry holding this telemetry's counters and phase
    histograms.  Extra instruments may be registered on it; they show up
    in the Prometheus exposition's histogram section. *)
val registry : t -> Ssg_obs.Metrics.t

val record_submitted : t -> unit

(** [record_completed t ~latency_ms ~queue_ms ~exec_ms] — a job executed
    to a result.  [latency_ms] is submit-to-completion; [queue_ms] and
    [exec_ms] are its queue-wait and execution shares. *)
val record_completed :
  t -> latency_ms:float -> queue_ms:float -> exec_ms:float -> unit

val record_failed :
  t -> latency_ms:float -> queue_ms:float -> exec_ms:float -> unit

(** [record_rejected_lint t] — a job was refused at the lint front
    door. *)
val record_rejected_lint : t -> unit

val record_hit : t -> unit
val record_miss : t -> unit

(** [record_dedup t] — a submission joined an in-flight twin. *)
val record_dedup : t -> unit

(** Fault-class counters (the supervision layer's side of the chaos
    tests). *)

val record_rejected_frame : t -> unit

val record_connection_timeout : t -> unit
val record_connection_rejected : t -> unit
val record_injected : t -> unit

(** [snapshot t ~workers ~queue_depth ~queue_capacity ~cache_entries] —
    the queue/cache gauges are sampled by the caller (the engine owns
    them). *)
val snapshot :
  t ->
  workers:int ->
  queue_depth:int ->
  queue_capacity:int ->
  cache_entries:int ->
  snapshot

(** [merge snapshots] — one cluster-wide snapshot from per-backend
    ones (what the router's [stats] fan-out replies with).  Counters,
    gauges and throughputs add; [uptime_s] and [recent_window_s] take
    the max.  The latency summaries merge exactly in count, mean,
    stddev (pooled via second moments), min and max; their percentiles
    are {e count-weighted averages} of the per-shard percentiles — an
    approximation, since true cluster percentiles are not recoverable
    from per-shard summaries.
    @raise Invalid_argument on the empty list. *)
val merge : snapshot list -> snapshot

(** A snapshot flattened to named fields — the one serializer both the
    JSON and the Prometheus renderings are derived from, so the two
    cannot drift apart (and tests can assert coverage field by
    field). *)
type field =
  | F_count of string * int  (** monotone counter *)
  | F_gauge_i of string * int
  | F_gauge_f of string * float
  | F_summary of string * Ssg_util.Stats.summary option

(** Every snapshot field, in declaration order. *)
val fields : snapshot -> field list

(** Compact JSON object over {!fields}; summaries become objects with
    [count]/[mean]/[stddev]/[min]/[max]/[p50]/[p95]/[p99], absent
    summaries become [null]. *)
val json_of_snapshot : snapshot -> string

(** [prometheus t s] — Prometheus text exposition: every {!fields} entry
    as an [ssgd_]-prefixed counter, gauge or summary (quantiles
    0.5/0.95/0.99), followed by the registry's bucketed phase
    histograms and {!prom_trace_dropped}.  The registry's counters are
    skipped — they are the same numbers the snapshot already
    carries. *)
val prometheus : t -> snapshot -> string

(** {1 Per-hop latency decomposition}

    The [ssg_hop_*] histogram family shares one namespace across the
    fleet, so a scrape of gateway + router + worker decomposes
    end-to-end latency hop by hop.  The worker registers
    [ssg_hop_queue_wait_ms] and [ssg_hop_exec_ms] itself (observed with
    every completion); the forwarding processes register their hops
    into their own registries with these helpers. *)

(** [hop_gateway_router registry] — register the
    [ssg_hop_gateway_router_ms] histogram (gateway-side backend wait).
    @raise Invalid_argument on a registry that already has it. *)
val hop_gateway_router : Ssg_obs.Metrics.t -> Ssg_obs.Metrics.histogram

(** [hop_router_worker registry] — register the
    [ssg_hop_router_worker_ms] histogram (router-side backend
    exchange). *)
val hop_router_worker : Ssg_obs.Metrics.t -> Ssg_obs.Metrics.histogram

(** [prom_trace_dropped buf] — append the tracer's ring drop counter as
    the [ssg_trace_dropped_total] counter (always rendered, including
    at zero). *)
val prom_trace_dropped : Buffer.t -> unit

(** [prometheus_of_snapshot ?prefix s] — the snapshot-only part of
    {!prometheus} (no registry histograms), with every metric name
    under [prefix] (default ["ssgd_"]).  The router renders its merged
    cluster snapshot with [~prefix:"ssg_cluster_"] so a cluster scrape
    and a per-worker scrape cannot collide. *)
val prometheus_of_snapshot : ?prefix:string -> snapshot -> string

(** Human-readable multi-line rendering (the [ssg stats] output). *)
val pp_snapshot : Format.formatter -> snapshot -> unit
