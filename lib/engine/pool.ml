let log_src = Logs.Src.create "ssg.engine.pool" ~doc:"Domain worker pool"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  queue : (unit -> unit) Bqueue.t;
  domains : unit Domain.t array;
  joined : Mutex.t;  (* serializes shutdown; joining a domain twice is UB *)
  mutable down : bool;
}

let worker queue () =
  let rec loop () =
    match Bqueue.pop queue with
    | None -> ()
    | Some task ->
        (try task ()
         with e ->
           Log.err (fun m ->
               m "task escaped its wrapper: %s" (Printexc.to_string e)));
        loop ()
  in
  loop ()

let create ?workers ?(queue_capacity = 64) () =
  let workers =
    match workers with
    | Some w -> w
    | None -> max 1 (Ssg_util.Parallel.default_domains ())
  in
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let queue = Bqueue.create ~capacity:queue_capacity () in
  let domains = Array.init workers (fun _ -> Domain.spawn (worker queue)) in
  Log.info (fun m ->
      m "pool up: %d worker domain(s), queue capacity %d" workers
        queue_capacity);
  { queue; domains; joined = Mutex.create (); down = false }

let workers pool = Array.length pool.domains
let queue_depth pool = Bqueue.length pool.queue
let queue_capacity pool = Bqueue.capacity pool.queue
let submit pool task = Bqueue.push pool.queue task

let shutdown pool =
  Bqueue.close pool.queue;
  Mutex.lock pool.joined;
  if not pool.down then begin
    Array.iter Domain.join pool.domains;
    pool.down <- true;
    Log.info (fun m -> m "pool drained and joined")
  end;
  Mutex.unlock pool.joined
