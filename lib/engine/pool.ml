let log_src = Logs.Src.create "ssg.engine.pool" ~doc:"Domain worker pool"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  queue : (unit -> unit) Bqueue.t;
  domains : unit Domain.t array;
  joined : Mutex.t;  (* serializes shutdown; joining a domain twice is UB *)
  mutable down : bool;
}

let worker queue () =
  let rec loop () =
    match Bqueue.pop queue with
    | None -> ()
    | Some task ->
        (try task ()
         with e ->
           Log.err (fun m ->
               m "task escaped its wrapper: %s" (Printexc.to_string e)));
        loop ()
  in
  loop ()

let create ?workers ?(queue_capacity = 64) () =
  let workers =
    match workers with
    | Some w -> w
    | None -> max 1 (Ssg_util.Parallel.default_domains ())
  in
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let queue = Bqueue.create ~capacity:queue_capacity () in
  let domains = Array.init workers (fun _ -> Domain.spawn (worker queue)) in
  Log.info (fun m ->
      m "pool up: %d worker domain(s), queue capacity %d" workers
        queue_capacity);
  { queue; domains; joined = Mutex.create (); down = false }

let workers pool = Array.length pool.domains
let queue_depth pool = Bqueue.length pool.queue
let queue_capacity pool = Bqueue.capacity pool.queue
let submit pool task = Bqueue.push pool.queue task

let map pool f xs =
  match xs with
  | [] -> []
  | xs ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let mu = Mutex.create () and done_cv = Condition.create () in
      let remaining = ref n in
      let run i =
        let r = try Ok (f items.(i)) with e -> Error e in
        Mutex.lock mu;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.signal done_cv;
        Mutex.unlock mu
      in
      for i = 0 to n - 1 do
        (* A shut-down pool rejects the task; run it inline so map still
           returns complete, ordered results. *)
        if not (submit pool (fun () -> run i)) then run i
      done;
      Mutex.lock mu;
      while !remaining > 0 do
        Condition.wait done_cv mu
      done;
      Mutex.unlock mu;
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)

let shutdown pool =
  Bqueue.close pool.queue;
  Mutex.lock pool.joined;
  if not pool.down then begin
    Array.iter Domain.join pool.domains;
    pool.down <- true;
    Log.info (fun m -> m "pool drained and joined")
  end;
  Mutex.unlock pool.joined
