open Ssg_util

type snapshot = {
  uptime_s : float;
  workers : int;
  queue_depth : int;
  queue_capacity : int;
  jobs_submitted : int;
  jobs_completed : int;
  jobs_failed : int;
  jobs_rejected_lint : int;
  cache_hits : int;
  cache_misses : int;
  dedup_joins : int;
  cache_entries : int;
  throughput_jps : float;
  lifetime_jps : float;
  recent_window_s : float;
  rejected_frames : int;
  timed_out_connections : int;
  connections_rejected : int;
  faults_injected : int;
  latency_ms : Stats.summary option;
}

type t = {
  mutex : Mutex.t;
  started : float;  (* Unix.gettimeofday at creation *)
  recent_window_s : float;
  ring : float array;  (* most recent latencies, circular *)
  stamps : float array;  (* completion times, same ring geometry *)
  mutable ring_len : int;
  mutable ring_pos : int;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable rejected_lint : int;
  mutable hits : int;
  mutable misses : int;
  mutable dedups : int;
  mutable rejected_frames : int;
  mutable timed_out : int;
  mutable conn_rejected : int;
  mutable injected : int;
}

let create ?(window = 4096) ?(recent_window_s = 10.) () =
  if window < 1 then invalid_arg "Telemetry.create: window must be >= 1";
  if recent_window_s <= 0. then
    invalid_arg "Telemetry.create: recent_window_s must be > 0";
  {
    mutex = Mutex.create ();
    started = Unix.gettimeofday ();
    recent_window_s;
    ring = Array.make window 0.;
    stamps = Array.make window 0.;
    ring_len = 0;
    ring_pos = 0;
    submitted = 0;
    completed = 0;
    failed = 0;
    rejected_lint = 0;
    hits = 0;
    misses = 0;
    dedups = 0;
    rejected_frames = 0;
    timed_out = 0;
    conn_rejected = 0;
    injected = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push_latency t ms =
  t.ring.(t.ring_pos) <- ms;
  t.stamps.(t.ring_pos) <- Unix.gettimeofday ();
  t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
  t.ring_len <- min (t.ring_len + 1) (Array.length t.ring)

let record_submitted t = locked t (fun () -> t.submitted <- t.submitted + 1)

let record_completed t ~latency_ms =
  locked t (fun () ->
      t.completed <- t.completed + 1;
      push_latency t latency_ms)

let record_failed t ~latency_ms =
  locked t (fun () ->
      t.failed <- t.failed + 1;
      push_latency t latency_ms)

let record_rejected_lint t =
  locked t (fun () -> t.rejected_lint <- t.rejected_lint + 1)

let record_hit t = locked t (fun () -> t.hits <- t.hits + 1)
let record_miss t = locked t (fun () -> t.misses <- t.misses + 1)
let record_dedup t = locked t (fun () -> t.dedups <- t.dedups + 1)

let record_rejected_frame t =
  locked t (fun () -> t.rejected_frames <- t.rejected_frames + 1)

let record_connection_timeout t =
  locked t (fun () -> t.timed_out <- t.timed_out + 1)

let record_connection_rejected t =
  locked t (fun () -> t.conn_rejected <- t.conn_rejected + 1)

let record_injected t = locked t (fun () -> t.injected <- t.injected + 1)

(* Completions per second over the trailing [recent_window_s].  The
   stamp ring only remembers the last [window] completions, so when it
   has wrapped inside the window the rate is computed over the span the
   ring actually covers instead of silently undercounting. *)
let recent_rate t now =
  if t.ring_len = 0 then 0.
  else begin
    let span = Float.min t.recent_window_s (now -. t.started) in
    let span =
      if t.ring_len < Array.length t.ring then span
      else
        let oldest = t.stamps.(t.ring_pos) in
        Float.min span (now -. oldest)
    in
    let span = Float.max span 1e-9 in
    let cutoff = now -. span in
    let in_window = ref 0 in
    for i = 0 to t.ring_len - 1 do
      if t.stamps.(i) >= cutoff then incr in_window
    done;
    float_of_int !in_window /. span
  end

let snapshot t ~workers ~queue_depth ~queue_capacity ~cache_entries =
  locked t (fun () ->
      let now = Unix.gettimeofday () in
      let uptime_s = now -. t.started in
      let latency_ms =
        if t.ring_len = 0 then None
        else Some (Stats.summarize (Array.sub t.ring 0 t.ring_len))
      in
      let done_jobs = t.completed + t.failed in
      {
        uptime_s;
        workers;
        queue_depth;
        queue_capacity;
        jobs_submitted = t.submitted;
        jobs_completed = t.completed;
        jobs_failed = t.failed;
        jobs_rejected_lint = t.rejected_lint;
        cache_hits = t.hits;
        cache_misses = t.misses;
        dedup_joins = t.dedups;
        cache_entries;
        throughput_jps = recent_rate t now;
        lifetime_jps =
          (if uptime_s > 0. then float_of_int done_jobs /. uptime_s else 0.);
        recent_window_s = t.recent_window_s;
        rejected_frames = t.rejected_frames;
        timed_out_connections = t.timed_out;
        connections_rejected = t.conn_rejected;
        faults_injected = t.injected;
        latency_ms;
      })

let pp_snapshot fmt s =
  let total = s.cache_hits + s.cache_misses in
  let rate =
    if total = 0 then 0. else float_of_int s.cache_hits /. float_of_int total
  in
  Format.fprintf fmt "uptime      : %.1f s@." s.uptime_s;
  Format.fprintf fmt "workers     : %d@." s.workers;
  Format.fprintf fmt "queue       : %d / %d@." s.queue_depth s.queue_capacity;
  Format.fprintf fmt "submitted   : %d@." s.jobs_submitted;
  Format.fprintf fmt "completed   : %d (%d failed)@." s.jobs_completed
    s.jobs_failed;
  Format.fprintf fmt "rejected    : %d jobs by lint@." s.jobs_rejected_lint;
  Format.fprintf fmt
    "cache       : %d hits, %d misses (%.0f%% hit rate), %d entries@."
    s.cache_hits s.cache_misses (100. *. rate) s.cache_entries;
  Format.fprintf fmt "dedup       : %d in-flight joins@." s.dedup_joins;
  Format.fprintf fmt
    "throughput  : %.1f jobs/s (last %.0f s), %.1f jobs/s lifetime@."
    s.throughput_jps s.recent_window_s s.lifetime_jps;
  Format.fprintf fmt
    "faults      : %d frames rejected, %d connections timed out, %d over \
     limit, %d injected@."
    s.rejected_frames s.timed_out_connections s.connections_rejected
    s.faults_injected;
  match s.latency_ms with
  | None -> Format.fprintf fmt "latency     : (no completed jobs yet)@."
  | Some l ->
      Format.fprintf fmt
        "latency     : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms (over last %d)@."
        l.Stats.p50 l.Stats.p95 l.Stats.p99 l.Stats.count
