open Ssg_util

type snapshot = {
  uptime_s : float;
  workers : int;
  queue_depth : int;
  queue_capacity : int;
  jobs_submitted : int;
  jobs_completed : int;
  jobs_failed : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  throughput_jps : float;
  latency_ms : Stats.summary option;
}

type t = {
  mutex : Mutex.t;
  started : float;  (* Unix.gettimeofday at creation *)
  ring : float array;  (* most recent latencies, circular *)
  mutable ring_len : int;
  mutable ring_pos : int;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(window = 4096) () =
  if window < 1 then invalid_arg "Telemetry.create: window must be >= 1";
  {
    mutex = Mutex.create ();
    started = Unix.gettimeofday ();
    ring = Array.make window 0.;
    ring_len = 0;
    ring_pos = 0;
    submitted = 0;
    completed = 0;
    failed = 0;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push_latency t ms =
  t.ring.(t.ring_pos) <- ms;
  t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
  t.ring_len <- min (t.ring_len + 1) (Array.length t.ring)

let record_submitted t = locked t (fun () -> t.submitted <- t.submitted + 1)

let record_completed t ~latency_ms =
  locked t (fun () ->
      t.completed <- t.completed + 1;
      push_latency t latency_ms)

let record_failed t ~latency_ms =
  locked t (fun () ->
      t.failed <- t.failed + 1;
      push_latency t latency_ms)

let record_hit t = locked t (fun () -> t.hits <- t.hits + 1)
let record_miss t = locked t (fun () -> t.misses <- t.misses + 1)

let snapshot t ~workers ~queue_depth ~queue_capacity ~cache_entries =
  locked t (fun () ->
      let uptime_s = Unix.gettimeofday () -. t.started in
      let latency_ms =
        if t.ring_len = 0 then None
        else Some (Stats.summarize (Array.sub t.ring 0 t.ring_len))
      in
      let done_jobs = t.completed + t.failed in
      {
        uptime_s;
        workers;
        queue_depth;
        queue_capacity;
        jobs_submitted = t.submitted;
        jobs_completed = t.completed;
        jobs_failed = t.failed;
        cache_hits = t.hits;
        cache_misses = t.misses;
        cache_entries;
        throughput_jps =
          (if uptime_s > 0. then float_of_int done_jobs /. uptime_s else 0.);
        latency_ms;
      })

let pp_snapshot fmt s =
  let total = s.cache_hits + s.cache_misses in
  let rate =
    if total = 0 then 0. else float_of_int s.cache_hits /. float_of_int total
  in
  Format.fprintf fmt "uptime      : %.1f s@." s.uptime_s;
  Format.fprintf fmt "workers     : %d@." s.workers;
  Format.fprintf fmt "queue       : %d / %d@." s.queue_depth s.queue_capacity;
  Format.fprintf fmt "submitted   : %d@." s.jobs_submitted;
  Format.fprintf fmt "completed   : %d (%d failed)@." s.jobs_completed
    s.jobs_failed;
  Format.fprintf fmt "cache       : %d hits, %d misses (%.0f%% hit rate), %d entries@."
    s.cache_hits s.cache_misses (100. *. rate) s.cache_entries;
  Format.fprintf fmt "throughput  : %.1f jobs/s@." s.throughput_jps;
  match s.latency_ms with
  | None -> Format.fprintf fmt "latency     : (no completed jobs yet)@."
  | Some l ->
      Format.fprintf fmt
        "latency     : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms (over last %d)@."
        l.Stats.p50 l.Stats.p95 l.Stats.p99 l.Stats.count
