open Ssg_util
module Metrics = Ssg_obs.Metrics

type snapshot = {
  uptime_s : float;
  workers : int;
  queue_depth : int;
  queue_capacity : int;
  jobs_submitted : int;
  jobs_completed : int;
  jobs_failed : int;
  jobs_rejected_lint : int;
  cache_hits : int;
  cache_misses : int;
  dedup_joins : int;
  cache_entries : int;
  throughput_jps : float;
  lifetime_jps : float;
  recent_window_s : float;
  rejected_frames : int;
  timed_out_connections : int;
  connections_rejected : int;
  faults_injected : int;
  latency_ms : Stats.summary option;
  queue_wait_ms : Stats.summary option;
  exec_ms : Stats.summary option;
}

type t = {
  mutex : Mutex.t;  (* guards the rings; counters are registry atomics *)
  started : float;  (* Unix.gettimeofday at creation *)
  recent_window_s : float;
  ring : float array;  (* most recent submit-to-completion latencies *)
  queue_ring : float array;  (* queue-wait portion, same ring geometry *)
  exec_ring : float array;  (* execution portion, same ring geometry *)
  stamps : float array;  (* completion times, same ring geometry *)
  mutable ring_len : int;
  mutable ring_pos : int;
  registry : Metrics.t;
  submitted : Metrics.counter;
  completed : Metrics.counter;
  failed : Metrics.counter;
  rejected_lint : Metrics.counter;
  hits : Metrics.counter;
  misses : Metrics.counter;
  dedups : Metrics.counter;
  rejected_frames : Metrics.counter;
  timed_out : Metrics.counter;
  conn_rejected : Metrics.counter;
  injected : Metrics.counter;
  queue_hist : Metrics.histogram;
  exec_hist : Metrics.histogram;
  latency_hist : Metrics.histogram;
  hop_queue_hist : Metrics.histogram;
  hop_exec_hist : Metrics.histogram;
}

(* Per-hop latency decomposition.  The [ssg_hop_*] family shares one
   namespace across the fleet so a scrape of gateway + router + worker
   decomposes end-to-end latency hop by hop: the worker contributes
   queue wait and execution (registered below, observed alongside the
   legacy [ssgd_job_*] histograms), the router and gateway register
   their forwarding hops into their own registries with these
   helpers. *)

let hop_gateway_router registry =
  Metrics.histogram registry
    ~help:
      "Milliseconds the gateway waited on its backend (gateway\xe2\x86\x92router hop)"
    "ssg_hop_gateway_router_ms"

let hop_router_worker registry =
  Metrics.histogram registry
    ~help:
      "Milliseconds the router waited on a backend exchange \
       (router\xe2\x86\x92worker hop)"
    "ssg_hop_router_worker_ms"

(* The tracer's ring drop counter, rendered wherever a process exposes
   Prometheus text — zero (the healthy steady state) is still exposed
   so dashboards can alert on the first drop. *)
let prom_trace_dropped buf =
  Metrics.prom_scalar buf ~kind:`Counter
    ~help:"Trace events lost to ring wrap-around since the last reset"
    "ssg_trace_dropped_total"
    (float_of_int (Ssg_obs.Tracer.dropped ()))

let create ?(window = 4096) ?(recent_window_s = 10.) () =
  if window < 1 then invalid_arg "Telemetry.create: window must be >= 1";
  if recent_window_s <= 0. then
    invalid_arg "Telemetry.create: recent_window_s must be > 0";
  let registry = Metrics.create () in
  let counter name help = Metrics.counter registry ~help name in
  let histogram name help = Metrics.histogram registry ~help name in
  {
    mutex = Mutex.create ();
    started = Unix.gettimeofday ();
    recent_window_s;
    ring = Array.make window 0.;
    queue_ring = Array.make window 0.;
    exec_ring = Array.make window 0.;
    stamps = Array.make window 0.;
    ring_len = 0;
    ring_pos = 0;
    registry;
    submitted =
      counter "ssgd_jobs_submitted_total"
        "Requests accepted, including cache hits and dedup joins";
    completed =
      counter "ssgd_jobs_completed_total" "Jobs executed to a result";
    failed =
      counter "ssgd_jobs_failed_total" "Executions ending in an error reply";
    rejected_lint =
      counter "ssgd_jobs_rejected_lint_total"
        "Jobs refused at the lint front door";
    hits = counter "ssgd_cache_hits_total" "Served from the LRU result cache";
    misses = counter "ssgd_cache_misses_total" "LRU result cache misses";
    dedups =
      counter "ssgd_dedup_joins_total"
        "Submissions joining an identical in-flight execution";
    rejected_frames =
      counter "ssgd_frames_rejected_total"
        "Wire frames refused: oversized, truncated or undecodable";
    timed_out =
      counter "ssgd_connections_timed_out_total"
        "Connections reaped by the read timeout";
    conn_rejected =
      counter "ssgd_connections_rejected_total"
        "Connections turned away at the connection limit";
    injected =
      counter "ssgd_faults_injected_total"
        "Faults injected by the active chaos plan";
    queue_hist =
      histogram "ssgd_job_queue_wait_ms"
        "Milliseconds a job waited in the queue before a worker picked it up";
    exec_hist =
      histogram "ssgd_job_exec_ms"
        "Milliseconds a worker spent executing a job";
    latency_hist =
      histogram "ssgd_job_latency_ms"
        "Submit-to-completion milliseconds (legacy end-to-end latency)";
    hop_queue_hist =
      histogram "ssg_hop_queue_wait_ms"
        "Milliseconds a job waited in the worker queue (queue hop)";
    hop_exec_hist =
      histogram "ssg_hop_exec_ms"
        "Milliseconds a worker spent executing a job (exec hop)";
  }

let registry t = t.registry

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push_latency t ~latency_ms ~queue_ms ~exec_ms =
  Metrics.observe t.latency_hist latency_ms;
  Metrics.observe t.queue_hist queue_ms;
  Metrics.observe t.exec_hist exec_ms;
  Metrics.observe t.hop_queue_hist queue_ms;
  Metrics.observe t.hop_exec_hist exec_ms;
  locked t (fun () ->
      t.ring.(t.ring_pos) <- latency_ms;
      t.queue_ring.(t.ring_pos) <- queue_ms;
      t.exec_ring.(t.ring_pos) <- exec_ms;
      t.stamps.(t.ring_pos) <- Unix.gettimeofday ();
      t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
      t.ring_len <- min (t.ring_len + 1) (Array.length t.ring))

let record_submitted t = Metrics.incr t.submitted

let record_completed t ~latency_ms ~queue_ms ~exec_ms =
  Metrics.incr t.completed;
  push_latency t ~latency_ms ~queue_ms ~exec_ms

let record_failed t ~latency_ms ~queue_ms ~exec_ms =
  Metrics.incr t.failed;
  push_latency t ~latency_ms ~queue_ms ~exec_ms

let record_rejected_lint t = Metrics.incr t.rejected_lint
let record_hit t = Metrics.incr t.hits
let record_miss t = Metrics.incr t.misses
let record_dedup t = Metrics.incr t.dedups
let record_rejected_frame t = Metrics.incr t.rejected_frames
let record_connection_timeout t = Metrics.incr t.timed_out
let record_connection_rejected t = Metrics.incr t.conn_rejected
let record_injected t = Metrics.incr t.injected

(* Completions per second over the trailing [recent_window_s].  The
   stamp ring only remembers the last [window] completions, so when it
   has wrapped inside the window the rate is computed over the span the
   ring actually covers instead of silently undercounting. *)
let recent_rate t now =
  if t.ring_len = 0 then 0.
  else begin
    let span = Float.min t.recent_window_s (now -. t.started) in
    let span =
      if t.ring_len < Array.length t.ring then span
      else
        let oldest = t.stamps.(t.ring_pos) in
        Float.min span (now -. oldest)
    in
    let span = Float.max span 1e-9 in
    let cutoff = now -. span in
    let in_window = ref 0 in
    for i = 0 to t.ring_len - 1 do
      if t.stamps.(i) >= cutoff then incr in_window
    done;
    float_of_int !in_window /. span
  end

let snapshot t ~workers ~queue_depth ~queue_capacity ~cache_entries =
  locked t (fun () ->
      let now = Unix.gettimeofday () in
      let uptime_s = now -. t.started in
      let summarize_ring ring =
        if t.ring_len = 0 then None
        else Some (Stats.summarize (Array.sub ring 0 t.ring_len))
      in
      let completed = Metrics.counter_value t.completed in
      let failed = Metrics.counter_value t.failed in
      let done_jobs = completed + failed in
      {
        uptime_s;
        workers;
        queue_depth;
        queue_capacity;
        jobs_submitted = Metrics.counter_value t.submitted;
        jobs_completed = completed;
        jobs_failed = failed;
        jobs_rejected_lint = Metrics.counter_value t.rejected_lint;
        cache_hits = Metrics.counter_value t.hits;
        cache_misses = Metrics.counter_value t.misses;
        dedup_joins = Metrics.counter_value t.dedups;
        cache_entries;
        throughput_jps = recent_rate t now;
        lifetime_jps =
          (if uptime_s > 0. then float_of_int done_jobs /. uptime_s else 0.);
        recent_window_s = t.recent_window_s;
        rejected_frames = Metrics.counter_value t.rejected_frames;
        timed_out_connections = Metrics.counter_value t.timed_out;
        connections_rejected = Metrics.counter_value t.conn_rejected;
        faults_injected = Metrics.counter_value t.injected;
        latency_ms = summarize_ring t.ring;
        queue_wait_ms = summarize_ring t.queue_ring;
        exec_ms = summarize_ring t.exec_ring;
      })

(* ---------------- cluster-wide merge ---------------- *)

(* Exact for everything additive; documented approximation for the
   latency summaries, whose percentiles cannot be recovered from
   per-shard percentiles: the merged summary pools mean and variance
   exactly (via E[x] and E[x^2]) and count-weights the percentiles,
   which is the standard scrape-side compromise. *)
let merge_summary (a : Stats.summary) (b : Stats.summary) : Stats.summary =
  let ca = float_of_int a.Stats.count and cb = float_of_int b.Stats.count in
  let w x y = ((ca *. x) +. (cb *. y)) /. (ca +. cb) in
  let mean = w a.Stats.mean b.Stats.mean in
  let second_moment (s : Stats.summary) =
    (s.Stats.stddev *. s.Stats.stddev) +. (s.Stats.mean *. s.Stats.mean)
  in
  {
    Stats.count = a.Stats.count + b.Stats.count;
    mean;
    stddev =
      sqrt
        (Float.max 0.
           (w (second_moment a) (second_moment b) -. (mean *. mean)));
    min = Float.min a.Stats.min b.Stats.min;
    max = Float.max a.Stats.max b.Stats.max;
    p50 = w a.Stats.p50 b.Stats.p50;
    p95 = w a.Stats.p95 b.Stats.p95;
    p99 = w a.Stats.p99 b.Stats.p99;
  }

let merge_summary_opt a b =
  match (a, b) with
  | None, s | s, None -> s
  | Some a, Some b ->
      if a.Stats.count = 0 then Some b
      else if b.Stats.count = 0 then Some a
      else Some (merge_summary a b)

let merge = function
  | [] -> invalid_arg "Telemetry.merge: empty snapshot list"
  | first :: rest ->
      let merge2 a b =
        {
          uptime_s = Float.max a.uptime_s b.uptime_s;
          workers = a.workers + b.workers;
          queue_depth = a.queue_depth + b.queue_depth;
          queue_capacity = a.queue_capacity + b.queue_capacity;
          jobs_submitted = a.jobs_submitted + b.jobs_submitted;
          jobs_completed = a.jobs_completed + b.jobs_completed;
          jobs_failed = a.jobs_failed + b.jobs_failed;
          jobs_rejected_lint = a.jobs_rejected_lint + b.jobs_rejected_lint;
          cache_hits = a.cache_hits + b.cache_hits;
          cache_misses = a.cache_misses + b.cache_misses;
          dedup_joins = a.dedup_joins + b.dedup_joins;
          cache_entries = a.cache_entries + b.cache_entries;
          throughput_jps = a.throughput_jps +. b.throughput_jps;
          lifetime_jps = a.lifetime_jps +. b.lifetime_jps;
          recent_window_s = Float.max a.recent_window_s b.recent_window_s;
          rejected_frames = a.rejected_frames + b.rejected_frames;
          timed_out_connections =
            a.timed_out_connections + b.timed_out_connections;
          connections_rejected =
            a.connections_rejected + b.connections_rejected;
          faults_injected = a.faults_injected + b.faults_injected;
          latency_ms = merge_summary_opt a.latency_ms b.latency_ms;
          queue_wait_ms = merge_summary_opt a.queue_wait_ms b.queue_wait_ms;
          exec_ms = merge_summary_opt a.exec_ms b.exec_ms;
        }
      in
      List.fold_left merge2 first rest

(* ---------------- snapshot serialization ---------------- *)

type field =
  | F_count of string * int
  | F_gauge_i of string * int
  | F_gauge_f of string * float
  | F_summary of string * Stats.summary option

let fields s =
  [
    F_gauge_f ("uptime_s", s.uptime_s);
    F_gauge_i ("workers", s.workers);
    F_gauge_i ("queue_depth", s.queue_depth);
    F_gauge_i ("queue_capacity", s.queue_capacity);
    F_count ("jobs_submitted", s.jobs_submitted);
    F_count ("jobs_completed", s.jobs_completed);
    F_count ("jobs_failed", s.jobs_failed);
    F_count ("jobs_rejected_lint", s.jobs_rejected_lint);
    F_count ("cache_hits", s.cache_hits);
    F_count ("cache_misses", s.cache_misses);
    F_count ("dedup_joins", s.dedup_joins);
    F_gauge_i ("cache_entries", s.cache_entries);
    F_gauge_f ("throughput_jps", s.throughput_jps);
    F_gauge_f ("lifetime_jps", s.lifetime_jps);
    F_gauge_f ("recent_window_s", s.recent_window_s);
    F_count ("rejected_frames", s.rejected_frames);
    F_count ("timed_out_connections", s.timed_out_connections);
    F_count ("connections_rejected", s.connections_rejected);
    F_count ("faults_injected", s.faults_injected);
    F_summary ("latency_ms", s.latency_ms);
    F_summary ("queue_wait_ms", s.queue_wait_ms);
    F_summary ("exec_ms", s.exec_ms);
  ]

let json_of_snapshot s =
  let open Ssg_obs.Export in
  let summary_json = function
    | None -> Null
    | Some (l : Stats.summary) ->
        Obj
          [
            ("count", Int l.Stats.count);
            ("mean", Float l.Stats.mean);
            ("stddev", Float l.Stats.stddev);
            ("min", Float l.Stats.min);
            ("max", Float l.Stats.max);
            ("p50", Float l.Stats.p50);
            ("p95", Float l.Stats.p95);
            ("p99", Float l.Stats.p99);
          ]
  in
  json_to_string
    (Obj
       (List.map
          (function
            | F_count (name, v) | F_gauge_i (name, v) -> (name, Int v)
            | F_gauge_f (name, v) -> (name, Float v)
            | F_summary (name, v) -> (name, summary_json v))
          (fields s)))

let render_prometheus buf ~prefix s =
  List.iter
    (function
      | F_count (name, v) ->
          Metrics.prom_scalar buf ~kind:`Counter (prefix ^ name)
            (float_of_int v)
      | F_gauge_i (name, v) ->
          Metrics.prom_scalar buf ~kind:`Gauge (prefix ^ name)
            (float_of_int v)
      | F_gauge_f (name, v) ->
          Metrics.prom_scalar buf ~kind:`Gauge (prefix ^ name) v
      | F_summary (name, v) -> (
          match v with
          | None -> ()
          | Some (l : Stats.summary) ->
              Metrics.prom_summary buf (prefix ^ name) ~count:l.Stats.count
                ~sum:(l.Stats.mean *. float_of_int l.Stats.count)
                ~quantiles:
                  [
                    (0.5, l.Stats.p50); (0.95, l.Stats.p95); (0.99, l.Stats.p99);
                  ]))
    (fields s)

let prometheus_of_snapshot ?(prefix = "ssgd_") s =
  let buf = Buffer.create 2048 in
  render_prometheus buf ~prefix s;
  Buffer.contents buf

let prometheus t s =
  let buf = Buffer.create 2048 in
  render_prometheus buf ~prefix:"ssgd_" s;
  (* The registry counters duplicate the snapshot's count fields under
     their *_total names; only the bucketed phase histograms add
     information the snapshot summaries cannot carry. *)
  Buffer.add_string buf
    (Metrics.to_prometheus
       ~only:(fun name ->
         String.length name > 3 && String.sub name (String.length name - 3) 3 = "_ms")
       t.registry);
  prom_trace_dropped buf;
  Buffer.contents buf

let pp_snapshot fmt s =
  let total = s.cache_hits + s.cache_misses in
  let rate =
    if total = 0 then 0. else float_of_int s.cache_hits /. float_of_int total
  in
  Format.fprintf fmt "uptime      : %.1f s@." s.uptime_s;
  Format.fprintf fmt "workers     : %d@." s.workers;
  Format.fprintf fmt "queue       : %d / %d@." s.queue_depth s.queue_capacity;
  Format.fprintf fmt "submitted   : %d@." s.jobs_submitted;
  Format.fprintf fmt "completed   : %d (%d failed)@." s.jobs_completed
    s.jobs_failed;
  Format.fprintf fmt "rejected    : %d jobs by lint@." s.jobs_rejected_lint;
  Format.fprintf fmt
    "cache       : %d hits, %d misses (%.0f%% hit rate), %d entries@."
    s.cache_hits s.cache_misses (100. *. rate) s.cache_entries;
  Format.fprintf fmt "dedup       : %d in-flight joins@." s.dedup_joins;
  Format.fprintf fmt
    "throughput  : %.1f jobs/s (last %.0f s), %.1f jobs/s lifetime@."
    s.throughput_jps s.recent_window_s s.lifetime_jps;
  Format.fprintf fmt
    "faults      : %d frames rejected, %d connections timed out, %d over \
     limit, %d injected@."
    s.rejected_frames s.timed_out_connections s.connections_rejected
    s.faults_injected;
  (match s.latency_ms with
  | None -> Format.fprintf fmt "latency     : (no completed jobs yet)@."
  | Some l ->
      Format.fprintf fmt
        "latency     : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms (over last %d)@."
        l.Stats.p50 l.Stats.p95 l.Stats.p99 l.Stats.count);
  match (s.queue_wait_ms, s.exec_ms) with
  | Some q, Some e ->
      Format.fprintf fmt
        "  queue wait: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms@." q.Stats.p50
        q.Stats.p95 q.Stats.p99;
      Format.fprintf fmt
        "  execution : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms@." e.Stats.p50
        e.Stats.p95 e.Stats.p99
  | _ -> ()
