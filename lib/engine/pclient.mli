(** Pipelined client: many in-flight requests on one connection.

    Where {!Client} is one strict request/reply exchange at a time,
    a [Pclient.t] multiplexes: {!submit} returns immediately with a
    ticket, replies correlate back by request id in {e whatever order
    the server finishes them}, and any number of threads may share one
    connection.  A slow job ahead of a fast one does not delay the fast
    one's reply ({!Ssg_net.Mux}).

    Failure semantics are explicit rather than exceptional: {!await}
    returns [Error reason] — a protocol-level error (including lint
    rejections, whose diagnostics ride in the message), a dead
    connection, or an exceeded liveness deadline — so a load generator
    can count failures without exception plumbing. *)

type t

type 'a ticket

(** [connect ~socket ()] — same address forms, retry schedule and
    jittered backoff as {!Client.connect}.  [deadline_s] bounds the
    {e connection's} silence (no reply frame at all for that long fails
    every outstanding ticket), not each request.
    @raise Unix.Unix_error when nothing listens after all retries.
    @raise Invalid_argument on a malformed address or parameters. *)
val connect :
  ?retries:int ->
  ?retry_backoff_s:float ->
  ?deadline_s:float ->
  socket:string ->
  unit ->
  t

(** [submit ?ctx t job] — send, do not wait.  The ticket resolves to
    the job's completion, or [Error diagnostics] if the server's lint
    gate rejected it.  [ctx] rides in the context envelope inside the
    id envelope, parenting the server's spans for this request.
    @raise Failure when the connection is already dead. *)
val submit : ?ctx:Ssg_obs.Context.t -> t -> Job.t -> Job.completion ticket

(** [stats t] — asynchronous telemetry snapshot request. *)
val stats : t -> Telemetry.snapshot ticket

(** [metrics_text t] — asynchronous Prometheus-text request. *)
val metrics_text : t -> string ticket

(** [await ticket] blocks until the reply correlates back; repeated
    awaits return the same result. *)
val await : 'a ticket -> ('a, string) result

(** [submit_sync t job] = [await (submit t job)], raising [Failure] on
    [Error] — a drop-in for {!Client.submit} over a shared pipelined
    connection. *)
val submit_sync : t -> Job.t -> Job.completion

(** [shutdown t] asks the server to drain and exit; resolves once
    acknowledged. *)
val shutdown : t -> (unit, string) result

(** [inflight t] — requests sent and not yet answered. *)
val inflight : t -> int

(** [alive t] — false once the connection failed or was closed. *)
val alive : t -> bool

(** [close t] — fail whatever is outstanding, close the descriptor.
    Idempotent. *)
val close : t -> unit
