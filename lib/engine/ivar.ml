type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable value : 'a option;
}

let create () =
  { mutex = Mutex.create (); cond = Condition.create (); value = None }

let fill cell v =
  Mutex.lock cell.mutex;
  (match cell.value with
  | Some _ ->
      Mutex.unlock cell.mutex;
      invalid_arg "Ivar.fill: already filled"
  | None ->
      cell.value <- Some v;
      Condition.broadcast cell.cond;
      Mutex.unlock cell.mutex)

let read cell =
  Mutex.lock cell.mutex;
  let rec wait () =
    match cell.value with
    | Some v ->
        Mutex.unlock cell.mutex;
        v
    | None ->
        Condition.wait cell.cond cell.mutex;
        wait ()
  in
  wait ()

let peek cell =
  Mutex.lock cell.mutex;
  let v = cell.value in
  Mutex.unlock cell.mutex;
  v
