(* Classic Hashtbl + doubly-linked recency list: O(1) find/add/evict.
   [head] is most recent, [tail] least recent. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be >= 0";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink c node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> c.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> c.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front c node =
  node.next <- c.head;
  (match c.head with Some h -> h.prev <- Some node | None -> c.tail <- Some node);
  c.head <- Some node

let find c key =
  match Hashtbl.find_opt c.table key with
  | Some node ->
      c.hits <- c.hits + 1;
      unlink c node;
      push_front c node;
      Some node.value
  | None ->
      c.misses <- c.misses + 1;
      None

let evict_lru c =
  match c.tail with
  | None -> ()
  | Some node ->
      unlink c node;
      Hashtbl.remove c.table node.key;
      c.evictions <- c.evictions + 1

let add c key v =
  if c.cap > 0 then
    match Hashtbl.find_opt c.table key with
    | Some node ->
        node.value <- v;
        unlink c node;
        push_front c node
    | None ->
        let node = { key; value = v; prev = None; next = None } in
        Hashtbl.add c.table key node;
        push_front c node;
        if Hashtbl.length c.table > c.cap then evict_lru c

let to_list c =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk ((node.key, node.value) :: acc) node.next
  in
  walk [] c.head

let mem c key = Hashtbl.mem c.table key
let length c = Hashtbl.length c.table
let capacity c = c.cap
let hits c = c.hits
let misses c = c.misses
let evictions c = c.evictions

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0. else float_of_int c.hits /. float_of_int total
