(** LRU result cache with hit/miss accounting.

    String-keyed (the engine keys on {!Job.key}'s canonical encoding) and
    capacity-bounded: inserting beyond capacity evicts the
    least-recently-used entry.  [find] counts a hit or a miss and bumps
    recency.

    Not internally synchronized — the engine serializes all access under
    its own lock (cache lookup, pending-table dedup and the counters must
    be updated atomically together anyway).  A [capacity] of [0] is a
    valid always-miss cache (caching disabled). *)

type 'a t

(** @raise Invalid_argument if [capacity < 0]. *)
val create : capacity:int -> 'a t

(** [find c key] — [Some v] (hit, recency bumped) or [None] (miss). *)
val find : 'a t -> string -> 'a option

(** [add c key v] inserts or overwrites, making [key] most recent and
    evicting the least-recently-used entry if over capacity.  A no-op at
    capacity 0. *)
val add : 'a t -> string -> 'a -> unit

(** [to_list c] — every live entry, most-recently-used first.  Does not
    touch recency or the counters. *)
val to_list : 'a t -> (string * 'a) list

val mem : 'a t -> string -> bool
val length : 'a t -> int
val capacity : 'a t -> int

(** Counters since creation. *)

val hits : 'a t -> int

val misses : 'a t -> int
val evictions : 'a t -> int

(** [hit_rate c] is [hits / (hits + misses)], or [0.] before any lookup. *)
val hit_rate : 'a t -> float
