type 'a t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  items : 'a Queue.t;
  cap : int;
  mutable closed : bool;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    items = Queue.create ();
    cap = capacity;
    closed = false;
  }

let push q x =
  Mutex.lock q.mutex;
  let rec wait () =
    if q.closed then begin
      Mutex.unlock q.mutex;
      false
    end
    else if Queue.length q.items >= q.cap then begin
      Condition.wait q.not_full q.mutex;
      wait ()
    end
    else begin
      Queue.add x q.items;
      Condition.signal q.not_empty;
      Mutex.unlock q.mutex;
      true
    end
  in
  wait ()

let pop q =
  Mutex.lock q.mutex;
  let rec wait () =
    if not (Queue.is_empty q.items) then begin
      let x = Queue.take q.items in
      Condition.signal q.not_full;
      Mutex.unlock q.mutex;
      Some x
    end
    else if q.closed then begin
      Mutex.unlock q.mutex;
      None
    end
    else begin
      Condition.wait q.not_empty q.mutex;
      wait ()
    end
  in
  wait ()

let close q =
  Mutex.lock q.mutex;
  q.closed <- true;
  Condition.broadcast q.not_empty;
  Condition.broadcast q.not_full;
  Mutex.unlock q.mutex

let is_closed q =
  Mutex.lock q.mutex;
  let c = q.closed in
  Mutex.unlock q.mutex;
  c

let length q =
  Mutex.lock q.mutex;
  let l = Queue.length q.items in
  Mutex.unlock q.mutex;
  l

let capacity q = q.cap
