open Ssg_rounds
open Ssg_adversary
open Ssg_sim

type algorithm = Kset | Floodmin | Flood_consensus | Naive_min

type t = {
  run : string;
  algorithm : algorithm;
  k : int;
  inputs : int array option;
  rounds : int option;
  monitor : bool;
}

let algorithm_name = function
  | Kset -> "kset-agreement"
  | Floodmin -> "floodmin"
  | Flood_consensus -> "flood-consensus"
  | Naive_min -> "naive-min"

let is_default_inputs n inputs =
  Array.length inputs = n && Array.for_all2 ( = ) inputs (Array.init n Fun.id)

(* [adv] is the already-parsed form of [run] (canonical text). *)
let build ~run ~adv ?(algorithm = Kset) ?(k = 1) ?inputs ?rounds
    ?(monitor = false) () =
  if k < 1 then invalid_arg "Job: k must be >= 1";
  (match rounds with
  | Some r when r < 0 -> invalid_arg "Job: rounds must be >= 0"
  | _ -> ());
  let inputs =
    match inputs with
    | Some xs when is_default_inputs (Adversary.n adv) xs -> None
    | other -> other
  in
  let monitor = monitor && algorithm = Kset in
  { run; algorithm; k; inputs; rounds; monitor }

let make ?algorithm ?k ?inputs ?rounds ?monitor adv =
  (* to_string raises Invalid_argument on recurrent runs; round-tripping
     through of_string yields the canonical text (sorted edges, no
     comments) and keeps [run] independent of the adversary's name. *)
  let run = Run_format.to_string (Run_format.of_string (Run_format.to_string adv)) in
  build ~run ~adv ?algorithm ?k ?inputs ?rounds ?monitor ()

let of_run_text ?algorithm ?k ?inputs ?rounds ?monitor text =
  let adv = Run_format.of_string text in
  let run = Run_format.to_string adv in
  build ~run ~adv ?algorithm ?k ?inputs ?rounds ?monitor ()

let key job =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (algorithm_name job.algorithm);
  Buffer.add_char buf '\x00';
  Buffer.add_string buf (string_of_int job.k);
  Buffer.add_char buf '\x00';
  (match job.inputs with
  | None -> Buffer.add_string buf "default"
  | Some xs ->
      Array.iter
        (fun x ->
          Buffer.add_string buf (string_of_int x);
          Buffer.add_char buf ',')
        xs);
  Buffer.add_char buf '\x00';
  (match job.rounds with
  | None -> Buffer.add_string buf "horizon"
  | Some r -> Buffer.add_string buf (string_of_int r));
  Buffer.add_char buf '\x00';
  Buffer.add_string buf (if job.monitor then "mon" else "nomon");
  Buffer.add_char buf '\x00';
  Buffer.add_string buf job.run;
  Buffer.contents buf

let equal a b = key a = key b

type outcome = {
  algorithm : string;
  n : int;
  min_k : int;
  rounds_run : int;
  decisions : (int * int) option array;
  distinct_decisions : int;
  messages_sent : int;
  messages_delivered : int;
  bits_sent : int;
  violations : string list;
}

let outcome_of_report (r : Runner.report) =
  let o = r.Runner.outcome in
  {
    algorithm = r.Runner.algorithm;
    n = r.Runner.n;
    min_k = r.Runner.min_k;
    rounds_run = o.Executor.rounds_run;
    decisions =
      Array.map
        (Option.map (fun d -> (d.Executor.round, d.Executor.value)))
        o.Executor.decisions;
    distinct_decisions = Metrics.distinct_decisions o;
    messages_sent = o.Executor.messages_sent;
    messages_delivered = o.Executor.messages_delivered;
    bits_sent = o.Executor.bits_sent;
    violations = r.Runner.violations;
  }

let execute job =
  let adv = Run_format.of_string job.run in
  let n = Adversary.n adv in
  (match job.inputs with
  | Some xs when Array.length xs <> n ->
      invalid_arg
        (Printf.sprintf "Job.execute: %d inputs for a %d-process run"
           (Array.length xs) n)
  | _ -> ());
  let inputs = job.inputs in
  let rounds = job.rounds in
  let report =
    match job.algorithm with
    | Kset -> Runner.run_kset ?inputs ?rounds ~monitor:job.monitor adv
    | Floodmin ->
        let budget =
          Ssg_baselines.Floodmin.rounds_for ~f:(n / 2) ~k:job.k
        in
        Runner.run_packed
          (Ssg_baselines.Floodmin.make ~rounds:budget)
          ?inputs ?rounds adv
    | Flood_consensus ->
        Runner.run_packed
          (Ssg_baselines.Flood_consensus.make ~f:(n / 2))
          ?inputs ?rounds adv
    | Naive_min ->
        Runner.run_packed
          (Ssg_baselines.Naive_min.make ~horizon:n)
          ?inputs ?rounds adv
  in
  outcome_of_report report

type completion = {
  result : (outcome, string) Stdlib.result;
  cached : bool;
  latency_ms : float;
}

let pp_completion fmt c =
  match c.result with
  | Error msg ->
      Format.fprintf fmt "ERROR: %s  (%.2f ms)@." msg c.latency_ms
  | Ok o ->
      Format.fprintf fmt "algorithm   : %s@." o.algorithm;
      Format.fprintf fmt "n           : %d@." o.n;
      Format.fprintf fmt "min_k       : %d@." o.min_k;
      Format.fprintf fmt "rounds run  : %d@." o.rounds_run;
      Format.fprintf fmt "decisions   : %d distinct@." o.distinct_decisions;
      Array.iteri
        (fun p d ->
          match d with
          | Some (round, value) ->
              Format.fprintf fmt "  p%-3d      : decides %d at round %d@."
                (p + 1) value round
          | None -> Format.fprintf fmt "  p%-3d      : UNDECIDED@." (p + 1))
        o.decisions;
      Format.fprintf fmt "messages    : %d sent, %d delivered, %d bits@."
        o.messages_sent o.messages_delivered o.bits_sent;
      (match o.violations with
      | [] -> ()
      | vs ->
          Format.fprintf fmt "MONITOR VIOLATIONS (%d):@." (List.length vs);
          List.iter (fun s -> Format.fprintf fmt "  %s@." s) vs);
      Format.fprintf fmt "served      : %s, %.2f ms@."
        (if c.cached then "cache" else "computed")
        c.latency_ms
