module Transport = Ssg_net.Transport
module Mux = Ssg_net.Mux

type t = { mux : Mux.t }

type 'a ticket = { cell : Mux.ticket; decode : Protocol.reply -> ('a, string) result }

let retriable = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR -> true
  | _ -> false

let jittered rng backoff =
  let rng =
    match !rng with
    | Some r -> r
    | None ->
        let r = Random.State.make_self_init () in
        rng := Some r;
        r
  in
  Float.max 1e-4 (Random.State.float rng backoff)

let connect ?(retries = 3) ?(retry_backoff_s = 0.05) ?deadline_s ~socket () =
  if retries < 0 then invalid_arg "Pclient.connect: retries must be >= 0";
  (match deadline_s with
  | Some d when d <= 0. ->
      invalid_arg "Pclient.connect: deadline_s must be > 0"
  | _ -> ());
  let addr = Transport.of_string_exn socket in
  let rng = ref None in
  let rec go left backoff =
    match Transport.connect addr with
    | fd -> fd
    | exception Unix.Unix_error (err, _, _) when left > 0 && retriable err ->
        Thread.delay (jittered rng backoff);
        go (left - 1) (backoff *. 2.)
  in
  let fd = go retries retry_backoff_s in
  { mux = Mux.create ?deadline_s fd }

let request ?ctx t request decode =
  let payload = Protocol.request_to_bytes request in
  let ctx = Option.map Ssg_obs.Context.to_wire ctx in
  { cell = Mux.send ?ctx t.mux payload; decode }

let await ticket =
  match Mux.await ticket.cell with
  | Error reason -> Error reason
  | Ok payload -> (
      match Protocol.reply_of_bytes payload with
      | exception Failure msg -> Error msg
      | reply -> ticket.decode reply)

let submit ?ctx t job =
  request ?ctx t (Protocol.Submit job) (function
    | Protocol.Completed completion -> Ok completion
    | Protocol.Error msg -> Error msg
    | _ -> Error "Pclient: unexpected reply to submit")

let stats t =
  request t Protocol.Stats (function
    | Protocol.Stats_snapshot snapshot -> Ok snapshot
    | Protocol.Error msg -> Error msg
    | _ -> Error "Pclient: unexpected reply to stats")

let metrics_text t =
  request t Protocol.Metrics (function
    | Protocol.Metrics_text text -> Ok text
    | Protocol.Error msg -> Error msg
    | _ -> Error "Pclient: unexpected reply to metrics")

let shutdown t =
  await
    (request t Protocol.Shutdown (function
      | Protocol.Shutting_down -> Ok ()
      | Protocol.Error msg -> Error msg
      | _ -> Error "Pclient: unexpected reply to shutdown"))

let submit_sync t job =
  match await (submit t job) with
  | Ok completion -> completion
  | Error msg -> failwith ("server error: " ^ msg)

let inflight t = Mux.inflight t.mux
let alive t = Mux.alive t.mux
let close t = Mux.close t.mux
