open Ssg_util

type request =
  | Submit of Job.t
  | Batch of Job.t list
  | Stats
  | Trace
  | Trace_pull
  | Metrics
  | Shutdown
  | Join of string
  | Leave of string
  | Export of int
  | Transfer of (string * string) list
  | Compact

type reply =
  | Completed of Job.completion
  | Batch_completed of Job.completion list
  | Stats_snapshot of Telemetry.snapshot
  | Trace_events of Ssg_obs.Tracer.event list
  | Trace_reports of Ssg_obs.Tracer.report list
  | Metrics_text of string
  | Shutting_down
  | Ack
  | Entries of (string * string) list
  | Transferred of int
  | Compacted of int
  | Error of string

let max_frame_bytes = 16 * 1024 * 1024

(* ---------------- primitive writers ---------------- *)

let put_int buf (x : int) =
  let open Int64 in
  let v = of_int x in
  for shift = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (to_int (logand (shift_right_logical v (8 * shift)) 0xFFL)))
  done

let put_float buf f =
  let bits = Int64.bits_of_float f in
  for shift = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr
         Int64.(to_int (logand (shift_right_logical bits (8 * shift)) 0xFFL)))
  done

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_option buf put = function
  | None -> Buffer.add_char buf '\000'
  | Some v ->
      Buffer.add_char buf '\001';
      put buf v

let put_list buf put xs =
  put_int buf (List.length xs);
  List.iter (put buf) xs

let put_array buf put xs =
  put_int buf (Array.length xs);
  Array.iter (put buf) xs

(* ---------------- primitive readers ---------------- *)

type reader = { data : string; mutable pos : int }

let truncated () = failwith "Protocol: truncated frame"

let take r n =
  if n < 0 || r.pos + n > String.length r.data then truncated ();
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_byte r =
  if r.pos >= String.length r.data then truncated ();
  let c = r.data.[r.pos] in
  r.pos <- r.pos + 1;
  Char.code c

let get_int r =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_byte r))
  done;
  Int64.to_int !v

let get_float r =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_byte r))
  done;
  Int64.float_of_bits !v

let get_bool r =
  match get_byte r with
  | 0 -> false
  | 1 -> true
  | b -> failwith (Printf.sprintf "Protocol: bad boolean byte %d" b)

let get_string r =
  let n = get_int r in
  if n < 0 || n > max_frame_bytes then
    failwith "Protocol: string length out of range";
  take r n

let get_option r get =
  match get_byte r with
  | 0 -> None
  | 1 -> Some (get r)
  | b -> failwith (Printf.sprintf "Protocol: bad option byte %d" b)

let get_list r get =
  let n = get_int r in
  if n < 0 || n > max_frame_bytes then
    failwith "Protocol: list length out of range";
  List.init n (fun _ -> get r)

let get_array r get = Array.of_list (get_list r get)

(* ---------------- domain encodings ---------------- *)

let algorithm_tag = function
  | Job.Kset -> 0
  | Job.Floodmin -> 1
  | Job.Flood_consensus -> 2
  | Job.Naive_min -> 3

let algorithm_of_tag = function
  | 0 -> Job.Kset
  | 1 -> Job.Floodmin
  | 2 -> Job.Flood_consensus
  | 3 -> Job.Naive_min
  | t -> failwith (Printf.sprintf "Protocol: unknown algorithm tag %d" t)

let put_job buf (j : Job.t) =
  put_string buf j.Job.run;
  Buffer.add_char buf (Char.chr (algorithm_tag j.Job.algorithm));
  put_int buf j.Job.k;
  put_option buf (fun b xs -> put_array b put_int xs) j.Job.inputs;
  put_option buf put_int j.Job.rounds;
  put_bool buf j.Job.monitor

let get_job r =
  let run = get_string r in
  let algorithm = algorithm_of_tag (get_byte r) in
  let k = get_int r in
  let inputs = get_option r (fun r -> get_array r get_int) in
  let rounds = get_option r get_int in
  let monitor = get_bool r in
  (* Re-canonicalize through the constructor: a hand-rolled client
     cannot plant a non-canonical job in the cache key space, and
     malformed run text is rejected at decode time. *)
  Job.of_run_text ~algorithm ~k ?inputs ?rounds ~monitor run

let put_outcome buf (o : Job.outcome) =
  put_string buf o.Job.algorithm;
  put_int buf o.Job.n;
  put_int buf o.Job.min_k;
  put_int buf o.Job.rounds_run;
  put_array buf
    (fun b d ->
      put_option b
        (fun b (round, value) ->
          put_int b round;
          put_int b value)
        d)
    o.Job.decisions;
  put_int buf o.Job.distinct_decisions;
  put_int buf o.Job.messages_sent;
  put_int buf o.Job.messages_delivered;
  put_int buf o.Job.bits_sent;
  put_list buf put_string o.Job.violations

let get_outcome r : Job.outcome =
  let algorithm = get_string r in
  let n = get_int r in
  let min_k = get_int r in
  let rounds_run = get_int r in
  let decisions =
    get_array r (fun r ->
        get_option r (fun r ->
            let round = get_int r in
            let value = get_int r in
            (round, value)))
  in
  let distinct_decisions = get_int r in
  let messages_sent = get_int r in
  let messages_delivered = get_int r in
  let bits_sent = get_int r in
  let violations = get_list r get_string in
  {
    Job.algorithm;
    n;
    min_k;
    rounds_run;
    decisions;
    distinct_decisions;
    messages_sent;
    messages_delivered;
    bits_sent;
    violations;
  }

let put_completion buf (c : Job.completion) =
  (match c.Job.result with
  | Ok o ->
      Buffer.add_char buf '\000';
      put_outcome buf o
  | Error msg ->
      Buffer.add_char buf '\001';
      put_string buf msg);
  put_bool buf c.Job.cached;
  put_float buf c.Job.latency_ms

let get_completion r : Job.completion =
  let result =
    match get_byte r with
    | 0 -> Ok (get_outcome r)
    | 1 -> Stdlib.Error (get_string r)
    | t -> failwith (Printf.sprintf "Protocol: bad result tag %d" t)
  in
  let cached = get_bool r in
  let latency_ms = get_float r in
  { Job.result; cached; latency_ms }

let put_summary buf (s : Stats.summary) =
  put_int buf s.Stats.count;
  put_float buf s.Stats.mean;
  put_float buf s.Stats.stddev;
  put_float buf s.Stats.min;
  put_float buf s.Stats.max;
  put_float buf s.Stats.p50;
  put_float buf s.Stats.p95;
  put_float buf s.Stats.p99

let get_summary r : Stats.summary =
  let count = get_int r in
  let mean = get_float r in
  let stddev = get_float r in
  let min = get_float r in
  let max = get_float r in
  let p50 = get_float r in
  let p95 = get_float r in
  let p99 = get_float r in
  { Stats.count; mean; stddev; min; max; p50; p95; p99 }

let put_snapshot buf (s : Telemetry.snapshot) =
  put_float buf s.Telemetry.uptime_s;
  put_int buf s.Telemetry.workers;
  put_int buf s.Telemetry.queue_depth;
  put_int buf s.Telemetry.queue_capacity;
  put_int buf s.Telemetry.jobs_submitted;
  put_int buf s.Telemetry.jobs_completed;
  put_int buf s.Telemetry.jobs_failed;
  put_int buf s.Telemetry.jobs_rejected_lint;
  put_int buf s.Telemetry.cache_hits;
  put_int buf s.Telemetry.cache_misses;
  put_int buf s.Telemetry.dedup_joins;
  put_int buf s.Telemetry.cache_entries;
  put_float buf s.Telemetry.throughput_jps;
  put_float buf s.Telemetry.lifetime_jps;
  put_float buf s.Telemetry.recent_window_s;
  put_int buf s.Telemetry.rejected_frames;
  put_int buf s.Telemetry.timed_out_connections;
  put_int buf s.Telemetry.connections_rejected;
  put_int buf s.Telemetry.faults_injected;
  put_option buf put_summary s.Telemetry.latency_ms;
  put_option buf put_summary s.Telemetry.queue_wait_ms;
  put_option buf put_summary s.Telemetry.exec_ms

let get_snapshot r : Telemetry.snapshot =
  let uptime_s = get_float r in
  let workers = get_int r in
  let queue_depth = get_int r in
  let queue_capacity = get_int r in
  let jobs_submitted = get_int r in
  let jobs_completed = get_int r in
  let jobs_failed = get_int r in
  let jobs_rejected_lint = get_int r in
  let cache_hits = get_int r in
  let cache_misses = get_int r in
  let dedup_joins = get_int r in
  let cache_entries = get_int r in
  let throughput_jps = get_float r in
  let lifetime_jps = get_float r in
  let recent_window_s = get_float r in
  let rejected_frames = get_int r in
  let timed_out_connections = get_int r in
  let connections_rejected = get_int r in
  let faults_injected = get_int r in
  let latency_ms = get_option r get_summary in
  let queue_wait_ms = get_option r get_summary in
  let exec_ms = get_option r get_summary in
  {
    Telemetry.uptime_s;
    workers;
    queue_depth;
    queue_capacity;
    jobs_submitted;
    jobs_completed;
    jobs_failed;
    jobs_rejected_lint;
    cache_hits;
    cache_misses;
    dedup_joins;
    cache_entries;
    throughput_jps;
    lifetime_jps;
    recent_window_s;
    rejected_frames;
    timed_out_connections;
    connections_rejected;
    faults_injected;
    latency_ms;
    queue_wait_ms;
    exec_ms;
  }

(* Trace events: kind byte, name, domain, timestamp, then the argument
   list with a tag byte per value. *)

let put_arg buf (k, v) =
  put_string buf k;
  match v with
  | Ssg_obs.Tracer.Int i ->
      Buffer.add_char buf '\000';
      put_int buf i
  | Ssg_obs.Tracer.Float f ->
      Buffer.add_char buf '\001';
      put_float buf f
  | Ssg_obs.Tracer.Str s ->
      Buffer.add_char buf '\002';
      put_string buf s

let get_arg r =
  let k = get_string r in
  let v =
    match get_byte r with
    | 0 -> Ssg_obs.Tracer.Int (get_int r)
    | 1 -> Ssg_obs.Tracer.Float (get_float r)
    | 2 -> Ssg_obs.Tracer.Str (get_string r)
    | t -> failwith (Printf.sprintf "Protocol: bad trace arg tag %d" t)
  in
  (k, v)

let kind_tag = function
  | Ssg_obs.Tracer.Begin -> 0
  | Ssg_obs.Tracer.End -> 1
  | Ssg_obs.Tracer.Instant -> 2

let kind_of_tag = function
  | 0 -> Ssg_obs.Tracer.Begin
  | 1 -> Ssg_obs.Tracer.End
  | 2 -> Ssg_obs.Tracer.Instant
  | t -> failwith (Printf.sprintf "Protocol: bad trace kind tag %d" t)

let put_event buf (e : Ssg_obs.Tracer.event) =
  Buffer.add_char buf (Char.chr (kind_tag e.Ssg_obs.Tracer.kind));
  put_string buf e.Ssg_obs.Tracer.name;
  put_int buf e.Ssg_obs.Tracer.domain;
  put_float buf e.Ssg_obs.Tracer.ts_us;
  put_list buf put_arg e.Ssg_obs.Tracer.args

let get_event r : Ssg_obs.Tracer.event =
  let kind = kind_of_tag (get_byte r) in
  let name = get_string r in
  let domain = get_int r in
  let ts_us = get_float r in
  let args = get_list r get_arg in
  { Ssg_obs.Tracer.kind; name; domain; ts_us; args }

(* One process's trace-pull report: role, pid, clock anchor, drop
   counter, then the events it retained. *)

let put_report buf (r : Ssg_obs.Tracer.report) =
  put_string buf r.Ssg_obs.Tracer.role;
  put_int buf r.Ssg_obs.Tracer.pid;
  put_float buf r.Ssg_obs.Tracer.epoch_s;
  put_int buf r.Ssg_obs.Tracer.dropped_events;
  put_list buf put_event r.Ssg_obs.Tracer.events

let get_report r : Ssg_obs.Tracer.report =
  let role = get_string r in
  let pid = get_int r in
  let epoch_s = get_float r in
  let dropped_events = get_int r in
  let events = get_list r get_event in
  { Ssg_obs.Tracer.role; pid; epoch_s; dropped_events; events }

(* Cache entries travel as (key, encoded outcome) pairs — the payload
   of warm-handoff [Export] / [Transfer] and of the store journal. *)

let put_entry buf (key, value) =
  put_string buf key;
  put_string buf value

let get_entry r =
  let key = get_string r in
  let value = get_string r in
  (key, value)

(* ---------------- top-level messages ---------------- *)

let request_to_bytes req =
  let buf = Buffer.create 256 in
  (match req with
  | Submit j ->
      Buffer.add_char buf 'S';
      put_job buf j
  | Batch js ->
      Buffer.add_char buf 'B';
      put_list buf put_job js
  | Stats -> Buffer.add_char buf 'T'
  | Trace -> Buffer.add_char buf 'C'
  | Trace_pull -> Buffer.add_char buf 'P'
  | Metrics -> Buffer.add_char buf 'M'
  | Shutdown -> Buffer.add_char buf 'Q'
  | Join addr ->
      Buffer.add_char buf 'J';
      put_string buf addr
  | Leave addr ->
      Buffer.add_char buf 'L';
      put_string buf addr
  | Export n ->
      Buffer.add_char buf 'H';
      put_int buf n
  (* Request tags must avoid the additive envelope magics on the
     server's classify path: 'I' (Frame.id_magic) and 'X'
     (Frame.ctx_magic) — a request payload starting with either would
     be eaten as an envelope, not dispatched. *)
  | Transfer entries ->
      Buffer.add_char buf 'F';
      put_list buf put_entry entries
  | Compact -> Buffer.add_char buf 'K');
  Buffer.to_bytes buf

(* Decoders promise exactly [Failure] on any malformed payload — the
   server's reply path and the fuzz property both rely on it.  Job
   construction validates parameters with [Invalid_argument]
   (e.g. [k < 1]), so that must be folded in here, not escape to the
   connection handler. *)
let decoding f =
  try f ()
  with Invalid_argument msg -> failwith ("Protocol: invalid payload: " ^ msg)

let request_of_bytes bytes =
  decoding @@ fun () ->
  let r = { data = Bytes.to_string bytes; pos = 0 } in
  match Char.chr (get_byte r) with
  | 'S' -> Submit (get_job r)
  | 'B' -> Batch (get_list r get_job)
  | 'T' -> Stats
  | 'C' -> Trace
  | 'P' -> Trace_pull
  | 'M' -> Metrics
  | 'Q' -> Shutdown
  | 'J' -> Join (get_string r)
  | 'L' -> Leave (get_string r)
  | 'H' ->
      let n = get_int r in
      if n < 0 then failwith "Protocol: negative export limit";
      Export n
  | 'F' -> Transfer (get_list r get_entry)
  | 'K' -> Compact
  | c -> failwith (Printf.sprintf "Protocol: unknown request tag %C" c)

let reply_to_bytes reply =
  let buf = Buffer.create 256 in
  (match reply with
  | Completed c ->
      Buffer.add_char buf 'R';
      put_completion buf c
  | Batch_completed cs ->
      Buffer.add_char buf 'L';
      put_list buf put_completion cs
  | Stats_snapshot s ->
      Buffer.add_char buf 'T';
      put_snapshot buf s
  | Trace_events es ->
      Buffer.add_char buf 'V';
      put_list buf put_event es
  | Trace_reports rs ->
      Buffer.add_char buf 'W';
      put_list buf put_report rs
  | Metrics_text text ->
      Buffer.add_char buf 'M';
      put_string buf text
  | Shutting_down -> Buffer.add_char buf 'D'
  | Ack -> Buffer.add_char buf 'A'
  | Entries entries ->
      Buffer.add_char buf 'N';
      put_list buf put_entry entries
  | Transferred n ->
      Buffer.add_char buf 'X';
      put_int buf n
  | Compacted n ->
      Buffer.add_char buf 'K';
      put_int buf n
  | Error msg ->
      Buffer.add_char buf 'E';
      put_string buf msg);
  Buffer.to_bytes buf

let reply_of_bytes bytes =
  decoding @@ fun () ->
  let r = { data = Bytes.to_string bytes; pos = 0 } in
  match Char.chr (get_byte r) with
  | 'R' -> Completed (get_completion r)
  | 'L' -> Batch_completed (get_list r get_completion)
  | 'T' -> Stats_snapshot (get_snapshot r)
  | 'V' -> Trace_events (get_list r get_event)
  | 'W' -> Trace_reports (get_list r get_report)
  | 'M' -> Metrics_text (get_string r)
  | 'D' -> Shutting_down
  | 'A' -> Ack
  | 'N' -> Entries (get_list r get_entry)
  | 'X' ->
      let n = get_int r in
      if n < 0 then failwith "Protocol: negative transfer count";
      Transferred n
  | 'K' ->
      let n = get_int r in
      if n < 0 then failwith "Protocol: negative compaction count";
      Compacted n
  | 'E' -> Error (get_string r)
  | c -> failwith (Printf.sprintf "Protocol: unknown reply tag %C" c)

(* ---------------- channel framing ---------------- *)

let write_frame oc payload =
  let len = Bytes.length payload in
  if len > max_frame_bytes then failwith "Protocol: frame too large";
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  output_bytes oc header;
  output_bytes oc payload;
  flush oc

let read_frame ic =
  let header = Bytes.create 4 in
  really_input ic header 0 4;
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 || len > max_frame_bytes then
    failwith (Printf.sprintf "Protocol: refused frame of %d bytes" len);
  let payload = Bytes.create len in
  (try really_input ic payload 0 len
   with End_of_file -> failwith "Protocol: connection died mid-frame");
  payload

(* ---------------- standalone outcome codec ---------------- *)

(* The store journals outcomes as opaque strings; this is the same
   encoding the wire uses, reused so the on-disk and wire forms can
   never drift apart. *)

let outcome_to_string o =
  let buf = Buffer.create 256 in
  put_outcome buf o;
  Buffer.contents buf

let outcome_of_string s =
  decoding @@ fun () ->
  let r = { data = s; pos = 0 } in
  let o = get_outcome r in
  if r.pos <> String.length s then
    failwith "Protocol: trailing bytes after outcome";
  o

let write_request oc req = write_frame oc (request_to_bytes req)
let read_request ic = request_of_bytes (read_frame ic)
let write_reply oc reply = write_frame oc (reply_to_bytes reply)
let read_reply ic = reply_of_bytes (read_frame ic)

(* ---------------- descriptor framing ---------------- *)

(* The server and client frame directly over the descriptor instead of
   buffered channels: a read timeout (SO_RCVTIMEO) then surfaces as
   [Unix_error (EAGAIN | EWOULDBLOCK)] exactly at the syscall that
   stalled, which the supervision layer classifies as a reap — a
   buffered channel would fold it into an unclassifiable [Sys_error]. *)

let rec read_some fd buf off len =
  try Unix.read fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd buf off len

let really_read_fd fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = read_some fd buf off len in
      if n = 0 then raise End_of_file;
      go (off + n) (len - n)
    end
  in
  go off len

let really_write_fd fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n =
        try Unix.write fd buf off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n) (len - n)
    end
  in
  go off len

let read_frame_fd fd =
  let header = Bytes.create 4 in
  let first = read_some fd header 0 4 in
  if first = 0 then raise End_of_file;
  (try really_read_fd fd header first (4 - first)
   with End_of_file -> failwith "Protocol: connection died mid-frame");
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 || len > max_frame_bytes then
    failwith (Printf.sprintf "Protocol: refused frame of %d bytes" len);
  let payload = Bytes.create len in
  (try really_read_fd fd payload 0 len
   with End_of_file -> failwith "Protocol: connection died mid-frame");
  payload

let write_frame_fd fd payload =
  let len = Bytes.length payload in
  if len > max_frame_bytes then failwith "Protocol: frame too large";
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  really_write_fd fd header 0 4;
  really_write_fd fd payload 0 len

let write_request_fd fd req = write_frame_fd fd (request_to_bytes req)
let read_request_fd fd = request_of_bytes (read_frame_fd fd)
let write_reply_fd fd reply = write_frame_fd fd (reply_to_bytes reply)
let read_reply_fd fd = reply_of_bytes (read_frame_fd fd)
