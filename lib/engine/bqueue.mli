(** Bounded blocking FIFO queues with backpressure and close semantics.

    The engine's job queue: producers ([Engine.submit], connection
    handlers) block in [push] while the queue is full — backpressure
    propagates all the way to the wire instead of letting an unbounded
    backlog accumulate — and consumers (pool workers) block in [pop]
    while it is empty.

    [close] starts a graceful drain: further pushes are refused, but
    already-queued items are still popped; once the queue is closed
    {e and} empty, [pop] returns [None] and workers can exit.  Safe
    across threads and domains. *)

type 'a t

(** [create ~capacity ()] — an empty open queue.
    @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> unit -> 'a t

(** [push q x] blocks while the queue is full.  Returns [true] when the
    item was enqueued and [false] when the queue is (or becomes) closed —
    a closed queue never accepts new items. *)
val push : 'a t -> 'a -> bool

(** [pop q] blocks while the queue is empty and open.  [None] means the
    queue is closed and fully drained. *)
val pop : 'a t -> 'a option

(** [close q] — refuse new pushes, wake all waiters.  Idempotent. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool

(** [length q] — items currently queued (the instantaneous queue depth
    reported by server metrics). *)
val length : 'a t -> int

val capacity : 'a t -> int
