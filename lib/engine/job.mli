(** Simulation jobs: the engine's unit of work.

    A job is a complete, self-contained simulation request — the run
    description (as canonical {!Ssg_adversary.Run_format} text), the
    algorithm to execute, the agreement parameter [k], the proposal
    inputs, an optional round budget and the monitor switch.  Values of
    this type are immutable plain data, so they cross domain and wire
    boundaries freely.

    {b Canonicalization.}  Constructors normalize every field so that
    jobs describing the same simulation are structurally equal and share
    one {!key}: the run text is re-serialized through
    [Run_format.of_string |> to_string] (sorted edge order, comments
    stripped — a permuted-but-equal hand-written description keys
    identically), and an explicit [inputs] array equal to the default
    distinct inputs [0..n-1] collapses to the default.  The engine's
    result cache and in-flight dedup both key on [key]. *)

type algorithm = Kset | Floodmin | Flood_consensus | Naive_min

type t = private {
  run : string;  (** canonical [ssg-run v1] text *)
  algorithm : algorithm;
  k : int;
  inputs : int array option;  (** [None] = distinct inputs [0..n-1] *)
  rounds : int option;  (** [None] = the run's decision horizon *)
  monitor : bool;  (** lemma monitors (Algorithm 1 only) *)
}

(** [make adv] builds a job from an in-memory run description.
    Defaults: [algorithm = Kset], [k = 1], distinct inputs, horizon
    rounds, monitors off.
    @raise Invalid_argument for recurrent runs (not serializable) or
    [k < 1]. *)
val make :
  ?algorithm:algorithm ->
  ?k:int ->
  ?inputs:int array ->
  ?rounds:int ->
  ?monitor:bool ->
  Ssg_adversary.Adversary.t ->
  t

(** [of_run_text text] — like {!make} from serialized form.
    @raise Failure on malformed run text, [Invalid_argument] on bad
    parameters. *)
val of_run_text :
  ?algorithm:algorithm ->
  ?k:int ->
  ?inputs:int array ->
  ?rounds:int ->
  ?monitor:bool ->
  string ->
  t

(** [key job] — the canonical cache/dedup key.  [key a = key b] iff the
    jobs request the same simulation. *)
val key : t -> string

val equal : t -> t -> bool
val algorithm_name : algorithm -> string

(** What a finished job reports back — the wire-friendly projection of
    {!Ssg_sim.Runner.report}. *)
type outcome = {
  algorithm : string;
  n : int;
  min_k : int;
  rounds_run : int;
  decisions : (int * int) option array;
      (** per process: [(round, value)] of its irrevocable decision *)
  distinct_decisions : int;
  messages_sent : int;
  messages_delivered : int;
  bits_sent : int;
  violations : string list;
}

(** [execute job] runs the simulation in the calling domain.
    @raise Failure / [Invalid_argument] on inconsistent jobs (e.g. an
    inputs array whose length differs from the run's [n]) — the engine
    converts these into error replies. *)
val execute : t -> outcome

(** How the service layer reports a finished submission: the outcome (or
    the execution error), whether it was served from the result cache /
    deduplicated against an in-flight twin, and the submit-to-reply
    latency observed by the engine. *)
type completion = {
  result : (outcome, string) Stdlib.result;
  cached : bool;
  latency_ms : float;
}

val pp_completion : Format.formatter -> completion -> unit
