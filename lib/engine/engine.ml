let log_src = Logs.Src.create "ssg.engine" ~doc:"Simulation service engine"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Tracer = Ssg_obs.Tracer

type done_r = (Job.outcome, string) Stdlib.result

type t = {
  pool : Pool.t;
  cache : Job.outcome Lru.t;
  pending : (string, done_r Ivar.t) Hashtbl.t;
      (* key → in-flight result cell, for dedup of identical jobs *)
  lock : Mutex.t;  (* guards [cache] and [pending] together *)
  telemetry : Telemetry.t;
  faults : Faults.t;
  store : Ssg_store.Store.t option;
}

let create ?workers ?(queue_capacity = 64) ?(cache_capacity = 1024)
    ?(faults = Faults.off) ?store () =
  let t =
    {
      pool = Pool.create ?workers ~queue_capacity ();
      cache = Lru.create ~capacity:cache_capacity;
      pending = Hashtbl.create 64;
      lock = Mutex.create ();
      telemetry = Telemetry.create ();
      faults;
      store;
    }
  in
  (* Warm boot: replay the store's recovered records into the LRU, in
     file order — the snapshot is written LRU-first, so the last replay
     lands most-recent and the cache's recency survives the restart.
     Records that no longer decode (a protocol bump) are skipped, not
     fatal: the journal is a cache, losing an entry costs a recompute. *)
  (match store with
  | None -> ()
  | Some s ->
      let skipped = ref 0 in
      let n =
        Ssg_store.Store.replay s (fun ~key ~value ->
            match Protocol.outcome_of_string value with
            | outcome -> Lru.add t.cache key outcome
            | exception Failure _ -> incr skipped)
      in
      if n > 0 || !skipped > 0 then
        Log.info (fun m ->
            m "warm boot: %d cache entr%s replayed%s" (n - !skipped)
              (if n - !skipped = 1 then "y" else "ies")
              (if !skipped > 0 then
                 Printf.sprintf " (%d undecodable record(s) skipped)" !skipped
               else "")));
  t

let telemetry t = t.telemetry
let store t = t.store

type ticket =
  | Immediate of Job.completion
  | Rejected of { message : string; submitted : float }
  | Waiting of { cell : done_r Ivar.t; submitted : float; shared : bool }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* All tracing below is guarded on [Tracer.enabled] at the call site so
   the disabled path pays one atomic load and allocates nothing. *)

let job_args (job : Job.t) =
  [
    ("algorithm", Tracer.Str (Job.algorithm_name job.Job.algorithm));
    ("k", Tracer.Int job.Job.k);
  ]

let trace_instant name job =
  if Tracer.enabled () then Tracer.instant ~args:(job_args job) name

let run_gate job =
  if Tracer.enabled () then
    Tracer.with_span ~args:(job_args job) "engine.lint" (fun () ->
        Ssg_lint.Lint.gate ~k:job.Job.k job.Job.run)
  else Ssg_lint.Lint.gate ~k:job.Job.k job.Job.run

(* ---------------- durability ---------------- *)

(* The live cache as journal entries, LRU-first so a replay that
   inserts in order reconstructs recency along with contents. *)
let snapshot_entries t =
  locked t (fun () -> List.rev (Lru.to_list t.cache))
  |> List.map (fun (key, outcome) -> (key, Protocol.outcome_to_string outcome))

let compact t =
  match t.store with
  | None -> 0
  | Some s -> Ssg_store.Store.compact s ~entries:(snapshot_entries t)

(* Tee a freshly computed outcome to the journal (runs on the worker
   domain, after the cache insert, outside the engine lock).  A torn
   write injected by the fault plan is counted like every other
   injected fault; it never fails the job — only durability is lost. *)
let persist_outcome t ~key outcome =
  match t.store with
  | None -> ()
  | Some s ->
      let torn =
        match Faults.on_append t.faults with
        | Faults.Write -> false
        | Faults.Torn ->
            Telemetry.record_injected t.telemetry;
            true
      in
      ignore
        (Ssg_store.Store.append ~torn s ~key
           ~value:(Protocol.outcome_to_string outcome));
      if Ssg_store.Store.should_compact s then ignore (compact t)

let rec submit_with ?lookup ?ctx t job =
  Telemetry.record_submitted t.telemetry;
  (* A remote context makes the submit span a child of the sender's
     span and hands its own identity down to [engine.execute]; without
     one the spans are anonymous, exactly as before. *)
  let span_ctx =
    match ctx with
    | Some c when Tracer.enabled () ->
        Some (Tracer.span_begin_ctx ~args:(job_args job) ~ctx:c "engine.submit")
    | Some _ -> None
    | None ->
        if Tracer.enabled () then
          Tracer.span_begin ~args:(job_args job) "engine.submit";
        None
  in
  Fun.protect
    ~finally:(fun () ->
      if Tracer.enabled () then Tracer.span_end "engine.submit")
    (fun () -> submit_traced ?lookup ?ctx:span_ctx t job)

and submit_traced ?lookup ?ctx t job =
  let key = Job.key job in
  let now = Unix.gettimeofday () in
  let decision =
    locked t (fun () ->
        match Lru.find t.cache key with
        | Some outcome -> `Hit outcome
        | None -> (
            match Hashtbl.find_opt t.pending key with
            | Some cell -> `In_flight cell
            | None ->
                let cell = Ivar.create () in
                Hashtbl.add t.pending key cell;
                `Fresh cell))
  in
  match decision with
  | `Hit outcome ->
      Telemetry.record_hit t.telemetry;
      trace_instant "engine.cache_hit" job;
      Immediate { Job.result = Ok outcome; cached = true; latency_ms = 0. }
  | `In_flight cell ->
      (* Joining an in-flight twin is dedup, not an LRU hit — counting
         it as one inflates the reported cache hit rate. *)
      Telemetry.record_dedup t.telemetry;
      trace_instant "engine.dedup_join" job;
      Waiting { cell; submitted = now; shared = true }
  | `Fresh cell -> (
      (* Lint front door: a job whose run can never satisfy its own
         predicate (or does not even parse) is refused before it costs a
         worker slot.  Only fresh submissions are checked — a cache hit
         or an in-flight twin proves an identical job already passed.
         Rejections fill the pending cell so twins that joined in the
         meantime observe the same Error, and are never cached: the
         diagnostics are cheap to recompute and the LRU stays reserved
         for real results. *)
      let gate =
        (* A batch pre-gate may have linted this key already (on the
           pool, in parallel); fall back to the inline gate when the
           lookup has nothing — the table is an optimization, never a
           correctness dependency. *)
        match Option.bind lookup (fun find -> find key) with
        | Some gate -> gate
        | None -> run_gate job
      in
      match gate with
      | Some diags ->
          locked t (fun () -> Hashtbl.remove t.pending key);
          Telemetry.record_rejected_lint t.telemetry;
          trace_instant "engine.lint_reject" job;
          let message = "job rejected by lint:\n" ^ diags in
          Log.info (fun m -> m "lint rejection: %s" message);
          Ivar.fill cell (Stdlib.Error message);
          Rejected { message; submitted = now }
      | None -> fresh_execute ?ctx t job ~key ~cell ~now)

and fresh_execute ?ctx t job ~key ~cell ~now =
  Telemetry.record_miss t.telemetry;
  let task () =
        (* Runs on a worker domain.  The span begins and ends here so
           every B/E pair shares one trace track; the cross-domain queue
           wait is carried as a span argument instead of a span of its
           own. *)
        let exec_start = Unix.gettimeofday () in
        let queue_ms = 1000. *. (exec_start -. now) in
        if Tracer.enabled () then begin
          let args = ("queue_ms", Tracer.Float queue_ms) :: job_args job in
          match ctx with
          | Some c -> ignore (Tracer.span_begin_ctx ~args ~ctx:c "engine.execute")
          | None -> Tracer.span_begin ~args "engine.execute"
        end;
        let result =
          try
            (match Faults.on_execute t.faults with
            | Faults.Run -> ()
            | Faults.Delay s ->
                Telemetry.record_injected t.telemetry;
                Unix.sleepf s
            | Faults.Crash ->
                Telemetry.record_injected t.telemetry;
                failwith "injected fault: job crashed");
            Ok (Job.execute job)
          with e -> Stdlib.Error (Printexc.to_string e)
        in
        let finished = Unix.gettimeofday () in
        let latency_ms = 1000. *. (finished -. now) in
        let exec_ms = 1000. *. (finished -. exec_start) in
        if Tracer.enabled () then
          Tracer.span_end
            ~args:
              [
                ( "ok",
                  Tracer.Int (match result with Ok _ -> 1 | Error _ -> 0) );
              ]
            "engine.execute";
        locked t (fun () ->
            Hashtbl.remove t.pending key;
            match result with
            | Ok outcome -> Lru.add t.cache key outcome
            | Error _ -> ());
        (match result with
        | Ok outcome -> persist_outcome t ~key outcome
        | Error _ -> ());
        (match result with
        | Ok _ ->
            Telemetry.record_completed t.telemetry ~latency_ms ~queue_ms
              ~exec_ms
        | Error msg ->
            Telemetry.record_failed t.telemetry ~latency_ms ~queue_ms ~exec_ms;
            Log.warn (fun m -> m "job failed: %s" msg));
        Ivar.fill cell result
      in
      (* Pool.submit blocks on a full queue — backpressure on purpose.
         The engine lock is NOT held here, so workers finishing jobs
         can still take it. *)
      if not (Pool.submit t.pool task) then begin
        locked t (fun () -> Hashtbl.remove t.pending key);
        Ivar.fill cell (Stdlib.Error "engine is shut down")
      end;
      Waiting { cell; submitted = now; shared = false }

let submit ?ctx t job = submit_with ?ctx t job

let rejection = function
  | Rejected { message; _ } -> Some message
  | Immediate _ | Waiting _ -> None

let await _t ticket =
  match ticket with
  | Immediate completion -> completion
  | Rejected { message; submitted } ->
      {
        Job.result = Stdlib.Error message;
        cached = false;
        latency_ms = 1000. *. (Unix.gettimeofday () -. submitted);
      }
  | Waiting { cell; submitted; shared } ->
      let result = Ivar.read cell in
      {
        Job.result;
        cached = shared;
        latency_ms = 1000. *. (Unix.gettimeofday () -. submitted);
      }

let run t job = await t (submit t job)

(* Batch pre-gate: lint every distinct not-yet-resolved key of the batch
   on the worker pool before any submission.  The cache/pending peek is
   a racy optimization — a key that resolves concurrently is simply
   gated again inline by [submit_with]'s fallback. *)
let pregate t jobs =
  let seen = Hashtbl.create 32 in
  let fresh =
    List.filter_map
      (fun job ->
        let key = Job.key job in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          let resolved =
            locked t (fun () ->
                Lru.mem t.cache key || Hashtbl.mem t.pending key)
          in
          if resolved then None else Some (key, job)
        end)
      jobs
  in
  let gates = Hashtbl.create 32 in
  (match fresh with
  | [] | [ _ ] -> () (* nothing worth fanning out; inline gating wins *)
  | fresh ->
      Pool.map t.pool (fun (key, job) -> (key, run_gate job)) fresh
      |> List.iter (fun (key, gate) -> Hashtbl.add gates key gate));
  gates

let submit_batch ?ctx t jobs =
  let gates = pregate t jobs in
  let lookup key = Hashtbl.find_opt gates key in
  List.map (fun job -> submit_with ~lookup ?ctx t job) jobs

let run_batch ?ctx t jobs = List.map (await t) (submit_batch ?ctx t jobs)

let stats t =
  let cache_entries = locked t (fun () -> Lru.length t.cache) in
  Telemetry.snapshot t.telemetry ~workers:(Pool.workers t.pool)
    ~queue_depth:(Pool.queue_depth t.pool)
    ~queue_capacity:(Pool.queue_capacity t.pool)
    ~cache_entries

(* ---------------- warm handoff ---------------- *)

(* Keep an export bounded in bytes as well as entries so a Transfer
   built from it always fits a wire frame with room to spare. *)
let export_byte_budget = 4 * 1024 * 1024

let export t n =
  let entries = locked t (fun () -> Lru.to_list t.cache) in
  let rec take budget k = function
    | [] -> []
    | _ when k <= 0 || budget <= 0 -> []
    | (key, outcome) :: rest ->
        let value = Protocol.outcome_to_string outcome in
        let cost = String.length key + String.length value in
        if cost > budget then take budget k rest
        else (key, value) :: take (budget - cost) (k - 1) rest
  in
  take export_byte_budget n entries

let import t entries =
  (* Reverse so the hottest entry (exported MRU-first) is inserted
     last and lands most-recent in the receiving cache.  Imports are
     seeds, not fresh results: they are persisted (a handed-off key
     must survive the joiner's next restart) but never counted as
     completions. *)
  List.fold_left
    (fun n (key, value) ->
      match Protocol.outcome_of_string value with
      | outcome ->
          locked t (fun () ->
              if not (Hashtbl.mem t.pending key) then
                Lru.add t.cache key outcome);
          persist_outcome t ~key outcome;
          n + 1
      | exception Failure msg ->
          Log.warn (fun m -> m "import: skipping undecodable entry: %s" msg);
          n)
    0 (List.rev entries)

let prometheus t =
  let text = Telemetry.prometheus t.telemetry (stats t) in
  match t.store with
  | None -> text
  | Some s -> text ^ Ssg_obs.Metrics.to_prometheus (Ssg_store.Store.metrics s)

let shutdown t =
  Pool.shutdown t.pool;
  match t.store with None -> () | Some s -> Ssg_store.Store.close s
