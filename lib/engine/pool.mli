(** Persistent domain worker pool.

    {!Ssg_util.Parallel} spawns domains per call — right for one-shot
    batch maps, wrong for a long-lived service where domain spawn cost
    and unbounded fan-out matter.  This pool generalizes it: a fixed set
    of worker domains drain a {!Bqueue} of thunks for the lifetime of the
    service, the bounded queue gives submission backpressure, and
    [shutdown] is graceful (already-accepted tasks run to completion
    before the workers exit).

    A task that raises does not kill its worker: the exception is caught
    and logged, and the worker moves on.  Tasks that must propagate
    failure do so through their own result channel (the engine wraps
    every job and delivers [Error] through an {!Ivar}). *)

type t

(** [create ?workers ?queue_capacity ()] spawns the worker domains.
    Defaults: [workers = max 1 (Ssg_util.Parallel.default_domains ())],
    [queue_capacity = 64].
    @raise Invalid_argument if [workers < 1] or [queue_capacity < 1]. *)
val create : ?workers:int -> ?queue_capacity:int -> unit -> t

val workers : t -> int

(** [queue_depth pool] — tasks accepted but not yet started. *)
val queue_depth : t -> int

val queue_capacity : t -> int

(** [submit pool task] enqueues [task], blocking while the queue is full
    (backpressure).  Returns [false] iff the pool has been shut down, in
    which case the task was {e not} accepted. *)
val submit : t -> (unit -> unit) -> bool

(** [map pool f xs] fans [f] over [xs] on the worker domains and blocks
    until every element is done, returning results in input order.  On a
    shut-down pool the rejected tasks run inline on the caller, so the
    result is always complete.  If some [f] raised, the first exception
    in input order is re-raised after all tasks finish.  Do not call
    from inside a pool task: the blocked caller occupies no worker, but
    a worker calling [map] could deadlock a saturated pool. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [shutdown pool] closes the queue, waits for the workers to drain all
    accepted tasks, and joins them.  Idempotent; concurrent calls after
    the first return once the first completes. *)
val shutdown : t -> unit
