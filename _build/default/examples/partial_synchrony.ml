(* From raw message latencies to k-set agreement — no model assumptions.

     dune exec examples/partial_synchrony.exe

   Everything else in this library starts from a communication predicate.
   This example starts lower: nine processes exchange messages through a
   discrete-event network with per-link latencies (three datacenters:
   fast LANs inside, a slow jittery WAN between), and rebuild the round
   abstraction with local timers.  Which communication graphs — and hence
   which predicate — the system enjoys is *emergent*.  We run Algorithm 1
   on top, twice, with two different timeout settings, and watch the same
   code degrade gracefully from consensus to one-value-per-datacenter. *)

open Ssg_graph
open Ssg_skeleton
open Ssg_predicates
open Ssg_timing

let n = 9
let assign = [| 0; 0; 0; 1; 1; 1; 2; 2; 2 |] (* three datacenters *)

let latency =
  Latency.clustered ~assign
    ~intra:(Latency.uniform ~seed:11 ~lo:0.05 ~hi:0.3)
    ~inter:
      (Latency.with_loss ~seed:12 ~p:0.05
         (Latency.uniform ~seed:13 ~lo:0.8 ~hi:2.5))

let run ~tau =
  let r =
    Round_sync.run_kset
      ~timeouts:(Array.make n tau)
      ~inputs:(Array.init n (fun p -> 100 + p))
      ~latency ~max_rounds:(3 * n) ()
  in
  let skel = Skeleton.final r.Round_sync.trace in
  let analysis = Analysis.analyze skel in
  let min_k = Predicate.min_k (Predicate.of_skeleton skel) in
  Printf.printf "timeout = %.2f:\n" tau;
  Printf.printf "  induced stable skeleton: %d edges, %d root component(s), min_k = %d\n"
    (Digraph.edge_count skel)
    (Analysis.root_count analysis)
    min_k;
  let values =
    Array.to_list r.Round_sync.decisions
    |> List.filter_map (Option.map (fun d -> d.Round_sync.value))
    |> List.sort_uniq compare
  in
  Printf.printf "  decisions: %s  (%d distinct; %d late messages dropped)\n\n"
    (String.concat ", " (List.map string_of_int values))
    (List.length values) r.Round_sync.messages_late

let () =
  Printf.printf
    "Nine processes, three datacenters; LAN latency ~U[0.05,0.3), WAN \
     ~U[0.8,2.5) with 5%% loss.\nSame algorithm, two timeout settings:\n\n";
  (* Generous timeout: WAN links are timely, the whole system is one
     root component -> consensus. *)
  run ~tau:3.0;
  (* Tight timeout: only LAN links are timely -> three islands, one
     value per datacenter (k-set agreement with emergent k = 3). *)
  run ~tau:0.5;
  print_endline
    "The algorithm never knew which regime it was in - the communication\n\
     graphs, the predicate, and the agreement level are all emergent."
