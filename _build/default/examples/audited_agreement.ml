(* Auditable decisions: Lemma 6 as a protocol feature.

     dune exec examples/audited_agreement.exe

   Every edge of an approximation graph records true past timeliness
   (Lemma 6), so a process deciding through Line 29 can publish its
   strongly connected G_p as a *certificate*.  Anyone holding the
   communication trace can then audit the decision without trusting the
   decider: freshness of every label, genuine timeliness of every edge,
   provenance of the value.  This example captures the certificates of a
   partitioned run, audits them, and then shows a forged certificate
   being rejected. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_adversary
open Ssg_core

let () =
  let rng = Rng.of_int 77 in
  let n = 8 in
  let adv = Build.partitioned rng ~n ~blocks:2 () in
  let inputs = Array.init n (fun i -> 100 + i) in
  let rounds = Adversary.decision_horizon adv in

  (* Run Algorithm 1, capturing certificates the moment they are minted. *)
  let module E = Executor.Make (Kset_agreement.Alg) in
  let certificates = ref [] in
  let cfg =
    E.config ~stop_when_all_decided:false
      ~on_round:(fun ~round ~graph:_ states ->
        certificates := Certificate.capture states ~round @ !certificates)
      ~inputs
      ~graphs:(Adversary.graph adv)
      ~max_rounds:rounds ()
  in
  let _ = E.run cfg in
  let trace = Adversary.trace adv ~rounds in

  Printf.printf "%d certificates were published:\n" (List.length !certificates);
  List.iter
    (fun c ->
      let verdict =
        match Certificate.verify c ~trace ~inputs with
        | `Valid -> "VALID"
        | `Valid_but_dissolved -> "valid, but the component dissolved"
        | `Invalid reason -> "INVALID: " ^ reason
      in
      Printf.printf
        "  p%d decided %d at round %d over component %s  ->  %s\n"
        (c.Certificate.owner + 1) c.Certificate.value c.Certificate.round
        (Bitset.to_string (Lgraph.nodes c.Certificate.graph))
        verdict)
    !certificates;

  (* Now forge one: claim an edge that was never timely. *)
  match !certificates with
  | [] -> print_endline "no certificates (unexpected)"
  | c :: _ ->
      print_newline ();
      let forged = Lgraph.copy c.Certificate.graph in
      let skel = Adversary.stable_skeleton adv in
      let members = Bitset.elements (Lgraph.nodes c.Certificate.graph) in
      (* forge between two members of the certified component, so the graph
         stays strongly connected and the audit must catch the lie via
         Lemma 6 (the edge was never timely) *)
      (try
         List.iter (fun a ->
           List.iter (fun b ->
             if a <> b && not (Digraph.mem_edge skel a b) then begin
               Lgraph.set_edge forged a b ~label:c.Certificate.round;
               Printf.printf
                 "forging certificate of p%d with a fake edge p%d->p%d...\n"
                 (c.Certificate.owner + 1) (a + 1) (b + 1);
               raise Exit
             end)
             members)
           members
       with Exit -> ());
      (match
         Certificate.verify
           { c with Certificate.graph = forged }
           ~trace ~inputs
       with
      | `Invalid reason -> Printf.printf "audit rejects it: %s\n" reason
      | _ -> print_endline "forgery accepted?! (bug)")
