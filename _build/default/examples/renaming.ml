(* Name-space reduction (renaming) on top of k-set agreement.

     dune exec examples/renaming.exe

   The paper's introduction names renaming as a practical consumer of
   k-set agreement.  Here, 10 processes start with sparse 32-bit
   identifiers drawn from a huge namespace.  Each proposes its own
   identifier; Algorithm 1 yields at most k = 3 distinct decided
   identifiers ("anchors").  A process derives its new name as
   (anchor rank, offset within the anchor's adopters) — compressing the
   namespace from 2^32 to at most k * n, with no process knowing k or the
   participants in advance. *)

open Ssg_util
open Ssg_rounds
open Ssg_adversary
open Ssg_sim

let () =
  let rng = Rng.of_int 99 in
  let n = 10 and k = 3 in

  (* Sparse original names. *)
  let names = Array.init n (fun _ -> Rng.int rng 0x3FFFFFFF) in
  Printf.printf "original identifiers (namespace 2^30):\n";
  Array.iteri (fun p name -> Printf.printf "  process %d: %#x\n" p name) names;

  let adversary = Build.block_sources rng ~n ~k ~prefix_len:3 () in
  let report = Runner.run_kset ~inputs:names adversary in
  let outcome = report.Runner.outcome in

  (* Anchors: the decided identifiers, ranked. *)
  let anchors = Executor.decision_values outcome in
  Printf.printf "\nk-set agreement produced %d anchor(s) (k = %d): %s\n"
    (List.length anchors) k
    (String.concat ", " (List.map (Printf.sprintf "%#x") anchors));
  assert (List.length anchors <= k);

  (* New names: (anchor rank, arrival order among same-anchor adopters).
     Offsets here are assigned from process ids, which every process can
     compute locally once decided. *)
  let rank v =
    let rec go i = function
      | [] -> assert false
      | a :: rest -> if a = v then i else go (i + 1) rest
    in
    go 0 anchors
  in
  let counters = Array.make (List.length anchors) 0 in
  print_newline ();
  Array.iteri
    (fun p d ->
      match d with
      | Some { Executor.value; _ } ->
          let r = rank value in
          let offset = counters.(r) in
          counters.(r) <- offset + 1;
          Printf.printf "  process %d: %#x -> name (%d, %d)\n" p names.(p) r
            offset
      | None -> assert false)
    outcome.Executor.decisions;

  Printf.printf
    "\nnamespace reduced from 2^30 to %d anchor groups x <= %d offsets = %d names.\n"
    (List.length anchors) n
    (List.length anchors * n)
