(* A replicated log per partition — repeated k-set agreement.

     dune exec examples/replicated_log.exe

   The paper motivates k > 1 by partitionable systems; a real system
   agrees not once but per log entry.  Here a 9-process system splits
   into 3 partitions and appends 4 entries.  Within each partition every
   replica ends with an identical, fully-decided log (a state machine per
   partition), and the partition's leader — elected from the skeleton
   approximation alone — is the natural coordinator to propose entries. *)

open Ssg_util
open Ssg_graph
open Ssg_skeleton
open Ssg_adversary
open Ssg_apps

let () =
  let rng = Rng.of_int 2024 in
  let n = 9 and blocks = 3 in
  let adv = Build.partitioned rng ~n ~blocks () in
  let analysis = Analysis.analyze (Adversary.stable_skeleton adv) in

  (* Leaders per partition, from the approximation alone. *)
  let leaders = Array.init n (fun self -> Leader.create ~n ~self) in
  for round = 1 to 2 * n do
    let graph = Adversary.graph adv round in
    let payloads = Array.map Leader.message leaders in
    Array.iteri
      (fun q o ->
        Leader.step o ~round ~received:(fun p ->
            if Digraph.mem_edge graph p q then Some payloads.(p) else None))
      leaders
  done;

  (* Four log entries: instance i proposes "i0 + own id". *)
  let instances = 4 in
  let proposals i = Array.init n (fun p -> (10 * (i + 1)) + p) in
  let results =
    Repeated.run adv ~proposals ~instances ~window:(Repeated.default_window adv)
  in

  List.iteri
    (fun idx island ->
      let leader = Leader.leader leaders.(Bitset.min_elt island) in
      Printf.printf "partition %d  members %s  leader p%d\n" (idx + 1)
        (Bitset.to_string island) (leader + 1);
      assert (Repeated.logs_agree results ~members:island);
      let log = Repeated.log_of results (Bitset.min_elt island) in
      Printf.printf "  log: %s\n"
        (String.concat " -> "
           (List.map
              (function Some v -> string_of_int v | None -> "?")
              log)))
    (Analysis.roots analysis);

  Printf.printf
    "\nevery replica inside a partition holds the same %d-entry log;\n\
     partitions diverge only because they are partitions.\n"
    instances
