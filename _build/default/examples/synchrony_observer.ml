(* The skeleton approximation as a stand-alone synchrony observer.

     dune exec examples/synchrony_observer.exe

   Section V notes that the approximation is correct atop ANY
   communication predicate, making communication graphs "a promising new
   tool for studying the underlying synchrony in a system".  This example
   uses Ssg_core.Approx directly — no agreement logic — as a local
   observability service: each process continuously estimates which part
   of the system is perpetually timely, and we compare its view against
   the ground truth the adversary knows.

   After stabilization + n rounds, a process's view of its own strongly
   connected neighbourhood is exact (Lemmas 5 and 7). *)

open Ssg_util
open Ssg_graph
open Ssg_adversary
open Ssg_core

let () =
  let rng = Rng.of_int 31 in
  let n = 9 in
  (* An arbitrary system: no predicate guaranteed at all. *)
  let adv = Build.arbitrary rng ~n ~density:0.25 ~prefix_len:4 ~noise:0.5 () in
  let observers = Array.init n (fun self -> Approx.create ~n ~self ()) in

  let rounds = Adversary.prefix_length adv + (2 * n) in
  for round = 1 to rounds do
    let graph = Adversary.graph adv round in
    let payloads = Array.map Approx.message observers in
    Array.iteri
      (fun q s ->
        Approx.step s ~round ~received:(fun p ->
            if Digraph.mem_edge graph p q then Some payloads.(p) else None))
      observers
  done;

  let skeleton = Adversary.stable_skeleton adv in
  Printf.printf "system: %s, %d rounds observed\n\n" (Adversary.name adv) rounds;
  Printf.printf "%-4s %-22s %-22s %s\n" "proc" "PT (observed)" "PT (truth)"
    "own SCC approximated exactly?";
  let all_exact = ref true in
  Array.iteri
    (fun p s ->
      let observed = Approx.pt s in
      let truth = Digraph.preds skeleton p in
      let comp = Scc.component_containing skeleton p in
      (* Lemma 5 + Lemma 7: by now the view of p's own component is the
         component itself whenever the view is strongly connected. *)
      let view_nodes = Lgraph.nodes (Approx.graph_view s) in
      let exact =
        if Approx.is_strongly_connected s then Bitset.equal view_nodes comp
        else Bitset.subset comp view_nodes
      in
      if not (Bitset.equal observed truth) || not exact then all_exact := false;
      Printf.printf "p%-3d %-22s %-22s %s\n" (p + 1)
        (Bitset.to_string observed)
        (Bitset.to_string truth)
        (if exact then "yes" else "NO"))
    observers;
  print_newline ();
  if !all_exact then
    print_endline
      "every local observation matches the ground truth — the approximation\n\
       is correct without any communication predicate."
  else print_endline "mismatch found (this would be a bug)"
