examples/figure1.ml: Adversary Analysis Build Dot Experiment Printf Skeleton Ssg_adversary Ssg_graph Ssg_sim Ssg_skeleton
