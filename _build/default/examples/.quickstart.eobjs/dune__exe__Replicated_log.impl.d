examples/replicated_log.ml: Adversary Analysis Array Bitset Build Digraph Leader List Printf Repeated Rng Ssg_adversary Ssg_apps Ssg_graph Ssg_skeleton Ssg_util String
