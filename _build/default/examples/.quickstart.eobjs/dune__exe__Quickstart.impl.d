examples/quickstart.ml: Adversary Array Build Executor List Metrics Printf Rng Runner Ssg_adversary Ssg_rounds Ssg_sim Ssg_util String
