examples/partition_consensus.mli:
