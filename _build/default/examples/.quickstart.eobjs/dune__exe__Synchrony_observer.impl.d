examples/synchrony_observer.ml: Adversary Approx Array Bitset Build Digraph Lgraph Printf Rng Scc Ssg_adversary Ssg_core Ssg_graph Ssg_util
