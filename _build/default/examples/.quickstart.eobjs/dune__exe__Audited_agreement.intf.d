examples/audited_agreement.mli:
