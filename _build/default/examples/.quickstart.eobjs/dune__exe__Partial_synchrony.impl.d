examples/partial_synchrony.ml: Analysis Array Digraph Latency List Option Predicate Printf Round_sync Skeleton Ssg_graph Ssg_predicates Ssg_skeleton Ssg_timing String
