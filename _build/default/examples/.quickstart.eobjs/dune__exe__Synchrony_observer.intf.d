examples/synchrony_observer.mli:
