examples/quickstart.mli:
