examples/partition_consensus.ml: Adversary Analysis Array Bitset Build Digraph Executor List Metrics Printf Rng Runner Ssg_adversary Ssg_graph Ssg_rounds Ssg_sim Ssg_skeleton Ssg_util String
