examples/renaming.mli:
