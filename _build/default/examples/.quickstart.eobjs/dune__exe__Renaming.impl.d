examples/renaming.ml: Array Build Executor List Printf Rng Runner Ssg_adversary Ssg_rounds Ssg_sim Ssg_util String
