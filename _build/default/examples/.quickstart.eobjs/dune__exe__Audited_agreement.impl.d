examples/audited_agreement.ml: Adversary Array Bitset Build Certificate Digraph Executor Kset_agreement Lgraph List Printf Rng Ssg_adversary Ssg_core Ssg_graph Ssg_rounds Ssg_util
