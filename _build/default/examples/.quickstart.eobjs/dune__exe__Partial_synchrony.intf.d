examples/partial_synchrony.mli:
