(* Quickstart: solve k-set agreement on a generated run.

     dune exec examples/quickstart.exe

   Eight processes propose the values 0..7.  The communication system
   guarantees Psrcs(3) — in every round, any four processes contain two
   that hear a common source — and nothing else: messages may be lost or
   late arbitrarily otherwise.  Algorithm 1 (which never needs to know k)
   decides at most 3 values. *)

open Ssg_util
open Ssg_rounds
open Ssg_adversary
open Ssg_sim

let () =
  let rng = Rng.of_int 2011 in

  (* A run description: Psrcs(3) holds by construction, with 4 rounds of
     pre-stabilization noise thrown in. *)
  let adversary = Build.block_sources rng ~n:8 ~k:3 ~prefix_len:4 () in

  Printf.printf "System: %s\n" (Adversary.name adversary);
  Printf.printf "Least k such that Psrcs(k) holds: %d\n\n"
    (Adversary.min_k adversary);

  (* Run Algorithm 1 with proposals 0..7. *)
  let report = Runner.run_kset adversary in
  let outcome = report.Runner.outcome in

  Array.iteri
    (fun p d ->
      match d with
      | Some { Executor.round; value } ->
          Printf.printf "process %d proposed %d, decided %d in round %d\n" p p
            value round
      | None -> Printf.printf "process %d did not decide (impossible!)\n" p)
    outcome.Executor.decisions;

  let values = Executor.decision_values outcome in
  Printf.printf "\n%d distinct decision value(s): %s  (k-agreement: <= %d)\n"
    (List.length values)
    (String.concat ", " (List.map string_of_int values))
    report.Runner.min_k;
  assert (Metrics.k_agreement ~k:report.Runner.min_k outcome);
  assert (Metrics.validity ~inputs:report.Runner.inputs outcome);
  assert (Metrics.termination outcome);
  print_endline "k-agreement, validity and termination all hold."
