(* Partitionable systems: consensus inside every partition.

     dune exec examples/partition_consensus.exe

   The paper's introduction motivates k > 1 with "partitionable systems
   that need to reach consensus in every partition".  This example builds
   a 12-process system that splits into 3 network partitions (each
   strongly connected internally, silent across) and shows that Algorithm
   1 — with no partition detector, no membership service, and no knowledge
   of k — makes each partition agree on exactly one value: the decision
   values are in one-to-one correspondence with the partitions. *)

open Ssg_util
open Ssg_graph
open Ssg_rounds
open Ssg_skeleton
open Ssg_adversary
open Ssg_sim

let () =
  let rng = Rng.of_int 7 in
  let n = 12 and partitions = 3 in
  let adversary = Build.partitioned rng ~n ~blocks:partitions () in

  (* Ground truth: the stable skeleton's root components are the
     partitions. *)
  let analysis = Analysis.analyze (Adversary.stable_skeleton adversary) in
  Printf.printf "Partitions (root components of G^∩∞):\n";
  List.iteri
    (fun i island ->
      Printf.printf "  partition %d: %s\n" (i + 1) (Bitset.to_string island))
    (Analysis.roots analysis);

  let report = Runner.run_kset adversary in
  let outcome = report.Runner.outcome in

  (* Group decisions by partition. *)
  print_newline ();
  List.iteri
    (fun i island ->
      let decisions =
        Bitset.fold
          (fun p acc ->
            match outcome.Executor.decisions.(p) with
            | Some { Executor.value; _ } -> value :: acc
            | None -> acc)
          island []
        |> List.sort_uniq compare
      in
      Printf.printf "partition %d decided: %s\n" (i + 1)
        (String.concat ", " (List.map string_of_int decisions));
      assert (List.length decisions = 1))
    (Analysis.roots analysis);

  Printf.printf "\n%d partitions, %d decision values — consensus in every partition.\n"
    partitions
    (Metrics.distinct_decisions outcome);

  (* The same system, but one partition heals: a stable edge appears from
     partition 1 into partition 2, merging their fates. *)
  let skel = Adversary.stable_skeleton adversary in
  let roots = Analysis.roots analysis in
  let p1 = Bitset.choose (List.nth roots 0)
  and p2 = Bitset.choose (List.nth roots 1) in
  let healed_graph = Digraph.copy skel in
  Digraph.add_edge healed_graph p1 p2;
  let healed = Adversary.make ~name:"healed" ~prefix:[||] ~stable:healed_graph in
  let report = Runner.run_kset healed in
  Printf.printf
    "\nAfter healing (stable edge p%d -> p%d): %d decision values — the\n"
    (p1 + 1) (p2 + 1)
    (Metrics.distinct_decisions report.Runner.outcome);
  Printf.printf "absorbed partition now follows the surviving root component.\n"
