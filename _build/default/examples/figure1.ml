(* Reproduce the paper's Figure 1 and export the graphs as DOT.

     dune exec examples/figure1.exe

   Prints the round-by-round evolution of p6's approximation of the
   stable skeleton (figures 1c-1h), and writes figure1_*.dot files that
   render figures 1a/1b with Graphviz:

     dot -Tpng figure1_skeleton.dot -o figure1b.png *)

open Ssg_graph
open Ssg_skeleton
open Ssg_adversary
open Ssg_sim

let () =
  (match Experiment.find "F1" with
  | Some e -> print_string (Experiment.run_and_render e `Standard)
  | None -> assert false);

  let adv = Build.figure1 () in
  let trace = Adversary.trace adv ~rounds:6 in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  print_newline ();
  write "figure1_round2_skeleton.dot"
    (Dot.of_digraph ~name:"G_cap_2" (Skeleton.at trace 2));
  let skel = Adversary.stable_skeleton adv in
  write "figure1_skeleton.dot" (Dot.of_digraph ~name:"G_cap_inf" skel);
  write "figure1_roots.dot"
    (Dot.of_digraph_with_components ~name:"roots" skel
       (Analysis.roots (Analysis.analyze skel)))
