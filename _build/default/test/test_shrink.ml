(* Tests for the counterexample shrinker. *)

open Ssg_util
open Ssg_graph
open Ssg_adversary
open Ssg_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The E9 property: the paper's decision rule exceeds the run's min_k. *)
let violates_theorem16 adv =
  let r = Runner.run_kset adv in
  Metrics.distinct_decisions r.Runner.outcome > r.Runner.min_k

let find_seed_counterexample () =
  (* same deterministic hunt as the Theorem 16 gap test *)
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < 3000 do
    let rng = Rng.of_int (424242 + !i) in
    let n = 6 + Rng.int rng 4 in
    let adv =
      Build.block_sources rng ~n ~k:(1 + Rng.int rng 2)
        ~prefix_len:(2 + Rng.int rng 3) ~noise:0.5 ()
    in
    if violates_theorem16 adv then found := Some adv;
    incr i
  done;
  !found

let test_size_measure () =
  let small = Build.synchronous ~n:3 in
  let big = Build.synchronous ~n:8 in
  check "more processes = bigger" true (Shrink.size big > Shrink.size small);
  let rng = Rng.of_int 1 in
  let with_prefix = Build.block_sources rng ~n:3 ~k:1 ~prefix_len:2 () in
  check "prefix dominates edges" true
    (Shrink.size with_prefix > Shrink.size (Build.block_sources rng ~n:3 ~k:1 ()))

let test_minimize_requires_interesting_input () =
  check "rejects boring input" true
    (try
       ignore (Shrink.minimize (fun _ -> false) (Build.synchronous ~n:3));
       false
     with Invalid_argument _ -> true)

let test_minimize_trivial_property () =
  (* property: n >= 2.  The shrinker must reach exactly 2 processes with
     no prefix and only self-loops. *)
  let rng = Rng.of_int 2 in
  let adv = Build.block_sources rng ~n:7 ~k:3 ~prefix_len:3 () in
  let shrunk, checks = Shrink.minimize (fun a -> Adversary.n a >= 2) adv in
  check_int "two processes" 2 (Adversary.n shrunk);
  check_int "no prefix" 0 (Adversary.prefix_length shrunk);
  check_int "only self loops" 2
    (Digraph.edge_count (Adversary.stable_skeleton shrunk));
  check "spent checks" true (checks > 0)

let test_minimize_theorem16_counterexample () =
  (* Shrink a hunted n>=6 counterexample; the known minimal witness shape
     is 3 processes with a 1-round prefix, so the shrinker must reach
     n <= 4, prefix = 1 (and stay violating). *)
  match find_seed_counterexample () with
  | None -> Alcotest.fail "no counterexample found to shrink"
  | Some adv ->
      let shrunk, _ = Shrink.minimize violates_theorem16 adv in
      check "still violates" true (violates_theorem16 shrunk);
      check "smaller" true (Shrink.size shrunk < Shrink.size adv);
      check
        (Printf.sprintf "reached a tiny witness (n = %d)" (Adversary.n shrunk))
        true
        (Adversary.n shrunk <= 4);
      (* greedy single-step shrinking is locally minimal, not globally:
         depending on the seed it lands on the 1- or 2-round-prefix
         witness shape *)
      check "short prefix" true (Adversary.prefix_length shrunk <= 2)

let test_minimize_is_deterministic () =
  match find_seed_counterexample () with
  | None -> Alcotest.fail "no counterexample"
  | Some adv ->
      let a, _ = Shrink.minimize violates_theorem16 adv in
      let b, _ = Shrink.minimize violates_theorem16 adv in
      check "same skeleton" true
        (Digraph.equal (Adversary.stable_skeleton a) (Adversary.stable_skeleton b));
      check_int "same n" (Adversary.n a) (Adversary.n b)

let test_max_checks_budget () =
  let rng = Rng.of_int 3 in
  let adv = Build.block_sources rng ~n:8 ~k:3 ~prefix_len:4 () in
  let _, checks = Shrink.minimize ~max_checks:5 (fun a -> Adversary.n a >= 2) adv in
  check "budget respected" true (checks <= 5)

let tests =
  [
    Alcotest.test_case "size measure" `Quick test_size_measure;
    Alcotest.test_case "rejects boring input" `Quick
      test_minimize_requires_interesting_input;
    Alcotest.test_case "minimizes under a trivial property" `Quick
      test_minimize_trivial_property;
    Alcotest.test_case "shrinks the Theorem 16 counterexample" `Slow
      test_minimize_theorem16_counterexample;
    Alcotest.test_case "deterministic" `Slow test_minimize_is_deterministic;
    Alcotest.test_case "check budget" `Quick test_max_checks_budget;
  ]
