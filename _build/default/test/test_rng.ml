(* Tests for the SplitMix64 generator. *)

open Ssg_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_deterministic () =
  let a = Rng.of_int 1234 and b = Rng.of_int 1234 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seed_sensitivity () =
  let a = Rng.of_int 1 and b = Rng.of_int 2 in
  check "different seeds differ" true (Rng.next a <> Rng.next b)

let test_copy () =
  let a = Rng.of_int 7 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next a) (Rng.next b)

let test_split_independent () =
  let parent = Rng.of_int 42 in
  let child = Rng.split parent in
  (* The child stream should not be a shift of the parent stream. *)
  let xs = List.init 20 (fun _ -> Rng.next parent) in
  let ys = List.init 20 (fun _ -> Rng.next child) in
  check "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let g = Rng.of_int 5 in
  for _ = 1 to 1000 do
    let v = Rng.int g 7 in
    check "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0))

let test_int_in () =
  let g = Rng.of_int 5 in
  for _ = 1 to 500 do
    let v = Rng.int_in g (-3) 3 in
    check "in closed range" true (v >= -3 && v <= 3)
  done;
  check_int "degenerate range" 9 (Rng.int_in g 9 9)

let test_int_covers_range () =
  let g = Rng.of_int 17 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int g 5) <- true
  done;
  check "all residues hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let g = Rng.of_int 9 in
  for _ = 1 to 1000 do
    let f = Rng.float g in
    check "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_float_mean () =
  let g = Rng.of_int 21 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.float g
  done;
  let mean = !total /. float_of_int n in
  check "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_chance_extremes () =
  let g = Rng.of_int 3 in
  check "p=1" true (Rng.chance g 1.0);
  check "p=0" false (Rng.chance g 0.0);
  check "p>1" true (Rng.chance g 2.0);
  check "p<0" false (Rng.chance g (-1.0))

let test_pick () =
  let g = Rng.of_int 31 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check "pick member" true (Array.mem (Rng.pick g arr) arr)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick g [||]))

let test_shuffle_permutes () =
  let g = Rng.of_int 13 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_permutation () =
  let g = Rng.of_int 77 in
  let p = Rng.permutation g 30 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 30 (fun i -> i)) sorted

let test_sample () =
  let g = Rng.of_int 8 in
  let s = Rng.sample g 20 5 in
  check_int "size" 5 (Array.length s);
  let l = Array.to_list s in
  check "sorted distinct" true (List.sort_uniq compare l = l);
  check "in range" true (List.for_all (fun x -> x >= 0 && x < 20) l);
  check_int "sample all" 20 (Array.length (Rng.sample g 20 20));
  check_int "sample none" 0 (Array.length (Rng.sample g 20 0));
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample: k out of range")
    (fun () -> ignore (Rng.sample g 3 4))

let tests =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in" `Quick test_int_in;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "sample" `Quick test_sample;
  ]
