(* Tests for MIS and the Psrcs(k) decision procedure. *)

open Ssg_util
open Ssg_graph
open Ssg_predicates

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- MIS --- *)

let adj_of n edges =
  let a = Array.init n (fun _ -> Bitset.create n) in
  List.iter
    (fun (u, v) ->
      Bitset.add a.(u) v;
      Bitset.add a.(v) u)
    edges;
  a

let test_mis_empty_graph () =
  check_int "no vertices" 0 (Mis.independence_number [||]);
  check_int "edgeless" 5 (Mis.independence_number (adj_of 5 []))

let test_mis_complete () =
  let edges = ref [] in
  for u = 0 to 4 do
    for v = u + 1 to 4 do
      edges := (u, v) :: !edges
    done
  done;
  check_int "K5" 1 (Mis.independence_number (adj_of 5 !edges))

let test_mis_path () =
  (* Path 0-1-2-3-4: alpha = 3 ({0,2,4}). *)
  check_int "P5" 3 (Mis.independence_number (adj_of 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]))

let test_mis_cycle () =
  (* C5: alpha = 2. *)
  check_int "C5" 2
    (Mis.independence_number (adj_of 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]))

let test_mis_bipartite () =
  (* K_{2,3}: alpha = 3. *)
  let edges = [ (0, 2); (0, 3); (0, 4); (1, 2); (1, 3); (1, 4) ] in
  check_int "K23" 3 (Mis.independence_number (adj_of 5 edges))

let test_mis_witness_valid () =
  let adj = adj_of 6 [ (0, 1); (2, 3); (4, 5); (1, 2) ] in
  let w = Mis.max_independent_set adj in
  check "independent" true (Mis.is_independent adj w);
  check_int "size = alpha" (Mis.independence_number adj) (Bitset.cardinal w)

let test_find_independent_set () =
  let adj = adj_of 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  (* C4: alpha = 2 *)
  (match Mis.find_independent_set adj ~size:2 with
  | Some w ->
      check "witness independent" true (Mis.is_independent adj w);
      check_int "witness size" 2 (Bitset.cardinal w)
  | None -> Alcotest.fail "expected witness");
  check "no IS of 3" true (Mis.find_independent_set adj ~size:3 = None);
  check "size 0 trivially" true (Mis.find_independent_set adj ~size:0 <> None);
  check "size > n" true (Mis.find_independent_set adj ~size:5 = None)

let test_is_independent () =
  let adj = adj_of 4 [ (0, 1) ] in
  check "yes" true (Mis.is_independent adj (Bitset.of_list 4 [ 0; 2 ]));
  check "no" false (Mis.is_independent adj (Bitset.of_list 4 [ 0; 1 ]));
  check "empty yes" true (Mis.is_independent adj (Bitset.create 4));
  (* asymmetric input is symmetrized *)
  let asym = Array.init 3 (fun _ -> Bitset.create 3) in
  Bitset.add asym.(0) 1;
  check "symmetrized" false (Mis.is_independent asym (Bitset.of_list 3 [ 0; 1 ]))

(* Brute force MIS for the oracle. *)
let naive_alpha adj =
  let n = Array.length adj in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let members = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
    let s = Bitset.of_list n members in
    if Mis.is_independent adj s && List.length members > !best then
      best := List.length members
  done;
  !best

let gen_adj =
  QCheck2.Gen.(
    let* n = int_range 1 9 in
    let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
    let+ es = list_size (int_bound 20) edge in
    adj_of n (List.filter (fun (u, v) -> u <> v) es))

let prop_mis_oracle =
  QCheck2.Test.make ~count:200 ~name:"branch-and-bound matches brute force"
    gen_adj (fun adj -> Mis.independence_number adj = naive_alpha adj)

(* --- Psrcs --- *)

let pts_of n l = Array.of_list (List.map (Bitset.of_list n) l)

let test_two_source () =
  (* q=0 and q=1 both hear p=2. *)
  let pts = pts_of 3 [ [ 0; 2 ]; [ 1; 2 ]; [ 2 ] ] in
  (match Predicate.two_source pts (Bitset.of_list 3 [ 0; 1 ]) with
  | Some (p, q, q') ->
      check_int "source" 2 p;
      check_int "q" 0 q;
      check_int "q'" 1 q'
  | None -> Alcotest.fail "expected a 2-source");
  check "psrc holds" true (Predicate.psrc pts 2 (Bitset.of_list 3 [ 0; 1 ]));
  check "no 2-source for disjoint" true
    (Predicate.two_source
       (pts_of 3 [ [ 0 ]; [ 1 ]; [ 2 ] ])
       (Bitset.of_list 3 [ 0; 1 ])
    = None)

let test_two_source_self () =
  (* The paper: p need not be distinct from q/q' — p = q case. *)
  let pts = pts_of 2 [ [ 0 ]; [ 0; 1 ] ] in
  (match Predicate.two_source pts (Bitset.of_list 2 [ 0; 1 ]) with
  | Some (p, _, _) -> check_int "self source" 0 p
  | None -> Alcotest.fail "expected self 2-source")

let test_sharing_graph () =
  let pts = pts_of 3 [ [ 0; 2 ]; [ 1; 2 ]; [ 2 ] ] in
  let h = Predicate.sharing_graph pts in
  (* every pair shares source 2 -> complete graph *)
  check "0-1" true (Bitset.mem h.(0) 1);
  check "1-2" true (Bitset.mem h.(1) 2);
  check "no self loops" false (Bitset.mem h.(0) 0)

let test_psrcs_lower_bound_structure () =
  (* The Theorem 2 construction: L = {0,..,k-2} self only; s = k-1; rest
     hear {self, s}.  Psrcs(k) holds, Psrcs(k-1) fails. *)
  let n = 7 and k = 3 in
  let pts =
    Array.init n (fun q ->
        if q < k - 1 then Bitset.of_list n [ q ]
        else Bitset.of_list n [ q; k - 1 ])
  in
  check "psrcs k" true (Predicate.psrcs pts ~k);
  check "psrcs k-1 fails" false (Predicate.psrcs pts ~k:(k - 1));
  check_int "min_k" k (Predicate.min_k pts);
  match Predicate.psrcs_violation pts ~k:(k - 1) with
  | Some s ->
      check_int "witness size" k (Bitset.cardinal s);
      (* witness must be pairwise source-disjoint *)
      check "witness has no 2-source" true (Predicate.two_source pts s = None)
  | None -> Alcotest.fail "expected violation witness"

let test_psrcs_k_at_least_n () =
  let pts = pts_of 3 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  (* k+1 > n: vacuously true *)
  check "k = n" true (Predicate.psrcs pts ~k:3);
  check "k = n-1 fails here" false (Predicate.psrcs pts ~k:2);
  check_int "min_k = n" 3 (Predicate.min_k pts)

let test_psrcs_k_validation () =
  let pts = pts_of 2 [ [ 0 ]; [ 1 ] ] in
  Alcotest.check_raises "k=0" (Invalid_argument "Predicate: k must be >= 1")
    (fun () -> ignore (Predicate.psrcs pts ~k:0))

let test_min_k_synchronous () =
  (* Complete skeleton: everybody shares everybody: min_k = 1. *)
  let skel = Digraph.complete ~self_loops:true 5 in
  check_int "min_k" 1 (Predicate.min_k (Predicate.of_skeleton skel))

let test_psrcs_on_trace () =
  let g = Gen.star 4 ~center:1 in
  let t = Ssg_rounds.Trace.record ~n:4 ~rounds:3 (fun _ -> Digraph.copy g) in
  check "star satisfies Psrcs(1)" true (Predicate.psrcs_on_trace t ~k:1)

let test_ptrue () = check "ptrue" true (Predicate.ptrue (pts_of 1 [ [ 0 ] ]))

(* Properties: MIS-based decision equals the naive subset enumeration, and
   min_k is consistent. *)

let gen_pts =
  QCheck2.Gen.(
    let* n = int_range 2 7 in
    let+ lists =
      list_repeat n (list_size (int_bound 4) (int_bound (n - 1)))
    in
    Array.of_list
      (List.mapi (fun q l -> Bitset.of_list n (q :: l)) lists))

let prop_psrcs_naive =
  QCheck2.Test.make ~count:200 ~name:"psrcs = naive subset enumeration"
    QCheck2.Gen.(pair gen_pts (int_range 1 7))
    (fun (pts, k) ->
      QCheck2.assume (k <= Array.length pts);
      Predicate.psrcs pts ~k = Predicate.psrcs_naive pts ~k)

let prop_min_k_boundary =
  QCheck2.Test.make ~count:200 ~name:"min_k is the exact threshold" gen_pts
    (fun pts ->
      let k = Predicate.min_k pts in
      Predicate.psrcs pts ~k && (k = 1 || not (Predicate.psrcs pts ~k:(k - 1))))

let prop_psrcs_monotone =
  QCheck2.Test.make ~count:100 ~name:"psrcs monotone in k" gen_pts (fun pts ->
      let n = Array.length pts in
      let holds = List.init n (fun i -> Predicate.psrcs pts ~k:(i + 1)) in
      (* once true, stays true: no true followed by false *)
      let rec monotone = function
        | true :: false :: _ -> false
        | _ :: rest -> monotone rest
        | [] -> true
      in
      monotone holds)

let tests =
  [
    Alcotest.test_case "mis empty" `Quick test_mis_empty_graph;
    Alcotest.test_case "mis complete" `Quick test_mis_complete;
    Alcotest.test_case "mis path" `Quick test_mis_path;
    Alcotest.test_case "mis cycle" `Quick test_mis_cycle;
    Alcotest.test_case "mis bipartite" `Quick test_mis_bipartite;
    Alcotest.test_case "mis witness valid" `Quick test_mis_witness_valid;
    Alcotest.test_case "find_independent_set" `Quick test_find_independent_set;
    Alcotest.test_case "is_independent" `Quick test_is_independent;
    Alcotest.test_case "two_source" `Quick test_two_source;
    Alcotest.test_case "two_source self" `Quick test_two_source_self;
    Alcotest.test_case "sharing graph" `Quick test_sharing_graph;
    Alcotest.test_case "psrcs lower-bound structure" `Quick
      test_psrcs_lower_bound_structure;
    Alcotest.test_case "psrcs k >= n" `Quick test_psrcs_k_at_least_n;
    Alcotest.test_case "psrcs k validation" `Quick test_psrcs_k_validation;
    Alcotest.test_case "min_k synchronous" `Quick test_min_k_synchronous;
    Alcotest.test_case "psrcs on trace" `Quick test_psrcs_on_trace;
    Alcotest.test_case "ptrue" `Quick test_ptrue;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_mis_oracle; prop_psrcs_naive; prop_min_k_boundary; prop_psrcs_monotone ]
