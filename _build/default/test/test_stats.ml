(* Tests for Ssg_util.Stats. *)

open Ssg_util

let checkf msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let test_mean_stddev () =
  checkf "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "stddev of constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  checkf "stddev" (sqrt 2.0) (Stats.stddev [| 1.0; 3.0; 1.0; 3.0; 0.0; 4.0 |])

let test_min_max () =
  checkf "min" (-2.0) (Stats.minimum [| 3.0; -2.0; 7.0 |]);
  checkf "max" 7.0 (Stats.maximum [| 3.0; -2.0; 7.0 |])

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  checkf "p0" 10.0 (Stats.percentile xs 0.0);
  checkf "p100" 40.0 (Stats.percentile xs 100.0);
  checkf "p50 interpolated" 25.0 (Stats.percentile xs 50.0);
  checkf "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  checkf "singleton" 9.0 (Stats.percentile [| 9.0 |] 73.0)

let test_percentile_unsorted_input_untouched () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.percentile xs 50.0);
  Alcotest.(check (array (float 0.0))) "input preserved" [| 3.0; 1.0; 2.0 |] xs

let test_summarize () =
  let s = Stats.summarize (Array.init 101 (fun i -> float_of_int i)) in
  Alcotest.(check int) "count" 101 s.Stats.count;
  checkf "mean" 50.0 s.Stats.mean;
  checkf "p50" 50.0 s.Stats.p50;
  checkf "p95" 95.0 s.Stats.p95;
  checkf "min" 0.0 s.Stats.min;
  checkf "max" 100.0 s.Stats.max

let test_linear_fit () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) +. 1.0) xs in
  let slope, intercept = Stats.linear_fit xs ys in
  checkf "slope" 3.0 slope;
  checkf "intercept" 1.0 intercept

let test_linear_fit_noisy () =
  (* Fit is exact for collinear points regardless of order. *)
  let slope, intercept = Stats.linear_fit [| 5.0; 1.0; 3.0 |] [| -10.0; -2.0; -6.0 |] in
  checkf "slope" (-2.0) slope;
  checkf "intercept" 0.0 intercept

let test_linear_fit_errors () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.linear_fit: length mismatch") (fun () ->
      ignore (Stats.linear_fit [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "too few"
    (Invalid_argument "Stats.linear_fit: need at least 2 points") (fun () ->
      ignore (Stats.linear_fit [| 1.0 |] [| 1.0 |]));
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Stats.linear_fit: degenerate x values") (fun () ->
      ignore (Stats.linear_fit [| 2.0; 2.0 |] [| 1.0; 5.0 |]))

let test_histogram () =
  let h = Stats.histogram ~buckets:2 [| 0.0; 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "buckets" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "counts sum" 4 total;
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "low bucket" 2 c0;
  Alcotest.(check int) "high bucket" 2 c1

let test_histogram_constant () =
  let h = Stats.histogram ~buckets:3 [| 7.0; 7.0 |] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "counts sum" 2 total

let test_empty_raises () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean [||]))

let test_of_ints () =
  Alcotest.(check (array (float 0.0))) "of_ints" [| 1.0; 2.0 |]
    (Stats.of_ints [| 1; 2 |])

let tests =
  [
    Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile preserves input" `Quick
      test_percentile_unsorted_input_untouched;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "linear fit" `Quick test_linear_fit;
    Alcotest.test_case "linear fit (negative slope)" `Quick test_linear_fit_noisy;
    Alcotest.test_case "linear fit errors" `Quick test_linear_fit_errors;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram constant" `Quick test_histogram_constant;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "of_ints" `Quick test_of_ints;
  ]
