(* Tests for the round-labelled approximation graph. *)

open Ssg_util
open Ssg_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create () =
  let g = Lgraph.create 5 ~self:2 in
  check_int "capacity" 5 (Lgraph.capacity g);
  check "owner present" true (Lgraph.mem_node g 2);
  check_int "one node" 1 (Lgraph.node_count g);
  check_int "no edges" 0 (Lgraph.edge_count g);
  check "strongly connected (singleton)" true (Lgraph.is_strongly_connected g)

let test_set_edge () =
  let g = Lgraph.create 4 ~self:0 in
  Lgraph.set_edge g 1 0 ~label:3;
  check "edge present" true (Lgraph.mem_edge g 1 0);
  check_int "label" 3 (Lgraph.label g 1 0);
  check "endpoints added" true (Lgraph.mem_node g 1);
  check_int "absent label is 0" 0 (Lgraph.label g 0 1);
  Lgraph.set_edge g 1 0 ~label:5;
  check_int "overwrite" 5 (Lgraph.label g 1 0);
  Alcotest.check_raises "bad label"
    (Invalid_argument "Lgraph.set_edge: label must be positive") (fun () ->
      Lgraph.set_edge g 1 2 ~label:0)

let test_remove_edge () =
  let g = Lgraph.create 4 ~self:0 in
  Lgraph.set_edge g 1 2 ~label:1;
  Lgraph.remove_edge g 1 2;
  check "gone" false (Lgraph.mem_edge g 1 2);
  check "nodes kept" true (Lgraph.mem_node g 1 && Lgraph.mem_node g 2)

let test_reset () =
  let g = Lgraph.create 4 ~self:0 in
  Lgraph.set_edge g 1 2 ~label:1;
  Lgraph.reset g ~self:3;
  check_int "one node" 1 (Lgraph.node_count g);
  check "new owner" true (Lgraph.mem_node g 3);
  check_int "no edges" 0 (Lgraph.edge_count g)

let test_edges_listing () =
  let g = Lgraph.create 3 ~self:0 in
  Lgraph.set_edge g 2 1 ~label:4;
  Lgraph.set_edge g 0 1 ~label:2;
  Alcotest.(check (list (triple int int int))) "edges" [ (0, 1, 2); (2, 1, 4) ]
    (Lgraph.edges g)

let test_merge_max () =
  let a = Lgraph.create 4 ~self:0 in
  Lgraph.set_edge a 1 0 ~label:2;
  Lgraph.set_edge a 2 0 ~label:5;
  let b = Lgraph.create 4 ~self:1 in
  Lgraph.set_edge b 1 0 ~label:4;
  Lgraph.set_edge b 3 1 ~label:1;
  Lgraph.merge_max_into ~into:a b;
  check_int "max taken" 4 (Lgraph.label a 1 0);
  check_int "kept larger" 5 (Lgraph.label a 2 0);
  check_int "new edge" 1 (Lgraph.label a 3 1);
  check "nodes unioned" true (Lgraph.mem_node a 3)

let test_purge () =
  let g = Lgraph.create 4 ~self:0 in
  Lgraph.set_edge g 1 0 ~label:2;
  Lgraph.set_edge g 2 0 ~label:5;
  Lgraph.purge g ~upto:2;
  check "old gone" false (Lgraph.mem_edge g 1 0);
  check "new kept" true (Lgraph.mem_edge g 2 0);
  check "nodes kept" true (Lgraph.mem_node g 1)

let test_prune_unreachable () =
  let g = Lgraph.create 6 ~self:0 in
  (* 1 -> 0 (kept), 2 -> 1 (kept, reaches 0 via 1), 3 -> 4 (dropped, no
     path to 0), 0 -> 5 (5 dropped: 5 cannot reach 0). *)
  Lgraph.set_edge g 1 0 ~label:1;
  Lgraph.set_edge g 2 1 ~label:1;
  Lgraph.set_edge g 3 4 ~label:1;
  Lgraph.set_edge g 0 5 ~label:1;
  Lgraph.prune_unreachable g ~self:0;
  Alcotest.(check (list int)) "kept nodes" [ 0; 1; 2 ]
    (Bitset.elements (Lgraph.nodes g));
  check "edge 3->4 gone" false (Lgraph.mem_edge g 3 4);
  check "edge 0->5 gone" false (Lgraph.mem_edge g 0 5);
  check "edge 2->1 kept" true (Lgraph.mem_edge g 2 1)

let test_prune_keeps_owner () =
  let g = Lgraph.create 3 ~self:1 in
  Lgraph.add_node g 0;
  Lgraph.prune_unreachable g ~self:1;
  Alcotest.(check (list int)) "only owner" [ 1 ]
    (Bitset.elements (Lgraph.nodes g))

let test_strong_connectivity () =
  let g = Lgraph.create 4 ~self:0 in
  Lgraph.set_edge g 0 1 ~label:1;
  check "not sc" false (Lgraph.is_strongly_connected g);
  Lgraph.set_edge g 1 0 ~label:2;
  check "sc pair" true (Lgraph.is_strongly_connected g);
  Lgraph.add_node g 3;
  check "isolated node breaks sc" false (Lgraph.is_strongly_connected g)

let test_to_digraph () =
  let g = Lgraph.create 3 ~self:0 in
  Lgraph.set_edge g 1 2 ~label:7;
  let d = Lgraph.to_digraph g in
  check "edge carried" true (Digraph.mem_edge d 1 2);
  check_int "one edge" 1 (Digraph.edge_count d)

let test_min_max_label () =
  let g = Lgraph.create 3 ~self:0 in
  check "empty min" true (Lgraph.min_label g = None);
  Lgraph.set_edge g 0 1 ~label:3;
  Lgraph.set_edge g 1 2 ~label:9;
  Alcotest.(check (option int)) "min" (Some 3) (Lgraph.min_label g);
  Alcotest.(check (option int)) "max" (Some 9) (Lgraph.max_label g)

let test_encoded_bits () =
  let g = Lgraph.create 8 ~self:0 in
  (* id_bits for n=8 is 3 *)
  check_int "one node" 3 (Lgraph.encoded_bits g ~label_bits:5);
  Lgraph.set_edge g 1 0 ~label:1;
  (* 2 nodes * 3 + 1 edge * (6 + 5) *)
  check_int "node + edge" 17 (Lgraph.encoded_bits g ~label_bits:5)

let test_swap () =
  let a = Lgraph.create 3 ~self:0 in
  Lgraph.set_edge a 1 0 ~label:2;
  let b = Lgraph.create 3 ~self:2 in
  Lgraph.set_edge b 0 2 ~label:7;
  let a0 = Lgraph.copy a and b0 = Lgraph.copy b in
  Lgraph.swap a b;
  check "a has b's content" true (Lgraph.equal a b0);
  check "b has a's content" true (Lgraph.equal b a0);
  Lgraph.swap a b;
  check "swap is involutive" true (Lgraph.equal a a0 && Lgraph.equal b b0);
  check "mismatch rejected" true
    (try Lgraph.swap a (Lgraph.create 4 ~self:0); false
     with Invalid_argument _ -> true)

let test_copy_equal () =
  let g = Lgraph.create 3 ~self:0 in
  Lgraph.set_edge g 1 0 ~label:2;
  let h = Lgraph.copy g in
  check "equal" true (Lgraph.equal g h);
  Lgraph.set_edge h 2 0 ~label:1;
  check "independent" false (Lgraph.equal g h)

(* Property: merge_max_into is commutative and idempotent on label level. *)

let gen_lgraph =
  QCheck2.Gen.(
    let n = 6 in
    let edge = triple (int_bound (n - 1)) (int_bound (n - 1)) (int_range 1 9) in
    let+ es = list_size (int_bound 15) edge in
    let g = Lgraph.create n ~self:0 in
    List.iter (fun (q, p, l) -> Lgraph.set_edge g q p ~label:l) es;
    g)

let props =
  [
    QCheck2.Test.make ~count:200 ~name:"merge_max commutative"
      (QCheck2.Gen.pair gen_lgraph gen_lgraph) (fun (a, b) ->
        let ab = Lgraph.copy a and ba = Lgraph.copy b in
        Lgraph.merge_max_into ~into:ab b;
        Lgraph.merge_max_into ~into:ba a;
        Lgraph.equal ab ba);
    QCheck2.Test.make ~count:200 ~name:"merge_max idempotent" gen_lgraph
      (fun a ->
        let aa = Lgraph.copy a in
        Lgraph.merge_max_into ~into:aa a;
        Lgraph.equal aa a);
    QCheck2.Test.make ~count:200 ~name:"purge removes exactly stale labels"
      (QCheck2.Gen.pair gen_lgraph (QCheck2.Gen.int_range 0 10))
      (fun (g, upto) ->
        let before = Lgraph.edges g in
        Lgraph.purge g ~upto;
        let after = Lgraph.edges g in
        List.for_all (fun (_, _, l) -> l > upto) after
        && List.length after
           = List.length (List.filter (fun (_, _, l) -> l > upto) before));
    QCheck2.Test.make ~count:200
      ~name:"prune keeps exactly the backward closure" gen_lgraph (fun g ->
        let d = Lgraph.to_digraph g in
        let expect = Reach.reaches d 0 in
        (* owner 0 is always in the graph *)
        Lgraph.prune_unreachable g ~self:0;
        let kept = Lgraph.nodes g in
        (* every kept node reaches 0 in the original graph *)
        Bitset.for_all (fun v -> Bitset.mem expect v) kept
        && Bitset.for_all
             (fun v -> not (Bitset.mem kept v) || v = 0)
             (Bitset.diff (Bitset.full 6) expect));
  ]

let tests =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "set_edge" `Quick test_set_edge;
    Alcotest.test_case "remove_edge" `Quick test_remove_edge;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "edges listing" `Quick test_edges_listing;
    Alcotest.test_case "merge max" `Quick test_merge_max;
    Alcotest.test_case "purge" `Quick test_purge;
    Alcotest.test_case "prune unreachable" `Quick test_prune_unreachable;
    Alcotest.test_case "prune keeps owner" `Quick test_prune_keeps_owner;
    Alcotest.test_case "strong connectivity" `Quick test_strong_connectivity;
    Alcotest.test_case "to_digraph" `Quick test_to_digraph;
    Alcotest.test_case "min/max label" `Quick test_min_max_label;
    Alcotest.test_case "encoded bits" `Quick test_encoded_bits;
    Alcotest.test_case "swap" `Quick test_swap;
    Alcotest.test_case "copy/equal" `Quick test_copy_equal;
  ]
  @ List.map QCheck_alcotest.to_alcotest props
