(* Tests for Table, Parallel and Order. *)

open Ssg_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Table *)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  check_str "header" "name   value" (List.nth lines 0);
  check_str "row 1" "alpha  1" (List.nth lines 2);
  check_str "row 2" "b      22" (List.nth lines 3)

let test_table_padding () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  (* short row padded *)
  check "renders" true (String.length (Table.render t) > 0);
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "1"; "2"; "3"; "4" ])

let test_table_rule () =
  let t = Table.create [ "x" ] in
  Table.add_row t [ "1" ];
  Table.add_rule t;
  Table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  check "rule is dashes" true
    (String.for_all (fun c -> c = '-') (List.nth lines 3))

let test_table_csv () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "x,y"; "pla\"in" ];
  Table.add_rule t;
  Table.add_row t [ "1"; "2" ];
  check_str "csv" "a,b\n\"x,y\",\"pla\"\"in\"\n1,2\n" (Table.to_csv t)

let test_table_cells () =
  check_str "int" "42" (Table.cell_int 42);
  check_str "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  check_str "bool" "yes" (Table.cell_bool true);
  check_str "bool no" "no" (Table.cell_bool false)

(* Parallel *)

let test_parallel_map_matches_sequential () =
  let xs = Array.init 200 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "parallel = sequential" (Array.map f xs)
    (Parallel.map ~domains:4 f xs)

let test_parallel_zero_domains () =
  let xs = Array.init 10 (fun i -> i) in
  Alcotest.(check (array int)) "sequential path" (Array.map succ xs)
    (Parallel.map ~domains:0 succ xs)

let test_parallel_empty () =
  check_int "empty input" 0 (Array.length (Parallel.map ~domains:2 succ [||]))

let test_parallel_order_preserved () =
  let xs = Array.init 64 (fun i -> i) in
  let ys = Parallel.map ~domains:3 (fun x -> x) xs in
  Alcotest.(check (array int)) "order" xs ys

let test_parallel_exception () =
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~domains:2
           (fun x -> if x = 5 then failwith "boom" else x)
           (Array.init 10 (fun i -> i))))

let test_parallel_init () =
  Alcotest.(check (array int)) "init" [| 0; 2; 4 |]
    (Parallel.init ~domains:2 3 (fun i -> 2 * i))

(* Order *)

let test_min_by () =
  check_int "min_by" 3 (Order.min_by (fun x -> x * x) [ 5; -4; 3 ]);
  check_int "max_by" (-4) (Order.max_by (fun x -> x * x) [ 3; -4; 2 ]);
  check_int "leftmost tie" 2 (Order.min_by (fun x -> x mod 2) [ 2; 4; 6 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Order.min_by: empty list")
    (fun () -> ignore (Order.min_by Fun.id []))

let test_argmin_argmax () =
  check_int "argmin" 1 (Order.argmin [| 4; 1; 3 |]);
  check_int "argmax" 0 (Order.argmax [| 4; 1; 3 |]);
  check_int "argmin tie leftmost" 0 (Order.argmin [| 1; 1 |])

let test_clamp () =
  check_int "below" 0 (Order.clamp ~lo:0 ~hi:10 (-5));
  check_int "above" 10 (Order.clamp ~lo:0 ~hi:10 15);
  check_int "inside" 7 (Order.clamp ~lo:0 ~hi:10 7)

let test_distinct () =
  Alcotest.(check (list int)) "distinct" [ 1; 2; 3 ]
    (Order.distinct [ 3; 1; 2; 1; 3; 3 ])

let tests =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table padding" `Quick test_table_padding;
    Alcotest.test_case "table rule" `Quick test_table_rule;
    Alcotest.test_case "table csv" `Quick test_table_csv;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "parallel map = sequential" `Quick
      test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel zero domains" `Quick test_parallel_zero_domains;
    Alcotest.test_case "parallel empty" `Quick test_parallel_empty;
    Alcotest.test_case "parallel order" `Quick test_parallel_order_preserved;
    Alcotest.test_case "parallel exception" `Quick test_parallel_exception;
    Alcotest.test_case "parallel init" `Quick test_parallel_init;
    Alcotest.test_case "min_by/max_by" `Quick test_min_by;
    Alcotest.test_case "argmin/argmax" `Quick test_argmin_argmax;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "distinct" `Quick test_distinct;
  ]
